/root/repo/target/release/libobs.rlib: /root/repo/crates/obs/src/json.rs /root/repo/crates/obs/src/lib.rs /root/repo/crates/obs/src/record.rs /root/repo/crates/obs/src/summary.rs
