/root/repo/target/release/deps/analyzer-332ae8d9cf06a79a.d: crates/analyzer/src/lib.rs

/root/repo/target/release/deps/libanalyzer-332ae8d9cf06a79a.rlib: crates/analyzer/src/lib.rs

/root/repo/target/release/deps/libanalyzer-332ae8d9cf06a79a.rmeta: crates/analyzer/src/lib.rs

crates/analyzer/src/lib.rs:
