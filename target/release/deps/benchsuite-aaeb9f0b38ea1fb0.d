/root/repo/target/release/deps/benchsuite-aaeb9f0b38ea1fb0.d: crates/benchsuite/src/lib.rs crates/benchsuite/src/extras.rs crates/benchsuite/src/recursive.rs crates/benchsuite/src/sources.rs

/root/repo/target/release/deps/libbenchsuite-aaeb9f0b38ea1fb0.rlib: crates/benchsuite/src/lib.rs crates/benchsuite/src/extras.rs crates/benchsuite/src/recursive.rs crates/benchsuite/src/sources.rs

/root/repo/target/release/deps/libbenchsuite-aaeb9f0b38ea1fb0.rmeta: crates/benchsuite/src/lib.rs crates/benchsuite/src/extras.rs crates/benchsuite/src/recursive.rs crates/benchsuite/src/sources.rs

crates/benchsuite/src/lib.rs:
crates/benchsuite/src/extras.rs:
crates/benchsuite/src/recursive.rs:
crates/benchsuite/src/sources.rs:
