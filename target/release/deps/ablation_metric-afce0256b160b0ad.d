/root/repo/target/release/deps/ablation_metric-afce0256b160b0ad.d: crates/bench/src/bin/ablation_metric.rs

/root/repo/target/release/deps/ablation_metric-afce0256b160b0ad: crates/bench/src/bin/ablation_metric.rs

crates/bench/src/bin/ablation_metric.rs:
