/root/repo/target/release/deps/ablation_opt-4e8f2d9a314caf28.d: crates/bench/src/bin/ablation_opt.rs

/root/repo/target/release/deps/ablation_opt-4e8f2d9a314caf28: crates/bench/src/bin/ablation_opt.rs

crates/bench/src/bin/ablation_opt.rs:
