/root/repo/target/release/deps/stackbound-b444dd9e93adf7d5.d: crates/stackbound/src/lib.rs

/root/repo/target/release/deps/libstackbound-b444dd9e93adf7d5.rlib: crates/stackbound/src/lib.rs

/root/repo/target/release/deps/libstackbound-b444dd9e93adf7d5.rmeta: crates/stackbound/src/lib.rs

crates/stackbound/src/lib.rs:
