/root/repo/target/release/deps/stackbound-0eb0da73e1059349.d: crates/stackbound/src/lib.rs

/root/repo/target/release/deps/libstackbound-0eb0da73e1059349.rlib: crates/stackbound/src/lib.rs

/root/repo/target/release/deps/libstackbound-0eb0da73e1059349.rmeta: crates/stackbound/src/lib.rs

crates/stackbound/src/lib.rs:
