/root/repo/target/release/deps/table2-2c9e08dd8099ec71.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-2c9e08dd8099ec71: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
