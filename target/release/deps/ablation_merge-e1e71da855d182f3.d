/root/repo/target/release/deps/ablation_merge-e1e71da855d182f3.d: crates/bench/src/bin/ablation_merge.rs

/root/repo/target/release/deps/ablation_merge-e1e71da855d182f3: crates/bench/src/bin/ablation_merge.rs

crates/bench/src/bin/ablation_merge.rs:
