/root/repo/target/release/deps/compiler-9c9c25d3da982527.d: crates/compiler/src/lib.rs crates/compiler/src/cminor.rs crates/compiler/src/cminorgen.rs crates/compiler/src/inline.rs crates/compiler/src/mach.rs crates/compiler/src/machgen.rs crates/compiler/src/opt.rs crates/compiler/src/rtl.rs crates/compiler/src/rtlgen.rs crates/compiler/src/asmgen.rs

/root/repo/target/release/deps/libcompiler-9c9c25d3da982527.rlib: crates/compiler/src/lib.rs crates/compiler/src/cminor.rs crates/compiler/src/cminorgen.rs crates/compiler/src/inline.rs crates/compiler/src/mach.rs crates/compiler/src/machgen.rs crates/compiler/src/opt.rs crates/compiler/src/rtl.rs crates/compiler/src/rtlgen.rs crates/compiler/src/asmgen.rs

/root/repo/target/release/deps/libcompiler-9c9c25d3da982527.rmeta: crates/compiler/src/lib.rs crates/compiler/src/cminor.rs crates/compiler/src/cminorgen.rs crates/compiler/src/inline.rs crates/compiler/src/mach.rs crates/compiler/src/machgen.rs crates/compiler/src/opt.rs crates/compiler/src/rtl.rs crates/compiler/src/rtlgen.rs crates/compiler/src/asmgen.rs

crates/compiler/src/lib.rs:
crates/compiler/src/cminor.rs:
crates/compiler/src/cminorgen.rs:
crates/compiler/src/inline.rs:
crates/compiler/src/mach.rs:
crates/compiler/src/machgen.rs:
crates/compiler/src/opt.rs:
crates/compiler/src/rtl.rs:
crates/compiler/src/rtlgen.rs:
crates/compiler/src/asmgen.rs:
