/root/repo/target/release/deps/obs_overhead-318b446b7a9feef5.d: crates/bench/benches/obs_overhead.rs

/root/repo/target/release/deps/obs_overhead-318b446b7a9feef5: crates/bench/benches/obs_overhead.rs

crates/bench/benches/obs_overhead.rs:
