/root/repo/target/release/deps/bench-f21e4e91869a5589.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-f21e4e91869a5589.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-f21e4e91869a5589.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
