/root/repo/target/release/deps/obs-e33b53c7e9331c57.d: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/record.rs crates/obs/src/summary.rs

/root/repo/target/release/deps/libobs-e33b53c7e9331c57.rlib: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/record.rs crates/obs/src/summary.rs

/root/repo/target/release/deps/libobs-e33b53c7e9331c57.rmeta: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/record.rs crates/obs/src/summary.rs

crates/obs/src/lib.rs:
crates/obs/src/json.rs:
crates/obs/src/record.rs:
crates/obs/src/summary.rs:
