/root/repo/target/release/deps/table2-07d5264adae40748.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-07d5264adae40748: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
