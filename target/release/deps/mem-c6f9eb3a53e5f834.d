/root/repo/target/release/deps/mem-c6f9eb3a53e5f834.d: crates/mem/src/lib.rs

/root/repo/target/release/deps/libmem-c6f9eb3a53e5f834.rlib: crates/mem/src/lib.rs

/root/repo/target/release/deps/libmem-c6f9eb3a53e5f834.rmeta: crates/mem/src/lib.rs

crates/mem/src/lib.rs:
