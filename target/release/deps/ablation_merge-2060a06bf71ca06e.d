/root/repo/target/release/deps/ablation_merge-2060a06bf71ca06e.d: crates/bench/src/bin/ablation_merge.rs

/root/repo/target/release/deps/ablation_merge-2060a06bf71ca06e: crates/bench/src/bin/ablation_merge.rs

crates/bench/src/bin/ablation_merge.rs:
