/root/repo/target/release/deps/ablation_inline-bf4a8f3e8a68f67d.d: crates/bench/src/bin/ablation_inline.rs

/root/repo/target/release/deps/ablation_inline-bf4a8f3e8a68f67d: crates/bench/src/bin/ablation_inline.rs

crates/bench/src/bin/ablation_inline.rs:
