/root/repo/target/release/deps/trace-2d198010cad102e3.d: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/metric.rs crates/trace/src/refinement.rs

/root/repo/target/release/deps/libtrace-2d198010cad102e3.rlib: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/metric.rs crates/trace/src/refinement.rs

/root/repo/target/release/deps/libtrace-2d198010cad102e3.rmeta: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/metric.rs crates/trace/src/refinement.rs

crates/trace/src/lib.rs:
crates/trace/src/event.rs:
crates/trace/src/metric.rs:
crates/trace/src/refinement.rs:
