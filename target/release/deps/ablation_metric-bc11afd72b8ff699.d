/root/repo/target/release/deps/ablation_metric-bc11afd72b8ff699.d: crates/bench/src/bin/ablation_metric.rs

/root/repo/target/release/deps/ablation_metric-bc11afd72b8ff699: crates/bench/src/bin/ablation_metric.rs

crates/bench/src/bin/ablation_metric.rs:
