/root/repo/target/release/deps/theorem1-30aedf8b2fb12f3c.d: crates/bench/src/bin/theorem1.rs

/root/repo/target/release/deps/theorem1-30aedf8b2fb12f3c: crates/bench/src/bin/theorem1.rs

crates/bench/src/bin/theorem1.rs:
