/root/repo/target/release/deps/bench-fc53c3538c7c9d3e.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-fc53c3538c7c9d3e.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-fc53c3538c7c9d3e.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
