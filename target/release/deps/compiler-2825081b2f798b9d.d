/root/repo/target/release/deps/compiler-2825081b2f798b9d.d: crates/compiler/src/lib.rs crates/compiler/src/cminor.rs crates/compiler/src/cminorgen.rs crates/compiler/src/inline.rs crates/compiler/src/mach.rs crates/compiler/src/machgen.rs crates/compiler/src/opt.rs crates/compiler/src/rtl.rs crates/compiler/src/rtlgen.rs crates/compiler/src/asmgen.rs

/root/repo/target/release/deps/libcompiler-2825081b2f798b9d.rlib: crates/compiler/src/lib.rs crates/compiler/src/cminor.rs crates/compiler/src/cminorgen.rs crates/compiler/src/inline.rs crates/compiler/src/mach.rs crates/compiler/src/machgen.rs crates/compiler/src/opt.rs crates/compiler/src/rtl.rs crates/compiler/src/rtlgen.rs crates/compiler/src/asmgen.rs

/root/repo/target/release/deps/libcompiler-2825081b2f798b9d.rmeta: crates/compiler/src/lib.rs crates/compiler/src/cminor.rs crates/compiler/src/cminorgen.rs crates/compiler/src/inline.rs crates/compiler/src/mach.rs crates/compiler/src/machgen.rs crates/compiler/src/opt.rs crates/compiler/src/rtl.rs crates/compiler/src/rtlgen.rs crates/compiler/src/asmgen.rs

crates/compiler/src/lib.rs:
crates/compiler/src/cminor.rs:
crates/compiler/src/cminorgen.rs:
crates/compiler/src/inline.rs:
crates/compiler/src/mach.rs:
crates/compiler/src/machgen.rs:
crates/compiler/src/opt.rs:
crates/compiler/src/rtl.rs:
crates/compiler/src/rtlgen.rs:
crates/compiler/src/asmgen.rs:
