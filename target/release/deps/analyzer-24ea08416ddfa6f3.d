/root/repo/target/release/deps/analyzer-24ea08416ddfa6f3.d: crates/analyzer/src/lib.rs

/root/repo/target/release/deps/libanalyzer-24ea08416ddfa6f3.rlib: crates/analyzer/src/lib.rs

/root/repo/target/release/deps/libanalyzer-24ea08416ddfa6f3.rmeta: crates/analyzer/src/lib.rs

crates/analyzer/src/lib.rs:
