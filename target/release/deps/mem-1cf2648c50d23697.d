/root/repo/target/release/deps/mem-1cf2648c50d23697.d: crates/mem/src/lib.rs

/root/repo/target/release/deps/libmem-1cf2648c50d23697.rlib: crates/mem/src/lib.rs

/root/repo/target/release/deps/libmem-1cf2648c50d23697.rmeta: crates/mem/src/lib.rs

crates/mem/src/lib.rs:
