/root/repo/target/release/deps/fig7-114faa356f922555.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-114faa356f922555: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
