/root/repo/target/release/deps/asm-5d1f8078cbfc7ad8.d: crates/asm/src/lib.rs crates/asm/src/machine.rs crates/asm/src/monitor.rs crates/asm/src/profile.rs

/root/repo/target/release/deps/libasm-5d1f8078cbfc7ad8.rlib: crates/asm/src/lib.rs crates/asm/src/machine.rs crates/asm/src/monitor.rs crates/asm/src/profile.rs

/root/repo/target/release/deps/libasm-5d1f8078cbfc7ad8.rmeta: crates/asm/src/lib.rs crates/asm/src/machine.rs crates/asm/src/monitor.rs crates/asm/src/profile.rs

crates/asm/src/lib.rs:
crates/asm/src/machine.rs:
crates/asm/src/monitor.rs:
crates/asm/src/profile.rs:
