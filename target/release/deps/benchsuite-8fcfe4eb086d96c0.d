/root/repo/target/release/deps/benchsuite-8fcfe4eb086d96c0.d: crates/benchsuite/src/lib.rs crates/benchsuite/src/extras.rs crates/benchsuite/src/recursive.rs crates/benchsuite/src/sources.rs

/root/repo/target/release/deps/libbenchsuite-8fcfe4eb086d96c0.rlib: crates/benchsuite/src/lib.rs crates/benchsuite/src/extras.rs crates/benchsuite/src/recursive.rs crates/benchsuite/src/sources.rs

/root/repo/target/release/deps/libbenchsuite-8fcfe4eb086d96c0.rmeta: crates/benchsuite/src/lib.rs crates/benchsuite/src/extras.rs crates/benchsuite/src/recursive.rs crates/benchsuite/src/sources.rs

crates/benchsuite/src/lib.rs:
crates/benchsuite/src/extras.rs:
crates/benchsuite/src/recursive.rs:
crates/benchsuite/src/sources.rs:
