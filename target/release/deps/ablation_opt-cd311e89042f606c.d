/root/repo/target/release/deps/ablation_opt-cd311e89042f606c.d: crates/bench/src/bin/ablation_opt.rs

/root/repo/target/release/deps/ablation_opt-cd311e89042f606c: crates/bench/src/bin/ablation_opt.rs

crates/bench/src/bin/ablation_opt.rs:
