/root/repo/target/release/deps/accuracy-7a1251285667a19a.d: crates/bench/src/bin/accuracy.rs

/root/repo/target/release/deps/accuracy-7a1251285667a19a: crates/bench/src/bin/accuracy.rs

crates/bench/src/bin/accuracy.rs:
