/root/repo/target/release/deps/theorem1-d37c266d4a54a288.d: crates/bench/src/bin/theorem1.rs

/root/repo/target/release/deps/theorem1-d37c266d4a54a288: crates/bench/src/bin/theorem1.rs

crates/bench/src/bin/theorem1.rs:
