/root/repo/target/release/deps/qhl-045f63585dc13c78.d: crates/qhl/src/lib.rs crates/qhl/src/bound.rs crates/qhl/src/derive.rs crates/qhl/src/logic.rs crates/qhl/src/validate.rs

/root/repo/target/release/deps/libqhl-045f63585dc13c78.rlib: crates/qhl/src/lib.rs crates/qhl/src/bound.rs crates/qhl/src/derive.rs crates/qhl/src/logic.rs crates/qhl/src/validate.rs

/root/repo/target/release/deps/libqhl-045f63585dc13c78.rmeta: crates/qhl/src/lib.rs crates/qhl/src/bound.rs crates/qhl/src/derive.rs crates/qhl/src/logic.rs crates/qhl/src/validate.rs

crates/qhl/src/lib.rs:
crates/qhl/src/bound.rs:
crates/qhl/src/derive.rs:
crates/qhl/src/logic.rs:
crates/qhl/src/validate.rs:
