/root/repo/target/release/deps/trace-00153f63d91dfd16.d: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/metric.rs crates/trace/src/refinement.rs

/root/repo/target/release/deps/libtrace-00153f63d91dfd16.rlib: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/metric.rs crates/trace/src/refinement.rs

/root/repo/target/release/deps/libtrace-00153f63d91dfd16.rmeta: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/metric.rs crates/trace/src/refinement.rs

crates/trace/src/lib.rs:
crates/trace/src/event.rs:
crates/trace/src/metric.rs:
crates/trace/src/refinement.rs:
