/root/repo/target/release/deps/asm-0c646a7e92f67a43.d: crates/asm/src/lib.rs crates/asm/src/machine.rs crates/asm/src/monitor.rs crates/asm/src/profile.rs

/root/repo/target/release/deps/libasm-0c646a7e92f67a43.rlib: crates/asm/src/lib.rs crates/asm/src/machine.rs crates/asm/src/monitor.rs crates/asm/src/profile.rs

/root/repo/target/release/deps/libasm-0c646a7e92f67a43.rmeta: crates/asm/src/lib.rs crates/asm/src/machine.rs crates/asm/src/monitor.rs crates/asm/src/profile.rs

crates/asm/src/lib.rs:
crates/asm/src/machine.rs:
crates/asm/src/monitor.rs:
crates/asm/src/profile.rs:
