/root/repo/target/release/deps/ablation_inline-2842e0e2827c10bf.d: crates/bench/src/bin/ablation_inline.rs

/root/repo/target/release/deps/ablation_inline-2842e0e2827c10bf: crates/bench/src/bin/ablation_inline.rs

crates/bench/src/bin/ablation_inline.rs:
