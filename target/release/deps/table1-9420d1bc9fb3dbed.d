/root/repo/target/release/deps/table1-9420d1bc9fb3dbed.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-9420d1bc9fb3dbed: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
