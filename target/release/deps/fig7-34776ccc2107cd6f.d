/root/repo/target/release/deps/fig7-34776ccc2107cd6f.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-34776ccc2107cd6f: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
