/root/repo/target/release/deps/table1-97b3afcc31f7ec53.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-97b3afcc31f7ec53: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
