/root/repo/target/release/deps/clight-152f1484eb6ab5a6.d: crates/clight/src/lib.rs crates/clight/src/ast.rs crates/clight/src/lex.rs crates/clight/src/parse.rs crates/clight/src/pretty.rs crates/clight/src/sem.rs crates/clight/src/typecheck.rs crates/clight/src/types.rs

/root/repo/target/release/deps/libclight-152f1484eb6ab5a6.rlib: crates/clight/src/lib.rs crates/clight/src/ast.rs crates/clight/src/lex.rs crates/clight/src/parse.rs crates/clight/src/pretty.rs crates/clight/src/sem.rs crates/clight/src/typecheck.rs crates/clight/src/types.rs

/root/repo/target/release/deps/libclight-152f1484eb6ab5a6.rmeta: crates/clight/src/lib.rs crates/clight/src/ast.rs crates/clight/src/lex.rs crates/clight/src/parse.rs crates/clight/src/pretty.rs crates/clight/src/sem.rs crates/clight/src/typecheck.rs crates/clight/src/types.rs

crates/clight/src/lib.rs:
crates/clight/src/ast.rs:
crates/clight/src/lex.rs:
crates/clight/src/parse.rs:
crates/clight/src/pretty.rs:
crates/clight/src/sem.rs:
crates/clight/src/typecheck.rs:
crates/clight/src/types.rs:
