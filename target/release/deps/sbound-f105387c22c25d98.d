/root/repo/target/release/deps/sbound-f105387c22c25d98.d: crates/stackbound/src/bin/sbound.rs

/root/repo/target/release/deps/sbound-f105387c22c25d98: crates/stackbound/src/bin/sbound.rs

crates/stackbound/src/bin/sbound.rs:
