/root/repo/target/release/deps/qhl-145ad3737c907619.d: crates/qhl/src/lib.rs crates/qhl/src/bound.rs crates/qhl/src/derive.rs crates/qhl/src/logic.rs crates/qhl/src/validate.rs

/root/repo/target/release/deps/libqhl-145ad3737c907619.rlib: crates/qhl/src/lib.rs crates/qhl/src/bound.rs crates/qhl/src/derive.rs crates/qhl/src/logic.rs crates/qhl/src/validate.rs

/root/repo/target/release/deps/libqhl-145ad3737c907619.rmeta: crates/qhl/src/lib.rs crates/qhl/src/bound.rs crates/qhl/src/derive.rs crates/qhl/src/logic.rs crates/qhl/src/validate.rs

crates/qhl/src/lib.rs:
crates/qhl/src/bound.rs:
crates/qhl/src/derive.rs:
crates/qhl/src/logic.rs:
crates/qhl/src/validate.rs:
