/root/repo/target/release/deps/accuracy-06de8ce044820268.d: crates/bench/src/bin/accuracy.rs

/root/repo/target/release/deps/accuracy-06de8ce044820268: crates/bench/src/bin/accuracy.rs

crates/bench/src/bin/accuracy.rs:
