/root/repo/target/release/deps/clight-d5f47eba88101a33.d: crates/clight/src/lib.rs crates/clight/src/ast.rs crates/clight/src/lex.rs crates/clight/src/parse.rs crates/clight/src/pretty.rs crates/clight/src/sem.rs crates/clight/src/typecheck.rs crates/clight/src/types.rs

/root/repo/target/release/deps/libclight-d5f47eba88101a33.rlib: crates/clight/src/lib.rs crates/clight/src/ast.rs crates/clight/src/lex.rs crates/clight/src/parse.rs crates/clight/src/pretty.rs crates/clight/src/sem.rs crates/clight/src/typecheck.rs crates/clight/src/types.rs

/root/repo/target/release/deps/libclight-d5f47eba88101a33.rmeta: crates/clight/src/lib.rs crates/clight/src/ast.rs crates/clight/src/lex.rs crates/clight/src/parse.rs crates/clight/src/pretty.rs crates/clight/src/sem.rs crates/clight/src/typecheck.rs crates/clight/src/types.rs

crates/clight/src/lib.rs:
crates/clight/src/ast.rs:
crates/clight/src/lex.rs:
crates/clight/src/parse.rs:
crates/clight/src/pretty.rs:
crates/clight/src/sem.rs:
crates/clight/src/typecheck.rs:
crates/clight/src/types.rs:
