/root/repo/target/release/deps/obs-900b1ced49c7a6a8.d: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/record.rs crates/obs/src/summary.rs

/root/repo/target/release/deps/libobs-900b1ced49c7a6a8.rlib: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/record.rs crates/obs/src/summary.rs

/root/repo/target/release/deps/libobs-900b1ced49c7a6a8.rmeta: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/record.rs crates/obs/src/summary.rs

crates/obs/src/lib.rs:
crates/obs/src/json.rs:
crates/obs/src/record.rs:
crates/obs/src/summary.rs:
