/root/repo/target/debug/examples/paper_example-6ffec86f37d6f7ec.d: crates/stackbound/../../examples/paper_example.rs

/root/repo/target/debug/examples/paper_example-6ffec86f37d6f7ec: crates/stackbound/../../examples/paper_example.rs

crates/stackbound/../../examples/paper_example.rs:
