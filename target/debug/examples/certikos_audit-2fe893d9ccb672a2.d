/root/repo/target/debug/examples/certikos_audit-2fe893d9ccb672a2.d: crates/stackbound/../../examples/certikos_audit.rs Cargo.toml

/root/repo/target/debug/examples/libcertikos_audit-2fe893d9ccb672a2.rmeta: crates/stackbound/../../examples/certikos_audit.rs Cargo.toml

crates/stackbound/../../examples/certikos_audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
