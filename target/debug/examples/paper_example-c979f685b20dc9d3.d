/root/repo/target/debug/examples/paper_example-c979f685b20dc9d3.d: crates/stackbound/../../examples/paper_example.rs

/root/repo/target/debug/examples/paper_example-c979f685b20dc9d3: crates/stackbound/../../examples/paper_example.rs

crates/stackbound/../../examples/paper_example.rs:
