/root/repo/target/debug/examples/certikos_audit-7f2b68f63186c97c.d: crates/stackbound/../../examples/certikos_audit.rs

/root/repo/target/debug/examples/certikos_audit-7f2b68f63186c97c: crates/stackbound/../../examples/certikos_audit.rs

crates/stackbound/../../examples/certikos_audit.rs:
