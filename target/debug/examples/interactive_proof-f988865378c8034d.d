/root/repo/target/debug/examples/interactive_proof-f988865378c8034d.d: crates/stackbound/../../examples/interactive_proof.rs

/root/repo/target/debug/examples/interactive_proof-f988865378c8034d: crates/stackbound/../../examples/interactive_proof.rs

crates/stackbound/../../examples/interactive_proof.rs:
