/root/repo/target/debug/examples/interactive_proof-19b6693dc339d542.d: crates/stackbound/../../examples/interactive_proof.rs Cargo.toml

/root/repo/target/debug/examples/libinteractive_proof-19b6693dc339d542.rmeta: crates/stackbound/../../examples/interactive_proof.rs Cargo.toml

crates/stackbound/../../examples/interactive_proof.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
