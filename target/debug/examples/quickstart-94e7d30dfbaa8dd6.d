/root/repo/target/debug/examples/quickstart-94e7d30dfbaa8dd6.d: crates/stackbound/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-94e7d30dfbaa8dd6.rmeta: crates/stackbound/../../examples/quickstart.rs Cargo.toml

crates/stackbound/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
