/root/repo/target/debug/examples/embedded_budget-a87df10897b0c340.d: crates/stackbound/../../examples/embedded_budget.rs

/root/repo/target/debug/examples/embedded_budget-a87df10897b0c340: crates/stackbound/../../examples/embedded_budget.rs

crates/stackbound/../../examples/embedded_budget.rs:
