/root/repo/target/debug/examples/embedded_budget-94d34c388af801c1.d: crates/stackbound/../../examples/embedded_budget.rs Cargo.toml

/root/repo/target/debug/examples/libembedded_budget-94d34c388af801c1.rmeta: crates/stackbound/../../examples/embedded_budget.rs Cargo.toml

crates/stackbound/../../examples/embedded_budget.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
