/root/repo/target/debug/examples/embedded_budget-2ccfdf41bb6c3afe.d: crates/stackbound/../../examples/embedded_budget.rs

/root/repo/target/debug/examples/embedded_budget-2ccfdf41bb6c3afe: crates/stackbound/../../examples/embedded_budget.rs

crates/stackbound/../../examples/embedded_budget.rs:
