/root/repo/target/debug/examples/quickstart-3d68d473314b85d5.d: crates/stackbound/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-3d68d473314b85d5: crates/stackbound/../../examples/quickstart.rs

crates/stackbound/../../examples/quickstart.rs:
