/root/repo/target/debug/examples/interactive_proof-31302daac9ef522a.d: crates/stackbound/../../examples/interactive_proof.rs

/root/repo/target/debug/examples/interactive_proof-31302daac9ef522a: crates/stackbound/../../examples/interactive_proof.rs

crates/stackbound/../../examples/interactive_proof.rs:
