/root/repo/target/debug/examples/certikos_audit-220b8f3f993ad214.d: crates/stackbound/../../examples/certikos_audit.rs

/root/repo/target/debug/examples/certikos_audit-220b8f3f993ad214: crates/stackbound/../../examples/certikos_audit.rs

crates/stackbound/../../examples/certikos_audit.rs:
