/root/repo/target/debug/examples/paper_example-887b57f02175e9df.d: crates/stackbound/../../examples/paper_example.rs Cargo.toml

/root/repo/target/debug/examples/libpaper_example-887b57f02175e9df.rmeta: crates/stackbound/../../examples/paper_example.rs Cargo.toml

crates/stackbound/../../examples/paper_example.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
