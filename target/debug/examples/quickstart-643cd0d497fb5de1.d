/root/repo/target/debug/examples/quickstart-643cd0d497fb5de1.d: crates/stackbound/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-643cd0d497fb5de1: crates/stackbound/../../examples/quickstart.rs

crates/stackbound/../../examples/quickstart.rs:
