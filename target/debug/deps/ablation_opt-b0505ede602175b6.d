/root/repo/target/debug/deps/ablation_opt-b0505ede602175b6.d: crates/bench/src/bin/ablation_opt.rs

/root/repo/target/debug/deps/ablation_opt-b0505ede602175b6: crates/bench/src/bin/ablation_opt.rs

crates/bench/src/bin/ablation_opt.rs:
