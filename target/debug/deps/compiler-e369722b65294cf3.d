/root/repo/target/debug/deps/compiler-e369722b65294cf3.d: crates/compiler/src/lib.rs crates/compiler/src/cminor.rs crates/compiler/src/cminorgen.rs crates/compiler/src/inline.rs crates/compiler/src/mach.rs crates/compiler/src/machgen.rs crates/compiler/src/opt.rs crates/compiler/src/rtl.rs crates/compiler/src/rtlgen.rs crates/compiler/src/asmgen.rs

/root/repo/target/debug/deps/libcompiler-e369722b65294cf3.rlib: crates/compiler/src/lib.rs crates/compiler/src/cminor.rs crates/compiler/src/cminorgen.rs crates/compiler/src/inline.rs crates/compiler/src/mach.rs crates/compiler/src/machgen.rs crates/compiler/src/opt.rs crates/compiler/src/rtl.rs crates/compiler/src/rtlgen.rs crates/compiler/src/asmgen.rs

/root/repo/target/debug/deps/libcompiler-e369722b65294cf3.rmeta: crates/compiler/src/lib.rs crates/compiler/src/cminor.rs crates/compiler/src/cminorgen.rs crates/compiler/src/inline.rs crates/compiler/src/mach.rs crates/compiler/src/machgen.rs crates/compiler/src/opt.rs crates/compiler/src/rtl.rs crates/compiler/src/rtlgen.rs crates/compiler/src/asmgen.rs

crates/compiler/src/lib.rs:
crates/compiler/src/cminor.rs:
crates/compiler/src/cminorgen.rs:
crates/compiler/src/inline.rs:
crates/compiler/src/mach.rs:
crates/compiler/src/machgen.rs:
crates/compiler/src/opt.rs:
crates/compiler/src/rtl.rs:
crates/compiler/src/rtlgen.rs:
crates/compiler/src/asmgen.rs:
