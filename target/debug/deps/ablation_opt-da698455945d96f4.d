/root/repo/target/debug/deps/ablation_opt-da698455945d96f4.d: crates/bench/src/bin/ablation_opt.rs

/root/repo/target/debug/deps/ablation_opt-da698455945d96f4: crates/bench/src/bin/ablation_opt.rs

crates/bench/src/bin/ablation_opt.rs:
