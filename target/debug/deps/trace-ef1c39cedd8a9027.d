/root/repo/target/debug/deps/trace-ef1c39cedd8a9027.d: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/metric.rs crates/trace/src/refinement.rs crates/trace/src/tests.rs

/root/repo/target/debug/deps/trace-ef1c39cedd8a9027: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/metric.rs crates/trace/src/refinement.rs crates/trace/src/tests.rs

crates/trace/src/lib.rs:
crates/trace/src/event.rs:
crates/trace/src/metric.rs:
crates/trace/src/refinement.rs:
crates/trace/src/tests.rs:
