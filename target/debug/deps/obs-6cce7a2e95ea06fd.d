/root/repo/target/debug/deps/obs-6cce7a2e95ea06fd.d: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/record.rs crates/obs/src/summary.rs crates/obs/src/tests.rs Cargo.toml

/root/repo/target/debug/deps/libobs-6cce7a2e95ea06fd.rmeta: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/record.rs crates/obs/src/summary.rs crates/obs/src/tests.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/json.rs:
crates/obs/src/record.rs:
crates/obs/src/summary.rs:
crates/obs/src/tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
