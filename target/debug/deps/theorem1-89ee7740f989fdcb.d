/root/repo/target/debug/deps/theorem1-89ee7740f989fdcb.d: crates/bench/src/bin/theorem1.rs

/root/repo/target/debug/deps/theorem1-89ee7740f989fdcb: crates/bench/src/bin/theorem1.rs

crates/bench/src/bin/theorem1.rs:
