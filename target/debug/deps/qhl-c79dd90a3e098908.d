/root/repo/target/debug/deps/qhl-c79dd90a3e098908.d: crates/qhl/src/lib.rs crates/qhl/src/bound.rs crates/qhl/src/derive.rs crates/qhl/src/logic.rs crates/qhl/src/validate.rs crates/qhl/src/tests.rs Cargo.toml

/root/repo/target/debug/deps/libqhl-c79dd90a3e098908.rmeta: crates/qhl/src/lib.rs crates/qhl/src/bound.rs crates/qhl/src/derive.rs crates/qhl/src/logic.rs crates/qhl/src/validate.rs crates/qhl/src/tests.rs Cargo.toml

crates/qhl/src/lib.rs:
crates/qhl/src/bound.rs:
crates/qhl/src/derive.rs:
crates/qhl/src/logic.rs:
crates/qhl/src/validate.rs:
crates/qhl/src/tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
