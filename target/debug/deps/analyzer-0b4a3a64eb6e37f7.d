/root/repo/target/debug/deps/analyzer-0b4a3a64eb6e37f7.d: crates/analyzer/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libanalyzer-0b4a3a64eb6e37f7.rmeta: crates/analyzer/src/lib.rs Cargo.toml

crates/analyzer/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
