/root/repo/target/debug/deps/analyzer_speed-c64719cb0afef583.d: crates/bench/benches/analyzer_speed.rs Cargo.toml

/root/repo/target/debug/deps/libanalyzer_speed-c64719cb0afef583.rmeta: crates/bench/benches/analyzer_speed.rs Cargo.toml

crates/bench/benches/analyzer_speed.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
