/root/repo/target/debug/deps/trace-662aedec5457803d.d: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/metric.rs crates/trace/src/refinement.rs crates/trace/src/tests.rs

/root/repo/target/debug/deps/trace-662aedec5457803d: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/metric.rs crates/trace/src/refinement.rs crates/trace/src/tests.rs

crates/trace/src/lib.rs:
crates/trace/src/event.rs:
crates/trace/src/metric.rs:
crates/trace/src/refinement.rs:
crates/trace/src/tests.rs:
