/root/repo/target/debug/deps/fig7-bc3a506a0fe8d905.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-bc3a506a0fe8d905: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
