/root/repo/target/debug/deps/accuracy-4f29349b384950e9.d: crates/bench/src/bin/accuracy.rs

/root/repo/target/debug/deps/accuracy-4f29349b384950e9: crates/bench/src/bin/accuracy.rs

crates/bench/src/bin/accuracy.rs:
