/root/repo/target/debug/deps/stackbound-eb9a4e87fac4dd7d.d: crates/stackbound/src/lib.rs

/root/repo/target/debug/deps/libstackbound-eb9a4e87fac4dd7d.rlib: crates/stackbound/src/lib.rs

/root/repo/target/debug/deps/libstackbound-eb9a4e87fac4dd7d.rmeta: crates/stackbound/src/lib.rs

crates/stackbound/src/lib.rs:
