/root/repo/target/debug/deps/ablation_metric-8688587a3f414846.d: crates/bench/src/bin/ablation_metric.rs

/root/repo/target/debug/deps/ablation_metric-8688587a3f414846: crates/bench/src/bin/ablation_metric.rs

crates/bench/src/bin/ablation_metric.rs:
