/root/repo/target/debug/deps/analyzer_speed-626c40dc4fe6f702.d: crates/bench/benches/analyzer_speed.rs

/root/repo/target/debug/deps/analyzer_speed-626c40dc4fe6f702: crates/bench/benches/analyzer_speed.rs

crates/bench/benches/analyzer_speed.rs:
