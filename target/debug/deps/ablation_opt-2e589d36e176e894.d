/root/repo/target/debug/deps/ablation_opt-2e589d36e176e894.d: crates/bench/src/bin/ablation_opt.rs

/root/repo/target/debug/deps/ablation_opt-2e589d36e176e894: crates/bench/src/bin/ablation_opt.rs

crates/bench/src/bin/ablation_opt.rs:
