/root/repo/target/debug/deps/bench-09a35b35d57637c2.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-09a35b35d57637c2.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-09a35b35d57637c2.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
