/root/repo/target/debug/deps/end_to_end-68e6a72cd7196805.d: crates/stackbound/../../tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-68e6a72cd7196805: crates/stackbound/../../tests/end_to_end.rs

crates/stackbound/../../tests/end_to_end.rs:
