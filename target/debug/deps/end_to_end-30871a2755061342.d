/root/repo/target/debug/deps/end_to_end-30871a2755061342.d: crates/stackbound/../../tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-30871a2755061342: crates/stackbound/../../tests/end_to_end.rs

crates/stackbound/../../tests/end_to_end.rs:
