/root/repo/target/debug/deps/stackbound-1cf9a0e97e2b604c.d: crates/stackbound/src/lib.rs

/root/repo/target/debug/deps/stackbound-1cf9a0e97e2b604c: crates/stackbound/src/lib.rs

crates/stackbound/src/lib.rs:
