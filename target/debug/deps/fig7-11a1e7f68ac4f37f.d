/root/repo/target/debug/deps/fig7-11a1e7f68ac4f37f.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-11a1e7f68ac4f37f: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
