/root/repo/target/debug/deps/table2-8f326ab12cdef0a2.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-8f326ab12cdef0a2: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
