/root/repo/target/debug/deps/mem-765f3aa5fb9c6fed.d: crates/mem/src/lib.rs

/root/repo/target/debug/deps/libmem-765f3aa5fb9c6fed.rlib: crates/mem/src/lib.rs

/root/repo/target/debug/deps/libmem-765f3aa5fb9c6fed.rmeta: crates/mem/src/lib.rs

crates/mem/src/lib.rs:
