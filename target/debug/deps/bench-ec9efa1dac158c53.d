/root/repo/target/debug/deps/bench-ec9efa1dac158c53.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-ec9efa1dac158c53.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-ec9efa1dac158c53.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
