/root/repo/target/debug/deps/ablation_inline-82909f70000dc7cf.d: crates/bench/src/bin/ablation_inline.rs

/root/repo/target/debug/deps/ablation_inline-82909f70000dc7cf: crates/bench/src/bin/ablation_inline.rs

crates/bench/src/bin/ablation_inline.rs:
