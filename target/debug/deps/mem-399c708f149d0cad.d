/root/repo/target/debug/deps/mem-399c708f149d0cad.d: crates/mem/src/lib.rs

/root/repo/target/debug/deps/libmem-399c708f149d0cad.rlib: crates/mem/src/lib.rs

/root/repo/target/debug/deps/libmem-399c708f149d0cad.rmeta: crates/mem/src/lib.rs

crates/mem/src/lib.rs:
