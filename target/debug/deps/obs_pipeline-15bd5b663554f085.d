/root/repo/target/debug/deps/obs_pipeline-15bd5b663554f085.d: crates/stackbound/../../tests/obs_pipeline.rs

/root/repo/target/debug/deps/obs_pipeline-15bd5b663554f085: crates/stackbound/../../tests/obs_pipeline.rs

crates/stackbound/../../tests/obs_pipeline.rs:
