/root/repo/target/debug/deps/theorem1-45073978df1f6c54.d: crates/bench/src/bin/theorem1.rs Cargo.toml

/root/repo/target/debug/deps/libtheorem1-45073978df1f6c54.rmeta: crates/bench/src/bin/theorem1.rs Cargo.toml

crates/bench/src/bin/theorem1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
