/root/repo/target/debug/deps/accuracy-de427fbf429b96c7.d: crates/bench/src/bin/accuracy.rs

/root/repo/target/debug/deps/accuracy-de427fbf429b96c7: crates/bench/src/bin/accuracy.rs

crates/bench/src/bin/accuracy.rs:
