/root/repo/target/debug/deps/table1-3e364514c68cabbe.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-3e364514c68cabbe: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
