/root/repo/target/debug/deps/theorem1-049a8a40289dfa2e.d: crates/bench/src/bin/theorem1.rs

/root/repo/target/debug/deps/theorem1-049a8a40289dfa2e: crates/bench/src/bin/theorem1.rs

crates/bench/src/bin/theorem1.rs:
