/root/repo/target/debug/deps/ablation_inline-acd647f73701078f.d: crates/bench/src/bin/ablation_inline.rs

/root/repo/target/debug/deps/ablation_inline-acd647f73701078f: crates/bench/src/bin/ablation_inline.rs

crates/bench/src/bin/ablation_inline.rs:
