/root/repo/target/debug/deps/clight-04ef6e216701a63b.d: crates/clight/src/lib.rs crates/clight/src/ast.rs crates/clight/src/lex.rs crates/clight/src/parse.rs crates/clight/src/pretty.rs crates/clight/src/sem.rs crates/clight/src/typecheck.rs crates/clight/src/types.rs crates/clight/src/tests.rs

/root/repo/target/debug/deps/clight-04ef6e216701a63b: crates/clight/src/lib.rs crates/clight/src/ast.rs crates/clight/src/lex.rs crates/clight/src/parse.rs crates/clight/src/pretty.rs crates/clight/src/sem.rs crates/clight/src/typecheck.rs crates/clight/src/types.rs crates/clight/src/tests.rs

crates/clight/src/lib.rs:
crates/clight/src/ast.rs:
crates/clight/src/lex.rs:
crates/clight/src/parse.rs:
crates/clight/src/pretty.rs:
crates/clight/src/sem.rs:
crates/clight/src/typecheck.rs:
crates/clight/src/types.rs:
crates/clight/src/tests.rs:
