/root/repo/target/debug/deps/ablation_merge-31ae39507532830f.d: crates/bench/src/bin/ablation_merge.rs

/root/repo/target/debug/deps/ablation_merge-31ae39507532830f: crates/bench/src/bin/ablation_merge.rs

crates/bench/src/bin/ablation_merge.rs:
