/root/repo/target/debug/deps/sbound-d91158ce4be8e671.d: crates/stackbound/src/bin/sbound.rs

/root/repo/target/debug/deps/sbound-d91158ce4be8e671: crates/stackbound/src/bin/sbound.rs

crates/stackbound/src/bin/sbound.rs:
