/root/repo/target/debug/deps/theorem1-7c472fa2931d07a8.d: crates/bench/src/bin/theorem1.rs

/root/repo/target/debug/deps/theorem1-7c472fa2931d07a8: crates/bench/src/bin/theorem1.rs

crates/bench/src/bin/theorem1.rs:
