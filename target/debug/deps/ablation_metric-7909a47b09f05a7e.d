/root/repo/target/debug/deps/ablation_metric-7909a47b09f05a7e.d: crates/bench/src/bin/ablation_metric.rs Cargo.toml

/root/repo/target/debug/deps/libablation_metric-7909a47b09f05a7e.rmeta: crates/bench/src/bin/ablation_metric.rs Cargo.toml

crates/bench/src/bin/ablation_metric.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
