/root/repo/target/debug/deps/clight-0b55c971f4b0195f.d: crates/clight/src/lib.rs crates/clight/src/ast.rs crates/clight/src/lex.rs crates/clight/src/parse.rs crates/clight/src/pretty.rs crates/clight/src/sem.rs crates/clight/src/typecheck.rs crates/clight/src/types.rs crates/clight/src/tests.rs Cargo.toml

/root/repo/target/debug/deps/libclight-0b55c971f4b0195f.rmeta: crates/clight/src/lib.rs crates/clight/src/ast.rs crates/clight/src/lex.rs crates/clight/src/parse.rs crates/clight/src/pretty.rs crates/clight/src/sem.rs crates/clight/src/typecheck.rs crates/clight/src/types.rs crates/clight/src/tests.rs Cargo.toml

crates/clight/src/lib.rs:
crates/clight/src/ast.rs:
crates/clight/src/lex.rs:
crates/clight/src/parse.rs:
crates/clight/src/pretty.rs:
crates/clight/src/sem.rs:
crates/clight/src/typecheck.rs:
crates/clight/src/types.rs:
crates/clight/src/tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
