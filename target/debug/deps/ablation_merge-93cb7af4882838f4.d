/root/repo/target/debug/deps/ablation_merge-93cb7af4882838f4.d: crates/bench/src/bin/ablation_merge.rs

/root/repo/target/debug/deps/ablation_merge-93cb7af4882838f4: crates/bench/src/bin/ablation_merge.rs

crates/bench/src/bin/ablation_merge.rs:
