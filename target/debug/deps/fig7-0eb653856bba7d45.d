/root/repo/target/debug/deps/fig7-0eb653856bba7d45.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-0eb653856bba7d45: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
