/root/repo/target/debug/deps/analyzer-485c8ebb8af7bc4f.d: crates/analyzer/src/lib.rs crates/analyzer/src/tests.rs

/root/repo/target/debug/deps/analyzer-485c8ebb8af7bc4f: crates/analyzer/src/lib.rs crates/analyzer/src/tests.rs

crates/analyzer/src/lib.rs:
crates/analyzer/src/tests.rs:
