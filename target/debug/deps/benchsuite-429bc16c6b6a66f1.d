/root/repo/target/debug/deps/benchsuite-429bc16c6b6a66f1.d: crates/benchsuite/src/lib.rs crates/benchsuite/src/extras.rs crates/benchsuite/src/recursive.rs crates/benchsuite/src/sources.rs

/root/repo/target/debug/deps/libbenchsuite-429bc16c6b6a66f1.rlib: crates/benchsuite/src/lib.rs crates/benchsuite/src/extras.rs crates/benchsuite/src/recursive.rs crates/benchsuite/src/sources.rs

/root/repo/target/debug/deps/libbenchsuite-429bc16c6b6a66f1.rmeta: crates/benchsuite/src/lib.rs crates/benchsuite/src/extras.rs crates/benchsuite/src/recursive.rs crates/benchsuite/src/sources.rs

crates/benchsuite/src/lib.rs:
crates/benchsuite/src/extras.rs:
crates/benchsuite/src/recursive.rs:
crates/benchsuite/src/sources.rs:
