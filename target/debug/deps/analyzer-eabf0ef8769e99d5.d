/root/repo/target/debug/deps/analyzer-eabf0ef8769e99d5.d: crates/analyzer/src/lib.rs

/root/repo/target/debug/deps/libanalyzer-eabf0ef8769e99d5.rlib: crates/analyzer/src/lib.rs

/root/repo/target/debug/deps/libanalyzer-eabf0ef8769e99d5.rmeta: crates/analyzer/src/lib.rs

crates/analyzer/src/lib.rs:
