/root/repo/target/debug/deps/stackbound-153dd2274c7b1cf9.d: crates/stackbound/src/lib.rs

/root/repo/target/debug/deps/stackbound-153dd2274c7b1cf9: crates/stackbound/src/lib.rs

crates/stackbound/src/lib.rs:
