/root/repo/target/debug/deps/table1-f7b0b682aa01cfcb.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-f7b0b682aa01cfcb: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
