/root/repo/target/debug/deps/accuracy-2a55eb83d96842da.d: crates/bench/src/bin/accuracy.rs Cargo.toml

/root/repo/target/debug/deps/libaccuracy-2a55eb83d96842da.rmeta: crates/bench/src/bin/accuracy.rs Cargo.toml

crates/bench/src/bin/accuracy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
