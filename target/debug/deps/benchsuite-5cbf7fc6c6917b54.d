/root/repo/target/debug/deps/benchsuite-5cbf7fc6c6917b54.d: crates/benchsuite/src/lib.rs crates/benchsuite/src/extras.rs crates/benchsuite/src/recursive.rs crates/benchsuite/src/sources.rs

/root/repo/target/debug/deps/libbenchsuite-5cbf7fc6c6917b54.rlib: crates/benchsuite/src/lib.rs crates/benchsuite/src/extras.rs crates/benchsuite/src/recursive.rs crates/benchsuite/src/sources.rs

/root/repo/target/debug/deps/libbenchsuite-5cbf7fc6c6917b54.rmeta: crates/benchsuite/src/lib.rs crates/benchsuite/src/extras.rs crates/benchsuite/src/recursive.rs crates/benchsuite/src/sources.rs

crates/benchsuite/src/lib.rs:
crates/benchsuite/src/extras.rs:
crates/benchsuite/src/recursive.rs:
crates/benchsuite/src/sources.rs:
