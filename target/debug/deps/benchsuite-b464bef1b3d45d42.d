/root/repo/target/debug/deps/benchsuite-b464bef1b3d45d42.d: crates/benchsuite/src/lib.rs crates/benchsuite/src/extras.rs crates/benchsuite/src/recursive.rs crates/benchsuite/src/sources.rs crates/benchsuite/src/tests.rs

/root/repo/target/debug/deps/benchsuite-b464bef1b3d45d42: crates/benchsuite/src/lib.rs crates/benchsuite/src/extras.rs crates/benchsuite/src/recursive.rs crates/benchsuite/src/sources.rs crates/benchsuite/src/tests.rs

crates/benchsuite/src/lib.rs:
crates/benchsuite/src/extras.rs:
crates/benchsuite/src/recursive.rs:
crates/benchsuite/src/sources.rs:
crates/benchsuite/src/tests.rs:
