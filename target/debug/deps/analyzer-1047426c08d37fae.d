/root/repo/target/debug/deps/analyzer-1047426c08d37fae.d: crates/analyzer/src/lib.rs crates/analyzer/src/tests.rs Cargo.toml

/root/repo/target/debug/deps/libanalyzer-1047426c08d37fae.rmeta: crates/analyzer/src/lib.rs crates/analyzer/src/tests.rs Cargo.toml

crates/analyzer/src/lib.rs:
crates/analyzer/src/tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
