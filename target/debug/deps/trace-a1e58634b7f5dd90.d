/root/repo/target/debug/deps/trace-a1e58634b7f5dd90.d: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/metric.rs crates/trace/src/refinement.rs crates/trace/src/tests.rs Cargo.toml

/root/repo/target/debug/deps/libtrace-a1e58634b7f5dd90.rmeta: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/metric.rs crates/trace/src/refinement.rs crates/trace/src/tests.rs Cargo.toml

crates/trace/src/lib.rs:
crates/trace/src/event.rs:
crates/trace/src/metric.rs:
crates/trace/src/refinement.rs:
crates/trace/src/tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
