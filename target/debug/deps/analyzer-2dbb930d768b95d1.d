/root/repo/target/debug/deps/analyzer-2dbb930d768b95d1.d: crates/analyzer/src/lib.rs

/root/repo/target/debug/deps/libanalyzer-2dbb930d768b95d1.rlib: crates/analyzer/src/lib.rs

/root/repo/target/debug/deps/libanalyzer-2dbb930d768b95d1.rmeta: crates/analyzer/src/lib.rs

crates/analyzer/src/lib.rs:
