/root/repo/target/debug/deps/qhl-d28ffe273c843d09.d: crates/qhl/src/lib.rs crates/qhl/src/bound.rs crates/qhl/src/derive.rs crates/qhl/src/logic.rs crates/qhl/src/validate.rs Cargo.toml

/root/repo/target/debug/deps/libqhl-d28ffe273c843d09.rmeta: crates/qhl/src/lib.rs crates/qhl/src/bound.rs crates/qhl/src/derive.rs crates/qhl/src/logic.rs crates/qhl/src/validate.rs Cargo.toml

crates/qhl/src/lib.rs:
crates/qhl/src/bound.rs:
crates/qhl/src/derive.rs:
crates/qhl/src/logic.rs:
crates/qhl/src/validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
