/root/repo/target/debug/deps/obs_overhead-b54e97bc11353d10.d: crates/bench/benches/obs_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libobs_overhead-b54e97bc11353d10.rmeta: crates/bench/benches/obs_overhead.rs Cargo.toml

crates/bench/benches/obs_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
