/root/repo/target/debug/deps/trace-5137772bf2c5bd35.d: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/metric.rs crates/trace/src/refinement.rs

/root/repo/target/debug/deps/libtrace-5137772bf2c5bd35.rlib: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/metric.rs crates/trace/src/refinement.rs

/root/repo/target/debug/deps/libtrace-5137772bf2c5bd35.rmeta: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/metric.rs crates/trace/src/refinement.rs

crates/trace/src/lib.rs:
crates/trace/src/event.rs:
crates/trace/src/metric.rs:
crates/trace/src/refinement.rs:
