/root/repo/target/debug/deps/table1-f8593f99423e2470.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-f8593f99423e2470: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
