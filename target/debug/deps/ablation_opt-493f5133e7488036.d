/root/repo/target/debug/deps/ablation_opt-493f5133e7488036.d: crates/bench/src/bin/ablation_opt.rs

/root/repo/target/debug/deps/ablation_opt-493f5133e7488036: crates/bench/src/bin/ablation_opt.rs

crates/bench/src/bin/ablation_opt.rs:
