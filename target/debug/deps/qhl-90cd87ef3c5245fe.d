/root/repo/target/debug/deps/qhl-90cd87ef3c5245fe.d: crates/qhl/src/lib.rs crates/qhl/src/bound.rs crates/qhl/src/derive.rs crates/qhl/src/logic.rs crates/qhl/src/validate.rs

/root/repo/target/debug/deps/libqhl-90cd87ef3c5245fe.rlib: crates/qhl/src/lib.rs crates/qhl/src/bound.rs crates/qhl/src/derive.rs crates/qhl/src/logic.rs crates/qhl/src/validate.rs

/root/repo/target/debug/deps/libqhl-90cd87ef3c5245fe.rmeta: crates/qhl/src/lib.rs crates/qhl/src/bound.rs crates/qhl/src/derive.rs crates/qhl/src/logic.rs crates/qhl/src/validate.rs

crates/qhl/src/lib.rs:
crates/qhl/src/bound.rs:
crates/qhl/src/derive.rs:
crates/qhl/src/logic.rs:
crates/qhl/src/validate.rs:
