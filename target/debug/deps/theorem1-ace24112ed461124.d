/root/repo/target/debug/deps/theorem1-ace24112ed461124.d: crates/bench/src/bin/theorem1.rs

/root/repo/target/debug/deps/theorem1-ace24112ed461124: crates/bench/src/bin/theorem1.rs

crates/bench/src/bin/theorem1.rs:
