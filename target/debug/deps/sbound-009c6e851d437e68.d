/root/repo/target/debug/deps/sbound-009c6e851d437e68.d: crates/stackbound/src/bin/sbound.rs

/root/repo/target/debug/deps/sbound-009c6e851d437e68: crates/stackbound/src/bin/sbound.rs

crates/stackbound/src/bin/sbound.rs:
