/root/repo/target/debug/deps/ablation_merge-2bfb16f64a8f41a9.d: crates/bench/src/bin/ablation_merge.rs

/root/repo/target/debug/deps/ablation_merge-2bfb16f64a8f41a9: crates/bench/src/bin/ablation_merge.rs

crates/bench/src/bin/ablation_merge.rs:
