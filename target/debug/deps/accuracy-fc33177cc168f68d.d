/root/repo/target/debug/deps/accuracy-fc33177cc168f68d.d: crates/bench/src/bin/accuracy.rs

/root/repo/target/debug/deps/accuracy-fc33177cc168f68d: crates/bench/src/bin/accuracy.rs

crates/bench/src/bin/accuracy.rs:
