/root/repo/target/debug/deps/asm-30a84ef29dbb6495.d: crates/asm/src/lib.rs crates/asm/src/machine.rs crates/asm/src/monitor.rs crates/asm/src/profile.rs crates/asm/src/tests.rs Cargo.toml

/root/repo/target/debug/deps/libasm-30a84ef29dbb6495.rmeta: crates/asm/src/lib.rs crates/asm/src/machine.rs crates/asm/src/monitor.rs crates/asm/src/profile.rs crates/asm/src/tests.rs Cargo.toml

crates/asm/src/lib.rs:
crates/asm/src/machine.rs:
crates/asm/src/monitor.rs:
crates/asm/src/profile.rs:
crates/asm/src/tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
