/root/repo/target/debug/deps/pipeline-b151921d1f35506e.d: crates/bench/benches/pipeline.rs

/root/repo/target/debug/deps/pipeline-b151921d1f35506e: crates/bench/benches/pipeline.rs

crates/bench/benches/pipeline.rs:
