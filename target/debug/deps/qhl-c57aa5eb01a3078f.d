/root/repo/target/debug/deps/qhl-c57aa5eb01a3078f.d: crates/qhl/src/lib.rs crates/qhl/src/bound.rs crates/qhl/src/derive.rs crates/qhl/src/logic.rs crates/qhl/src/validate.rs crates/qhl/src/tests.rs

/root/repo/target/debug/deps/qhl-c57aa5eb01a3078f: crates/qhl/src/lib.rs crates/qhl/src/bound.rs crates/qhl/src/derive.rs crates/qhl/src/logic.rs crates/qhl/src/validate.rs crates/qhl/src/tests.rs

crates/qhl/src/lib.rs:
crates/qhl/src/bound.rs:
crates/qhl/src/derive.rs:
crates/qhl/src/logic.rs:
crates/qhl/src/validate.rs:
crates/qhl/src/tests.rs:
