/root/repo/target/debug/deps/machine-def7dce5f594977e.d: crates/bench/benches/machine.rs

/root/repo/target/debug/deps/machine-def7dce5f594977e: crates/bench/benches/machine.rs

crates/bench/benches/machine.rs:
