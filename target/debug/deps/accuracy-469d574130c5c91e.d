/root/repo/target/debug/deps/accuracy-469d574130c5c91e.d: crates/bench/src/bin/accuracy.rs

/root/repo/target/debug/deps/accuracy-469d574130c5c91e: crates/bench/src/bin/accuracy.rs

crates/bench/src/bin/accuracy.rs:
