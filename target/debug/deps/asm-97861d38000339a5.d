/root/repo/target/debug/deps/asm-97861d38000339a5.d: crates/asm/src/lib.rs crates/asm/src/machine.rs crates/asm/src/monitor.rs crates/asm/src/tests.rs

/root/repo/target/debug/deps/asm-97861d38000339a5: crates/asm/src/lib.rs crates/asm/src/machine.rs crates/asm/src/monitor.rs crates/asm/src/tests.rs

crates/asm/src/lib.rs:
crates/asm/src/machine.rs:
crates/asm/src/monitor.rs:
crates/asm/src/tests.rs:
