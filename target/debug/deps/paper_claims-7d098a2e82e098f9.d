/root/repo/target/debug/deps/paper_claims-7d098a2e82e098f9.d: crates/stackbound/../../tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-7d098a2e82e098f9: crates/stackbound/../../tests/paper_claims.rs

crates/stackbound/../../tests/paper_claims.rs:
