/root/repo/target/debug/deps/clight-f5436f2210c3da62.d: crates/clight/src/lib.rs crates/clight/src/ast.rs crates/clight/src/lex.rs crates/clight/src/parse.rs crates/clight/src/pretty.rs crates/clight/src/sem.rs crates/clight/src/typecheck.rs crates/clight/src/types.rs

/root/repo/target/debug/deps/libclight-f5436f2210c3da62.rlib: crates/clight/src/lib.rs crates/clight/src/ast.rs crates/clight/src/lex.rs crates/clight/src/parse.rs crates/clight/src/pretty.rs crates/clight/src/sem.rs crates/clight/src/typecheck.rs crates/clight/src/types.rs

/root/repo/target/debug/deps/libclight-f5436f2210c3da62.rmeta: crates/clight/src/lib.rs crates/clight/src/ast.rs crates/clight/src/lex.rs crates/clight/src/parse.rs crates/clight/src/pretty.rs crates/clight/src/sem.rs crates/clight/src/typecheck.rs crates/clight/src/types.rs

crates/clight/src/lib.rs:
crates/clight/src/ast.rs:
crates/clight/src/lex.rs:
crates/clight/src/parse.rs:
crates/clight/src/pretty.rs:
crates/clight/src/sem.rs:
crates/clight/src/typecheck.rs:
crates/clight/src/types.rs:
