/root/repo/target/debug/deps/mem-68534309874a2efa.d: crates/mem/src/lib.rs

/root/repo/target/debug/deps/mem-68534309874a2efa: crates/mem/src/lib.rs

crates/mem/src/lib.rs:
