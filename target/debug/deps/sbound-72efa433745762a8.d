/root/repo/target/debug/deps/sbound-72efa433745762a8.d: crates/stackbound/src/bin/sbound.rs Cargo.toml

/root/repo/target/debug/deps/libsbound-72efa433745762a8.rmeta: crates/stackbound/src/bin/sbound.rs Cargo.toml

crates/stackbound/src/bin/sbound.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
