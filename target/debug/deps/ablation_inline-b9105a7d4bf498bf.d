/root/repo/target/debug/deps/ablation_inline-b9105a7d4bf498bf.d: crates/bench/src/bin/ablation_inline.rs

/root/repo/target/debug/deps/ablation_inline-b9105a7d4bf498bf: crates/bench/src/bin/ablation_inline.rs

crates/bench/src/bin/ablation_inline.rs:
