/root/repo/target/debug/deps/accuracy-a4ff2fe194200b92.d: crates/bench/src/bin/accuracy.rs

/root/repo/target/debug/deps/accuracy-a4ff2fe194200b92: crates/bench/src/bin/accuracy.rs

crates/bench/src/bin/accuracy.rs:
