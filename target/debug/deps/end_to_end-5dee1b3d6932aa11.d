/root/repo/target/debug/deps/end_to_end-5dee1b3d6932aa11.d: crates/stackbound/../../tests/end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end-5dee1b3d6932aa11.rmeta: crates/stackbound/../../tests/end_to_end.rs Cargo.toml

crates/stackbound/../../tests/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
