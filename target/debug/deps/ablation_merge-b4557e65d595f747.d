/root/repo/target/debug/deps/ablation_merge-b4557e65d595f747.d: crates/bench/src/bin/ablation_merge.rs Cargo.toml

/root/repo/target/debug/deps/libablation_merge-b4557e65d595f747.rmeta: crates/bench/src/bin/ablation_merge.rs Cargo.toml

crates/bench/src/bin/ablation_merge.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
