/root/repo/target/debug/deps/analyzer-ddc7f8e9d7646d92.d: crates/analyzer/src/lib.rs crates/analyzer/src/tests.rs

/root/repo/target/debug/deps/analyzer-ddc7f8e9d7646d92: crates/analyzer/src/lib.rs crates/analyzer/src/tests.rs

crates/analyzer/src/lib.rs:
crates/analyzer/src/tests.rs:
