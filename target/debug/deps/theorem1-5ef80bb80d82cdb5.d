/root/repo/target/debug/deps/theorem1-5ef80bb80d82cdb5.d: crates/bench/src/bin/theorem1.rs

/root/repo/target/debug/deps/theorem1-5ef80bb80d82cdb5: crates/bench/src/bin/theorem1.rs

crates/bench/src/bin/theorem1.rs:
