/root/repo/target/debug/deps/ablation_inline-2dbc7aa799ace33d.d: crates/bench/src/bin/ablation_inline.rs

/root/repo/target/debug/deps/ablation_inline-2dbc7aa799ace33d: crates/bench/src/bin/ablation_inline.rs

crates/bench/src/bin/ablation_inline.rs:
