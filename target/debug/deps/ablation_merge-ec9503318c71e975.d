/root/repo/target/debug/deps/ablation_merge-ec9503318c71e975.d: crates/bench/src/bin/ablation_merge.rs

/root/repo/target/debug/deps/ablation_merge-ec9503318c71e975: crates/bench/src/bin/ablation_merge.rs

crates/bench/src/bin/ablation_merge.rs:
