/root/repo/target/debug/deps/ablation_inline-a8ac00990dd48cd1.d: crates/bench/src/bin/ablation_inline.rs

/root/repo/target/debug/deps/ablation_inline-a8ac00990dd48cd1: crates/bench/src/bin/ablation_inline.rs

crates/bench/src/bin/ablation_inline.rs:
