/root/repo/target/debug/deps/sbound-645e5e8f9038ae97.d: crates/stackbound/src/bin/sbound.rs Cargo.toml

/root/repo/target/debug/deps/libsbound-645e5e8f9038ae97.rmeta: crates/stackbound/src/bin/sbound.rs Cargo.toml

crates/stackbound/src/bin/sbound.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
