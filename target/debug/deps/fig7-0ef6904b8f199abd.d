/root/repo/target/debug/deps/fig7-0ef6904b8f199abd.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-0ef6904b8f199abd: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
