/root/repo/target/debug/deps/table1-e5e3d85c69882c9a.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-e5e3d85c69882c9a: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
