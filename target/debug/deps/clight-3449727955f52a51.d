/root/repo/target/debug/deps/clight-3449727955f52a51.d: crates/clight/src/lib.rs crates/clight/src/ast.rs crates/clight/src/lex.rs crates/clight/src/parse.rs crates/clight/src/pretty.rs crates/clight/src/sem.rs crates/clight/src/typecheck.rs crates/clight/src/types.rs

/root/repo/target/debug/deps/libclight-3449727955f52a51.rlib: crates/clight/src/lib.rs crates/clight/src/ast.rs crates/clight/src/lex.rs crates/clight/src/parse.rs crates/clight/src/pretty.rs crates/clight/src/sem.rs crates/clight/src/typecheck.rs crates/clight/src/types.rs

/root/repo/target/debug/deps/libclight-3449727955f52a51.rmeta: crates/clight/src/lib.rs crates/clight/src/ast.rs crates/clight/src/lex.rs crates/clight/src/parse.rs crates/clight/src/pretty.rs crates/clight/src/sem.rs crates/clight/src/typecheck.rs crates/clight/src/types.rs

crates/clight/src/lib.rs:
crates/clight/src/ast.rs:
crates/clight/src/lex.rs:
crates/clight/src/parse.rs:
crates/clight/src/pretty.rs:
crates/clight/src/sem.rs:
crates/clight/src/typecheck.rs:
crates/clight/src/types.rs:
