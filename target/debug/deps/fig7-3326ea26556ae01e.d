/root/repo/target/debug/deps/fig7-3326ea26556ae01e.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-3326ea26556ae01e: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
