/root/repo/target/debug/deps/compiler-47ffbafa44dda678.d: crates/compiler/src/lib.rs crates/compiler/src/cminor.rs crates/compiler/src/cminorgen.rs crates/compiler/src/inline.rs crates/compiler/src/mach.rs crates/compiler/src/machgen.rs crates/compiler/src/opt.rs crates/compiler/src/rtl.rs crates/compiler/src/rtlgen.rs crates/compiler/src/asmgen.rs crates/compiler/src/tests.rs

/root/repo/target/debug/deps/compiler-47ffbafa44dda678: crates/compiler/src/lib.rs crates/compiler/src/cminor.rs crates/compiler/src/cminorgen.rs crates/compiler/src/inline.rs crates/compiler/src/mach.rs crates/compiler/src/machgen.rs crates/compiler/src/opt.rs crates/compiler/src/rtl.rs crates/compiler/src/rtlgen.rs crates/compiler/src/asmgen.rs crates/compiler/src/tests.rs

crates/compiler/src/lib.rs:
crates/compiler/src/cminor.rs:
crates/compiler/src/cminorgen.rs:
crates/compiler/src/inline.rs:
crates/compiler/src/mach.rs:
crates/compiler/src/machgen.rs:
crates/compiler/src/opt.rs:
crates/compiler/src/rtl.rs:
crates/compiler/src/rtlgen.rs:
crates/compiler/src/asmgen.rs:
crates/compiler/src/tests.rs:
