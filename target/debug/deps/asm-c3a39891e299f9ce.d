/root/repo/target/debug/deps/asm-c3a39891e299f9ce.d: crates/asm/src/lib.rs crates/asm/src/machine.rs crates/asm/src/monitor.rs crates/asm/src/profile.rs crates/asm/src/tests.rs

/root/repo/target/debug/deps/asm-c3a39891e299f9ce: crates/asm/src/lib.rs crates/asm/src/machine.rs crates/asm/src/monitor.rs crates/asm/src/profile.rs crates/asm/src/tests.rs

crates/asm/src/lib.rs:
crates/asm/src/machine.rs:
crates/asm/src/monitor.rs:
crates/asm/src/profile.rs:
crates/asm/src/tests.rs:
