/root/repo/target/debug/deps/differential-7c1c121df884f4cc.d: crates/stackbound/../../tests/differential.rs

/root/repo/target/debug/deps/differential-7c1c121df884f4cc: crates/stackbound/../../tests/differential.rs

crates/stackbound/../../tests/differential.rs:
