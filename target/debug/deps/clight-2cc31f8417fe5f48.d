/root/repo/target/debug/deps/clight-2cc31f8417fe5f48.d: crates/clight/src/lib.rs crates/clight/src/ast.rs crates/clight/src/lex.rs crates/clight/src/parse.rs crates/clight/src/pretty.rs crates/clight/src/sem.rs crates/clight/src/typecheck.rs crates/clight/src/types.rs crates/clight/src/tests.rs

/root/repo/target/debug/deps/clight-2cc31f8417fe5f48: crates/clight/src/lib.rs crates/clight/src/ast.rs crates/clight/src/lex.rs crates/clight/src/parse.rs crates/clight/src/pretty.rs crates/clight/src/sem.rs crates/clight/src/typecheck.rs crates/clight/src/types.rs crates/clight/src/tests.rs

crates/clight/src/lib.rs:
crates/clight/src/ast.rs:
crates/clight/src/lex.rs:
crates/clight/src/parse.rs:
crates/clight/src/pretty.rs:
crates/clight/src/sem.rs:
crates/clight/src/typecheck.rs:
crates/clight/src/types.rs:
crates/clight/src/tests.rs:
