/root/repo/target/debug/deps/bench-5d500c21ad3830ed.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/bench-5d500c21ad3830ed: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
