/root/repo/target/debug/deps/table2-b6ec4762d358a9e7.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-b6ec4762d358a9e7: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
