/root/repo/target/debug/deps/ablation_merge-a809d1b3e8186458.d: crates/bench/src/bin/ablation_merge.rs Cargo.toml

/root/repo/target/debug/deps/libablation_merge-a809d1b3e8186458.rmeta: crates/bench/src/bin/ablation_merge.rs Cargo.toml

crates/bench/src/bin/ablation_merge.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
