/root/repo/target/debug/deps/mem-7b86e0e7120c2fe8.d: crates/mem/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmem-7b86e0e7120c2fe8.rmeta: crates/mem/src/lib.rs Cargo.toml

crates/mem/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
