/root/repo/target/debug/deps/ablation_metric-61fc20f906012ddd.d: crates/bench/src/bin/ablation_metric.rs

/root/repo/target/debug/deps/ablation_metric-61fc20f906012ddd: crates/bench/src/bin/ablation_metric.rs

crates/bench/src/bin/ablation_metric.rs:
