/root/repo/target/debug/deps/stackbound-f5e71ac30ba09bed.d: crates/stackbound/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libstackbound-f5e71ac30ba09bed.rmeta: crates/stackbound/src/lib.rs Cargo.toml

crates/stackbound/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
