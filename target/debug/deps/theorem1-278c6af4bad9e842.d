/root/repo/target/debug/deps/theorem1-278c6af4bad9e842.d: crates/bench/src/bin/theorem1.rs

/root/repo/target/debug/deps/theorem1-278c6af4bad9e842: crates/bench/src/bin/theorem1.rs

crates/bench/src/bin/theorem1.rs:
