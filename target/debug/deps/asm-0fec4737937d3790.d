/root/repo/target/debug/deps/asm-0fec4737937d3790.d: crates/asm/src/lib.rs crates/asm/src/machine.rs crates/asm/src/monitor.rs

/root/repo/target/debug/deps/libasm-0fec4737937d3790.rlib: crates/asm/src/lib.rs crates/asm/src/machine.rs crates/asm/src/monitor.rs

/root/repo/target/debug/deps/libasm-0fec4737937d3790.rmeta: crates/asm/src/lib.rs crates/asm/src/machine.rs crates/asm/src/monitor.rs

crates/asm/src/lib.rs:
crates/asm/src/machine.rs:
crates/asm/src/monitor.rs:
