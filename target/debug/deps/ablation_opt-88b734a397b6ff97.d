/root/repo/target/debug/deps/ablation_opt-88b734a397b6ff97.d: crates/bench/src/bin/ablation_opt.rs

/root/repo/target/debug/deps/ablation_opt-88b734a397b6ff97: crates/bench/src/bin/ablation_opt.rs

crates/bench/src/bin/ablation_opt.rs:
