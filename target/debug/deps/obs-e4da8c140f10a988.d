/root/repo/target/debug/deps/obs-e4da8c140f10a988.d: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/record.rs crates/obs/src/summary.rs Cargo.toml

/root/repo/target/debug/deps/libobs-e4da8c140f10a988.rmeta: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/record.rs crates/obs/src/summary.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/json.rs:
crates/obs/src/record.rs:
crates/obs/src/summary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
