/root/repo/target/debug/deps/compiler-a0e79cd0a0e198e5.d: crates/compiler/src/lib.rs crates/compiler/src/cminor.rs crates/compiler/src/cminorgen.rs crates/compiler/src/inline.rs crates/compiler/src/mach.rs crates/compiler/src/machgen.rs crates/compiler/src/opt.rs crates/compiler/src/rtl.rs crates/compiler/src/rtlgen.rs crates/compiler/src/asmgen.rs

/root/repo/target/debug/deps/libcompiler-a0e79cd0a0e198e5.rlib: crates/compiler/src/lib.rs crates/compiler/src/cminor.rs crates/compiler/src/cminorgen.rs crates/compiler/src/inline.rs crates/compiler/src/mach.rs crates/compiler/src/machgen.rs crates/compiler/src/opt.rs crates/compiler/src/rtl.rs crates/compiler/src/rtlgen.rs crates/compiler/src/asmgen.rs

/root/repo/target/debug/deps/libcompiler-a0e79cd0a0e198e5.rmeta: crates/compiler/src/lib.rs crates/compiler/src/cminor.rs crates/compiler/src/cminorgen.rs crates/compiler/src/inline.rs crates/compiler/src/mach.rs crates/compiler/src/machgen.rs crates/compiler/src/opt.rs crates/compiler/src/rtl.rs crates/compiler/src/rtlgen.rs crates/compiler/src/asmgen.rs

crates/compiler/src/lib.rs:
crates/compiler/src/cminor.rs:
crates/compiler/src/cminorgen.rs:
crates/compiler/src/inline.rs:
crates/compiler/src/mach.rs:
crates/compiler/src/machgen.rs:
crates/compiler/src/opt.rs:
crates/compiler/src/rtl.rs:
crates/compiler/src/rtlgen.rs:
crates/compiler/src/asmgen.rs:
