/root/repo/target/debug/deps/bench-edbff9a01ac96b23.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-edbff9a01ac96b23.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-edbff9a01ac96b23.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
