/root/repo/target/debug/deps/sbound-aed1bd59702b6eed.d: crates/stackbound/src/bin/sbound.rs

/root/repo/target/debug/deps/sbound-aed1bd59702b6eed: crates/stackbound/src/bin/sbound.rs

crates/stackbound/src/bin/sbound.rs:
