/root/repo/target/debug/deps/differential-2d7031c9ed094ff2.d: crates/stackbound/../../tests/differential.rs

/root/repo/target/debug/deps/differential-2d7031c9ed094ff2: crates/stackbound/../../tests/differential.rs

crates/stackbound/../../tests/differential.rs:
