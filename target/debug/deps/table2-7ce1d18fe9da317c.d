/root/repo/target/debug/deps/table2-7ce1d18fe9da317c.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-7ce1d18fe9da317c: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
