/root/repo/target/debug/deps/obs-e95b1bf5f32106a1.d: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/record.rs crates/obs/src/summary.rs crates/obs/src/tests.rs

/root/repo/target/debug/deps/obs-e95b1bf5f32106a1: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/record.rs crates/obs/src/summary.rs crates/obs/src/tests.rs

crates/obs/src/lib.rs:
crates/obs/src/json.rs:
crates/obs/src/record.rs:
crates/obs/src/summary.rs:
crates/obs/src/tests.rs:
