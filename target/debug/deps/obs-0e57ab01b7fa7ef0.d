/root/repo/target/debug/deps/obs-0e57ab01b7fa7ef0.d: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/record.rs crates/obs/src/summary.rs

/root/repo/target/debug/deps/libobs-0e57ab01b7fa7ef0.rlib: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/record.rs crates/obs/src/summary.rs

/root/repo/target/debug/deps/libobs-0e57ab01b7fa7ef0.rmeta: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/record.rs crates/obs/src/summary.rs

crates/obs/src/lib.rs:
crates/obs/src/json.rs:
crates/obs/src/record.rs:
crates/obs/src/summary.rs:
