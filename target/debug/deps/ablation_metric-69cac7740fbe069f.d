/root/repo/target/debug/deps/ablation_metric-69cac7740fbe069f.d: crates/bench/src/bin/ablation_metric.rs

/root/repo/target/debug/deps/ablation_metric-69cac7740fbe069f: crates/bench/src/bin/ablation_metric.rs

crates/bench/src/bin/ablation_metric.rs:
