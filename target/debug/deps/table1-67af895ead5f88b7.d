/root/repo/target/debug/deps/table1-67af895ead5f88b7.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-67af895ead5f88b7: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
