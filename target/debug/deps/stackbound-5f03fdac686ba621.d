/root/repo/target/debug/deps/stackbound-5f03fdac686ba621.d: crates/stackbound/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libstackbound-5f03fdac686ba621.rmeta: crates/stackbound/src/lib.rs Cargo.toml

crates/stackbound/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
