/root/repo/target/debug/deps/ablation_inline-9e9b44579f270765.d: crates/bench/src/bin/ablation_inline.rs Cargo.toml

/root/repo/target/debug/deps/libablation_inline-9e9b44579f270765.rmeta: crates/bench/src/bin/ablation_inline.rs Cargo.toml

crates/bench/src/bin/ablation_inline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
