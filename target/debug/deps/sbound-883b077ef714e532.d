/root/repo/target/debug/deps/sbound-883b077ef714e532.d: crates/stackbound/src/bin/sbound.rs

/root/repo/target/debug/deps/sbound-883b077ef714e532: crates/stackbound/src/bin/sbound.rs

crates/stackbound/src/bin/sbound.rs:
