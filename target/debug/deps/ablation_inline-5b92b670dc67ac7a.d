/root/repo/target/debug/deps/ablation_inline-5b92b670dc67ac7a.d: crates/bench/src/bin/ablation_inline.rs

/root/repo/target/debug/deps/ablation_inline-5b92b670dc67ac7a: crates/bench/src/bin/ablation_inline.rs

crates/bench/src/bin/ablation_inline.rs:
