/root/repo/target/debug/deps/trace-f9185ff025218c9d.d: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/metric.rs crates/trace/src/refinement.rs

/root/repo/target/debug/deps/libtrace-f9185ff025218c9d.rlib: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/metric.rs crates/trace/src/refinement.rs

/root/repo/target/debug/deps/libtrace-f9185ff025218c9d.rmeta: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/metric.rs crates/trace/src/refinement.rs

crates/trace/src/lib.rs:
crates/trace/src/event.rs:
crates/trace/src/metric.rs:
crates/trace/src/refinement.rs:
