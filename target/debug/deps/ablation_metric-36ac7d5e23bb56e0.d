/root/repo/target/debug/deps/ablation_metric-36ac7d5e23bb56e0.d: crates/bench/src/bin/ablation_metric.rs Cargo.toml

/root/repo/target/debug/deps/libablation_metric-36ac7d5e23bb56e0.rmeta: crates/bench/src/bin/ablation_metric.rs Cargo.toml

crates/bench/src/bin/ablation_metric.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
