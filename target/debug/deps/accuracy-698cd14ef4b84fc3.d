/root/repo/target/debug/deps/accuracy-698cd14ef4b84fc3.d: crates/bench/src/bin/accuracy.rs

/root/repo/target/debug/deps/accuracy-698cd14ef4b84fc3: crates/bench/src/bin/accuracy.rs

crates/bench/src/bin/accuracy.rs:
