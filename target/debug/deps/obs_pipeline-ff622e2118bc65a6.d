/root/repo/target/debug/deps/obs_pipeline-ff622e2118bc65a6.d: crates/stackbound/../../tests/obs_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libobs_pipeline-ff622e2118bc65a6.rmeta: crates/stackbound/../../tests/obs_pipeline.rs Cargo.toml

crates/stackbound/../../tests/obs_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
