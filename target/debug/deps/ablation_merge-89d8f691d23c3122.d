/root/repo/target/debug/deps/ablation_merge-89d8f691d23c3122.d: crates/bench/src/bin/ablation_merge.rs

/root/repo/target/debug/deps/ablation_merge-89d8f691d23c3122: crates/bench/src/bin/ablation_merge.rs

crates/bench/src/bin/ablation_merge.rs:
