/root/repo/target/debug/deps/benchsuite-d48bfb898c2855ed.d: crates/benchsuite/src/lib.rs crates/benchsuite/src/extras.rs crates/benchsuite/src/recursive.rs crates/benchsuite/src/sources.rs crates/benchsuite/src/tests.rs Cargo.toml

/root/repo/target/debug/deps/libbenchsuite-d48bfb898c2855ed.rmeta: crates/benchsuite/src/lib.rs crates/benchsuite/src/extras.rs crates/benchsuite/src/recursive.rs crates/benchsuite/src/sources.rs crates/benchsuite/src/tests.rs Cargo.toml

crates/benchsuite/src/lib.rs:
crates/benchsuite/src/extras.rs:
crates/benchsuite/src/recursive.rs:
crates/benchsuite/src/sources.rs:
crates/benchsuite/src/tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
