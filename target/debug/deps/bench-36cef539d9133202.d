/root/repo/target/debug/deps/bench-36cef539d9133202.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/bench-36cef539d9133202: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
