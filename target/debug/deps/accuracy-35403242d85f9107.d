/root/repo/target/debug/deps/accuracy-35403242d85f9107.d: crates/bench/src/bin/accuracy.rs Cargo.toml

/root/repo/target/debug/deps/libaccuracy-35403242d85f9107.rmeta: crates/bench/src/bin/accuracy.rs Cargo.toml

crates/bench/src/bin/accuracy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
