/root/repo/target/debug/deps/mem-b5be08fab8681fd7.d: crates/mem/src/lib.rs

/root/repo/target/debug/deps/mem-b5be08fab8681fd7: crates/mem/src/lib.rs

crates/mem/src/lib.rs:
