/root/repo/target/debug/deps/benchsuite-446167f05e750e57.d: crates/benchsuite/src/lib.rs crates/benchsuite/src/extras.rs crates/benchsuite/src/recursive.rs crates/benchsuite/src/sources.rs crates/benchsuite/src/tests.rs

/root/repo/target/debug/deps/benchsuite-446167f05e750e57: crates/benchsuite/src/lib.rs crates/benchsuite/src/extras.rs crates/benchsuite/src/recursive.rs crates/benchsuite/src/sources.rs crates/benchsuite/src/tests.rs

crates/benchsuite/src/lib.rs:
crates/benchsuite/src/extras.rs:
crates/benchsuite/src/recursive.rs:
crates/benchsuite/src/sources.rs:
crates/benchsuite/src/tests.rs:
