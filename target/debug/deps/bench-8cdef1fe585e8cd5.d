/root/repo/target/debug/deps/bench-8cdef1fe585e8cd5.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbench-8cdef1fe585e8cd5.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
