/root/repo/target/debug/deps/stackbound-43f30b46c580921e.d: crates/stackbound/src/lib.rs

/root/repo/target/debug/deps/libstackbound-43f30b46c580921e.rlib: crates/stackbound/src/lib.rs

/root/repo/target/debug/deps/libstackbound-43f30b46c580921e.rmeta: crates/stackbound/src/lib.rs

crates/stackbound/src/lib.rs:
