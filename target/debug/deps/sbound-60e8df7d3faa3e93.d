/root/repo/target/debug/deps/sbound-60e8df7d3faa3e93.d: crates/stackbound/src/bin/sbound.rs

/root/repo/target/debug/deps/sbound-60e8df7d3faa3e93: crates/stackbound/src/bin/sbound.rs

crates/stackbound/src/bin/sbound.rs:
