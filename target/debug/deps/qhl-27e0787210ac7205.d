/root/repo/target/debug/deps/qhl-27e0787210ac7205.d: crates/qhl/src/lib.rs crates/qhl/src/bound.rs crates/qhl/src/derive.rs crates/qhl/src/logic.rs crates/qhl/src/validate.rs

/root/repo/target/debug/deps/libqhl-27e0787210ac7205.rlib: crates/qhl/src/lib.rs crates/qhl/src/bound.rs crates/qhl/src/derive.rs crates/qhl/src/logic.rs crates/qhl/src/validate.rs

/root/repo/target/debug/deps/libqhl-27e0787210ac7205.rmeta: crates/qhl/src/lib.rs crates/qhl/src/bound.rs crates/qhl/src/derive.rs crates/qhl/src/logic.rs crates/qhl/src/validate.rs

crates/qhl/src/lib.rs:
crates/qhl/src/bound.rs:
crates/qhl/src/derive.rs:
crates/qhl/src/logic.rs:
crates/qhl/src/validate.rs:
