/root/repo/target/debug/deps/bench-c8931b3fdf08b270.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbench-c8931b3fdf08b270.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
