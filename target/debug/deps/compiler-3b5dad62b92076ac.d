/root/repo/target/debug/deps/compiler-3b5dad62b92076ac.d: crates/compiler/src/lib.rs crates/compiler/src/cminor.rs crates/compiler/src/cminorgen.rs crates/compiler/src/inline.rs crates/compiler/src/mach.rs crates/compiler/src/machgen.rs crates/compiler/src/opt.rs crates/compiler/src/rtl.rs crates/compiler/src/rtlgen.rs crates/compiler/src/asmgen.rs Cargo.toml

/root/repo/target/debug/deps/libcompiler-3b5dad62b92076ac.rmeta: crates/compiler/src/lib.rs crates/compiler/src/cminor.rs crates/compiler/src/cminorgen.rs crates/compiler/src/inline.rs crates/compiler/src/mach.rs crates/compiler/src/machgen.rs crates/compiler/src/opt.rs crates/compiler/src/rtl.rs crates/compiler/src/rtlgen.rs crates/compiler/src/asmgen.rs Cargo.toml

crates/compiler/src/lib.rs:
crates/compiler/src/cminor.rs:
crates/compiler/src/cminorgen.rs:
crates/compiler/src/inline.rs:
crates/compiler/src/mach.rs:
crates/compiler/src/machgen.rs:
crates/compiler/src/opt.rs:
crates/compiler/src/rtl.rs:
crates/compiler/src/rtlgen.rs:
crates/compiler/src/asmgen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
