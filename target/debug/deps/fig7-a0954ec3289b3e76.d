/root/repo/target/debug/deps/fig7-a0954ec3289b3e76.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-a0954ec3289b3e76: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
