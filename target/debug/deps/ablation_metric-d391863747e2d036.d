/root/repo/target/debug/deps/ablation_metric-d391863747e2d036.d: crates/bench/src/bin/ablation_metric.rs

/root/repo/target/debug/deps/ablation_metric-d391863747e2d036: crates/bench/src/bin/ablation_metric.rs

crates/bench/src/bin/ablation_metric.rs:
