/root/repo/target/debug/deps/qhl-c239435bfd0bf5b4.d: crates/qhl/src/lib.rs crates/qhl/src/bound.rs crates/qhl/src/derive.rs crates/qhl/src/logic.rs crates/qhl/src/validate.rs crates/qhl/src/tests.rs

/root/repo/target/debug/deps/qhl-c239435bfd0bf5b4: crates/qhl/src/lib.rs crates/qhl/src/bound.rs crates/qhl/src/derive.rs crates/qhl/src/logic.rs crates/qhl/src/validate.rs crates/qhl/src/tests.rs

crates/qhl/src/lib.rs:
crates/qhl/src/bound.rs:
crates/qhl/src/derive.rs:
crates/qhl/src/logic.rs:
crates/qhl/src/validate.rs:
crates/qhl/src/tests.rs:
