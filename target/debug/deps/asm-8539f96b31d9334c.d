/root/repo/target/debug/deps/asm-8539f96b31d9334c.d: crates/asm/src/lib.rs crates/asm/src/machine.rs crates/asm/src/monitor.rs crates/asm/src/profile.rs

/root/repo/target/debug/deps/libasm-8539f96b31d9334c.rlib: crates/asm/src/lib.rs crates/asm/src/machine.rs crates/asm/src/monitor.rs crates/asm/src/profile.rs

/root/repo/target/debug/deps/libasm-8539f96b31d9334c.rmeta: crates/asm/src/lib.rs crates/asm/src/machine.rs crates/asm/src/monitor.rs crates/asm/src/profile.rs

crates/asm/src/lib.rs:
crates/asm/src/machine.rs:
crates/asm/src/monitor.rs:
crates/asm/src/profile.rs:
