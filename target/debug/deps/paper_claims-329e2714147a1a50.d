/root/repo/target/debug/deps/paper_claims-329e2714147a1a50.d: crates/stackbound/../../tests/paper_claims.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_claims-329e2714147a1a50.rmeta: crates/stackbound/../../tests/paper_claims.rs Cargo.toml

crates/stackbound/../../tests/paper_claims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
