/root/repo/target/debug/deps/bench-ab3ea1999261128c.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-ab3ea1999261128c.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-ab3ea1999261128c.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
