/root/repo/target/debug/deps/benchsuite-bf79fd9542edfc3f.d: crates/benchsuite/src/lib.rs crates/benchsuite/src/extras.rs crates/benchsuite/src/recursive.rs crates/benchsuite/src/sources.rs Cargo.toml

/root/repo/target/debug/deps/libbenchsuite-bf79fd9542edfc3f.rmeta: crates/benchsuite/src/lib.rs crates/benchsuite/src/extras.rs crates/benchsuite/src/recursive.rs crates/benchsuite/src/sources.rs Cargo.toml

crates/benchsuite/src/lib.rs:
crates/benchsuite/src/extras.rs:
crates/benchsuite/src/recursive.rs:
crates/benchsuite/src/sources.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
