/root/repo/target/debug/deps/mem-50c49fa748e27074.d: crates/mem/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmem-50c49fa748e27074.rmeta: crates/mem/src/lib.rs Cargo.toml

crates/mem/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
