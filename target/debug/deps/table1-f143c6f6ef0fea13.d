/root/repo/target/debug/deps/table1-f143c6f6ef0fea13.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-f143c6f6ef0fea13: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
