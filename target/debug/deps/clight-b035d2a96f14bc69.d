/root/repo/target/debug/deps/clight-b035d2a96f14bc69.d: crates/clight/src/lib.rs crates/clight/src/ast.rs crates/clight/src/lex.rs crates/clight/src/parse.rs crates/clight/src/pretty.rs crates/clight/src/sem.rs crates/clight/src/typecheck.rs crates/clight/src/types.rs

/root/repo/target/debug/deps/libclight-b035d2a96f14bc69.rlib: crates/clight/src/lib.rs crates/clight/src/ast.rs crates/clight/src/lex.rs crates/clight/src/parse.rs crates/clight/src/pretty.rs crates/clight/src/sem.rs crates/clight/src/typecheck.rs crates/clight/src/types.rs

/root/repo/target/debug/deps/libclight-b035d2a96f14bc69.rmeta: crates/clight/src/lib.rs crates/clight/src/ast.rs crates/clight/src/lex.rs crates/clight/src/parse.rs crates/clight/src/pretty.rs crates/clight/src/sem.rs crates/clight/src/typecheck.rs crates/clight/src/types.rs

crates/clight/src/lib.rs:
crates/clight/src/ast.rs:
crates/clight/src/lex.rs:
crates/clight/src/parse.rs:
crates/clight/src/pretty.rs:
crates/clight/src/sem.rs:
crates/clight/src/typecheck.rs:
crates/clight/src/types.rs:
