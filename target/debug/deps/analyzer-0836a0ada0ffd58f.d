/root/repo/target/debug/deps/analyzer-0836a0ada0ffd58f.d: crates/analyzer/src/lib.rs

/root/repo/target/debug/deps/libanalyzer-0836a0ada0ffd58f.rlib: crates/analyzer/src/lib.rs

/root/repo/target/debug/deps/libanalyzer-0836a0ada0ffd58f.rmeta: crates/analyzer/src/lib.rs

crates/analyzer/src/lib.rs:
