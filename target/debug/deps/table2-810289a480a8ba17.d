/root/repo/target/debug/deps/table2-810289a480a8ba17.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-810289a480a8ba17: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
