/root/repo/target/debug/deps/ablation_opt-6019b2b23ed2d005.d: crates/bench/src/bin/ablation_opt.rs

/root/repo/target/debug/deps/ablation_opt-6019b2b23ed2d005: crates/bench/src/bin/ablation_opt.rs

crates/bench/src/bin/ablation_opt.rs:
