/root/repo/target/debug/deps/paper_claims-a3afa806c13d731d.d: crates/stackbound/../../tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-a3afa806c13d731d: crates/stackbound/../../tests/paper_claims.rs

crates/stackbound/../../tests/paper_claims.rs:
