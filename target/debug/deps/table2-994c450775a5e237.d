/root/repo/target/debug/deps/table2-994c450775a5e237.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-994c450775a5e237: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
