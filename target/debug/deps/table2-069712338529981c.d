/root/repo/target/debug/deps/table2-069712338529981c.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-069712338529981c: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
