/root/repo/target/debug/deps/clight-c102be621c995432.d: crates/clight/src/lib.rs crates/clight/src/ast.rs crates/clight/src/lex.rs crates/clight/src/parse.rs crates/clight/src/pretty.rs crates/clight/src/sem.rs crates/clight/src/typecheck.rs crates/clight/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libclight-c102be621c995432.rmeta: crates/clight/src/lib.rs crates/clight/src/ast.rs crates/clight/src/lex.rs crates/clight/src/parse.rs crates/clight/src/pretty.rs crates/clight/src/sem.rs crates/clight/src/typecheck.rs crates/clight/src/types.rs Cargo.toml

crates/clight/src/lib.rs:
crates/clight/src/ast.rs:
crates/clight/src/lex.rs:
crates/clight/src/parse.rs:
crates/clight/src/pretty.rs:
crates/clight/src/sem.rs:
crates/clight/src/typecheck.rs:
crates/clight/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
