/root/repo/target/debug/deps/ablation_metric-419a6d0820bfab3b.d: crates/bench/src/bin/ablation_metric.rs

/root/repo/target/debug/deps/ablation_metric-419a6d0820bfab3b: crates/bench/src/bin/ablation_metric.rs

crates/bench/src/bin/ablation_metric.rs:
