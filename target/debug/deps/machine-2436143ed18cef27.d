/root/repo/target/debug/deps/machine-2436143ed18cef27.d: crates/bench/benches/machine.rs Cargo.toml

/root/repo/target/debug/deps/libmachine-2436143ed18cef27.rmeta: crates/bench/benches/machine.rs Cargo.toml

crates/bench/benches/machine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
