/root/repo/target/debug/deps/ablation_metric-818ef65513d92bcd.d: crates/bench/src/bin/ablation_metric.rs

/root/repo/target/debug/deps/ablation_metric-818ef65513d92bcd: crates/bench/src/bin/ablation_metric.rs

crates/bench/src/bin/ablation_metric.rs:
