/root/repo/target/debug/deps/trace-fada844d24a32c17.d: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/metric.rs crates/trace/src/refinement.rs Cargo.toml

/root/repo/target/debug/deps/libtrace-fada844d24a32c17.rmeta: crates/trace/src/lib.rs crates/trace/src/event.rs crates/trace/src/metric.rs crates/trace/src/refinement.rs Cargo.toml

crates/trace/src/lib.rs:
crates/trace/src/event.rs:
crates/trace/src/metric.rs:
crates/trace/src/refinement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
