/root/repo/target/debug/deps/differential-5527de21a326f464.d: crates/stackbound/../../tests/differential.rs Cargo.toml

/root/repo/target/debug/deps/libdifferential-5527de21a326f464.rmeta: crates/stackbound/../../tests/differential.rs Cargo.toml

crates/stackbound/../../tests/differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
