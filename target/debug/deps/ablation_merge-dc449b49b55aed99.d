/root/repo/target/debug/deps/ablation_merge-dc449b49b55aed99.d: crates/bench/src/bin/ablation_merge.rs

/root/repo/target/debug/deps/ablation_merge-dc449b49b55aed99: crates/bench/src/bin/ablation_merge.rs

crates/bench/src/bin/ablation_merge.rs:
