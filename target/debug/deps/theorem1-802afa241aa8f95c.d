/root/repo/target/debug/deps/theorem1-802afa241aa8f95c.d: crates/bench/src/bin/theorem1.rs Cargo.toml

/root/repo/target/debug/deps/libtheorem1-802afa241aa8f95c.rmeta: crates/bench/src/bin/theorem1.rs Cargo.toml

crates/bench/src/bin/theorem1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
