/root/repo/target/debug/deps/obs_overhead-7ca042fe9f61bfa4.d: crates/bench/benches/obs_overhead.rs

/root/repo/target/debug/deps/obs_overhead-7ca042fe9f61bfa4: crates/bench/benches/obs_overhead.rs

crates/bench/benches/obs_overhead.rs:
