/root/repo/target/debug/deps/qhl-08921038d81f4d97.d: crates/qhl/src/lib.rs crates/qhl/src/bound.rs crates/qhl/src/derive.rs crates/qhl/src/logic.rs crates/qhl/src/validate.rs

/root/repo/target/debug/deps/libqhl-08921038d81f4d97.rlib: crates/qhl/src/lib.rs crates/qhl/src/bound.rs crates/qhl/src/derive.rs crates/qhl/src/logic.rs crates/qhl/src/validate.rs

/root/repo/target/debug/deps/libqhl-08921038d81f4d97.rmeta: crates/qhl/src/lib.rs crates/qhl/src/bound.rs crates/qhl/src/derive.rs crates/qhl/src/logic.rs crates/qhl/src/validate.rs

crates/qhl/src/lib.rs:
crates/qhl/src/bound.rs:
crates/qhl/src/derive.rs:
crates/qhl/src/logic.rs:
crates/qhl/src/validate.rs:
