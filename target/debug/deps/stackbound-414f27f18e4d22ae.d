/root/repo/target/debug/deps/stackbound-414f27f18e4d22ae.d: crates/stackbound/src/lib.rs

/root/repo/target/debug/deps/libstackbound-414f27f18e4d22ae.rlib: crates/stackbound/src/lib.rs

/root/repo/target/debug/deps/libstackbound-414f27f18e4d22ae.rmeta: crates/stackbound/src/lib.rs

crates/stackbound/src/lib.rs:
