use crate::{analyze, topological_order, AnalyzerError};
use proptest::prelude::*;
use qhl::Valuation;
use trace::Metric;

fn front(src: &str) -> clight::Program {
    clight::frontend(src, &[]).unwrap_or_else(|e| panic!("frontend: {e}"))
}

#[test]
fn leaf_functions_have_zero_body_bound() {
    let p = front("u32 f(u32 x) { return x * 2; } int main() { return 0; }");
    let a = analyze(&p).unwrap();
    a.check(&p).unwrap();
    let metric = Metric::from_pairs([("f", 16)]);
    assert_eq!(a.concrete_bound("f", &metric), Some(16.0));
}

#[test]
fn chains_add_up() {
    let p = front(
        "u32 c() { return 1; }
         u32 b() { u32 r; r = c(); return r; }
         u32 a() { u32 r; r = b(); return r; }
         int main() { u32 r; r = a(); return r; }",
    );
    let a = analyze(&p).unwrap();
    a.check(&p).unwrap();
    let metric = Metric::from_pairs([("a", 10), ("b", 20), ("c", 30), ("main", 40)]);
    assert_eq!(a.concrete_bound("c", &metric), Some(30.0));
    assert_eq!(a.concrete_bound("b", &metric), Some(50.0));
    assert_eq!(a.concrete_bound("a", &metric), Some(60.0));
    assert_eq!(a.concrete_bound("main", &metric), Some(100.0));
}

#[test]
fn alternatives_take_the_max() {
    let p = front(
        "u32 cheap() { return 1; }
         u32 costly() { u32 r; r = cheap(); return r; }
         int main(){ u32 r; if (1) { r = cheap(); } else { r = costly(); } return r; }",
    );
    let a = analyze(&p).unwrap();
    a.check(&p).unwrap();
    let metric = Metric::from_pairs([("cheap", 8), ("costly", 12), ("main", 16)]);
    // main: max(M(cheap), M(costly)+M(cheap)) + M(main) = 20 + 16.
    assert_eq!(a.concrete_bound("main", &metric), Some(36.0));
}

#[test]
fn sequential_calls_take_the_max_not_the_sum() {
    let p = front(
        "void f() { return; } void g() { return; }
         int main() { f(); g(); return 0; }",
    );
    let a = analyze(&p).unwrap();
    a.check(&p).unwrap();
    let metric = Metric::from_pairs([("f", 100), ("g", 60), ("main", 8)]);
    assert_eq!(a.concrete_bound("main", &metric), Some(108.0));
}

#[test]
fn calls_inside_loops_are_analyzed() {
    let p = front(
        "u32 work(u32 x) { return x + 1; }
         int main() { u32 i; u32 r; r = 0;
           for (i = 0; i < 10; i++) { r = work(r); }
           return r; }",
    );
    let a = analyze(&p).unwrap();
    a.check(&p).unwrap();
    let metric = Metric::from_pairs([("work", 12), ("main", 20)]);
    // Loops do not multiply stack cost: the frame is released each call.
    assert_eq!(a.concrete_bound("main", &metric), Some(32.0));
}

#[test]
fn nested_loops_with_breaks() {
    let p = front(
        "void f() { return; }
         int main() { u32 i; u32 j;
           for (i = 0; i < 4; i++) {
             for (j = 0; j < 4; j++) {
               if (j == 2) break;
               f();
             }
             if (i == 3) break;
           }
           return 0; }",
    );
    let a = analyze(&p).unwrap();
    a.check(&p).unwrap();
    let metric = Metric::from_pairs([("f", 24), ("main", 8)]);
    assert_eq!(a.concrete_bound("main", &metric), Some(32.0));
}

#[test]
fn external_calls_cost_nothing() {
    let p = front(
        "extern u32 io(u32 x);
         int main() { u32 r; r = io(1); return r; }",
    );
    let a = analyze(&p).unwrap();
    a.check(&p).unwrap();
    let metric = Metric::from_pairs([("main", 8)]);
    assert_eq!(a.concrete_bound("main", &metric), Some(8.0));
}

#[test]
fn direct_recursion_is_reported_with_cycle() {
    let p = front("u32 f(u32 n) { u32 r; r = f(n - 1); return r; } int main() { return 0; }");
    match analyze(&p).unwrap_err() {
        AnalyzerError::Recursion { cycle } => {
            assert_eq!(cycle, vec!["f".to_owned(), "f".to_owned()]);
        }
        other => panic!("expected recursion error, got {other}"),
    }
}

#[test]
fn mutual_recursion_is_reported_with_cycle() {
    let p = front(
        "u32 even(u32 n) { u32 r; if (n == 0) return 1; r = odd(n - 1); return r; }
         u32 odd(u32 n) { u32 r; if (n == 0) return 0; r = even(n - 1); return r; }
         int main() { return 0; }",
    );
    match analyze(&p).unwrap_err() {
        AnalyzerError::Recursion { cycle } => {
            assert!(cycle.len() == 3, "cycle: {cycle:?}");
            assert_eq!(cycle.first(), cycle.last());
        }
        other => panic!("expected recursion error, got {other}"),
    }
}

#[test]
fn topological_order_puts_callees_first() {
    let p = front(
        "u32 c() { return 1; }
         u32 b() { u32 r; r = c(); return r; }
         u32 a() { u32 r; u32 s; r = b(); s = c(); return r + s; }
         int main() { u32 r; r = a(); return r; }",
    );
    let order = topological_order(&p).unwrap();
    let pos = |n: &str| order.iter().position(|x| x == n).unwrap();
    assert!(pos("c") < pos("b"));
    assert!(pos("b") < pos("a"));
    assert!(pos("a") < pos("main"));
}

#[test]
fn diverging_loops_are_fine() {
    let p = front("int main() { while (1) { } return 0; }");
    let a = analyze(&p).unwrap();
    a.check(&p).unwrap();
    assert_eq!(
        a.concrete_bound("main", &Metric::from_pairs([("main", 4)])),
        Some(4.0)
    );
}

#[test]
fn bounds_compose_with_compiler_metric_end_to_end() {
    // The full paper loop: analyze, compile, instantiate, compare with the
    // machine measurement.
    let src = "
        u32 depth3(u32 x) { return x; }
        u32 depth2(u32 x) { u32 r; r = depth3(x); return r + 1; }
        u32 depth1(u32 x) { u32 r; r = depth2(x); return r + 1; }
        int main() { u32 r; r = depth1(0); return r; }
    ";
    let p = front(src);
    let a = analyze(&p).unwrap();
    a.check(&p).unwrap();
    let compiled = compiler::compile(&p).unwrap();
    let bound = a.concrete_bound("main", &compiled.metric).unwrap();
    let m = asm::measure_main(&compiled.asm, bound as u32, 1_000_000).unwrap();
    assert_eq!(m.result(), Some(2));
    // Theorem 1 + the paper's observation: bound = measured + 4 exactly.
    assert_eq!(bound, f64::from(m.stack_usage + 4));
}

#[test]
fn analysis_bound_dominates_source_trace_weight() {
    let src = "
        u32 h() { return 7; }
        u32 g() { u32 a; u32 b; a = h(); b = h(); return a + b; }
        int main() { u32 r; u32 i; r = 0; for (i = 0; i < 5; i++) { r = g(); } return r; }
    ";
    let p = front(src);
    let a = analyze(&p).unwrap();
    let metric = Metric::from_pairs([("h", 8), ("g", 12), ("main", 16)]);
    let b = clight::Executor::run_main(&p, 1_000_000);
    let weight = b.weight(&metric);
    let bound = a.concrete_bound("main", &metric).unwrap();
    assert!(bound >= weight as f64, "bound {bound} < weight {weight}");
    assert_eq!(bound, 36.0);
    assert_eq!(weight, 36);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random non-recursive call DAGs: the analyzer always succeeds, its
    /// derivations always check, and its bound always dominates the
    /// measured source weight.
    #[test]
    fn prop_analyzer_sound_on_random_dags(edges in proptest::collection::vec((0u32..6, 0u32..6), 0..12)) {
        // Build a DAG: function fi may call fj only if j > i.
        let mut bodies = vec![String::new(); 6];
        for (a, b) in &edges {
            let (a, b) = (*a.min(b), *a.max(b));
            if a != b {
                bodies[a as usize].push_str(&format!("f{b}();"));
            }
        }
        let mut src = String::new();
        for i in (0..6).rev() {
            src.push_str(&format!("void f{i}() {{ {} return; }}\n", bodies[i]));
        }
        src.push_str("int main() { f0(); return 0; }");
        let p = front(&src);
        let analysis = analyze(&p).unwrap();
        analysis.check(&p).unwrap();

        let metric: Metric = (0..6).map(|i| (format!("f{i}"), 8 * (i + 1))).chain([("main".to_owned(), 4)]).collect();
        let b = clight::Executor::run_main(&p, 1_000_000);
        prop_assert!(b.converges());
        let weight = b.weight(&metric);
        let bound = analysis.concrete_bound("main", &metric).unwrap();
        prop_assert!(bound >= weight as f64, "bound {bound} < weight {weight}");
    }

    /// The analyzer's symbolic bound is metric-parametric: evaluating at
    /// two different metrics is consistent with monotonicity.
    #[test]
    fn prop_bounds_monotone_in_metric(scale in 1u32..5) {
        let p = front(
            "u32 f() { return 1; }
             u32 g() { u32 r; r = f(); return r; }
             int main() { u32 r; r = g(); return r; }",
        );
        let a = analyze(&p).unwrap();
        let m1: Metric = [("f", 8u32), ("g", 8), ("main", 8)].into_iter().collect();
        let m2: Metric = [("f", 8 * scale), ("g", 8 * scale), ("main", 8 * scale)]
            .into_iter()
            .collect();
        let b1 = a.concrete_bound("main", &m1).unwrap();
        let b2 = a.concrete_bound("main", &m2).unwrap();
        prop_assert!(b2 >= b1);
        prop_assert_eq!(b2, b1 * f64::from(scale));
    }
}

#[test]
fn spec_pre_is_closed_for_auto_bounds() {
    let p = front("u32 f() { return 1; } int main() { u32 r; r = f(); return r; }");
    let a = analyze(&p).unwrap();
    // Auto bounds never mention program variables.
    let spec = a.context().get("main").unwrap();
    assert!(spec.pre.vars().is_empty());
    assert_eq!(
        spec.pre
            .eval(&Metric::from_pairs([("f", 12)]), &Valuation::new())
            .unwrap(),
        qhl::Bound::Fin(12.0)
    );
}
