//! The automatic stack analyzer (§5 of *End-to-End Verification of
//! Stack-Space Bounds for C Programs*, PLDI 2014).
//!
//! The analyzer computes a call graph of the Clight program and derives a
//! stack bound for each function in topological order: the bound of a
//! statement is the maximum over its control-flow alternatives of the
//! bounds of the calls it performs, where a call to `g` costs
//! `M(g) + bound(g)` symbolically. Crucially, `auto_bound` does not just
//! compute a number — it emits a **derivation in the quantitative Hoare
//! logic** for every function, which `qhl::Checker` validates. This is
//! what makes the analyzer trustworthy and lets automatically derived
//! bounds compose with interactively derived ones (Table 2's recursive
//! functions can sit in the same [`qhl::Context`]).
//!
//! The analyzer is guaranteed to succeed on programs without recursion
//! and function pointers (function pointers cannot even be expressed in
//! our Clight subset); on recursive programs it reports the cycle.
//!
//! # Examples
//!
//! ```
//! let program = clight::frontend("
//!     u32 leaf(u32 x) { return x + 1; }
//!     u32 mid(u32 x) { u32 r; r = leaf(x); return r; }
//!     int main() { u32 r; r = mid(41); return r; }
//! ", &[]).unwrap();
//!
//! let analysis = analyzer::analyze(&program).unwrap();
//! analysis.check(&program).unwrap(); // every derivation re-validates
//!
//! // Instantiate with a concrete metric (the compiler's SF(f) + 4):
//! let metric = trace::Metric::from_pairs([("leaf", 8u32), ("mid", 12), ("main", 16)]);
//! assert_eq!(analysis.concrete_bound("main", &metric), Some(36.0)); // 16+12+8
//! ```

#![warn(missing_docs)]

use clight::{Program, Stmt};
use qhl::{BExpr, Checker, Context, Derivation, FunSpec, QhlError, Valuation};
use std::collections::HashMap;
use std::fmt;

/// Why the analyzer gave up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalyzerError {
    /// The call graph has a cycle; the paper's automatic analyzer only
    /// handles non-recursive programs (recursive bounds are derived
    /// interactively, Table 2).
    Recursion {
        /// One cycle in call order, ending where it started.
        cycle: Vec<String>,
    },
    /// A call to a function that is neither defined nor external.
    UndefinedCallee {
        /// The calling function.
        caller: String,
        /// The missing callee.
        callee: String,
    },
}

impl fmt::Display for AnalyzerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzerError::Recursion { cycle } => {
                write!(f, "recursive call cycle: {}", cycle.join(" -> "))
            }
            AnalyzerError::UndefinedCallee { caller, callee } => {
                write!(f, "`{caller}` calls undefined function `{callee}`")
            }
        }
    }
}

impl std::error::Error for AnalyzerError {}

/// The result of a successful analysis: one verified bound per function.
#[derive(Debug, Clone)]
pub struct Analysis {
    context: Context,
    derivations: HashMap<String, Derivation>,
    order: Vec<String>,
}

impl Analysis {
    /// Reassembles an [`Analysis`] from its parts: the function context,
    /// the per-function derivations, and the topological order they were
    /// derived in. This is the entry point for *incremental* drivers
    /// (crate `vcache`) that mix freshly derived artifacts with cached
    /// ones; the parts must satisfy the same invariants [`analyze`]
    /// establishes (every ordered name has a spec and a derivation).
    pub fn from_parts(
        context: Context,
        derivations: HashMap<String, Derivation>,
        order: Vec<String>,
    ) -> Analysis {
        debug_assert!(order
            .iter()
            .all(|f| context.get(f).is_some() && derivations.contains_key(f)));
        Analysis {
            context,
            derivations,
            order,
        }
    }

    /// The function context with the derived specifications
    /// (`Γ(f) = {B_f} f {B_f}` where `B_f` bounds the calls `f` performs).
    pub fn context(&self) -> &Context {
        &self.context
    }

    /// The derivation generated for `fname`.
    pub fn derivation(&self, fname: &str) -> Option<&Derivation> {
        self.derivations.get(fname)
    }

    /// Functions in the topological order they were analyzed (callees
    /// first).
    pub fn order(&self) -> &[String] {
        &self.order
    }

    /// The symbolic *body* bound `B_f` of a function.
    pub fn bound(&self, fname: &str) -> Option<&BExpr> {
        self.context.get(fname).map(|s| &s.pre)
    }

    /// The concrete verified stack bound for calling `fname`, in bytes:
    /// `B_f + M(f)` instantiated with `metric`. This is the number
    /// reported in the paper's Table 1.
    pub fn concrete_bound(&self, fname: &str, metric: &trace::Metric) -> Option<f64> {
        let spec = self.context.get(fname)?;
        let b = spec.pre.eval(metric, &Valuation::new()).ok()?;
        Some(b.finite()? + f64::from(metric.call_cost(fname)))
    }

    /// Re-checks every generated derivation with the logic checker.
    ///
    /// # Errors
    ///
    /// Returns the first failing side condition — which would indicate a
    /// bug in the analyzer, exactly the class of bug the paper's
    /// derivation-generating architecture is designed to catch.
    pub fn check(&self, program: &Program) -> Result<(), QhlError> {
        let _span = obs::span("analyzer/check");
        let checker = Checker::new(program, &self.context);
        for fname in &self.order {
            checker.check_function(fname, &self.derivations[fname], None)?;
        }
        Ok(())
    }
}

/// Analyzes a program, deriving a stack bound and a logic derivation for
/// every function.
///
/// # Errors
///
/// Fails on recursion (including mutual recursion) and undefined callees;
/// the analyzer is total on everything else.
///
/// # Examples
///
/// ```
/// let program = clight::frontend(
///     "u32 f(u32 n) { u32 r; r = f(n); return r; } int main() { return 0; }", &[]).unwrap();
/// let err = analyzer::analyze(&program).unwrap_err();
/// assert!(matches!(err, analyzer::AnalyzerError::Recursion { .. }));
/// ```
pub fn analyze(program: &Program) -> Result<Analysis, AnalyzerError> {
    let _span = obs::span("analyzer/analyze");
    let order = topological_order(program)?;
    let mut context = Context::new();
    let mut derivations = HashMap::new();
    for fname in &order {
        let (bound, deriv) = analyze_function(program, &context, fname)?;
        context.insert(fname.clone(), FunSpec::restoring(bound));
        derivations.insert(fname.clone(), deriv);
    }
    obs::counter("analyzer/functions", order.len() as u64);
    Ok(Analysis {
        context,
        derivations,
        order,
    })
}

/// Analyzes a *single* function under a context that already holds the
/// specifications of every function it calls, returning its body bound
/// `B_f` and the generated derivation. This is [`analyze`]'s per-function
/// step, exposed so incremental drivers (crate `vcache`) can re-derive
/// only the functions whose cache key missed; feeding the results back
/// through [`qhl::FunSpec::restoring`] and [`Analysis::from_parts`]
/// reproduces exactly what a full [`analyze`] run computes.
///
/// # Errors
///
/// Fails when the function calls something undefined, or calls a defined
/// function whose spec is not yet in `ctx` (reported as recursion, which
/// a correct topological processing order rules out).
pub fn analyze_function(
    program: &Program,
    ctx: &Context,
    fname: &str,
) -> Result<(BExpr, Derivation), AnalyzerError> {
    let _fn_span = obs::span_dyn(|| format!("analyzer/fn/{fname}"));
    let f = program.function(fname).expect("ordered names are defined");
    let bound = bound_of(&f.body, program, ctx, fname)?;
    let deriv = derivation_of(&f.body, &bound);
    obs::counter("analyzer/derivation_nodes", derivation_nodes(&deriv));
    Ok((bound, deriv))
}

/// The call graph of a program over its *defined* functions: every
/// function name (in definition order) mapped to the defined functions it
/// calls directly, in first-call order. Calls to externals carry no stack
/// frames and are omitted; undefined callees are kept out too (the
/// analyzer reports them separately). This is the graph
/// [`topological_order`] walks, exposed for consumers that need its shape
/// (SCC condensation, dependency-closure hashing in crate `vcache`).
pub fn call_graph(program: &Program) -> Vec<(String, Vec<String>)> {
    program
        .functions
        .iter()
        .map(|f| {
            let callees = f
                .body
                .callees()
                .into_iter()
                .filter(|g| program.function(g).is_some())
                .collect();
            (f.name.clone(), callees)
        })
        .collect()
}

/// Size of a derivation tree (every rule application it will cost the
/// checker to validate).
fn derivation_nodes(d: &Derivation) -> u64 {
    match d {
        Derivation::Seq(a, b) | Derivation::If(a, b) => {
            1 + derivation_nodes(a) + derivation_nodes(b)
        }
        Derivation::Loop { body, incr, .. } => 1 + derivation_nodes(body) + derivation_nodes(incr),
        Derivation::Conseq { inner, .. } | Derivation::ConseqPost { inner, .. } => {
            1 + derivation_nodes(inner)
        }
        _ => 1,
    }
}

/// Computes a topological order of the call graph (callees first).
///
/// # Errors
///
/// Reports a call cycle or an undefined callee.
pub fn topological_order(program: &Program) -> Result<Vec<String>, AnalyzerError> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let mut marks: HashMap<&str, Mark> =
        program.function_names().map(|n| (n, Mark::White)).collect();
    let mut order = Vec::new();

    fn visit<'a>(
        name: &'a str,
        program: &'a Program,
        marks: &mut HashMap<&'a str, Mark>,
        order: &mut Vec<String>,
        stack: &mut Vec<String>,
    ) -> Result<(), AnalyzerError> {
        match marks.get(name) {
            Some(Mark::Black) => return Ok(()),
            Some(Mark::Grey) => {
                let mut cycle: Vec<String> = stack
                    .iter()
                    .skip_while(|f| f.as_str() != name)
                    .cloned()
                    .collect();
                cycle.push(name.to_owned());
                return Err(AnalyzerError::Recursion { cycle });
            }
            _ => {}
        }
        marks.insert(name, Mark::Grey);
        stack.push(name.to_owned());
        let f = program.function(name).expect("marked names are defined");
        for callee in f.body.callees() {
            if let Some(g) = program.function(&callee) {
                visit(&g.name, program, marks, order, stack)?;
            } else if program.external(&callee).is_none() {
                return Err(AnalyzerError::UndefinedCallee {
                    caller: name.to_owned(),
                    callee,
                });
            }
        }
        stack.pop();
        marks.insert(name, Mark::Black);
        order.push(name.to_owned());
        Ok(())
    }

    let names: Vec<&str> = program.function_names().collect();
    let mut stack = Vec::new();
    for name in names {
        visit(name, program, &mut marks, &mut order, &mut stack)?;
    }
    Ok(order)
}

/// The bound of a statement: the maximum over control-flow alternatives
/// of `M(g) + B_g` for the calls it performs.
fn bound_of(
    s: &Stmt,
    program: &Program,
    ctx: &Context,
    caller: &str,
) -> Result<BExpr, AnalyzerError> {
    Ok(match s {
        Stmt::Skip | Stmt::Assign(..) | Stmt::Break | Stmt::Continue | Stmt::Return(_) => {
            BExpr::zero()
        }
        Stmt::Call(_, g, _) => {
            if let Some(spec) = ctx.get(g) {
                BExpr::add(spec.pre.clone(), BExpr::metric(g))
            } else if program.external(g).is_some() {
                BExpr::zero()
            } else if program.function(g).is_some() {
                // Defined but not yet analyzed: a recursion the topological
                // order should have caught.
                return Err(AnalyzerError::Recursion {
                    cycle: vec![caller.to_owned(), g.clone()],
                });
            } else {
                return Err(AnalyzerError::UndefinedCallee {
                    caller: caller.to_owned(),
                    callee: g.clone(),
                });
            }
        }
        Stmt::Seq(a, b) | Stmt::Loop(a, b) => BExpr::max(
            bound_of(a, program, ctx, caller)?,
            bound_of(b, program, ctx, caller)?,
        ),
        Stmt::If(_, t, e) => BExpr::max(
            bound_of(t, program, ctx, caller)?,
            bound_of(e, program, ctx, caller)?,
        ),
    })
}

/// Builds the derivation mirroring the statement structure. Every loop
/// invariant is the *function* bound `B_f`: the side conditions the
/// checker generates are then of the form `max(parts…) ≤ B_f` where each
/// part is a component of `B_f` by construction, which the syntactic
/// comparator discharges.
fn derivation_of(body: &Stmt, fn_bound: &BExpr) -> Derivation {
    match body {
        Stmt::Seq(a, b) => Derivation::seq(derivation_of(a, fn_bound), derivation_of(b, fn_bound)),
        Stmt::If(_, t, e) => Derivation::If(
            Box::new(derivation_of(t, fn_bound)),
            Box::new(derivation_of(e, fn_bound)),
        ),
        Stmt::Loop(b, i) => Derivation::Loop {
            invariant: fn_bound.clone(),
            just: None,
            body: Box::new(derivation_of(b, fn_bound)),
            incr: Box::new(derivation_of(i, fn_bound)),
        },
        Stmt::Call(..) => Derivation::call(),
        _ => Derivation::Mono,
    }
}

#[cfg(test)]
mod tests;
