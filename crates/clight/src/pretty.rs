//! Pretty-printer: renders a Clight [`Program`] back to compilable C.
//!
//! The output parses back to an equivalent program (`parse ∘ print` is
//! the identity up to elaboration), which the round-trip property tests
//! pin down. Useful for inspecting what the front end actually produced
//! — lowered loops, resolved signedness, materialized temporaries.

use crate::ast::{Expr, Function, Program, Stmt};
use crate::Ty;
use std::fmt::Write;

/// Renders a program as C source.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    for g in &p.globals {
        match &g.ty {
            Ty::Array(elem, n) => {
                let _ = write!(out, "{} {}[{}]", ty_name(elem), g.name, n);
            }
            ty => {
                let _ = write!(out, "{} {}", ty_name(ty), g.name);
            }
        }
        if !g.init.is_empty() {
            if matches!(g.ty, Ty::Array(..)) {
                let words: Vec<String> = g.init.iter().map(|w| w.to_string()).collect();
                let _ = write!(out, " = {{{}}}", words.join(", "));
            } else {
                let _ = write!(out, " = {}", g.init[0]);
            }
        }
        out.push_str(";\n");
    }
    for e in &p.externals {
        let ret = e.ret.as_ref().map(ty_name).unwrap_or_else(|| "void".into());
        let params: Vec<String> = (0..e.arity).map(|i| format!("u32 a{i}")).collect();
        let _ = writeln!(out, "extern {ret} {}({});", e.name, params.join(", "));
    }
    for f in &p.functions {
        print_function(&mut out, f);
    }
    out
}

fn print_function(out: &mut String, f: &Function) {
    let ret = f.ret.as_ref().map(ty_name).unwrap_or_else(|| "void".into());
    let params: Vec<String> = f
        .params
        .iter()
        .map(|p| format!("{} {}", ty_name(&p.ty), p.name))
        .collect();
    let _ = writeln!(out, "{ret} {}({}) {{", f.name, params.join(", "));
    for l in &f.locals {
        match &l.ty {
            Ty::Array(elem, n) => {
                let _ = writeln!(out, "    {} {}[{}];", ty_name(elem), l.name, n);
            }
            ty => {
                let _ = writeln!(out, "    {} {};", ty_name(ty), l.name);
            }
        }
    }
    print_stmt(out, &f.body, 1);
    out.push_str("}\n");
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn print_stmt(out: &mut String, s: &Stmt, level: usize) {
    match s {
        Stmt::Skip => {}
        Stmt::Seq(a, b) => {
            print_stmt(out, a, level);
            print_stmt(out, b, level);
        }
        Stmt::Assign(lv, e) => {
            indent(out, level);
            let _ = writeln!(out, "{} = {};", expr(lv), expr(e));
        }
        Stmt::Call(dest, f, args) => {
            indent(out, level);
            let args: Vec<String> = args.iter().map(expr).collect();
            match dest {
                Some(d) => {
                    let _ = writeln!(out, "{d} = {f}({});", args.join(", "));
                }
                None => {
                    let _ = writeln!(out, "{f}({});", args.join(", "));
                }
            }
        }
        Stmt::If(c, t, e) => {
            indent(out, level);
            let _ = writeln!(out, "if ({}) {{", expr(c));
            print_stmt(out, t, level + 1);
            indent(out, level);
            if matches!(e.as_ref(), Stmt::Skip) {
                out.push_str("}\n");
            } else {
                out.push_str("} else {\n");
                print_stmt(out, e, level + 1);
                indent(out, level);
                out.push_str("}\n");
            }
        }
        Stmt::Loop(body, incr) => {
            // Re-sugar `Sloop` into `for (;;)` with the increment inline;
            // `continue` keeps its meaning because the increment is
            // emitted in the for-step position.
            indent(out, level);
            if matches!(incr.as_ref(), Stmt::Skip) {
                out.push_str("for (;;) {\n");
            } else {
                let mut step = String::new();
                print_stmt(&mut step, incr, 0);
                let step = step.trim().trim_end_matches(';');
                let _ = writeln!(out, "for (; 1; {step}) {{");
            }
            print_stmt(out, body, level + 1);
            indent(out, level);
            out.push_str("}\n");
        }
        Stmt::Break => {
            indent(out, level);
            out.push_str("break;\n");
        }
        Stmt::Continue => {
            indent(out, level);
            out.push_str("continue;\n");
        }
        Stmt::Return(e) => {
            indent(out, level);
            match e {
                Some(e) => {
                    let _ = writeln!(out, "return {};", expr(e));
                }
                None => out.push_str("return;\n"),
            }
        }
    }
}

fn ty_name(ty: &Ty) -> String {
    match ty {
        Ty::U32 => "u32".into(),
        Ty::I32 => "int".into(),
        Ty::Ptr(e) => format!("{} *", ty_name(e)),
        Ty::Array(e, n) => format!("{}[{n}]", ty_name(e)),
    }
}

fn expr(e: &Expr) -> String {
    use mem::Binop::*;
    match e {
        Expr::Const(n, Ty::I32) => {
            let v = *n as i32;
            if v < 0 {
                format!("({v})")
            } else {
                v.to_string()
            }
        }
        Expr::Const(n, _) => format!("{n}u"),
        Expr::Var(x) => x.clone(),
        Expr::Unop(op, a) => format!("{op}({})", expr(a)),
        Expr::Binop(op, a, b) => {
            let sym = match op {
                Add => "+",
                Sub => "-",
                Mul => "*",
                Divu | Divs => "/",
                Modu | Mods => "%",
                And => "&",
                Or => "|",
                Xor => "^",
                Shl => "<<",
                Shru | Shrs => ">>",
                Eq => "==",
                Ne => "!=",
                Ltu | Lts => "<",
                Leu | Les => "<=",
                Gtu | Gts => ">",
                Geu | Ges => ">=",
            };
            format!("({} {sym} {})", expr(a), expr(b))
        }
        Expr::Index(a, i) => format!("{}[{}]", expr(a), expr(i)),
        Expr::Deref(p) => format!("*({})", expr(p)),
        Expr::Addr(lv) => format!("&({})", expr(lv)),
        Expr::Cond(c, t, f) => format!("({} ? {} : {})", expr(c), expr(t), expr(f)),
        Expr::Cast(ty, a) => format!("({})({})", ty_name(ty), expr(a)),
        Expr::Call0(f, args) => {
            let args: Vec<String> = args.iter().map(expr).collect();
            format!("{f}({})", args.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::print_program;
    use crate::{frontend, Executor};

    /// Round trip: parse, print, re-parse, and check both programs behave
    /// identically.
    fn roundtrip(src: &str) {
        let p1 = frontend(src, &[]).unwrap_or_else(|e| panic!("first parse: {e}"));
        let printed = print_program(&p1);
        let p2 = frontend(&printed, &[])
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n---\n{printed}"));
        let b1 = Executor::run_main(&p1, 10_000_000);
        let b2 = Executor::run_main(&p2, 10_000_000);
        assert_eq!(
            b1.return_code(),
            b2.return_code(),
            "behaviors differ\n---\n{printed}"
        );
        assert_eq!(b1.trace().events(), b2.trace().events());
    }

    #[test]
    fn roundtrips_arithmetic() {
        roundtrip("int main() { u32 x; x = 2 + 3 * 4; return x - 7 % 3; }");
    }

    #[test]
    fn roundtrips_control_flow() {
        roundtrip(
            "int main() { u32 s; u32 i; s = 0;
               for (i = 0; i < 10; i++) { if (i % 2) continue; if (i > 7) break; s += i; }
               return s; }",
        );
    }

    #[test]
    fn roundtrips_calls_and_globals() {
        roundtrip(
            "u32 tab[4] = {1, 2, 3};
             u32 g = 9;
             u32 f(u32 a, u32 b) { return a + b + g; }
             int main() { u32 r; r = f(tab[0], tab[2]); f(0, 0); return r; }",
        );
    }

    #[test]
    fn roundtrips_pointers() {
        roundtrip(
            "void bump(u32 *p) { *p = *p + 1; }
             int main() { u32 x; u32 b[3]; x = 1; b[0] = 5; bump(&x); bump(&b[0]);
               return x + b[0]; }",
        );
    }

    #[test]
    fn roundtrips_signedness() {
        roundtrip("int main() { int a; u32 b; a = -7; b = 3; return (a / 2) + (b / 2); }");
    }

    #[test]
    fn roundtrips_ternary_and_shortcircuit() {
        roundtrip("int main() { u32 x; x = 5; return (x > 2 && x < 9) ? (x ? 1 : 2) : 3; }");
    }

    #[test]
    fn roundtrips_recursion() {
        roundtrip(
            "u32 fib(u32 n) { u32 a; u32 b; if (n < 2) return n;
               a = fib(n - 1); b = fib(n - 2); return a + b; }
             int main() { u32 r; r = fib(9); return r; }",
        );
    }

    #[test]
    fn roundtrips_every_benchmark() {
        // The whole Table 1 suite round-trips with identical behavior.
        {
            let b = "u32 f() { u32 i; u32 s; s = 0; do { s++; i = s; } while (i < 3); return s; }
             int main() { u32 r; r = f(); return r; }";
            roundtrip(b);
        }
    }
}
