//! Lexer for the C subset accepted by the front end.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal (decimal or `0x` hexadecimal).
    Int(u32),
    /// Punctuation or operator, e.g. `"<<="` or `"{"`.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(n) => write!(f, "{n}"),
            Token::Punct(p) => write!(f, "{p}"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token together with its source line (1-based), for error messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpannedToken {
    /// The token.
    pub token: Token,
    /// 1-based source line.
    pub line: u32,
}

/// A lexical error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Description of the problem.
    pub message: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Multi-character punctuation, longest first so maximal munch works.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=",
    "&=", "|=", "^=", "++", "--", "->", "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^",
    "~", "?", ":", ";", ",", "(", ")", "{", "}", "[", "]",
];

/// Tokenizes `src`, skipping whitespace, `//` line comments, `/* */` block
/// comments, and `#` preprocessor lines (the benchmark ports keep their
/// `#define`-free form, so preprocessor lines are treated as comments).
///
/// # Errors
///
/// Returns a [`LexError`] on malformed literals or stray characters.
pub fn tokenize(src: &str) -> Result<Vec<SpannedToken>, LexError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;
    'outer: while i < bytes.len() {
        let c = bytes[i];
        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments and preprocessor lines.
        if c == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' || c == b'#' {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if c == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            let start_line = line;
            i += 2;
            while i + 1 < bytes.len() {
                if bytes[i] == b'\n' {
                    line += 1;
                }
                if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                    i += 2;
                    continue 'outer;
                }
                i += 1;
            }
            return Err(LexError {
                message: "unterminated block comment".into(),
                line: start_line,
            });
        }
        // Identifiers and keywords.
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            out.push(SpannedToken {
                token: Token::Ident(src[start..i].to_owned()),
                line,
            });
            continue;
        }
        // Integer literals.
        if c.is_ascii_digit() {
            let start = i;
            let (radix, digits_start) =
                if c == b'0' && i + 1 < bytes.len() && (bytes[i + 1] | 0x20) == b'x' {
                    i += 2;
                    (16, i)
                } else {
                    (10, i)
                };
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric()) {
                i += 1;
            }
            let mut text = &src[digits_start..i];
            // Allow C suffixes u/U/l/L.
            while let Some(stripped) = text.strip_suffix(['u', 'U', 'l', 'L']) {
                text = stripped;
            }
            let value = u32::from_str_radix(text, radix).map_err(|_| LexError {
                message: format!("malformed integer literal `{}`", &src[start..i]),
                line,
            })?;
            out.push(SpannedToken {
                token: Token::Int(value),
                line,
            });
            continue;
        }
        // Character literals appear in a couple of MiBench ports; treat as int.
        if c == b'\'' {
            if i + 2 < bytes.len() && bytes[i + 2] == b'\'' {
                out.push(SpannedToken {
                    token: Token::Int(u32::from(bytes[i + 1])),
                    line,
                });
                i += 3;
                continue;
            }
            return Err(LexError {
                message: "unsupported character literal".into(),
                line,
            });
        }
        // Punctuation, longest match first.
        for p in PUNCTS {
            if src[i..].starts_with(p) {
                out.push(SpannedToken {
                    token: Token::Punct(p),
                    line,
                });
                i += p.len();
                continue 'outer;
            }
        }
        return Err(LexError {
            message: format!("unexpected character `{}`", c as char),
            line,
        });
    }
    out.push(SpannedToken {
        token: Token::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        tokenize(src)
            .unwrap()
            .into_iter()
            .map(|t| t.token)
            .collect()
    }

    #[test]
    fn lexes_identifiers_and_numbers() {
        assert_eq!(
            toks("foo 42 0x2A bar_9"),
            vec![
                Token::Ident("foo".into()),
                Token::Int(42),
                Token::Int(42),
                Token::Ident("bar_9".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn lexes_suffixed_literals() {
        assert_eq!(toks("10u 10UL")[0], Token::Int(10));
        assert_eq!(toks("10u 10UL")[1], Token::Int(10));
    }

    #[test]
    fn maximal_munch_on_operators() {
        assert_eq!(
            toks("a <<= b << c <= d < e"),
            vec![
                Token::Ident("a".into()),
                Token::Punct("<<="),
                Token::Ident("b".into()),
                Token::Punct("<<"),
                Token::Ident("c".into()),
                Token::Punct("<="),
                Token::Ident("d".into()),
                Token::Punct("<"),
                Token::Ident("e".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn skips_comments_and_preprocessor() {
        let src = "a // comment\n#define X 1\nb /* multi\nline */ c";
        assert_eq!(
            toks(src),
            vec![
                Token::Ident("a".into()),
                Token::Ident("b".into()),
                Token::Ident("c".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn tracks_line_numbers() {
        let ts = tokenize("a\nb\n  c").unwrap();
        assert_eq!(ts[0].line, 1);
        assert_eq!(ts[1].line, 2);
        assert_eq!(ts[2].line, 3);
    }

    #[test]
    fn char_literal_is_int() {
        assert_eq!(toks("'A'")[0], Token::Int(65));
    }

    #[test]
    fn rejects_unterminated_comment() {
        assert!(tokenize("/* oops").is_err());
    }

    #[test]
    fn rejects_stray_characters() {
        assert!(tokenize("a @ b").is_err());
        assert!(tokenize("0xZZ").is_err());
    }
}
