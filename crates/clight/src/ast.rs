//! Abstract syntax of CompCert Clight (the subset of §4.1).
//!
//! Mirroring Clight, expressions are free of side effects, loops are
//! infinite unless exited by `break` or `return`, and function calls are
//! statements whose destination is a local scalar variable. The parser
//! lowers C `while`/`for` loops and the short-circuit operators `&&`/`||`
//! into this core syntax.

use crate::Ty;
use mem::{Binop, Unop};
use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

/// A side-effect-free Clight expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal with its type (`U32` or `I32`).
    Const(u32, Ty),
    /// A variable: local, parameter, or global (resolved by the checker).
    Var(String),
    /// Unary operation.
    Unop(Unop, Box<Expr>),
    /// Binary operation. The signedness of division, modulo, right shift
    /// and comparisons is resolved by the type checker (parser emits the
    /// signed variant, the checker rewrites to unsigned when C's usual
    /// arithmetic conversions say so).
    Binop(Binop, Box<Expr>, Box<Expr>),
    /// Array indexing `a[i]`; also valid on pointers.
    Index(Box<Expr>, Box<Expr>),
    /// Pointer dereference `*p`.
    Deref(Box<Expr>),
    /// Address-of `&lv` where `lv` is an lvalue expression.
    Addr(Box<Expr>),
    /// Pure conditional `c ? t : e`, evaluated lazily. Produced by the
    /// parser when lowering `&&` and `||`.
    Cond(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Type cast `(ty)e` between scalar types.
    Cast(Ty, Box<Expr>),
    /// A function call in expression position. CompCert C allows these but
    /// Clight does not: the parser only produces this variant transiently
    /// as the right-hand side of an assignment, where it is immediately
    /// lowered to [`Stmt::Call`]. The type checker rejects any that remain.
    Call0(String, Vec<Expr>),
}

impl Expr {
    /// Convenience constructor for an unsigned constant.
    pub fn uint(n: u32) -> Expr {
        Expr::Const(n, Ty::U32)
    }

    /// Convenience constructor for a signed constant.
    pub fn int(n: i32) -> Expr {
        Expr::Const(n as u32, Ty::I32)
    }

    /// Convenience constructor for a variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Convenience constructor for a binary operation.
    pub fn binop(op: Binop, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binop(op, Box::new(lhs), Box::new(rhs))
    }

    /// True when the expression can appear in lvalue position.
    pub fn is_lvalue(&self) -> bool {
        matches!(self, Expr::Var(_) | Expr::Index(..) | Expr::Deref(_))
    }

    /// Number of AST nodes in the expression (itself included).
    pub fn node_count(&self) -> u64 {
        1 + match self {
            Expr::Const(..) | Expr::Var(_) => 0,
            Expr::Unop(_, e) | Expr::Deref(e) | Expr::Addr(e) | Expr::Cast(_, e) => e.node_count(),
            Expr::Binop(_, a, b) | Expr::Index(a, b) => a.node_count() + b.node_count(),
            Expr::Cond(c, t, e) => c.node_count() + t.node_count() + e.node_count(),
            Expr::Call0(_, args) => args.iter().map(Expr::node_count).sum(),
        }
    }

    /// Collects the names of all variables read by the expression.
    pub fn variables(&self, out: &mut HashSet<String>) {
        match self {
            Expr::Const(..) => {}
            Expr::Var(x) => {
                out.insert(x.clone());
            }
            Expr::Unop(_, e) | Expr::Deref(e) | Expr::Addr(e) | Expr::Cast(_, e) => {
                e.variables(out)
            }
            Expr::Binop(_, a, b) | Expr::Index(a, b) => {
                a.variables(out);
                b.variables(out);
            }
            Expr::Cond(c, t, e) => {
                c.variables(out);
                t.variables(out);
                e.variables(out);
            }
            Expr::Call0(_, args) => {
                for a in args {
                    a.variables(out);
                }
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(n, Ty::I32) => write!(f, "{}", *n as i32),
            Expr::Const(n, _) => write!(f, "{n}"),
            Expr::Var(x) => write!(f, "{x}"),
            Expr::Unop(op, e) => write!(f, "{op}({e})"),
            Expr::Binop(op, a, b) => write!(f, "({a} {op} {b})"),
            Expr::Index(a, i) => write!(f, "{a}[{i}]"),
            Expr::Deref(e) => write!(f, "*({e})"),
            Expr::Addr(e) => write!(f, "&({e})"),
            Expr::Cond(c, t, e) => write!(f, "({c} ? {t} : {e})"),
            Expr::Cast(ty, e) => write!(f, "({ty})({e})"),
            Expr::Call0(g, args) => {
                write!(f, "{g}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A Clight statement.
///
/// Sub-statements are reference-counted so the small-step interpreter can
/// keep cheap handles to program fragments inside continuations. The
/// count is atomic ([`Arc`], not `Rc`) so a type-checked [`Program`] can
/// be shared across the suite harnesses' `--parallel-measure` worker
/// threads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `skip;` — does nothing.
    Skip,
    /// `lv = e;` — assignment to an lvalue.
    Assign(Expr, Expr),
    /// `x = f(args);` or `f(args);` — function call. The destination, when
    /// present, must be a local scalar variable (Clight restriction).
    Call(Option<String>, String, Vec<Expr>),
    /// Sequential composition.
    Seq(Arc<Stmt>, Arc<Stmt>),
    /// `if (e) s1 else s2`.
    If(Expr, Arc<Stmt>, Arc<Stmt>),
    /// Clight `Sloop(body, incr)`: runs `body` then `incr` forever.
    /// `break` exits the loop, `continue` skips to `incr`. C `while` and
    /// `for` loops are lowered to this form.
    Loop(Arc<Stmt>, Arc<Stmt>),
    /// Exits the innermost loop.
    Break,
    /// Skips to the increment statement of the innermost loop.
    Continue,
    /// Returns from the current function.
    Return(Option<Expr>),
}

impl Stmt {
    /// `s1; s2` with skip-elimination.
    pub fn seq(s1: Stmt, s2: Stmt) -> Stmt {
        match (&s1, &s2) {
            (Stmt::Skip, _) => s2,
            (_, Stmt::Skip) => s1,
            _ => Stmt::Seq(Arc::new(s1), Arc::new(s2)),
        }
    }

    /// Folds a list of statements into right-nested sequences
    /// (`s1; (s2; (s3; …))`), the shape Hoare-logic derivations expect.
    pub fn block(stmts: Vec<Stmt>) -> Stmt {
        stmts
            .into_iter()
            .rev()
            .fold(Stmt::Skip, |acc, s| Stmt::seq(s, acc))
    }

    /// Calls `f` on this statement and every sub-statement (pre-order).
    pub fn visit(&self, f: &mut impl FnMut(&Stmt)) {
        f(self);
        match self {
            Stmt::Seq(a, b) | Stmt::Loop(a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Stmt::If(_, a, b) => {
                a.visit(f);
                b.visit(f);
            }
            _ => {}
        }
    }

    /// Number of AST nodes in the statement, expressions included.
    pub fn node_count(&self) -> u64 {
        match self {
            Stmt::Skip | Stmt::Break | Stmt::Continue => 1,
            Stmt::Assign(lv, e) => 1 + lv.node_count() + e.node_count(),
            Stmt::Call(_, _, args) => 1 + args.iter().map(Expr::node_count).sum::<u64>(),
            Stmt::Seq(a, b) | Stmt::Loop(a, b) => 1 + a.node_count() + b.node_count(),
            Stmt::If(c, t, e) => 1 + c.node_count() + t.node_count() + e.node_count(),
            Stmt::Return(e) => 1 + e.as_ref().map_or(0, Expr::node_count),
        }
    }

    /// Names of all functions this statement calls (directly).
    pub fn callees(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.visit(&mut |s| {
            if let Stmt::Call(_, f, _) = s {
                if !out.contains(f) {
                    out.push(f.clone());
                }
            }
        });
        out
    }
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stmt::Skip => write!(f, "skip;"),
            Stmt::Assign(lv, e) => write!(f, "{lv} = {e};"),
            Stmt::Call(Some(d), g, args) => {
                write!(f, "{d} = {g}(")?;
                fmt_args(f, args)?;
                write!(f, ");")
            }
            Stmt::Call(None, g, args) => {
                write!(f, "{g}(")?;
                fmt_args(f, args)?;
                write!(f, ");")
            }
            Stmt::Seq(a, b) => write!(f, "{a} {b}"),
            Stmt::If(c, t, e) => write!(f, "if ({c}) {{ {t} }} else {{ {e} }}"),
            Stmt::Loop(b, i) => write!(f, "loop {{ {b} /* incr: */ {i} }}"),
            Stmt::Break => write!(f, "break;"),
            Stmt::Continue => write!(f, "continue;"),
            Stmt::Return(Some(e)) => write!(f, "return {e};"),
            Stmt::Return(None) => write!(f, "return;"),
        }
    }
}

fn fmt_args(f: &mut fmt::Formatter<'_>, args: &[Expr]) -> fmt::Result {
    for (i, a) in args.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{a}")?;
    }
    Ok(())
}

/// A local variable declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalVar {
    /// Variable name.
    pub name: String,
    /// Declared type.
    pub ty: Ty,
}

/// An internal function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Return type, or `None` for `void`.
    pub ret: Option<Ty>,
    /// Parameters in order (always scalar types).
    pub params: Vec<LocalVar>,
    /// Local variables.
    pub locals: Vec<LocalVar>,
    /// Function body.
    pub body: Arc<Stmt>,
    /// Names of locals that must live in memory: arrays, and scalars whose
    /// address is taken. Filled in by the type checker.
    pub addressable: HashSet<String>,
}

impl Function {
    /// Looks up the declared type of a parameter or local.
    pub fn var_ty(&self, name: &str) -> Option<&Ty> {
        self.params
            .iter()
            .chain(&self.locals)
            .find(|v| v.name == name)
            .map(|v| &v.ty)
    }

    /// True when `name` is a parameter.
    pub fn is_param(&self, name: &str) -> bool {
        self.params.iter().any(|p| p.name == name)
    }
}

/// An external function declaration (`extern u32 f(u32, u32);`).
///
/// Externals produce I/O events when called; their result is computed by a
/// deterministic hash of the arguments so that every interpreter in the
/// pipeline observes identical I/O traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct External {
    /// Function name.
    pub name: String,
    /// Return type, or `None` for void.
    pub ret: Option<Ty>,
    /// Number of parameters.
    pub arity: usize,
}

/// A global variable definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalVar {
    /// Global name.
    pub name: String,
    /// Declared type.
    pub ty: Ty,
    /// Initial word values; missing words are zero.
    pub init: Vec<u32>,
}

/// A complete Clight program: globals, externals, functions, and `main`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// Global variables.
    pub globals: Vec<GlobalVar>,
    /// External (I/O) function declarations.
    pub externals: Vec<External>,
    /// Internal function definitions.
    pub functions: Vec<Function>,
}

impl Program {
    /// Looks up an internal function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Looks up an external declaration by name.
    pub fn external(&self, name: &str) -> Option<&External> {
        self.externals.iter().find(|e| e.name == name)
    }

    /// Looks up a global variable by name.
    pub fn global(&self, name: &str) -> Option<&GlobalVar> {
        self.globals.iter().find(|g| g.name == name)
    }

    /// Names of all internal functions, in definition order.
    pub fn function_names(&self) -> impl Iterator<Item = &str> {
        self.functions.iter().map(|f| f.name.as_str())
    }

    /// Total number of AST nodes across all function bodies (one node per
    /// function on top of its body).
    pub fn node_count(&self) -> u64 {
        self.functions.iter().map(|f| 1 + f.body.node_count()).sum()
    }
}
