//! Continuation-based small-step semantics for Clight (§4.2 of the paper),
//! instrumented with `call(f)`/`ret(f)` memory events.
//!
//! States mirror CompCert's Clight semantics: regular statement execution
//! `(S, K, σ)`, call states, and return states. Continuations `K` record
//! the local control flow (`Kseq`, `Kloop1`, `Kloop2`) and the logical call
//! stack (`Kcall`). A `call(f)` event is emitted when entering an internal
//! function and `ret(f)` when leaving it, so the weight of the produced
//! trace under a stack metric is exactly the peak stack usage of the
//! execution.

use crate::ast::{Expr, External, Function, Program, Stmt};
use crate::Ty;
use mem::{BlockId, Memory, Value};
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;
use trace::{Behavior, Event, Trace};

/// Deterministic result of an external (I/O) function: a small hash of the
/// name and arguments. Every interpreter in the pipeline uses this same
/// model, so I/O traces must agree exactly across compilation.
pub fn io_result(name: &str, args: &[u32]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for b in name.bytes() {
        h = (h ^ u32::from(b)).wrapping_mul(0x0100_0193);
    }
    for a in args {
        h = (h ^ a).wrapping_mul(0x0100_0193);
    }
    h
}

/// The global environment: memory blocks for globals plus function tables.
#[derive(Debug, Clone)]
pub struct GlobalEnv {
    globals: HashMap<String, (BlockId, Ty)>,
    functions: HashMap<String, Rc<Function>>,
    externals: HashMap<String, External>,
}

impl GlobalEnv {
    /// Allocates and initializes global blocks in `memory`.
    ///
    /// Globals are zero-initialized (C semantics) and then overwritten by
    /// their explicit initializers.
    pub fn new(program: &Program, memory: &mut Memory) -> GlobalEnv {
        let mut globals = HashMap::new();
        for g in &program.globals {
            let b = memory.alloc(g.ty.size());
            let words = g.ty.size() / 4;
            for i in 0..words {
                let v = g.init.get(i as usize).copied().unwrap_or(0);
                memory
                    .store(b, i * 4, Value::Int(v))
                    .expect("in-bounds global init");
            }
            globals.insert(g.name.clone(), (b, g.ty.clone()));
        }
        GlobalEnv {
            globals,
            functions: program
                .functions
                .iter()
                .map(|f| (f.name.clone(), Rc::new(f.clone())))
                .collect(),
            externals: program
                .externals
                .iter()
                .map(|e| (e.name.clone(), e.clone()))
                .collect(),
        }
    }

    /// Block and type of a global.
    pub fn global(&self, name: &str) -> Option<&(BlockId, Ty)> {
        self.globals.get(name)
    }
}

/// The local environment of one activation: scalar temporaries `θ` plus
/// one memory block per addressable local.
#[derive(Debug, Clone, Default)]
struct LocalEnv {
    fname: Rc<str>,
    scalars: HashMap<String, Value>,
    blocks: HashMap<String, (BlockId, Ty)>,
}

/// A continuation, as in the paper:
/// `K ::= Kstop | Kseq S K | Kloop S K | Kcall x f θ K`.
#[derive(Debug, Clone)]
enum Cont {
    Stop,
    Seq(Arc<Stmt>, Rc<Cont>),
    /// Executing the loop body; fall-through or `continue` proceeds to the
    /// increment statement.
    Loop1(Arc<Stmt>, Arc<Stmt>, Rc<Cont>),
    /// Executing the loop increment; fall-through restarts the body.
    Loop2(Arc<Stmt>, Arc<Stmt>, Rc<Cont>),
    /// A stack frame: destination variable, saved caller environment.
    Call(Option<String>, Box<LocalEnv>, Rc<Cont>),
}

#[derive(Debug)]
enum MachState {
    /// `(S, K, σ)`.
    Stmt(Arc<Stmt>, Rc<Cont>),
    /// About to enter `fname` with evaluated arguments.
    Call(String, Vec<Value>, Option<String>, Rc<Cont>),
    /// Returning `value` through `K`.
    Return(Value, Rc<Cont>),
    Finished(u32),
}

/// A runtime error: the program *goes wrong*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeError(pub String);

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for RuntimeError {}

impl From<mem::MemError> for RuntimeError {
    fn from(e: mem::MemError) -> Self {
        RuntimeError(e.to_string())
    }
}

/// The Clight small-step interpreter.
///
/// # Examples
///
/// ```
/// let mut p = clight::parse("u32 f(u32 x) { return x + 1; }
///                            int main() { u32 r; r = f(41); return r; }").unwrap();
/// clight::typecheck(&mut p).unwrap();
/// let behavior = clight::Executor::run_main(&p, 10_000);
/// assert_eq!(behavior.return_code(), Some(42));
/// assert_eq!(behavior.trace().events().len(), 4); // call(main) call(f) ret(f) ret(main)
/// ```
#[derive(Debug)]
pub struct Executor {
    genv: GlobalEnv,
    memory: Memory,
    env: LocalEnv,
    state: MachState,
    trace: Trace,
    steps: u64,
    /// Whether the entry function returns a value; void entry functions
    /// finish with exit code 0.
    entry_returns: bool,
}

impl Executor {
    /// Creates an executor poised to call `fname(args)`.
    ///
    /// # Errors
    ///
    /// Fails when `fname` is not an internal function of `program` or the
    /// arity does not match.
    pub fn new(program: &Program, fname: &str, args: Vec<Value>) -> Result<Executor, RuntimeError> {
        let mut memory = Memory::new();
        let genv = GlobalEnv::new(program, &mut memory);
        let f = genv
            .functions
            .get(fname)
            .ok_or_else(|| RuntimeError(format!("no function `{fname}`")))?;
        if f.params.len() != args.len() {
            return Err(RuntimeError(format!(
                "`{fname}` expects {} arguments, got {}",
                f.params.len(),
                args.len()
            )));
        }
        let entry_returns = f.ret.is_some();
        Ok(Executor {
            genv,
            memory,
            env: LocalEnv::default(),
            state: MachState::Call(fname.to_owned(), args, None, Rc::new(Cont::Stop)),
            trace: Trace::new(),
            steps: 0,
            entry_returns,
        })
    }

    /// Runs `main()` of `program` for at most `fuel` steps and returns its
    /// behavior (converging, diverging — i.e. fuel exhausted — or wrong).
    pub fn run_main(program: &Program, fuel: u64) -> Behavior {
        match Executor::new(program, "main", Vec::new()) {
            Ok(ex) => ex.run(fuel),
            Err(e) => Behavior::Fails(Trace::new(), e.0),
        }
    }

    /// Runs `fname(args)` for at most `fuel` steps.
    pub fn run_function(program: &Program, fname: &str, args: Vec<Value>, fuel: u64) -> Behavior {
        match Executor::new(program, fname, args) {
            Ok(ex) => ex.run(fuel),
            Err(e) => Behavior::Fails(Trace::new(), e.0),
        }
    }

    /// Runs to completion or fuel exhaustion.
    pub fn run(mut self, fuel: u64) -> Behavior {
        while self.steps < fuel {
            match self.step() {
                Ok(None) => {}
                Ok(Some(code)) => return Behavior::Converges(self.trace, code),
                Err(e) => return Behavior::Fails(self.trace, e.0),
            }
        }
        Behavior::Diverges(self.trace)
    }

    /// Number of small steps executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The trace produced so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Performs one small step. Returns `Some(code)` when the program has
    /// finished with return code `code`.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] when the program goes wrong.
    pub fn step(&mut self) -> Result<Option<u32>, RuntimeError> {
        self.steps += 1;
        let state = std::mem::replace(&mut self.state, MachState::Finished(0));
        match state {
            MachState::Finished(code) => Ok(Some(code)),
            MachState::Stmt(s, k) => {
                self.step_stmt(&s, k)?;
                Ok(None)
            }
            MachState::Call(fname, args, dest, k) => {
                self.enter_function(&fname, args, dest, k)?;
                Ok(None)
            }
            MachState::Return(v, k) => self.step_return(v, k),
        }
    }

    fn step_stmt(&mut self, s: &Stmt, k: Rc<Cont>) -> Result<(), RuntimeError> {
        match s {
            Stmt::Skip => self.unwind_skip(k),
            Stmt::Assign(lv, e) => {
                let v = self.eval(e)?;
                self.assign(lv, v)?;
                self.state = MachState::Stmt(Arc::new(Stmt::Skip), k);
                Ok(())
            }
            Stmt::Call(dest, fname, args) => {
                let vals: Vec<Value> = args
                    .iter()
                    .map(|a| self.eval(a))
                    .collect::<Result<_, _>>()?;
                self.state = MachState::Call(fname.clone(), vals, dest.clone(), k);
                Ok(())
            }
            Stmt::Seq(s1, s2) => {
                self.state = MachState::Stmt(s1.clone(), Rc::new(Cont::Seq(s2.clone(), k)));
                Ok(())
            }
            Stmt::If(c, t, e) => {
                let v = self.eval(c)?;
                let branch = if truthy(v)? { t } else { e };
                self.state = MachState::Stmt(branch.clone(), k);
                Ok(())
            }
            Stmt::Loop(body, incr) => {
                self.state = MachState::Stmt(
                    body.clone(),
                    Rc::new(Cont::Loop1(body.clone(), incr.clone(), k)),
                );
                Ok(())
            }
            Stmt::Break => self.unwind_break(k),
            Stmt::Continue => self.unwind_continue(k),
            Stmt::Return(e) => {
                let v = match e {
                    Some(e) => self.eval(e)?,
                    None => Value::Undef,
                };
                self.leave_function()?;
                self.state = MachState::Return(v, k);
                Ok(())
            }
        }
    }

    /// `skip` with the various continuations.
    fn unwind_skip(&mut self, k: Rc<Cont>) -> Result<(), RuntimeError> {
        match k.as_ref() {
            Cont::Stop | Cont::Call(..) => {
                // Fell off the end of a function body: return undef.
                self.leave_function()?;
                self.state = MachState::Return(Value::Undef, k);
                Ok(())
            }
            Cont::Seq(s2, k2) => {
                self.state = MachState::Stmt(s2.clone(), k2.clone());
                Ok(())
            }
            Cont::Loop1(body, incr, k2) => {
                // Body finished: run the increment.
                self.state = MachState::Stmt(
                    incr.clone(),
                    Rc::new(Cont::Loop2(body.clone(), incr.clone(), k2.clone())),
                );
                Ok(())
            }
            Cont::Loop2(body, incr, k2) => {
                // Increment finished: restart the body.
                self.state = MachState::Stmt(
                    body.clone(),
                    Rc::new(Cont::Loop1(body.clone(), incr.clone(), k2.clone())),
                );
                Ok(())
            }
        }
    }

    fn unwind_break(&mut self, k: Rc<Cont>) -> Result<(), RuntimeError> {
        match k.as_ref() {
            Cont::Seq(_, k2) => self.unwind_break(k2.clone()),
            Cont::Loop1(_, _, k2) | Cont::Loop2(_, _, k2) => {
                self.state = MachState::Stmt(Arc::new(Stmt::Skip), k2.clone());
                Ok(())
            }
            _ => Err(RuntimeError("break outside of a loop".into())),
        }
    }

    fn unwind_continue(&mut self, k: Rc<Cont>) -> Result<(), RuntimeError> {
        match k.as_ref() {
            Cont::Seq(_, k2) => self.unwind_continue(k2.clone()),
            Cont::Loop1(body, incr, k2) => {
                self.state = MachState::Stmt(
                    incr.clone(),
                    Rc::new(Cont::Loop2(body.clone(), incr.clone(), k2.clone())),
                );
                Ok(())
            }
            _ => Err(RuntimeError("continue outside of a loop body".into())),
        }
    }

    fn enter_function(
        &mut self,
        fname: &str,
        args: Vec<Value>,
        dest: Option<String>,
        k: Rc<Cont>,
    ) -> Result<(), RuntimeError> {
        if let Some(f) = self.genv.functions.get(fname).cloned() {
            self.trace.push(Event::call(fname));
            let caller = std::mem::take(&mut self.env);
            let mut env = LocalEnv {
                fname: Rc::from(fname),
                scalars: HashMap::new(),
                blocks: HashMap::new(),
            };
            for (p, v) in f.params.iter().zip(args) {
                env.scalars.insert(p.name.clone(), v);
            }
            for l in &f.locals {
                if f.addressable.contains(&l.name) {
                    let b = self.memory.alloc(l.ty.size());
                    env.blocks.insert(l.name.clone(), (b, l.ty.clone()));
                } else {
                    env.scalars.insert(l.name.clone(), Value::Undef);
                }
            }
            self.env = env;
            self.state = MachState::Stmt(
                f.body.clone(),
                Rc::new(Cont::Call(dest, Box::new(caller), k)),
            );
            return Ok(());
        }
        if let Some(ext) = self.genv.externals.get(fname) {
            // External call: I/O event, no stack cost.
            let ints: Vec<u32> = args
                .iter()
                .map(|v| v.as_int().map_err(RuntimeError::from))
                .collect::<Result<_, _>>()?;
            let result = io_result(fname, &ints);
            self.trace.push(Event::io(fname, ints, result));
            if let Some(d) = dest {
                if ext.ret.is_none() {
                    return Err(RuntimeError(format!(
                        "void external `{fname}` used as a value"
                    )));
                }
                self.assign(&Expr::Var(d), Value::Int(result))?;
            }
            self.state = MachState::Stmt(Arc::new(Stmt::Skip), k);
            return Ok(());
        }
        Err(RuntimeError(format!(
            "call to undefined function `{fname}`"
        )))
    }

    /// Frees the addressable blocks of the current activation and emits the
    /// `ret(f)` event.
    fn leave_function(&mut self) -> Result<(), RuntimeError> {
        for (b, _) in self.env.blocks.values() {
            self.memory.free(*b)?;
        }
        self.trace.push(Event::ret(self.env.fname.as_ref()));
        Ok(())
    }

    fn step_return(&mut self, v: Value, k: Rc<Cont>) -> Result<Option<u32>, RuntimeError> {
        match k.as_ref() {
            Cont::Stop => {
                let code = match v {
                    Value::Int(n) => n,
                    Value::Undef if !self.entry_returns => 0,
                    Value::Undef => {
                        return Err(RuntimeError(
                            "main finished without returning a value".into(),
                        ))
                    }
                    other => {
                        return Err(RuntimeError(format!(
                            "main returned a non-integer value {other}"
                        )))
                    }
                };
                self.state = MachState::Finished(code);
                Ok(None)
            }
            Cont::Call(dest, saved, k2) => {
                // The outermost frame is the entry call (`main`): returning
                // through it finishes the program.
                if matches!(k2.as_ref(), Cont::Stop) {
                    return self.step_return(v, k2.clone());
                }
                self.env = (**saved).clone();
                if let Some(d) = dest {
                    self.assign(&Expr::Var(d.clone()), v)?;
                }
                self.state = MachState::Stmt(Arc::new(Stmt::Skip), k2.clone());
                Ok(None)
            }
            // Return unwinds local control flow without extra steps.
            Cont::Seq(_, k2) | Cont::Loop1(_, _, k2) | Cont::Loop2(_, _, k2) => {
                self.step_return(v, k2.clone())
            }
        }
    }

    // ---- expressions --------------------------------------------------------

    /// Big-step, side-effect-free expression evaluation.
    fn eval(&self, e: &Expr) -> Result<Value, RuntimeError> {
        match e {
            Expr::Const(n, _) => Ok(Value::Int(*n)),
            Expr::Var(x) => {
                if let Some(v) = self.env.scalars.get(x) {
                    return Ok(*v);
                }
                if let Some((b, ty)) = self.env.blocks.get(x) {
                    return self.load_var(*b, ty);
                }
                if let Some((b, ty)) = self.genv.globals.get(x) {
                    return self.load_var(*b, ty);
                }
                Err(RuntimeError(format!("undefined variable `{x}`")))
            }
            Expr::Unop(op, a) => {
                let v = self.eval(a)?;
                mem::eval_unop(*op, v).map_err(RuntimeError::from)
            }
            Expr::Binop(op, a, b) => {
                let va = self.eval(a)?;
                let vb = self.eval(b)?;
                mem::eval_binop(*op, va, vb).map_err(RuntimeError::from)
            }
            Expr::Index(..) | Expr::Deref(_) => {
                let (b, off) = self.lvalue_addr(e)?;
                self.memory.load(b, off).map_err(RuntimeError::from)
            }
            Expr::Addr(lv) => {
                let (b, off) = self.lvalue_addr(lv)?;
                Ok(Value::Ptr(b, off))
            }
            Expr::Cond(c, t, f) => {
                let v = self.eval(c)?;
                if truthy(v)? {
                    self.eval(t)
                } else {
                    self.eval(f)
                }
            }
            Expr::Cast(_, a) => self.eval(a),
            Expr::Call0(fname, _) => Err(RuntimeError(format!(
                "unelaborated call to `{fname}` in expression"
            ))),
        }
    }

    /// The rvalue of a variable that lives in memory: arrays decay to a
    /// pointer to their first element, scalars are loaded.
    fn load_var(&self, b: BlockId, ty: &Ty) -> Result<Value, RuntimeError> {
        if matches!(ty, Ty::Array(..)) {
            Ok(Value::Ptr(b, 0))
        } else {
            self.memory.load(b, 0).map_err(RuntimeError::from)
        }
    }

    /// Address of an lvalue expression.
    fn lvalue_addr(&self, e: &Expr) -> Result<(BlockId, u32), RuntimeError> {
        match e {
            Expr::Var(x) => {
                if let Some((b, _)) = self.env.blocks.get(x) {
                    return Ok((*b, 0));
                }
                if let Some((b, _)) = self.genv.globals.get(x) {
                    return Ok((*b, 0));
                }
                Err(RuntimeError(format!("`{x}` is not addressable")))
            }
            Expr::Index(a, i) => {
                let base = self.eval(a)?;
                let (b, off) = base.as_ptr().map_err(RuntimeError::from)?;
                let idx = self.eval(i)?.as_int().map_err(RuntimeError::from)?;
                Ok((b, off.wrapping_add(idx.wrapping_mul(4))))
            }
            Expr::Deref(p) => {
                let v = self.eval(p)?;
                v.as_ptr().map_err(RuntimeError::from)
            }
            other => Err(RuntimeError(format!("`{other}` is not an lvalue"))),
        }
    }

    fn assign(&mut self, lv: &Expr, v: Value) -> Result<(), RuntimeError> {
        if let Expr::Var(x) = lv {
            if let Some(slot) = self.env.scalars.get_mut(x) {
                *slot = v;
                return Ok(());
            }
        }
        let (b, off) = self.lvalue_addr(lv)?;
        self.memory.store(b, off, v).map_err(RuntimeError::from)
    }
}

/// C truthiness: zero is false, nonzero and pointers are true.
fn truthy(v: Value) -> Result<bool, RuntimeError> {
    match v {
        Value::Int(n) => Ok(n != 0),
        Value::Ptr(..) => Ok(true),
        other => Err(RuntimeError(format!(
            "branch condition evaluated to {other}"
        ))),
    }
}
