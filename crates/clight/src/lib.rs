//! CompCert Clight for `stackbound`: a C-subset front end (lexer, parser,
//! type checker) and the paper's continuation-based small-step semantics
//! with `call`/`ret` memory events (§4 of *End-to-End Verification of
//! Stack-Space Bounds for C Programs*, PLDI 2014).
//!
//! The accepted language matches the paper's benchmarks: `u32`/`int`
//! scalars, one-dimensional arrays, pointers to scalars, side-effect-free
//! expressions, structured control flow (`if`, `while`, `for`, `do`,
//! `break`, `continue`, `return`), and function calls in statement
//! position. `switch` is accepted in its break-terminated form and lowered
//! to if-else chains (Quantitative CompCert supports `switch` even though
//! the paper's logic does not, §4.4). `goto`, function pointers, and
//! variable-length arrays are not supported — the same restrictions as
//! the paper's logic subset and (for VLAs) Quantitative CompCert itself.
//!
//! # Examples
//!
//! ```
//! use trace::Metric;
//!
//! let src = "
//!     u32 g(u32 x) { return x * 2; }
//!     int main() { u32 r; r = g(21); return r; }
//! ";
//! let mut program = clight::parse(src)?;
//! clight::typecheck(&mut program)?;
//! let behavior = clight::Executor::run_main(&program, 1_000_000);
//! assert_eq!(behavior.return_code(), Some(42));
//!
//! // Weigh the trace under a metric assigning frame sizes to functions.
//! let metric = Metric::from_pairs([("main", 16u32), ("g", 8)]);
//! assert_eq!(behavior.trace().weight(&metric), 24);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
mod lex;
mod parse;
pub mod pretty;
mod sem;
mod typecheck;
mod types;

pub use ast::{Expr, External, Function, GlobalVar, LocalVar, Program, Stmt};
pub use lex::{tokenize, LexError, Token};
pub use parse::{const_eval, parse, parse_with_params, ParseError};
pub use sem::{io_result, Executor, GlobalEnv, RuntimeError};
pub use typecheck::{typecheck, TypeError};
pub use types::Ty;

/// Parses and type-checks in one call; the common front-end entry point.
///
/// # Errors
///
/// Returns the parse or type error message.
///
/// # Examples
///
/// ```
/// let program = clight::frontend("int main() { return 7; }", &[]).unwrap();
/// assert_eq!(program.functions.len(), 1);
/// ```
pub fn frontend(src: &str, params: &[(&str, u32)]) -> Result<Program, String> {
    let _span = obs::span("clight/frontend");
    let mut p = parse_with_params(src, params).map_err(|e| e.to_string())?;
    obs::counter("clight/ast_nodes", p.node_count());
    obs::counter("clight/functions", p.functions.len() as u64);
    typecheck(&mut p).map_err(|e| e.to_string())?;
    Ok(p)
}

#[cfg(test)]
mod tests;
