//! Types of the Clight subset.

use std::fmt;

/// A Clight type in our subset.
///
/// Everything is word-sized (4 bytes) except arrays. This matches the
/// paper's benchmarks, which manipulate `u32` words, word arrays, and
/// pointers to words. Arrays of arrays are rejected by the type checker
/// (multi-dimensional tables in the benchmark ports are flattened).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Ty {
    /// Unsigned 32-bit integer (`u32`, `unsigned`).
    U32,
    /// Signed 32-bit integer (`int`).
    I32,
    /// Pointer to a value of the element type.
    Ptr(Box<Ty>),
    /// Array with a compile-time length.
    Array(Box<Ty>, u32),
}

impl Ty {
    /// Size of a value of this type in bytes.
    ///
    /// # Examples
    ///
    /// ```
    /// # use clight::Ty;
    /// assert_eq!(Ty::U32.size(), 4);
    /// assert_eq!(Ty::Array(Box::new(Ty::U32), 10).size(), 40);
    /// ```
    pub fn size(&self) -> u32 {
        match self {
            Ty::U32 | Ty::I32 | Ty::Ptr(_) => 4,
            Ty::Array(elem, n) => elem.size() * n,
        }
    }

    /// True for `U32`/`I32`.
    pub fn is_integer(&self) -> bool {
        matches!(self, Ty::U32 | Ty::I32)
    }

    /// True for unsigned integers and pointers (C comparison semantics).
    pub fn is_unsigned(&self) -> bool {
        matches!(self, Ty::U32 | Ty::Ptr(_))
    }

    /// True for scalar (word-sized) types that fit in a register.
    pub fn is_scalar(&self) -> bool {
        !matches!(self, Ty::Array(..))
    }

    /// The element type for arrays and pointers.
    pub fn element(&self) -> Option<&Ty> {
        match self {
            Ty::Array(e, _) | Ty::Ptr(e) => Some(e),
            _ => None,
        }
    }

    /// The pointer type this type *decays* to in rvalue position:
    /// arrays decay to pointers to their element type, everything else is
    /// unchanged.
    pub fn decayed(&self) -> Ty {
        match self {
            Ty::Array(e, _) => Ty::Ptr(e.clone()),
            other => other.clone(),
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::U32 => write!(f, "u32"),
            Ty::I32 => write!(f, "int"),
            Ty::Ptr(e) => write!(f, "{e}*"),
            Ty::Array(e, n) => write!(f, "{e}[{n}]"),
        }
    }
}
