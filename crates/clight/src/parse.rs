//! Recursive-descent parser for the C subset, lowering to Clight.
//!
//! The parser performs the same lowerings as CompCert's `SimplExpr` /
//! front end: `while`/`for` become `Sloop`, short-circuit `&&`/`||` become
//! pure conditional expressions (legal because our expressions are
//! side-effect free), compound assignments and `++`/`--` become plain
//! assignments, and declarations with initializers become declarations
//! plus assignment statements.
//!
//! Compile-time parameters (the paper's `ALEN`/`SEED` section hypotheses)
//! are injected via [`parse_with_params`]: identifiers bound there act as
//! integer constants, so a benchmark can be re-elaborated for each
//! parameter value exactly like re-instantiating a Coq section.

use crate::ast::{External, Function, GlobalVar, LocalVar, Program, Stmt};
use crate::lex::{tokenize, SpannedToken, Token};
use crate::{Expr, Ty};
use mem::{Binop, Unop};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// A parse error with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Description of the problem.
    pub message: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<crate::lex::LexError> for ParseError {
    fn from(e: crate::lex::LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
        }
    }
}

/// Parses a C translation unit into a Clight [`Program`].
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax error.
///
/// # Examples
///
/// ```
/// let p = clight::parse("u32 f(u32 x) { return x + 1; } int main() { return 0; }").unwrap();
/// assert_eq!(p.functions.len(), 2);
/// ```
pub fn parse(src: &str) -> Result<Program, ParseError> {
    parse_with_params(src, &[])
}

/// Parses with compile-time integer parameters in scope (see module docs).
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax error.
///
/// # Examples
///
/// ```
/// let p = clight::parse_with_params("u32 a[ALEN]; int main() { return 0; }",
///                                   &[("ALEN", 16)]).unwrap();
/// assert_eq!(p.globals[0].ty.size(), 64);
/// ```
pub fn parse_with_params(src: &str, params: &[(&str, u32)]) -> Result<Program, ParseError> {
    let _span = obs::span("clight/parse");
    let tokens = tokenize(src)?;
    obs::counter("clight/tokens", tokens.len() as u64);
    // `u32` is predeclared (every benchmark starts from the paper's
    // `typedef unsigned int u32;`, which is also accepted explicitly).
    let mut typedefs = HashMap::new();
    typedefs.insert("u32".to_owned(), Ty::U32);
    let mut p = Parser {
        tokens,
        pos: 0,
        typedefs,
        consts: params.iter().map(|(k, v)| ((*k).to_owned(), *v)).collect(),
        program: Program::default(),
        temp_counter: 0,
    };
    p.translation_unit()?;
    Ok(p.program)
}

struct Parser {
    tokens: Vec<SpannedToken>,
    pos: usize,
    typedefs: HashMap<String, Ty>,
    consts: HashMap<String, u32>,
    program: Program,
    temp_counter: u32,
}

/// Locals collected while parsing one function body.
struct FnCtx {
    locals: Vec<LocalVar>,
    names: HashSet<String>,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos].token
    }

    fn peek2(&self) -> &Token {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].token
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn next(&mut self) -> Token {
        let t = self.tokens[self.pos].token.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: msg.into(),
            line: self.line(),
        })
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Token::Punct(q) if *q == p) {
            self.next();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            self.err(format!("expected `{p}`, found `{}`", self.peek()))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Token::Ident(s) if s == kw) {
            self.next();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Token::Ident(s) => Ok(s),
            other => self.err(format!("expected identifier, found `{other}`")),
        }
    }

    // ---- types ------------------------------------------------------------

    /// True when the upcoming tokens start a type.
    fn at_type(&self) -> bool {
        match self.peek() {
            Token::Ident(s) => {
                matches!(s.as_str(), "unsigned" | "int" | "void" | "const")
                    || self.typedefs.contains_key(s)
            }
            _ => false,
        }
    }

    /// Parses a base type followed by `*` suffixes. Returns `None` for void.
    fn parse_type(&mut self) -> Result<Option<Ty>, ParseError> {
        self.eat_kw("const");
        let base = if self.eat_kw("void") {
            None
        } else if self.eat_kw("unsigned") {
            self.eat_kw("int");
            Some(Ty::U32)
        } else if self.eat_kw("int") {
            Some(Ty::I32)
        } else if let Token::Ident(s) = self.peek() {
            let s = s.clone();
            match self.typedefs.get(&s) {
                Some(ty) => {
                    let ty = ty.clone();
                    self.next();
                    Some(ty)
                }
                None => return self.err(format!("unknown type `{s}`")),
            }
        } else {
            return self.err(format!("expected type, found `{}`", self.peek()));
        };
        let mut ty = base;
        while self.eat_punct("*") {
            match ty {
                Some(t) => ty = Some(Ty::Ptr(Box::new(t))),
                None => return self.err("pointer to void is not supported"),
            }
        }
        Ok(ty)
    }

    // ---- top level ----------------------------------------------------------

    fn translation_unit(&mut self) -> Result<(), ParseError> {
        while !matches!(self.peek(), Token::Eof) {
            if self.eat_kw("typedef") {
                let ty = self.parse_type()?.ok_or_else(|| ParseError {
                    message: "typedef of void".into(),
                    line: self.line(),
                })?;
                let name = self.expect_ident()?;
                self.expect_punct(";")?;
                self.typedefs.insert(name, ty);
                continue;
            }
            if self.eat_kw("extern") {
                let ret = self.parse_type()?;
                let name = self.expect_ident()?;
                self.expect_punct("(")?;
                let mut arity = 0;
                if !self.eat_punct(")") {
                    loop {
                        if self.eat_kw("void") && matches!(self.peek(), Token::Punct(")")) {
                            // `(void)` parameter list
                        } else {
                            self.parse_type()?;
                            // Optional parameter name.
                            if matches!(self.peek(), Token::Ident(_)) {
                                self.next();
                            }
                            arity += 1;
                        }
                        if !self.eat_punct(",") {
                            break;
                        }
                    }
                    self.expect_punct(")")?;
                }
                self.expect_punct(";")?;
                self.program.externals.push(External { name, ret, arity });
                continue;
            }
            // `enum { A = 1, B = 2 };` defines compile-time constants.
            if self.eat_kw("enum") {
                self.expect_punct("{")?;
                let mut next_value = 0u32;
                loop {
                    let name = self.expect_ident()?;
                    if self.eat_punct("=") {
                        let e = self.ternary(None)?;
                        next_value = self.const_eval(&e)?;
                    }
                    self.consts.insert(name, next_value);
                    next_value = next_value.wrapping_add(1);
                    if !self.eat_punct(",") {
                        break;
                    }
                    if matches!(self.peek(), Token::Punct("}")) {
                        break;
                    }
                }
                self.expect_punct("}")?;
                self.expect_punct(";")?;
                continue;
            }
            let is_const = matches!(self.peek(), Token::Ident(s) if s == "const");
            let ty = self.parse_type()?;
            let name = self.expect_ident()?;
            if matches!(self.peek(), Token::Punct("(")) {
                self.function_def(ty, name)?;
            } else {
                self.global_def(ty, name, is_const)?;
            }
        }
        Ok(())
    }

    /// Parses one global declarator; a trailing comma continues with the
    /// next declarator of the same base type.
    fn global_def(
        &mut self,
        ty: Option<Ty>,
        name: String,
        is_const: bool,
    ) -> Result<(), ParseError> {
        let ty = match ty {
            Some(t) => t,
            None => return self.err("global of type void"),
        };
        let mut gty = ty.clone();
        if self.eat_punct("[") {
            let e = self.ternary(None)?;
            let n = self.const_eval(&e)?;
            self.expect_punct("]")?;
            gty = Ty::Array(Box::new(gty), n);
        }
        let mut init = Vec::new();
        if self.eat_punct("=") {
            if self.eat_punct("{") {
                while !matches!(self.peek(), Token::Punct("}")) {
                    let e = self.ternary(None)?;
                    init.push(self.const_eval(&e)?);
                    if !self.eat_punct(",") {
                        break;
                    }
                }
                self.expect_punct("}")?;
            } else {
                let e = self.ternary(None)?;
                let v = self.const_eval(&e)?;
                if is_const && gty.is_integer() {
                    // `const u32 N = 17;` acts as a compile-time constant
                    // and does not become a runtime global.
                    self.consts.insert(name, v);
                    if !self.eat_punct(",") {
                        return self.expect_punct(";");
                    }
                    let next = self.expect_ident()?;
                    return self.global_def(Some(ty), next, is_const);
                }
                init.push(v);
            }
        }
        self.program.globals.push(GlobalVar {
            name,
            ty: gty,
            init,
        });
        if self.eat_punct(",") {
            let next = self.expect_ident()?;
            return self.global_def(Some(ty), next, is_const);
        }
        self.expect_punct(";")
    }

    fn function_def(&mut self, ret: Option<Ty>, name: String) -> Result<(), ParseError> {
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.eat_punct(")") {
            loop {
                if self.eat_kw("void") && matches!(self.peek(), Token::Punct(")")) {
                    // `f(void)`
                } else {
                    let ty = self.parse_type()?.ok_or_else(|| ParseError {
                        message: "void parameter".into(),
                        line: self.line(),
                    })?;
                    let pname = self.expect_ident()?;
                    // `u32 a[]` parameter decays to pointer.
                    let ty = if self.eat_punct("[") {
                        self.expect_punct("]")?;
                        Ty::Ptr(Box::new(ty))
                    } else {
                        ty
                    };
                    params.push(LocalVar { name: pname, ty });
                }
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct(")")?;
        }
        let mut ctx = FnCtx {
            locals: Vec::new(),
            names: params.iter().map(|p| p.name.clone()).collect(),
        };
        let body = self.block(&mut ctx)?;
        self.program.functions.push(Function {
            name,
            ret,
            params,
            locals: ctx.locals,
            body: Arc::new(body),
            addressable: HashSet::new(),
        });
        Ok(())
    }

    // ---- statements ---------------------------------------------------------

    fn block(&mut self, ctx: &mut FnCtx) -> Result<Stmt, ParseError> {
        self.expect_punct("{")?;
        let mut stmts = Vec::new();
        while !self.eat_punct("}") {
            stmts.push(self.statement(ctx)?);
        }
        Ok(Stmt::block(stmts))
    }

    fn fresh_temp(&mut self, ctx: &mut FnCtx, ty: Ty) -> String {
        loop {
            let name = format!("__t{}", self.temp_counter);
            self.temp_counter += 1;
            if ctx.names.insert(name.clone()) {
                ctx.locals.push(LocalVar {
                    name: name.clone(),
                    ty,
                });
                return name;
            }
        }
    }

    fn statement(&mut self, ctx: &mut FnCtx) -> Result<Stmt, ParseError> {
        // Declarations.
        if self.at_type() {
            return self.declaration(ctx);
        }
        match self.peek().clone() {
            Token::Punct(";") => {
                self.next();
                Ok(Stmt::Skip)
            }
            Token::Punct("{") => self.block(ctx),
            Token::Ident(kw) if kw == "if" => {
                self.next();
                self.expect_punct("(")?;
                let cond = self.expression(Some(ctx))?;
                self.expect_punct(")")?;
                let then = self.statement(ctx)?;
                let els = if self.eat_kw("else") {
                    self.statement(ctx)?
                } else {
                    Stmt::Skip
                };
                Ok(Stmt::If(cond, Arc::new(then), Arc::new(els)))
            }
            Token::Ident(kw) if kw == "while" => {
                self.next();
                self.expect_punct("(")?;
                let cond = self.expression(Some(ctx))?;
                self.expect_punct(")")?;
                let body = self.statement(ctx)?;
                let guarded = Stmt::seq(
                    Stmt::If(cond, Arc::new(Stmt::Skip), Arc::new(Stmt::Break)),
                    body,
                );
                Ok(Stmt::Loop(Arc::new(guarded), Arc::new(Stmt::Skip)))
            }
            Token::Ident(kw) if kw == "do" => {
                self.next();
                let body = self.statement(ctx)?;
                if !self.eat_kw("while") {
                    return self.err("expected `while` after do-body");
                }
                self.expect_punct("(")?;
                let cond = self.expression(Some(ctx))?;
                self.expect_punct(")")?;
                self.expect_punct(";")?;
                let guarded = Stmt::seq(
                    body,
                    Stmt::If(cond, Arc::new(Stmt::Skip), Arc::new(Stmt::Break)),
                );
                Ok(Stmt::Loop(Arc::new(guarded), Arc::new(Stmt::Skip)))
            }
            Token::Ident(kw) if kw == "for" => {
                self.next();
                self.expect_punct("(")?;
                let init = if matches!(self.peek(), Token::Punct(";")) {
                    self.next();
                    Stmt::Skip
                } else if self.at_type() {
                    self.declaration(ctx)?
                } else {
                    let s = self.expr_statement(ctx)?;
                    self.expect_punct(";")?;
                    s
                };
                let cond = if matches!(self.peek(), Token::Punct(";")) {
                    Expr::uint(1)
                } else {
                    self.expression(Some(ctx))?
                };
                self.expect_punct(";")?;
                let step = if matches!(self.peek(), Token::Punct(")")) {
                    Stmt::Skip
                } else {
                    self.expr_statement(ctx)?
                };
                self.expect_punct(")")?;
                let body = self.statement(ctx)?;
                let guarded = Stmt::seq(
                    Stmt::If(cond, Arc::new(Stmt::Skip), Arc::new(Stmt::Break)),
                    body,
                );
                Ok(Stmt::seq(
                    init,
                    Stmt::Loop(Arc::new(guarded), Arc::new(step)),
                ))
            }
            Token::Ident(kw) if kw == "switch" => {
                self.next();
                self.parse_switch(ctx)
            }
            Token::Ident(kw) if kw == "return" => {
                self.next();
                let e = if matches!(self.peek(), Token::Punct(";")) {
                    None
                } else {
                    Some(self.expression(Some(ctx))?)
                };
                self.expect_punct(";")?;
                // `return f(args);` becomes `tmp = f(args); return tmp;`.
                if let Some(Expr::Call0(fname, args)) = e {
                    let tmp = self.fresh_temp(ctx, Ty::U32);
                    return Ok(Stmt::seq(
                        Stmt::Call(Some(tmp.clone()), fname, args),
                        Stmt::Return(Some(Expr::Var(tmp))),
                    ));
                }
                Ok(Stmt::Return(e))
            }
            Token::Ident(kw) if kw == "break" => {
                self.next();
                self.expect_punct(";")?;
                Ok(Stmt::Break)
            }
            Token::Ident(kw) if kw == "continue" => {
                self.next();
                self.expect_punct(";")?;
                Ok(Stmt::Continue)
            }
            _ => {
                let s = self.expr_statement(ctx)?;
                self.expect_punct(";")?;
                Ok(s)
            }
        }
    }

    /// Parses a `switch` statement and lowers it to an if-else chain.
    ///
    /// Quantitative CompCert supports `switch` even though the paper's
    /// logic does not (§4.4); we support the break-terminated fragment:
    /// every non-empty case body must end in `break` or `return` (empty
    /// bodies group their labels with the next case). Fallthrough into a
    /// non-empty body is rejected.
    fn parse_switch(&mut self, ctx: &mut FnCtx) -> Result<Stmt, ParseError> {
        self.expect_punct("(")?;
        let scrutinee = self.expression(Some(ctx))?;
        self.expect_punct(")")?;
        self.expect_punct("{")?;
        // Collect (labels, body) groups.
        let mut arms: Vec<(Vec<u32>, Vec<Stmt>)> = Vec::new();
        let mut default: Option<Vec<Stmt>> = None;
        let mut labels: Vec<u32> = Vec::new();
        let mut in_default = false;
        let mut body: Vec<Stmt> = Vec::new();
        loop {
            let at_case = matches!(self.peek(), Token::Ident(k) if k == "case");
            let at_default = matches!(self.peek(), Token::Ident(k) if k == "default");
            let at_end = matches!(self.peek(), Token::Punct("}"));
            if at_case || at_default || at_end {
                // Close the previous group, if it had a body.
                if !body.is_empty() || in_default {
                    // Strip the mandatory trailing break; bodies that never
                    // fall through (every path returns) are fine as-is.
                    match body.last() {
                        Some(Stmt::Break) => {
                            body.pop();
                        }
                        Some(last) if never_falls_through(last) => {}
                        _ if at_end && in_default => {}
                        _ => {
                            return self.err(
                                "switch case must end in `break` or `return` \
                                 (fallthrough is not supported)",
                            )
                        }
                    }
                    if in_default {
                        if default.is_some() {
                            return self.err("duplicate `default` in switch");
                        }
                        default = Some(std::mem::take(&mut body));
                    } else {
                        arms.push((std::mem::take(&mut labels), std::mem::take(&mut body)));
                    }
                    in_default = false;
                } else if at_end && !labels.is_empty() {
                    return self.err("trailing case labels with no body in switch");
                }
                if at_end {
                    self.next();
                    break;
                }
                if at_case {
                    self.next();
                    let e = self.ternary(Some(ctx))?;
                    labels.push(self.const_eval(&e)?);
                    self.expect_punct(":")?;
                } else {
                    self.next();
                    self.expect_punct(":")?;
                    if !labels.is_empty() {
                        return self.err("case labels grouped with `default` are not supported");
                    }
                    in_default = true;
                }
                continue;
            }
            body.push(self.statement(ctx)?);
        }
        // Lower to an if-else chain on a temporary holding the scrutinee.
        let tmp = self.fresh_temp(ctx, Ty::U32);
        let mut chain = default.map(Stmt::block).unwrap_or(Stmt::Skip);
        for (labels, body) in arms.into_iter().rev() {
            let mut cond: Option<Expr> = None;
            for l in labels {
                let test = Expr::binop(Binop::Eq, Expr::Var(tmp.clone()), Expr::uint(l));
                cond = Some(match cond {
                    None => test,
                    Some(c) => Expr::Cond(Box::new(c), Box::new(Expr::uint(1)), Box::new(test)),
                });
            }
            let cond = cond.ok_or_else(|| ParseError {
                message: "case body with no labels in switch".into(),
                line: self.line(),
            })?;
            chain = Stmt::If(cond, Arc::new(Stmt::block(body)), Arc::new(chain));
        }
        Ok(Stmt::seq(Stmt::Assign(Expr::Var(tmp), scrutinee), chain))
    }

    fn declaration(&mut self, ctx: &mut FnCtx) -> Result<Stmt, ParseError> {
        let base = self.parse_type()?.ok_or_else(|| ParseError {
            message: "declaration of void variable".into(),
            line: self.line(),
        })?;
        let mut stmts = Vec::new();
        loop {
            let mut ty = base.clone();
            while self.eat_punct("*") {
                ty = Ty::Ptr(Box::new(ty));
            }
            let name = self.expect_ident()?;
            if self.eat_punct("[") {
                let e = self.ternary(Some(ctx))?;
                let n = self.const_eval(&e)?;
                self.expect_punct("]")?;
                ty = Ty::Array(Box::new(ty), n);
            }
            if !ctx.names.insert(name.clone()) {
                return self.err(format!("duplicate local `{name}`"));
            }
            ctx.locals.push(LocalVar {
                name: name.clone(),
                ty,
            });
            if self.eat_punct("=") {
                let rhs = self.expression(Some(ctx))?;
                stmts.push(self.make_assign(ctx, Expr::Var(name), rhs)?);
            }
            if !self.eat_punct(",") {
                break;
            }
        }
        self.expect_punct(";")?;
        Ok(Stmt::block(stmts))
    }

    /// Parses an expression statement: assignment, compound assignment,
    /// increment/decrement, or a bare call.
    fn expr_statement(&mut self, ctx: &mut FnCtx) -> Result<Stmt, ParseError> {
        // `++x` / `--x` prefix forms.
        for (p, op) in [("++", Binop::Add), ("--", Binop::Sub)] {
            if matches!(self.peek(), Token::Punct(q) if *q == p) {
                self.next();
                let lv = self.unary(Some(ctx))?;
                return Ok(Stmt::Assign(lv.clone(), Expr::binop(op, lv, Expr::uint(1))));
            }
        }
        let lhs = self.unary(Some(ctx))?;
        // Bare call statement (`f(args);`).
        if let Expr::Call0(fname, args) = lhs {
            return Ok(Stmt::Call(None, fname, args));
        }
        // Postfix increment/decrement.
        for (p, op) in [("++", Binop::Add), ("--", Binop::Sub)] {
            if matches!(self.peek(), Token::Punct(q) if *q == p) {
                self.next();
                return Ok(Stmt::Assign(
                    lhs.clone(),
                    Expr::binop(op, lhs, Expr::uint(1)),
                ));
            }
        }
        // Compound assignments.
        for (p, op) in [
            ("+=", Binop::Add),
            ("-=", Binop::Sub),
            ("*=", Binop::Mul),
            ("/=", Binop::Divs),
            ("%=", Binop::Mods),
            ("&=", Binop::And),
            ("|=", Binop::Or),
            ("^=", Binop::Xor),
            ("<<=", Binop::Shl),
            (">>=", Binop::Shrs),
        ] {
            if matches!(self.peek(), Token::Punct(q) if *q == p) {
                self.next();
                let rhs = self.expression(Some(ctx))?;
                return Ok(Stmt::Assign(lhs.clone(), Expr::binop(op, lhs, rhs)));
            }
        }
        if self.eat_punct("=") {
            let rhs = self.expression(Some(ctx))?;
            return self.make_assign(ctx, lhs, rhs);
        }
        self.err(format!(
            "expected assignment or call statement, found `{}`",
            self.peek()
        ))
    }

    /// Builds an assignment, splitting out function calls on the right-hand
    /// side into Clight `Scall` statements (introducing a temporary when the
    /// destination is not a plain variable).
    fn make_assign(&mut self, ctx: &mut FnCtx, lv: Expr, rhs: Expr) -> Result<Stmt, ParseError> {
        if let Expr::Var(_) = &rhs {
            // plain variable copy — fall through
        }
        match rhs {
            Expr::Call0(fname, args) => match lv {
                Expr::Var(dest) => Ok(Stmt::Call(Some(dest), fname, args)),
                other => {
                    let tmp = self.fresh_temp(ctx, Ty::U32);
                    Ok(Stmt::seq(
                        Stmt::Call(Some(tmp.clone()), fname, args),
                        Stmt::Assign(other, Expr::Var(tmp)),
                    ))
                }
            },
            pure => Ok(Stmt::Assign(lv, pure)),
        }
    }

    fn call_args(&mut self, ctx: &mut FnCtx) -> Result<Vec<Expr>, ParseError> {
        self.expect_punct("(")?;
        let mut args = Vec::new();
        if !self.eat_punct(")") {
            loop {
                args.push(self.expression(Some(ctx))?);
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct(")")?;
        }
        Ok(args)
    }

    // ---- expressions ----------------------------------------------------------
    //
    // Precedence climbing. `ctx` is `Some` inside function bodies (where
    // calls may appear in RHS position) and `None` in constant contexts.

    fn expression(&mut self, ctx: Option<&mut FnCtx>) -> Result<Expr, ParseError> {
        self.ternary(ctx)
    }

    fn ternary(&mut self, ctx: Option<&mut FnCtx>) -> Result<Expr, ParseError> {
        let mut ctx = ctx;
        let c = self.logical_or(ctx.as_deref_mut())?;
        if self.eat_punct("?") {
            let t = self.ternary(ctx.as_deref_mut())?;
            self.expect_punct(":")?;
            let e = self.ternary(ctx)?;
            return Ok(Expr::Cond(Box::new(c), Box::new(t), Box::new(e)));
        }
        Ok(c)
    }

    fn logical_or(&mut self, mut ctx: Option<&mut FnCtx>) -> Result<Expr, ParseError> {
        let mut lhs = self.logical_and(ctx.as_deref_mut())?;
        while self.eat_punct("||") {
            let rhs = self.logical_and(ctx.as_deref_mut())?;
            lhs = Expr::Cond(
                Box::new(lhs),
                Box::new(Expr::uint(1)),
                Box::new(to_bool(rhs)),
            );
        }
        Ok(lhs)
    }

    fn logical_and(&mut self, mut ctx: Option<&mut FnCtx>) -> Result<Expr, ParseError> {
        let mut lhs = self.bit_or(ctx.as_deref_mut())?;
        while self.eat_punct("&&") {
            let rhs = self.bit_or(ctx.as_deref_mut())?;
            lhs = Expr::Cond(
                Box::new(lhs),
                Box::new(to_bool(rhs)),
                Box::new(Expr::uint(0)),
            );
        }
        Ok(lhs)
    }

    fn bit_or(&mut self, mut ctx: Option<&mut FnCtx>) -> Result<Expr, ParseError> {
        let mut lhs = self.bit_xor(ctx.as_deref_mut())?;
        while matches!(self.peek(), Token::Punct("|")) && !matches!(self.peek2(), Token::Punct("|"))
        {
            self.next();
            let rhs = self.bit_xor(ctx.as_deref_mut())?;
            lhs = Expr::binop(Binop::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn bit_xor(&mut self, mut ctx: Option<&mut FnCtx>) -> Result<Expr, ParseError> {
        let mut lhs = self.bit_and(ctx.as_deref_mut())?;
        while self.eat_punct("^") {
            let rhs = self.bit_and(ctx.as_deref_mut())?;
            lhs = Expr::binop(Binop::Xor, lhs, rhs);
        }
        Ok(lhs)
    }

    fn bit_and(&mut self, mut ctx: Option<&mut FnCtx>) -> Result<Expr, ParseError> {
        let mut lhs = self.equality(ctx.as_deref_mut())?;
        while matches!(self.peek(), Token::Punct("&")) && !matches!(self.peek2(), Token::Punct("&"))
        {
            self.next();
            let rhs = self.equality(ctx.as_deref_mut())?;
            lhs = Expr::binop(Binop::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn equality(&mut self, mut ctx: Option<&mut FnCtx>) -> Result<Expr, ParseError> {
        let mut lhs = self.relational(ctx.as_deref_mut())?;
        loop {
            let op = if self.eat_punct("==") {
                Binop::Eq
            } else if self.eat_punct("!=") {
                Binop::Ne
            } else {
                break;
            };
            let rhs = self.relational(ctx.as_deref_mut())?;
            lhs = Expr::binop(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn relational(&mut self, mut ctx: Option<&mut FnCtx>) -> Result<Expr, ParseError> {
        let mut lhs = self.shift(ctx.as_deref_mut())?;
        loop {
            // Parser emits signed comparisons; the type checker rewrites to
            // unsigned where C's conversions require it.
            let op = if self.eat_punct("<=") {
                Binop::Les
            } else if self.eat_punct(">=") {
                Binop::Ges
            } else if self.eat_punct("<") {
                Binop::Lts
            } else if self.eat_punct(">") {
                Binop::Gts
            } else {
                break;
            };
            let rhs = self.shift(ctx.as_deref_mut())?;
            lhs = Expr::binop(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn shift(&mut self, mut ctx: Option<&mut FnCtx>) -> Result<Expr, ParseError> {
        let mut lhs = self.additive(ctx.as_deref_mut())?;
        loop {
            let op = if self.eat_punct("<<") {
                Binop::Shl
            } else if self.eat_punct(">>") {
                Binop::Shrs
            } else {
                break;
            };
            let rhs = self.additive(ctx.as_deref_mut())?;
            lhs = Expr::binop(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn additive(&mut self, mut ctx: Option<&mut FnCtx>) -> Result<Expr, ParseError> {
        let mut lhs = self.multiplicative(ctx.as_deref_mut())?;
        loop {
            let op = if self.eat_punct("+") {
                Binop::Add
            } else if self.eat_punct("-") {
                Binop::Sub
            } else {
                break;
            };
            let rhs = self.multiplicative(ctx.as_deref_mut())?;
            lhs = Expr::binop(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self, mut ctx: Option<&mut FnCtx>) -> Result<Expr, ParseError> {
        let mut lhs = self.unary(ctx.as_deref_mut())?;
        loop {
            let op = if self.eat_punct("*") {
                Binop::Mul
            } else if self.eat_punct("/") {
                Binop::Divs
            } else if self.eat_punct("%") {
                Binop::Mods
            } else {
                break;
            };
            let rhs = self.unary(ctx.as_deref_mut())?;
            lhs = Expr::binop(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary(&mut self, ctx: Option<&mut FnCtx>) -> Result<Expr, ParseError> {
        if self.eat_punct("-") {
            let e = self.unary(ctx)?;
            return Ok(match e {
                Expr::Const(n, ty) => Expr::Const(n.wrapping_neg(), ty),
                e => Expr::Unop(Unop::Neg, Box::new(e)),
            });
        }
        if self.eat_punct("~") {
            let e = self.unary(ctx)?;
            return Ok(Expr::Unop(Unop::Not, Box::new(e)));
        }
        if self.eat_punct("!") {
            let e = self.unary(ctx)?;
            return Ok(Expr::Unop(Unop::BoolNot, Box::new(e)));
        }
        if self.eat_punct("*") {
            let e = self.unary(ctx)?;
            return Ok(Expr::Deref(Box::new(e)));
        }
        if self.eat_punct("&") {
            let e = self.unary(ctx)?;
            return Ok(Expr::Addr(Box::new(e)));
        }
        // Cast: `(` type `)` unary.
        if matches!(self.peek(), Token::Punct("(")) {
            let save = self.pos;
            self.next();
            if self.at_type() {
                if let Ok(Some(ty)) = self.parse_type() {
                    if self.eat_punct(")") {
                        let e = self.unary(ctx)?;
                        return Ok(Expr::Cast(ty, Box::new(e)));
                    }
                }
            }
            self.pos = save;
        }
        self.postfix(ctx)
    }

    fn postfix(&mut self, mut ctx: Option<&mut FnCtx>) -> Result<Expr, ParseError> {
        let mut e = self.primary(ctx.as_deref_mut())?;
        loop {
            if self.eat_punct("[") {
                let idx = self.expression(ctx.as_deref_mut())?;
                self.expect_punct("]")?;
                e = Expr::Index(Box::new(e), Box::new(idx));
            } else if matches!(self.peek(), Token::Punct("(")) {
                // Call in expression position: only allowed as the entire
                // right-hand side of an assignment (handled by make_assign).
                let fname = match &e {
                    Expr::Var(f) => f.clone(),
                    _ => return self.err("called object is not a function name"),
                };
                match ctx.as_deref_mut() {
                    Some(c) => {
                        let args = self.call_args(c)?;
                        e = Expr::Call0(fname, args);
                        // A call result cannot be used inside a larger
                        // expression (Clight restriction).
                        if !matches!(
                            self.peek(),
                            Token::Punct(";") | Token::Punct(")") | Token::Punct(",")
                        ) {
                            return self.err(
                                "function calls cannot be nested in expressions \
                                 (Clight restriction); assign the result to a variable first",
                            );
                        }
                        return Ok(e);
                    }
                    None => return self.err("function call in constant expression"),
                }
            } else {
                return Ok(e);
            }
        }
    }

    fn primary(&mut self, ctx: Option<&mut FnCtx>) -> Result<Expr, ParseError> {
        match self.next() {
            // C typing: a literal that fits in `int` is `int`; larger
            // literals (only reachable via hex) are `unsigned`.
            Token::Int(n) => Ok(if n <= i32::MAX as u32 {
                Expr::Const(n, Ty::I32)
            } else {
                Expr::uint(n)
            }),
            Token::Ident(name) => {
                if let Some(v) = self.consts.get(&name) {
                    return Ok(Expr::uint(*v));
                }
                Ok(Expr::Var(name))
            }
            Token::Punct("(") => {
                let e = self.expression(ctx)?;
                self.expect_punct(")")?;
                Ok(e)
            }
            other => self.err(format!("expected expression, found `{other}`")),
        }
    }

    // ---- constant evaluation ---------------------------------------------------

    fn const_eval(&self, e: &Expr) -> Result<u32, ParseError> {
        const_eval(e).ok_or_else(|| ParseError {
            message: format!("expression `{e}` is not a compile-time constant"),
            line: self.line(),
        })
    }
}

/// True when control can never flow past the statement (every path ends
/// in `return` or `break`). Used to validate switch case bodies.
fn never_falls_through(s: &Stmt) -> bool {
    match s {
        Stmt::Return(_) | Stmt::Break => true,
        Stmt::Seq(a, b) => never_falls_through(a) || never_falls_through(b),
        Stmt::If(_, t, e) => never_falls_through(t) && never_falls_through(e),
        _ => false,
    }
}

/// Normalizes an expression to 0/1 for the `&&`/`||` lowering.
fn to_bool(e: Expr) -> Expr {
    match &e {
        Expr::Binop(op, ..) if op.is_comparison() => e,
        Expr::Const(n, _) => Expr::uint(u32::from(*n != 0)),
        _ => Expr::binop(Binop::Ne, e, Expr::uint(0)),
    }
}

/// Evaluates a compile-time constant expression, if it is one.
pub fn const_eval(e: &Expr) -> Option<u32> {
    match e {
        Expr::Const(n, _) => Some(*n),
        Expr::Unop(op, a) => {
            let v = mem::Value::Int(const_eval(a)?);
            mem::eval_unop(*op, v).ok().and_then(|v| v.as_int().ok())
        }
        Expr::Binop(op, a, b) => {
            let va = mem::Value::Int(const_eval(a)?);
            let vb = mem::Value::Int(const_eval(b)?);
            mem::eval_binop(*op, va, vb)
                .ok()
                .and_then(|v| v.as_int().ok())
        }
        Expr::Cond(c, t, f) => {
            if const_eval(c)? != 0 {
                const_eval(t)
            } else {
                const_eval(f)
            }
        }
        Expr::Cast(_, a) => const_eval(a),
        _ => None,
    }
}
