//! Type checker for Clight programs.
//!
//! Beyond name resolution and type compatibility, the checker performs the
//! elaborations CompCert's front end performs during C-to-Clight
//! translation:
//!
//! * resolves C's usual arithmetic conversions — division, modulo, right
//!   shift and comparisons become their unsigned variants when an operand
//!   is unsigned (the parser always emits the signed variant);
//! * scales pointer arithmetic — `p + i` on a `u32*` becomes a byte offset
//!   `p + i*4`, and pointer difference divides by the element size;
//! * computes each function's set of *addressable* locals (arrays, and
//!   scalars whose address is taken), which the semantics allocates memory
//!   blocks for and the compiler lays out in the stack frame.

use crate::ast::{Expr, Function, Program, Stmt};
use crate::Ty;
use mem::Binop;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// A type error, with the function it occurred in where applicable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeError {
    /// Function being checked, if any.
    pub function: Option<String>,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.function {
            Some(name) => write!(f, "in `{name}`: {}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for TypeError {}

/// Type-checks and elaborates a program in place.
///
/// # Errors
///
/// Returns the first [`TypeError`] found.
///
/// # Examples
///
/// ```
/// let mut p = clight::parse("int main() { u32 x; x = 3 / 4; return x; }").unwrap();
/// clight::typecheck(&mut p).unwrap();
/// ```
pub fn typecheck(program: &mut Program) -> Result<(), TypeError> {
    let _span = obs::span("clight/typecheck");
    // Global name uniqueness.
    let mut seen = HashSet::new();
    for g in &program.globals {
        if !seen.insert(g.name.clone()) {
            return Err(err_global(format!("duplicate global `{}`", g.name)));
        }
        match &g.ty {
            Ty::Array(elem, n) => {
                if !elem.is_scalar() {
                    return Err(err_global(format!(
                        "global `{}`: only arrays of scalars are supported",
                        g.name
                    )));
                }
                if *n == 0 {
                    return Err(err_global(format!("global `{}` has zero length", g.name)));
                }
                if g.init.len() > *n as usize {
                    return Err(err_global(format!(
                        "global `{}`: {} initializers for {} elements",
                        g.name,
                        g.init.len(),
                        n
                    )));
                }
            }
            _ => {
                if g.init.len() > 1 {
                    return Err(err_global(format!(
                        "global `{}`: scalar with multiple initializers",
                        g.name
                    )));
                }
            }
        }
    }
    for f in &program.functions {
        if !seen.insert(f.name.clone()) {
            return Err(err_global(format!("duplicate definition of `{}`", f.name)));
        }
    }
    for e in &program.externals {
        if !seen.insert(e.name.clone()) {
            return Err(err_global(format!("duplicate definition of `{}`", e.name)));
        }
    }

    // Signatures for call checking.
    let signatures: HashMap<String, (Option<Ty>, Vec<Option<Ty>>)> = program
        .functions
        .iter()
        .map(|f| {
            (
                f.name.clone(),
                (
                    f.ret.clone(),
                    f.params.iter().map(|p| Some(p.ty.clone())).collect(),
                ),
            )
        })
        .chain(
            program
                .externals
                .iter()
                .map(|e| (e.name.clone(), (e.ret.clone(), vec![None; e.arity]))),
        )
        .collect();
    let global_tys: HashMap<String, Ty> = program
        .globals
        .iter()
        .map(|g| (g.name.clone(), g.ty.clone()))
        .collect();

    let mut functions = std::mem::take(&mut program.functions);
    for f in &mut functions {
        check_function(f, &signatures, &global_tys).map_err(|message| TypeError {
            function: Some(f.name.clone()),
            message,
        })?;
    }
    program.functions = functions;
    Ok(())
}

fn err_global(message: String) -> TypeError {
    TypeError {
        function: None,
        message,
    }
}

struct FnChecker<'a> {
    func_name: String,
    ret: Option<Ty>,
    vars: HashMap<String, Ty>,
    params: HashSet<String>,
    addressable: HashSet<String>,
    signatures: &'a HashMap<String, (Option<Ty>, Vec<Option<Ty>>)>,
    globals: &'a HashMap<String, Ty>,
}

fn check_function(
    f: &mut Function,
    signatures: &HashMap<String, (Option<Ty>, Vec<Option<Ty>>)>,
    globals: &HashMap<String, Ty>,
) -> Result<(), String> {
    let mut vars = HashMap::new();
    for p in &f.params {
        if !p.ty.is_scalar() {
            return Err(format!("parameter `{}` has non-scalar type", p.name));
        }
        if vars.insert(p.name.clone(), p.ty.clone()).is_some() {
            return Err(format!("duplicate parameter `{}`", p.name));
        }
    }
    for l in &f.locals {
        if vars.insert(l.name.clone(), l.ty.clone()).is_some() {
            return Err(format!("duplicate local `{}`", l.name));
        }
        if let Ty::Array(elem, n) = &l.ty {
            if !elem.is_scalar() || *n == 0 {
                return Err(format!(
                    "local array `{}` must be a nonempty array of scalars",
                    l.name
                ));
            }
        }
    }
    if let Some(ret) = &f.ret {
        if !ret.is_scalar() {
            return Err("return type must be scalar".into());
        }
    }

    let mut ck = FnChecker {
        func_name: f.name.clone(),
        ret: f.ret.clone(),
        vars,
        params: f.params.iter().map(|p| p.name.clone()).collect(),
        addressable: f
            .locals
            .iter()
            .filter(|l| matches!(l.ty, Ty::Array(..)))
            .map(|l| l.name.clone())
            .collect(),
        signatures,
        globals,
    };
    let body = Arc::make_mut(&mut f.body);
    ck.check_stmt(body, false)?;
    f.addressable = ck.addressable;
    Ok(())
}

impl FnChecker<'_> {
    fn var_ty(&self, name: &str) -> Option<Ty> {
        self.vars
            .get(name)
            .or_else(|| self.globals.get(name))
            .cloned()
    }

    fn check_stmt(&mut self, s: &mut Stmt, in_loop: bool) -> Result<(), String> {
        match s {
            Stmt::Skip => Ok(()),
            Stmt::Assign(lv, e) => {
                if !lv.is_lvalue() {
                    return Err(format!("`{lv}` is not assignable"));
                }
                let lt = self.check_expr(lv)?;
                if !lt.is_scalar() {
                    return Err(format!("cannot assign to `{lv}` of array type"));
                }
                let rt = self.check_expr(e)?;
                compatible(&lt, &rt)
                    .then_some(())
                    .ok_or_else(|| format!("cannot assign `{rt}` to `{lv}` of type `{lt}`"))
            }
            Stmt::Call(dest, fname, args) => {
                let (ret, params) = self
                    .signatures
                    .get(fname)
                    .ok_or_else(|| format!("call to undefined function `{fname}`"))?
                    .clone();
                if args.len() != params.len() {
                    return Err(format!(
                        "`{fname}` expects {} arguments, got {}",
                        params.len(),
                        args.len()
                    ));
                }
                for (a, pty) in args.iter_mut().zip(&params) {
                    let at = self.check_expr(a)?;
                    if let Some(pty) = pty {
                        if !compatible(pty, &at) {
                            return Err(format!(
                                "argument `{a}` of `{fname}` has type `{at}`, expected `{pty}`"
                            ));
                        }
                    } else if !at.decayed().is_scalar() {
                        return Err(format!("argument `{a}` is not scalar"));
                    }
                }
                if let Some(d) = dest {
                    let dt = self
                        .vars
                        .get(d.as_str())
                        .ok_or_else(|| format!("call destination `{d}` is not a local variable"))?;
                    if !dt.is_scalar() {
                        return Err(format!("call destination `{d}` is not scalar"));
                    }
                    let rt =
                        ret.ok_or_else(|| format!("void function `{fname}` used as a value"))?;
                    if !compatible(dt, &rt) {
                        return Err(format!(
                            "cannot store `{fname}` result of type `{rt}` into `{d}`"
                        ));
                    }
                }
                Ok(())
            }
            Stmt::Seq(a, b) => {
                self.check_stmt(Arc::make_mut(a), in_loop)?;
                self.check_stmt(Arc::make_mut(b), in_loop)
            }
            Stmt::If(c, t, e) => {
                let ct = self.check_expr(c)?;
                if !ct.is_scalar() {
                    return Err(format!("condition `{c}` is not scalar"));
                }
                self.check_stmt(Arc::make_mut(t), in_loop)?;
                self.check_stmt(Arc::make_mut(e), in_loop)
            }
            Stmt::Loop(b, i) => {
                self.check_stmt(Arc::make_mut(b), true)?;
                self.check_stmt(Arc::make_mut(i), true)
            }
            Stmt::Break | Stmt::Continue => in_loop
                .then_some(())
                .ok_or_else(|| "break/continue outside of a loop".into()),
            Stmt::Return(e) => match (self.ret.clone(), e) {
                (None, None) => Ok(()),
                (None, Some(v)) => Err(format!(
                    "void function `{}` returns a value `{v}`",
                    self.func_name
                )),
                (Some(_), None) => Err(format!(
                    "non-void function `{}` returns without a value",
                    self.func_name
                )),
                (Some(rt), Some(v)) => {
                    let vt = self.check_expr(v)?;
                    compatible(&rt, &vt).then_some(()).ok_or_else(|| {
                        format!("return value `{v}` has type `{vt}`, expected `{rt}`")
                    })
                }
            },
        }
    }

    /// Checks an expression, rewriting it in place (signedness resolution
    /// and pointer-arithmetic scaling), and returns its type.
    fn check_expr(&mut self, e: &mut Expr) -> Result<Ty, String> {
        match e {
            Expr::Const(_, ty) => Ok(ty.clone()),
            Expr::Var(x) => self
                .var_ty(x)
                .ok_or_else(|| format!("undefined variable `{x}`")),
            Expr::Unop(_, a) => {
                let at = self.check_expr(a)?;
                if !at.is_integer() {
                    return Err(format!("unary operation on non-integer `{a}`"));
                }
                Ok(at)
            }
            Expr::Binop(op, a, b) => {
                let at = self.check_expr(a)?.decayed();
                let bt = self.check_expr(b)?.decayed();
                self.check_binop(op, a, b, at, bt)
            }
            Expr::Index(a, i) => {
                let at = self.check_expr(a)?;
                let it = self.check_expr(i)?;
                if !it.is_integer() {
                    return Err(format!("array index `{i}` is not an integer"));
                }
                match at.element() {
                    Some(elem) if elem.is_scalar() => Ok(elem.clone()),
                    Some(_) => Err(format!("`{a}`: arrays of arrays are not supported")),
                    None => Err(format!("`{a}` of type `{at}` cannot be indexed")),
                }
            }
            Expr::Deref(p) => {
                let pt = self.check_expr(p)?.decayed();
                match pt {
                    Ty::Ptr(elem) if elem.is_scalar() => Ok(*elem),
                    _ => Err(format!("cannot dereference `{p}` of type `{pt}`")),
                }
            }
            Expr::Addr(lv) => {
                if !lv.is_lvalue() {
                    return Err(format!("cannot take the address of `{lv}`"));
                }
                if let Expr::Var(x) = lv.as_ref() {
                    if self.params.contains(x) {
                        return Err(format!(
                            "cannot take the address of parameter `{x}` \
                             (copy it into a local first)"
                        ));
                    }
                    if self.vars.contains_key(x) {
                        self.addressable.insert(x.clone());
                    }
                }
                let lt = self.check_expr(lv)?;
                Ok(Ty::Ptr(Box::new(lt)))
            }
            Expr::Cond(c, t, f) => {
                let ct = self.check_expr(c)?;
                if !ct.is_scalar() {
                    return Err(format!("condition `{c}` is not scalar"));
                }
                let tt = self.check_expr(t)?.decayed();
                let ft = self.check_expr(f)?.decayed();
                if !compatible(&tt, &ft) && !compatible(&ft, &tt) {
                    return Err(format!(
                        "branches of `?:` have incompatible types `{tt}` and `{ft}`"
                    ));
                }
                Ok(common_type(&tt, &ft))
            }
            Expr::Cast(ty, a) => {
                let at = self.check_expr(a)?.decayed();
                if !ty.is_scalar() {
                    return Err(format!("cast to non-scalar type `{ty}`"));
                }
                if matches!(ty, Ty::Ptr(_)) && at.is_integer() {
                    return Err("casting an integer to a pointer is not supported".into());
                }
                Ok(ty.clone())
            }
            Expr::Call0(fname, _) => Err(format!(
                "call to `{fname}` nested inside an expression \
                 (assign its result to a variable first)"
            )),
        }
    }

    fn check_binop(
        &mut self,
        op: &mut Binop,
        a: &mut Box<Expr>,
        b: &mut Box<Expr>,
        at: Ty,
        bt: Ty,
    ) -> Result<Ty, String> {
        use Binop::*;
        // Pointer arithmetic: scale the integer operand by the element size.
        match (&at, &bt) {
            (Ty::Ptr(elem), t) if t.is_integer() && matches!(op, Add | Sub) => {
                let size = elem.size();
                scale_in_place(b, size);
                return Ok(at);
            }
            (t, Ty::Ptr(elem)) if t.is_integer() && matches!(op, Add) => {
                let size = elem.size();
                scale_in_place(a, size);
                return Ok(bt);
            }
            (Ty::Ptr(e1), Ty::Ptr(e2)) if matches!(op, Sub) => {
                if e1 != e2 {
                    return Err("subtracting pointers of different element types".into());
                }
                // (p - q) / sizeof(elem), computed on the raw byte difference.
                let size = e1.size();
                let raw = Expr::Binop(Sub, a.clone(), b.clone());
                **a = raw;
                **b = Expr::uint(size);
                *op = Divu;
                return Ok(Ty::U32);
            }
            (Ty::Ptr(_), Ty::Ptr(_)) if op.is_comparison() => {
                *op = to_unsigned(*op);
                return Ok(Ty::I32);
            }
            _ => {}
        }
        if !at.is_integer() || !bt.is_integer() {
            return Err(format!(
                "operator `{op}` applied to non-integer operands `{a}` ({at}) and `{b}` ({bt})"
            ));
        }
        let unsigned = at.is_unsigned() || bt.is_unsigned();
        // Right shift signedness follows the left operand (C semantics).
        if matches!(op, Shrs | Shru) {
            *op = if at.is_unsigned() { Shru } else { Shrs };
            return Ok(at);
        }
        if unsigned {
            *op = to_unsigned(*op);
        }
        if op.is_comparison() {
            return Ok(Ty::I32);
        }
        Ok(if unsigned { Ty::U32 } else { Ty::I32 })
    }
}

/// Rewrites `e` to `e * size` (skipped when `size == 1`).
fn scale_in_place(e: &mut Expr, size: u32) {
    if size == 1 {
        return;
    }
    let old = std::mem::replace(e, Expr::uint(0));
    *e = Expr::binop(Binop::Mul, old, Expr::uint(size));
}

fn to_unsigned(op: Binop) -> Binop {
    use Binop::*;
    match op {
        Divs => Divu,
        Mods => Modu,
        Shrs => Shru,
        Lts => Ltu,
        Les => Leu,
        Gts => Gtu,
        Ges => Geu,
        other => other,
    }
}

/// Assignment compatibility: integers inter-convert freely (C implicit
/// conversions between `int` and `unsigned`), arrays decay to pointers,
/// pointers must agree on the element type.
fn compatible(dst: &Ty, src: &Ty) -> bool {
    let src = src.decayed();
    match (dst, &src) {
        (a, b) if a == b => true,
        (a, b) if a.is_integer() && b.is_integer() => true,
        (Ty::Ptr(a), Ty::Ptr(b)) => a == b,
        _ => false,
    }
}

fn common_type(a: &Ty, b: &Ty) -> Ty {
    if matches!(a, Ty::Ptr(_)) {
        return a.clone();
    }
    if matches!(b, Ty::Ptr(_)) {
        return b.clone();
    }
    if a.is_unsigned() || b.is_unsigned() {
        Ty::U32
    } else {
        Ty::I32
    }
}
