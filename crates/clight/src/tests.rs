use crate::{frontend, parse, parse_with_params, typecheck, Executor, Program, Ty};
use mem::Value;
use proptest::prelude::*;
use trace::{Event, Metric};

const FUEL: u64 = 5_000_000;

fn run(src: &str) -> trace::Behavior {
    let p = frontend(src, &[]).unwrap_or_else(|e| panic!("frontend: {e}"));
    Executor::run_main(&p, FUEL)
}

fn ret(src: &str) -> u32 {
    let b = run(src);
    match b.return_code() {
        Some(n) => n,
        None => panic!("expected convergence, got {b}"),
    }
}

// ---- parsing ---------------------------------------------------------------

#[test]
fn parses_typedef_and_globals() {
    let p = parse(
        "typedef unsigned int u32;\n u32 seed = 7; u32 a[4] = {1,2,3}; int main() { return 0; }",
    )
    .unwrap();
    assert_eq!(p.globals.len(), 2);
    assert_eq!(p.globals[0].init, vec![7]);
    assert_eq!(p.globals[1].ty, Ty::Array(Box::new(Ty::U32), 4));
    assert_eq!(p.globals[1].init, vec![1, 2, 3]);
}

#[test]
fn parses_externals() {
    let p = parse("extern u32 getchar(void); extern void put(u32 c); int main() { return 0; }")
        .unwrap();
    assert_eq!(p.externals.len(), 2);
    assert_eq!(p.externals[0].arity, 0);
    assert_eq!(p.externals[1].arity, 1);
    assert_eq!(p.externals[1].ret, None);
}

#[test]
fn parses_enum_constants() {
    let p = parse("enum { A = 3, B, C = 10 }; u32 x[B]; int main() { return C; }").unwrap();
    assert_eq!(p.globals[0].ty, Ty::Array(Box::new(Ty::U32), 4));
}

#[test]
fn const_globals_become_parameters() {
    let src = "const u32 N = 8; u32 a[N]; int main() { return N; }";
    let p = frontend(src, &[]).unwrap();
    assert_eq!(p.globals.len(), 1); // N is folded away
    assert_eq!(Executor::run_main(&p, FUEL).return_code(), Some(8));
}

#[test]
fn injected_params_act_as_constants() {
    let p = parse_with_params(
        "u32 a[ALEN]; int main() { return ALEN * 2; }",
        &[("ALEN", 21)],
    )
    .unwrap();
    assert_eq!(p.globals[0].ty.size(), 84);
    let mut p = p;
    typecheck(&mut p).unwrap();
    assert_eq!(Executor::run_main(&p, FUEL).return_code(), Some(42));
}

#[test]
fn rejects_nested_calls_in_expressions() {
    let err = parse("u32 f(void) { return 1; } int main() { return f() + 1; }").unwrap_err();
    assert!(
        err.message.contains("nested") || err.message.contains("call"),
        "{err}"
    );
}

#[test]
fn rejects_unknown_type() {
    assert!(parse("foo main() { return 0; }").is_err());
}

#[test]
fn parse_error_reports_line() {
    let err = parse("int main() {\n  return @;\n}").unwrap_err();
    assert_eq!(err.line, 2);
}

// ---- type checking ----------------------------------------------------------

#[test]
fn rejects_undefined_variable() {
    let mut p = parse("int main() { return nope; }").unwrap();
    let err = typecheck(&mut p).unwrap_err();
    assert!(err.message.contains("undefined variable"), "{err}");
}

#[test]
fn rejects_undefined_function() {
    let mut p = parse("int main() { u32 x; x = nope(); return x; }").unwrap();
    assert!(typecheck(&mut p).is_err());
}

#[test]
fn rejects_arity_mismatch() {
    let mut p =
        parse("u32 f(u32 a) { return a; } int main() { u32 x; x = f(1, 2); return x; }").unwrap();
    let err = typecheck(&mut p).unwrap_err();
    assert!(err.message.contains("expects 1 arguments"), "{err}");
}

#[test]
fn rejects_void_result_use() {
    let mut p = parse("void f(void) { return; } int main() { u32 x; x = f(); return x; }").unwrap();
    assert!(typecheck(&mut p).is_err());
}

#[test]
fn rejects_break_outside_loop() {
    let mut p = parse("int main() { break; return 0; }").unwrap();
    assert!(typecheck(&mut p).is_err());
}

#[test]
fn rejects_address_of_parameter() {
    let mut p =
        parse("u32 f(u32 x) { u32 *p; p = &x; return *p; } int main() { return 0; }").unwrap();
    let err = typecheck(&mut p).unwrap_err();
    assert!(err.message.contains("parameter"), "{err}");
}

#[test]
fn marks_addressable_locals() {
    let src = "int main() { u32 buf[4]; u32 x; u32 y; u32 *p; p = &x; y = 0; return y + buf[0]; }";
    let mut p = parse(src).unwrap();
    typecheck(&mut p).unwrap();
    let f = p.function("main").unwrap();
    assert!(f.addressable.contains("buf"));
    assert!(f.addressable.contains("x"));
    assert!(!f.addressable.contains("y"));
    assert!(!f.addressable.contains("p"));
}

#[test]
fn signedness_resolution_division() {
    // -2 / 2: signed division gives -1; unsigned gives a huge value.
    assert_eq!(
        ret("int main() { int a; a = -2; return (a / 2) == -1; }"),
        1
    );
    assert_eq!(
        ret("int main() { u32 a; a = -2; return (a / 2) == 0x7FFFFFFF; }"),
        1
    );
}

#[test]
fn signedness_resolution_comparison() {
    assert_eq!(ret("int main() { int a; a = -1; return a < 1; }"), 1);
    assert_eq!(ret("int main() { u32 a; a = -1; return a < 1; }"), 0);
}

#[test]
fn right_shift_follows_left_operand() {
    assert_eq!(
        ret("int main() { int a; a = -4; return (a >> 1) == -2; }"),
        1
    );
    assert_eq!(
        ret("int main() { u32 a; a = 0x80000000; return (a >> 31) == 1; }"),
        1
    );
}

// ---- semantics --------------------------------------------------------------

#[test]
fn arithmetic_and_control_flow() {
    assert_eq!(ret("int main() { return 2 + 3 * 4; }"), 14);
    assert_eq!(
        ret("int main() { if (1 < 2) return 10; else return 20; }"),
        10
    );
    assert_eq!(
        ret("int main() { u32 s; u32 i; s = 0; for (i = 0; i < 10; i++) s += i; return s; }"),
        45
    );
    assert_eq!(
        ret("int main() { u32 i; i = 0; while (i < 5) { i = i + 1; } return i; }"),
        5
    );
    assert_eq!(
        ret("int main() { u32 i; i = 0; do { i++; } while (i < 3); return i; }"),
        3
    );
}

#[test]
fn break_and_continue() {
    assert_eq!(
        ret("int main() { u32 i; u32 s; s = 0; \
             for (i = 0; i < 10; i++) { if (i == 5) break; s += i; } return s; }"),
        10
    );
    assert_eq!(
        ret("int main() { u32 i; u32 s; s = 0; \
             for (i = 0; i < 10; i++) { if (i % 2) continue; s += i; } return s; }"),
        20
    );
}

#[test]
fn short_circuit_does_not_touch_right_operand() {
    // a[10] is out of bounds; && must not evaluate it.
    assert_eq!(
        ret("u32 a[10]; int main() { u32 i; i = 10; \
             if (i < 10 && a[i] > 0) return 1; return 2; }"),
        2
    );
    assert_eq!(
        ret("u32 a[10]; int main() { u32 i; i = 10; \
             if (i >= 10 || a[i] > 0) return 1; return 2; }"),
        1
    );
}

#[test]
fn globals_are_zero_initialized() {
    assert_eq!(ret("u32 a[8]; u32 g; int main() { return a[3] + g; }"), 0);
}

#[test]
fn global_initializers_apply() {
    assert_eq!(
        ret("u32 a[4] = {10, 20, 30}; int main() { return a[0] + a[1] + a[2] + a[3]; }"),
        60
    );
}

#[test]
fn local_arrays_and_pointers() {
    assert_eq!(
        ret("int main() { u32 b[4]; u32 *p; b[0] = 7; p = b; p[1] = 35; return b[0] + *(p + 1); }"),
        42
    );
}

#[test]
fn address_of_local_scalar() {
    assert_eq!(
        ret("int main() { u32 x; u32 *p; x = 1; p = &x; *p = 42; return x; }"),
        42
    );
}

#[test]
fn pointer_difference_counts_elements() {
    assert_eq!(
        ret("u32 a[10]; int main() { u32 *p; u32 *q; p = &a[2]; q = &a[7]; return q - p; }"),
        5
    );
}

#[test]
fn array_out_of_bounds_goes_wrong() {
    let b = run("u32 a[4]; int main() { return a[4]; }");
    assert!(b.goes_wrong(), "{b}");
}

#[test]
fn reading_uninitialized_local_goes_wrong() {
    let b = run("int main() { u32 x; return x + 1; }");
    assert!(b.goes_wrong(), "{b}");
}

#[test]
fn division_by_zero_goes_wrong() {
    let b = run("int main() { u32 z; z = 0; return 4 / z; }");
    assert!(b.goes_wrong(), "{b}");
}

#[test]
fn infinite_loop_diverges() {
    let p = frontend("int main() { while (1) { } return 0; }", &[]).unwrap();
    let b = Executor::run_main(&p, 10_000);
    assert!(matches!(b, trace::Behavior::Diverges(_)));
}

#[test]
fn call_events_match_paper_example_shape() {
    let src = "
        u32 random() { return 4; }
        void init() { u32 r; r = random(); }
        u32 search(u32 e) { return e; }
        int main() { u32 x; init(); x = search(3); return x; }
    ";
    let b = run(src);
    let names: Vec<String> = b.trace().events().iter().map(|e| e.to_string()).collect();
    assert_eq!(
        names,
        vec![
            "call(main)",
            "call(init)",
            "call(random)",
            "ret(random)",
            "ret(init)",
            "call(search)",
            "ret(search)",
            "ret(main)"
        ]
    );
    assert_eq!(b.trace().check_bracketing(), Some(0));
}

#[test]
fn recursion_weight_is_linear_in_depth() {
    let src = "
        u32 down(u32 n) { u32 r; if (n == 0) return 0; r = down(n - 1); return r; }
        int main() { u32 r; r = down(10); return r; }
    ";
    let b = run(src);
    let m = Metric::from_pairs([("down", 8), ("main", 16)]);
    assert_eq!(b.weight(&m), 16 + 11 * 8);
}

#[test]
fn external_calls_emit_io_events() {
    let src = "
        extern u32 sensor(u32 channel);
        int main() { u32 a; u32 b; a = sensor(1); b = sensor(1); return a == b; }
    ";
    let b = run(src);
    assert_eq!(b.return_code(), Some(1)); // deterministic externals
    let ios: Vec<&Event> = b
        .trace()
        .events()
        .iter()
        .filter(|e| !e.is_memory())
        .collect();
    assert_eq!(ios.len(), 2);
}

#[test]
fn void_function_call_statement() {
    assert_eq!(
        ret("u32 g; void bump() { g = g + 1; } int main() { bump(); bump(); return g; }"),
        2
    );
}

#[test]
fn missing_return_in_called_function_goes_wrong_when_used() {
    let src = "u32 f(u32 x) { if (x > 100) return 1; } \
               int main() { u32 r; r = f(0); return r; }";
    let b = run(src);
    assert!(b.goes_wrong(), "{b}");
}

#[test]
fn function_arguments_pass_arrays_as_pointers() {
    let src = "
        u32 a[4] = {1, 2, 3, 4};
        u32 sum(u32 *p, u32 n) { u32 s; u32 i; s = 0; for (i = 0; i < n; i++) s += p[i]; return s; }
        int main() { u32 r; r = sum(a, 4); return r; }
    ";
    assert_eq!(ret(src), 10);
}

#[test]
fn fibonacci_recursive() {
    let src = "
        u32 fib(u32 n) { u32 a; u32 b; if (n < 2) return n; \
                         a = fib(n - 1); b = fib(n - 2); return a + b; }
        int main() { u32 r; r = fib(12); return r; }
    ";
    let b = run(src);
    assert_eq!(b.return_code(), Some(144));
    // Max open activations of fib = recursion depth = 12.
    assert_eq!(b.trace().weight(&Metric::indicator("fib")), 12);
}

#[test]
fn mutual_recursion_with_forward_reference() {
    let src = "
        u32 odd(u32 n);
        int main() { return 0; }
    ";
    // Prototypes are not supported; forward references work because the
    // checker sees all definitions. This is the supported spelling:
    let _ = src;
    let src = "
        u32 even(u32 n) { u32 r; if (n == 0) return 1; r = odd(n - 1); return r; }
        u32 odd(u32 n) { u32 r; if (n == 0) return 0; r = even(n - 1); return r; }
        int main() { u32 r; r = even(9); return r; }
    ";
    assert_eq!(ret(src), 0);
}

#[test]
fn run_function_directly() {
    let src = "u32 twice(u32 x) { return x + x; } int main() { return 0; }";
    let p = frontend(src, &[]).unwrap();
    let b = Executor::run_function(&p, "twice", vec![Value::Int(21)], FUEL);
    assert_eq!(b.return_code(), Some(42));
}

#[test]
fn ternary_expression() {
    assert_eq!(
        ret("int main() { u32 x; x = 5; return x > 3 ? 10 : 20; }"),
        10
    );
}

#[test]
fn compound_assignment_operators() {
    assert_eq!(
        ret(
            "int main() { u32 x; x = 8; x += 2; x *= 3; x -= 5; x /= 5; x <<= 2; x |= 1; \
             return x; }"
        ),
        21
    );
}

#[test]
fn casts_between_scalars() {
    assert_eq!(ret("int main() { int a; a = -1; return (u32)a > 0; }"), 1);
}

#[test]
fn assigning_call_result_to_array_element_via_temp() {
    let src = "
        u32 a[4];
        u32 f(u32 x) { return x * 2; }
        int main() { u32 i; for (i = 0; i < 4; i++) { a[i] = f(i); } return a[3]; }
    ";
    assert_eq!(ret(src), 6);
}

#[test]
fn local_array_blocks_are_freed_on_return() {
    let src = "
        u32 deep(u32 n) { u32 buf[10]; u32 r; buf[0] = n; if (n == 0) return buf[0]; \
                          r = deep(n - 1); return r; }
        int main() { u32 r; r = deep(5); return r; }
    ";
    let p = frontend(src, &[]).unwrap();
    let b = Executor::run_main(&p, FUEL);
    assert_eq!(b.return_code(), Some(0));
}

// ---- property tests ---------------------------------------------------------

/// A tiny random arithmetic-expression generator: builds an expression with
/// a known value and checks the interpreter agrees with host arithmetic.
fn arith_expr(depth: u32) -> BoxedStrategy<(String, u32)> {
    let leaf = (0u32..100).prop_map(|n| (n.to_string(), n));
    leaf.prop_recursive(depth, 32, 2, |inner| {
        (inner.clone(), inner, 0u8..3).prop_map(|((sa, va), (sb, vb), op)| match op {
            0 => (format!("({sa} + {sb})"), va.wrapping_add(vb)),
            1 => (format!("({sa} * {sb})"), va.wrapping_mul(vb)),
            _ => (format!("({sa} - {sb})"), va.wrapping_sub(vb)),
        })
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_interpreter_agrees_with_host_arithmetic((src, expected) in arith_expr(4)) {
        let program = format!("int main() {{ u32 x; x = {src}; return x & 0xff; }}");
        prop_assert_eq!(ret(&program), expected & 0xff);
    }

    #[test]
    fn prop_loop_sum_matches_closed_form(n in 0u32..200) {
        let src = format!(
            "int main() {{ u32 s; u32 i; s = 0; for (i = 0; i < {n}; i++) s += i; \
             return s & 0xffff; }}"
        );
        prop_assert_eq!(ret(&src), (n.wrapping_sub(1).wrapping_mul(n) / 2) & 0xffff);
    }

    #[test]
    fn prop_mutual_recursion_traces_well_bracketed(n in 0u32..15) {
        let src = format!("
            u32 even(u32 n) {{ u32 r; if (n == 0) return 1; r = odd(n - 1); return r; }}
            u32 odd(u32 n) {{ u32 r; if (n == 0) return 0; r = even(n - 1); return r; }}
            int main() {{ u32 r; r = even({n}); return r; }}
        ");
        let p = frontend(&src, &[]).unwrap();
        let b = Executor::run_main(&p, FUEL);
        prop_assert_eq!(b.trace().check_bracketing(), Some(0));
        prop_assert_eq!(b.return_code(), Some(u32::from(n % 2 == 0)));
    }
}

// ---- misc --------------------------------------------------------------------

#[test]
fn frontend_reports_errors_as_strings() {
    assert!(frontend("int main() { return x; }", &[]).is_err());
    assert!(frontend("not a program", &[]).is_err());
}

#[test]
fn program_accessors() {
    let p: Program = frontend(
        "u32 g; extern u32 e(void); u32 f(void) { return 1; } int main() { return 0; }",
        &[],
    )
    .unwrap();
    assert!(p.function("f").is_some());
    assert!(p.external("e").is_some());
    assert!(p.global("g").is_some());
    assert_eq!(p.function_names().collect::<Vec<_>>(), vec!["f", "main"]);
}

// ---- switch statements --------------------------------------------------------

#[test]
fn switch_dispatches_on_cases_and_default() {
    let src = "
        u32 classify(u32 x) {
            switch (x) {
                case 0: return 10;
                case 1:
                case 2: return 20;
                case 3: { u32 y; y = x * 2; return y; }
                default: return 99;
            }
        }
        int main() { u32 a; u32 b; u32 c; u32 d; u32 e;
            a = classify(0); b = classify(1); c = classify(2);
            d = classify(3); e = classify(7);
            return a + b + c + d + e; }
    ";
    assert_eq!(ret(src), 10 + 20 + 20 + 6 + 99);
}

#[test]
fn switch_with_breaks_falls_through_to_following_code() {
    let src = "
        int main() {
            u32 r; u32 x;
            x = 2; r = 0;
            switch (x) {
                case 1: r = 10; break;
                case 2: r = 20; break;
            }
            return r + 1;
        }
    ";
    assert_eq!(ret(src), 21);
}

#[test]
fn switch_without_matching_case_or_default_is_a_noop() {
    assert_eq!(
        ret("int main() { u32 x; x = 9; switch (x) { case 1: return 1; } return 5; }"),
        5
    );
}

#[test]
fn switch_rejects_fallthrough() {
    let err = parse(
        "int main() { switch (1) { case 1: return 1; case 2: main(); case 3: break; } return 0; }",
    )
    .unwrap_err();
    assert!(err.message.contains("fallthrough"), "{err}");
}

#[test]
fn switch_breaks_inside_nested_loops_stay_with_the_loop() {
    let src = "
        int main() {
            u32 x; u32 i; u32 n;
            x = 1; n = 0;
            switch (x) {
                case 1:
                    for (i = 0; i < 10; i++) { if (i == 3) break; n = n + 1; }
                    break;
            }
            return n;
        }
    ";
    assert_eq!(ret(src), 3);
}
