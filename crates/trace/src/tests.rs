use crate::refinement::{
    check_classic, check_quantitative, open_call_profile, weight_le_all_metrics, RefinementError,
};
use crate::{Behavior, Event, Metric, Trace};
use proptest::prelude::*;

fn t(events: &[Event]) -> Trace {
    events.iter().cloned().collect()
}

fn nested(depth: usize, f: &str) -> Trace {
    let mut tr = Trace::new();
    for _ in 0..depth {
        tr.push(Event::call(f));
    }
    for _ in 0..depth {
        tr.push(Event::ret(f));
    }
    tr
}

#[test]
fn empty_trace_weight_is_zero() {
    let m = Metric::from_pairs([("f", 100)]);
    assert_eq!(Trace::new().weight(&m), 0);
}

#[test]
fn valuation_of_balanced_trace_is_zero() {
    let m = Metric::from_pairs([("f", 8), ("g", 24)]);
    let tr = t(&[
        Event::call("f"),
        Event::call("g"),
        Event::ret("g"),
        Event::ret("f"),
    ]);
    assert_eq!(tr.valuation(&m), 0);
    assert_eq!(tr.weight(&m), 32);
}

#[test]
fn weight_is_peak_not_sum_of_calls() {
    let m = Metric::from_pairs([("f", 10), ("g", 20)]);
    // f and g called sequentially: peak is max, not sum.
    let tr = t(&[
        Event::call("main"),
        Event::call("f"),
        Event::ret("f"),
        Event::call("g"),
        Event::ret("g"),
        Event::ret("main"),
    ]);
    assert_eq!(tr.weight(&m), 20);
}

#[test]
fn paper_example_trace_weight() {
    // The §2 example trace: call(main) call(init) call(random) ret(random)
    // ret(init) call(search) call(search) ret ret ret(main).
    let m = Metric::from_pairs([("main", 5), ("init", 7), ("random", 11), ("search", 13)]);
    let tr = t(&[
        Event::call("main"),
        Event::call("init"),
        Event::call("random"),
        Event::ret("random"),
        Event::ret("init"),
        Event::call("search"),
        Event::call("search"),
        Event::ret("search"),
        Event::ret("search"),
        Event::ret("main"),
    ]);
    // M(main) + max(M(init)+M(random), 2*M(search))
    assert_eq!(tr.weight(&m), 5 + 2 * 13);
}

#[test]
fn recursion_weight_scales_with_depth() {
    let m = Metric::from_pairs([("fib", 24)]);
    assert_eq!(nested(10, "fib").weight(&m), 240);
}

#[test]
fn io_events_cost_nothing() {
    let m = Metric::from_pairs([("f", 8)]);
    let tr = t(&[
        Event::call("f"),
        Event::io("getchar", vec![], 65),
        Event::ret("f"),
    ]);
    assert_eq!(tr.weight(&m), 8);
}

#[test]
fn unknown_functions_cost_zero() {
    let m = Metric::new();
    assert_eq!(nested(3, "mystery").weight(&m), 0);
    assert_eq!(m.call_cost("mystery"), 0);
    assert!(!m.is_total_for(["mystery"]));
}

#[test]
fn pruning_removes_exactly_memory_events() {
    let tr = t(&[
        Event::call("f"),
        Event::io("put", vec![1], 0),
        Event::ret("f"),
        Event::io("put", vec![2], 0),
    ]);
    let p = tr.pruned();
    assert_eq!(p.len(), 2);
    assert!(p.iter().all(|e| !e.is_memory()));
}

#[test]
fn bracketing_detects_mismatched_ret() {
    assert_eq!(
        t(&[Event::call("f"), Event::ret("g")]).check_bracketing(),
        None
    );
    assert_eq!(t(&[Event::ret("f")]).check_bracketing(), None);
    assert_eq!(t(&[Event::call("f")]).check_bracketing(), Some(1));
    assert_eq!(nested(4, "f").check_bracketing(), Some(0));
}

#[test]
fn functions_lists_unique_names_in_order() {
    let tr = t(&[
        Event::call("b"),
        Event::call("a"),
        Event::ret("a"),
        Event::call("a"),
    ]);
    let fs = tr.functions();
    assert_eq!(fs.len(), 2);
    assert_eq!(fs[0].as_ref(), "b");
    assert_eq!(fs[1].as_ref(), "a");
}

#[test]
fn behavior_weight_includes_failure_prefix() {
    let m = Metric::from_pairs([("f", 4)]);
    let b = Behavior::Fails(nested(2, "f"), "boom".into());
    assert_eq!(b.weight(&m), 8);
    assert!(b.goes_wrong());
    assert_eq!(b.return_code(), None);
}

#[test]
fn classic_refinement_accepts_identical_io() {
    let src = Behavior::Converges(
        t(&[
            Event::call("f"),
            Event::io("put", vec![1], 0),
            Event::ret("f"),
        ]),
        0,
    );
    let tgt = Behavior::Converges(t(&[Event::io("put", vec![1], 0)]), 0);
    check_classic(&src, &tgt).unwrap();
}

#[test]
fn classic_refinement_rejects_io_mismatch() {
    let src = Behavior::Converges(t(&[Event::io("put", vec![1], 0)]), 0);
    let tgt = Behavior::Converges(t(&[Event::io("put", vec![2], 0)]), 0);
    assert!(matches!(
        check_classic(&src, &tgt),
        Err(RefinementError::IoMismatch { index: 0, .. })
    ));
}

#[test]
fn classic_refinement_rejects_return_code_change() {
    let src = Behavior::Converges(Trace::new(), 0);
    let tgt = Behavior::Converges(Trace::new(), 1);
    assert!(matches!(
        check_classic(&src, &tgt),
        Err(RefinementError::OutcomeMismatch { .. })
    ));
}

#[test]
fn wrong_source_is_refined_by_anything() {
    let src = Behavior::Fails(Trace::new(), "ub".into());
    let tgt = Behavior::Converges(nested(100, "f"), 42);
    check_classic(&src, &tgt).unwrap();
    check_quantitative(&src, &tgt, &[]).unwrap();
}

#[test]
fn quantitative_refinement_accepts_weight_decrease() {
    // Target performs fewer nested calls (e.g. a pass removed a call).
    let src = Behavior::Converges(nested(3, "f"), 0);
    let tgt = Behavior::Converges(nested(2, "f"), 0);
    check_quantitative(&src, &tgt, &[]).unwrap();
}

#[test]
fn quantitative_refinement_rejects_weight_increase() {
    let src = Behavior::Converges(nested(2, "f"), 0);
    let tgt = Behavior::Converges(nested(3, "f"), 0);
    let err = check_quantitative(&src, &tgt, &[]).unwrap_err();
    assert!(matches!(err, RefinementError::WeightExceeded { .. }));
}

#[test]
fn quantitative_refinement_rejects_new_function() {
    let src = Behavior::Converges(nested(1, "f"), 0);
    let tgt = Behavior::Converges(
        t(&[
            Event::call("f"),
            Event::call("g"),
            Event::ret("g"),
            Event::ret("f"),
        ]),
        0,
    );
    assert!(check_quantitative(&src, &tgt, &[]).is_err());
}

#[test]
fn quantitative_refinement_reports_named_metric() {
    let m = Metric::from_pairs([("f", 8)]);
    let src = Behavior::Converges(nested(1, "f"), 0);
    let tgt = Behavior::Converges(nested(2, "f"), 0);
    match check_quantitative(&src, &tgt, &[("mach", &m)]) {
        Err(RefinementError::WeightExceeded {
            metric,
            source_weight,
            target_weight,
        }) => {
            assert_eq!(metric, "mach");
            assert_eq!(source_weight, 8);
            assert_eq!(target_weight, 16);
        }
        other => panic!("expected weight error, got {other:?}"),
    }
}

#[test]
fn reordered_calls_with_smaller_profile_accepted() {
    // Source calls f and g nested; target calls them sequentially: the
    // sequential profile is dominated by the nested one.
    let src = Behavior::Converges(
        t(&[
            Event::call("f"),
            Event::call("g"),
            Event::ret("g"),
            Event::ret("f"),
        ]),
        0,
    );
    let tgt = Behavior::Converges(
        t(&[
            Event::call("f"),
            Event::ret("f"),
            Event::call("g"),
            Event::ret("g"),
        ]),
        0,
    );
    check_quantitative(&src, &tgt, &[]).unwrap();
}

#[test]
fn open_call_profile_keeps_only_maximal_vectors() {
    let tr = nested(3, "f");
    let profile = open_call_profile(&tr);
    assert_eq!(profile.len(), 1);
    assert_eq!(profile[0].get("f" as &str).copied(), Some(3));
}

#[test]
fn unit_and_indicator_metrics() {
    let tr = t(&[
        Event::call("main"),
        Event::call("f"),
        Event::ret("f"),
        Event::ret("main"),
    ]);
    assert_eq!(tr.weight(&Metric::unit(["main", "f"])), 2);
    assert_eq!(tr.weight(&Metric::indicator("f")), 1);
    assert_eq!(tr.weight(&Metric::indicator("g")), 0);
}

#[test]
fn metric_display_and_iter() {
    let m = Metric::from_pairs([("b", 2), ("a", 1)]);
    assert_eq!(m.to_string(), "{a: 1, b: 2}");
    assert_eq!(m.iter().count(), 2);
    assert_eq!(m.len(), 2);
    assert!(!m.is_empty());
}

#[test]
fn trace_display_roundtrips_event_kinds() {
    let tr = t(&[
        Event::call("f"),
        Event::io("put", vec![3, 4], 5),
        Event::ret("f"),
    ]);
    assert_eq!(tr.to_string(), "[call(f), put(3,4 -> 5), ret(f)]");
}

// ---- property tests -------------------------------------------------------

/// Strategy for well-bracketed traces over a small function alphabet.
fn wellbracketed(depth: u32) -> impl Strategy<Value = Vec<Event>> {
    let leaf = prop_oneof![
        Just(Vec::new()),
        (0u32..3).prop_map(|n| vec![Event::io("io", vec![n], 0)]),
    ];
    leaf.prop_recursive(depth, 64, 4, |inner| {
        prop_oneof![
            // Sequence of two trace fragments.
            (inner.clone(), inner.clone()).prop_map(|(mut a, b)| {
                a.extend(b);
                a
            }),
            // A call around a fragment.
            ("[a-d]", inner).prop_map(|(f, body)| {
                let mut v = vec![Event::call(f.clone())];
                v.extend(body);
                v.push(Event::ret(f));
                v
            }),
        ]
    })
}

proptest! {
    #[test]
    fn prop_wellbracketed_traces_are_balanced(events in wellbracketed(4)) {
        let tr: Trace = events.into_iter().collect();
        prop_assert_eq!(tr.check_bracketing(), Some(0));
        let m = Metric::from_pairs([("a", 3), ("b", 5), ("c", 7), ("d", 11)]);
        prop_assert_eq!(tr.valuation(&m), 0);
        prop_assert!(tr.weight(&m) >= 0);
    }

    #[test]
    fn prop_weight_monotone_in_metric(events in wellbracketed(4), bump in 0u32..10) {
        let tr: Trace = events.into_iter().collect();
        let m1 = Metric::from_pairs([("a", 3), ("b", 5), ("c", 7), ("d", 11)]);
        let m2 = Metric::from_pairs([("a", 3 + bump), ("b", 5 + bump), ("c", 7 + bump), ("d", 11 + bump)]);
        prop_assert!(tr.weight(&m2) >= tr.weight(&m1));
    }

    #[test]
    fn prop_every_trace_refines_itself(events in wellbracketed(4)) {
        let tr: Trace = events.into_iter().collect();
        let b = Behavior::Converges(tr, 0);
        prop_assert!(check_quantitative(&b, &b, &[]).is_ok());
    }

    #[test]
    fn prop_dropping_suffix_of_calls_refines(events in wellbracketed(4)) {
        // Removing one innermost call pair can only decrease weights.
        let tr: Trace = events.iter().cloned().collect();
        let mut reduced: Vec<Event> = Vec::new();
        let mut removed = false;
        let mut i = 0;
        while i < events.len() {
            if !removed && i + 1 < events.len() {
                if let (Event::Call(f), Event::Ret(g)) = (&events[i], &events[i + 1]) {
                    if f == g {
                        removed = true;
                        i += 2;
                        continue;
                    }
                }
            }
            reduced.push(events[i].clone());
            i += 1;
        }
        let rt: Trace = reduced.into_iter().collect();
        let src = Behavior::Converges(tr, 0);
        let tgt = Behavior::Converges(rt, 0);
        prop_assert!(weight_le_all_metrics(tgt.trace(), src.trace()));
    }

    #[test]
    fn prop_weight_le_all_metrics_implies_unit_and_indicators(
        a in wellbracketed(3),
        b in wellbracketed(3),
    ) {
        let ta: Trace = a.into_iter().collect();
        let tb: Trace = b.into_iter().collect();
        if weight_le_all_metrics(&ta, &tb) {
            for f in ["a", "b", "c", "d"] {
                prop_assert!(ta.weight(&Metric::indicator(f)) <= tb.weight(&Metric::indicator(f)));
            }
            prop_assert!(ta.weight(&Metric::unit(["a", "b", "c", "d"]))
                      <= tb.weight(&Metric::unit(["a", "b", "c", "d"])));
        }
    }
}
