//! Event traces, resource metrics, trace weights, and quantitative
//! refinement — the methodology of §3.1 of *End-to-End Verification of
//! Stack-Space Bounds for C Programs* (PLDI 2014).
//!
//! Every language in the compiler pipeline (Clight, Cminor, RTL, Linear,
//! Mach, ASMsz) produces traces of *events* during execution:
//!
//! * **I/O events** `f(v⃗ ↦ v)` — external function calls, which must be
//!   preserved exactly by compilation (CompCert's classic refinement), and
//! * **memory events** `call(f)` / `ret(f)` — internal function calls and
//!   returns, which may be reordered or deleted during compilation as long
//!   as trace *weights* do not increase.
//!
//! The weight of a trace under a [`Metric`] `M : E → ℤ` is the supremum of
//! the valuations of its prefixes; with a *stack metric*
//! (`M(call f) = −M(ret f) ≥ 0`) it is exactly the maximum stack space held
//! at any point of the execution.
//!
//! [`refinement`] implements the checkable core of the paper's quantitative
//! refinement `s′ ≼Q s`: pruned-trace equality plus weight inequality, which
//! the compiler's differential tests apply to every pass.
//!
//! # Examples
//!
//! ```
//! use trace::{Event, Trace, Metric};
//!
//! let t: Trace = [Event::call("main"), Event::call("f"), Event::ret("f"),
//!                 Event::ret("main")].into_iter().collect();
//! let mut m = Metric::new();
//! m.set("main", 16);
//! m.set("f", 8);
//! assert_eq!(t.weight(&m), 24); // main and f simultaneously live
//! ```

#![warn(missing_docs)]

mod event;
mod metric;
pub mod refinement;

pub use event::{Behavior, Event, IoEvent, Trace};
pub use metric::Metric;

#[cfg(test)]
mod tests;
