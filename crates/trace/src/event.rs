//! Events, finite traces, and program behaviors.

use crate::Metric;
use std::fmt;
use std::sync::Arc;

/// An observable I/O event: an external function call `f(v⃗ ↦ v)`.
///
/// I/O events must be preserved *exactly* by compilation; they are what
/// CompCert's classic refinement compares.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IoEvent {
    /// Name of the external function.
    pub name: Arc<str>,
    /// Argument values (32-bit integers; our subset has no float I/O).
    pub args: Vec<u32>,
    /// Result value.
    pub result: u32,
}

impl fmt::Display for IoEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, " -> {})", self.result)
    }
}

/// A single trace event: either an I/O event or a *memory event*
/// (`call(f)` / `ret(f)`) recording an internal function call or return.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Event {
    /// External call, preserved by compilation.
    Io(IoEvent),
    /// Internal function call; costs `M(call f)` under a metric.
    Call(Arc<str>),
    /// Internal function return; costs `M(ret f) = −M(call f)`.
    Ret(Arc<str>),
}

impl Event {
    /// A `call(f)` memory event.
    ///
    /// # Examples
    ///
    /// ```
    /// # use trace::Event;
    /// assert!(Event::call("f").is_memory());
    /// ```
    pub fn call(f: impl Into<Arc<str>>) -> Self {
        Event::Call(f.into())
    }

    /// A `ret(f)` memory event.
    pub fn ret(f: impl Into<Arc<str>>) -> Self {
        Event::Ret(f.into())
    }

    /// An I/O event.
    pub fn io(name: impl Into<Arc<str>>, args: Vec<u32>, result: u32) -> Self {
        Event::Io(IoEvent {
            name: name.into(),
            args,
            result,
        })
    }

    /// True for memory events (`call`/`ret`), which pruning removes.
    pub fn is_memory(&self) -> bool {
        matches!(self, Event::Call(_) | Event::Ret(_))
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Io(ev) => write!(f, "{ev}"),
            Event::Call(name) => write!(f, "call({name})"),
            Event::Ret(name) => write!(f, "ret({name})"),
        }
    }
}

/// A finite event trace `t`.
///
/// Infinite traces of diverging executions are represented by the finite
/// prefix observed before the interpreter's fuel ran out (see
/// [`Behavior::Diverges`]); weights computed on such prefixes are lower
/// bounds of the true weight, which is all the differential refinement
/// tests need.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Trace {
    events: Vec<Event>,
}

impl Trace {
    /// The empty trace `ε`.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an event.
    pub fn push(&mut self, e: Event) {
        self.events.push(e);
    }

    /// The recorded events in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no event was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates over the events.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.events.iter()
    }

    /// The *pruned* trace `t̄`: all memory events deleted. This is what
    /// CompCert's classic (non-quantitative) refinement compares.
    ///
    /// # Examples
    ///
    /// ```
    /// # use trace::{Event, Trace};
    /// let t: Trace = [Event::call("f"), Event::io("print", vec![1], 0),
    ///                 Event::ret("f")].into_iter().collect();
    /// assert_eq!(t.pruned().len(), 1);
    /// ```
    pub fn pruned(&self) -> Trace {
        self.events
            .iter()
            .filter(|e| !e.is_memory())
            .cloned()
            .collect()
    }

    /// The valuation `V_M(t)`: the sum of the metric over all events.
    pub fn valuation(&self, m: &Metric) -> i64 {
        self.events.iter().map(|e| m.cost(e)).sum()
    }

    /// The weight `W_M(t) = sup { V_M(t′) | t′ prefix of t }`: the maximum
    /// running valuation, i.e. the peak stack usage of the execution.
    ///
    /// Always non-negative because the empty prefix has valuation 0.
    pub fn weight(&self, m: &Metric) -> i64 {
        let mut running = 0i64;
        let mut max = 0i64;
        for e in &self.events {
            running += m.cost(e);
            max = max.max(running);
        }
        max
    }

    /// Checks the stack discipline of memory events: every `ret(f)` must
    /// close the most recent open `call(f)`. Returns the call stack depth
    /// remaining at the end (0 for a completed `main`), or `None` when the
    /// discipline is violated.
    ///
    /// All of our interpreters produce well-bracketed traces; this is used
    /// as a sanity property in tests.
    pub fn check_bracketing(&self) -> Option<usize> {
        let mut stack: Vec<&Arc<str>> = Vec::new();
        for e in &self.events {
            match e {
                Event::Call(f) => stack.push(f),
                Event::Ret(f) => {
                    let open = stack.pop()?;
                    if open != f {
                        return None;
                    }
                }
                Event::Io(_) => {}
            }
        }
        Some(stack.len())
    }

    /// All function names that occur in memory events, deduplicated.
    pub fn functions(&self) -> Vec<Arc<str>> {
        let mut seen = Vec::new();
        for e in &self.events {
            if let Event::Call(f) | Event::Ret(f) = e {
                if !seen.contains(f) {
                    seen.push(f.clone());
                }
            }
        }
        seen
    }
}

impl FromIterator<Event> for Trace {
    fn from_iter<I: IntoIterator<Item = Event>>(iter: I) -> Self {
        Trace {
            events: iter.into_iter().collect(),
        }
    }
}

impl Extend<Event> for Trace {
    fn extend<I: IntoIterator<Item = Event>>(&mut self, iter: I) {
        self.events.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

impl IntoIterator for Trace {
    type Item = Event;
    type IntoIter = std::vec::IntoIter<Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.into_iter()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "]")
    }
}

/// A program behavior `B`: the paper's
/// `conv(t, n) | div(T) | fail(t)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Behavior {
    /// Converging computation with trace `t` and return code `n`.
    Converges(Trace, u32),
    /// Diverging computation; the field holds the finite prefix of the
    /// (possibly infinite) trace observed before fuel exhaustion.
    Diverges(Trace),
    /// A computation that goes wrong after producing `t`, with a diagnostic.
    Fails(Trace, String),
}

impl Behavior {
    /// The trace (or observed prefix) of the behavior.
    pub fn trace(&self) -> &Trace {
        match self {
            Behavior::Converges(t, _) | Behavior::Diverges(t) | Behavior::Fails(t, _) => t,
        }
    }

    /// The weight `W_M(B)`: supremum of prefix valuations of the trace.
    pub fn weight(&self, m: &Metric) -> i64 {
        self.trace().weight(m)
    }

    /// The pruned behavior `B̄` with all memory events deleted.
    pub fn pruned(&self) -> Behavior {
        match self {
            Behavior::Converges(t, n) => Behavior::Converges(t.pruned(), *n),
            Behavior::Diverges(t) => Behavior::Diverges(t.pruned()),
            Behavior::Fails(t, why) => Behavior::Fails(t.pruned(), why.clone()),
        }
    }

    /// True for `conv`.
    pub fn converges(&self) -> bool {
        matches!(self, Behavior::Converges(..))
    }

    /// True for `fail`.
    pub fn goes_wrong(&self) -> bool {
        matches!(self, Behavior::Fails(..))
    }

    /// The return code, for converging behaviors.
    pub fn return_code(&self) -> Option<u32> {
        match self {
            Behavior::Converges(_, n) => Some(*n),
            _ => None,
        }
    }
}

impl fmt::Display for Behavior {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Behavior::Converges(t, n) => write!(f, "conv({t}, {n})"),
            Behavior::Diverges(t) => write!(f, "div({t}…)"),
            Behavior::Fails(t, why) => write!(f, "fail({t}: {why})"),
        }
    }
}
