//! Checkable quantitative refinement (§3.1).
//!
//! The paper *proves in Coq*, once and for all, that each compiler pass `C`
//! satisfies `C(s) ≼Q s`: for every behavior `B′` of the target there is a
//! behavior `B` of the source with `B̄ = B̄′` (pruned traces agree) and
//! `W_M(B′) ≤ W_M(B)` for **all** stack metrics `M`.
//!
//! This crate replaces the proof with a *checker per execution pair*: given
//! the behavior the source produced and the behavior the target produced on
//! the same input, [`check_quantitative`] verifies both conditions. The
//! quantification over all stack metrics is discharged by open-call-profile
//! domination (see [`weight_le_all_metrics`]), a finite condition that
//! implies the weight inequality for every metric at once; concrete metrics
//! of interest can be supplied as well for better diagnostics.

use crate::{Behavior, Event, Metric, Trace};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Why a refinement check failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefinementError {
    /// The pruned traces (I/O events) differ at the given index.
    IoMismatch {
        /// Position of the first difference in the pruned traces.
        index: usize,
        /// Source event at that position, if any.
        source: Option<Event>,
        /// Target event at that position, if any.
        target: Option<Event>,
    },
    /// The behaviors have different outcomes (converge/diverge/fail).
    OutcomeMismatch {
        /// Display of the source outcome.
        source: String,
        /// Display of the target outcome.
        target: String,
    },
    /// The target weight exceeds the source weight under some metric.
    WeightExceeded {
        /// Metric under which the violation occurred.
        metric: String,
        /// Source weight.
        source_weight: i64,
        /// Target weight.
        target_weight: i64,
    },
}

impl fmt::Display for RefinementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefinementError::IoMismatch {
                index,
                source,
                target,
            } => write!(
                f,
                "pruned traces differ at {index}: source {source:?}, target {target:?}"
            ),
            RefinementError::OutcomeMismatch { source, target } => {
                write!(f, "behavior outcomes differ: source {source}, target {target}")
            }
            RefinementError::WeightExceeded {
                metric,
                source_weight,
                target_weight,
            } => write!(
                f,
                "target weight {target_weight} exceeds source weight {source_weight} under metric {metric}"
            ),
        }
    }
}

impl std::error::Error for RefinementError {}

/// Checks CompCert's *classic* refinement on one behavior pair: pruned
/// traces and outcomes agree, or the source goes wrong.
///
/// # Errors
///
/// Returns the first discrepancy found.
pub fn check_classic(source: &Behavior, target: &Behavior) -> Result<(), RefinementError> {
    // If the source goes wrong, anything refines it.
    if source.goes_wrong() {
        return Ok(());
    }
    let ps = source.pruned();
    let pt = target.pruned();
    let (st, tt) = (ps.trace(), pt.trace());
    if st != tt {
        let index = st
            .events()
            .iter()
            .zip(tt.events())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| st.len().min(tt.len()));
        return Err(RefinementError::IoMismatch {
            index,
            source: st.events().get(index).cloned(),
            target: tt.events().get(index).cloned(),
        });
    }
    let same_outcome = match (source, target) {
        (Behavior::Converges(_, a), Behavior::Converges(_, b)) => a == b,
        (Behavior::Diverges(_), Behavior::Diverges(_)) => true,
        // A diverging source matched against a target still running is fine;
        // other mixtures are not.
        _ => false,
    };
    if !same_outcome {
        return Err(RefinementError::OutcomeMismatch {
            source: outcome_name(source).to_owned(),
            target: outcome_name(target).to_owned(),
        });
    }
    Ok(())
}

fn outcome_name(b: &Behavior) -> &'static str {
    match b {
        Behavior::Converges(..) => "converges",
        Behavior::Diverges(_) => "diverges",
        Behavior::Fails(..) => "fails",
    }
}

/// The per-function *open-call profile* of a trace: for each function `f`,
/// the maximum number of simultaneously open `call(f)` activations weighted
/// at the global peak. Precisely, for each prefix `t′` we have the open-call
/// vector `o(t′) : F → ℕ`; the weight under metric `M` is
/// `max_{t′} Σ_f o(t′)(f)·M(f)`.
///
/// If for every prefix of the target there is a prefix of the source whose
/// open-call vector dominates it pointwise, then
/// `W_M(target) ≤ W_M(source)` holds for **all** stack metrics.
/// [`weight_le_all_metrics`] checks that domination (a finite check because
/// both traces are finite). The check is *sound but conservative*: a
/// max-combination of source vectors could dominate a target vector without
/// any single source vector doing so. All of our compiler passes preserve
/// the call structure event-for-event, so the conservative check suffices
/// and failures pinpoint real weight regressions.
pub fn open_call_profile(t: &Trace) -> Vec<BTreeMap<Arc<str>, u32>> {
    let mut cur: BTreeMap<Arc<str>, u32> = BTreeMap::new();
    let mut profile = vec![cur.clone()];
    for e in t {
        match e {
            Event::Call(f) => {
                *cur.entry(f.clone()).or_insert(0) += 1;
            }
            Event::Ret(f) => {
                if let Some(n) = cur.get_mut(f) {
                    *n = n.saturating_sub(1);
                    if *n == 0 {
                        cur.remove(f);
                    }
                }
            }
            Event::Io(_) => {}
        }
        profile.push(cur.clone());
    }
    // Keep only maximal vectors: a vector dominated by another in the same
    // profile is redundant for the ∀∃ check.
    let mut maximal: Vec<BTreeMap<Arc<str>, u32>> = Vec::new();
    for v in profile {
        if maximal.iter().any(|w| dominates(w, &v)) {
            continue;
        }
        maximal.retain(|w| !dominates(&v, w));
        maximal.push(v);
    }
    maximal
}

fn dominates(a: &BTreeMap<Arc<str>, u32>, b: &BTreeMap<Arc<str>, u32>) -> bool {
    b.iter()
        .all(|(f, nb)| a.get(f).copied().unwrap_or(0) >= *nb)
}

/// Checks a condition sufficient for `W_M(target) ≤ W_M(source)` under
/// **every** stack metric `M`: open-call-profile domination, described at
/// [`open_call_profile`].
pub fn weight_le_all_metrics(target: &Trace, source: &Trace) -> bool {
    let pt = open_call_profile(target);
    let ps = open_call_profile(source);
    pt.iter().all(|v| ps.iter().any(|w| dominates(w, v)))
}

/// Checks the paper's full quantitative refinement on one behavior pair:
/// classic refinement plus `W_M(B′) ≤ W_M(B)` for all stack metrics.
///
/// `extra_metrics` are additionally checked and reported by name on
/// failure, giving much better error messages in compiler tests.
///
/// # Errors
///
/// Returns the first discrepancy found.
pub fn check_quantitative(
    source: &Behavior,
    target: &Behavior,
    extra_metrics: &[(&str, &Metric)],
) -> Result<(), RefinementError> {
    let _span = obs::span("trace/check_quantitative");
    obs::counter("trace/refinement_checks", 1);
    obs::counter("trace/refinement_events", target.trace().len() as u64);
    if source.goes_wrong() {
        return Ok(());
    }
    check_classic(source, target)?;
    for (name, m) in extra_metrics {
        let (ws, wt) = (source.weight(m), target.weight(m));
        if wt > ws {
            return Err(RefinementError::WeightExceeded {
                metric: (*name).to_owned(),
                source_weight: ws,
                target_weight: wt,
            });
        }
    }
    if !weight_le_all_metrics(target.trace(), source.trace()) {
        // Find a witness indicator metric for the report.
        for f in target.trace().functions() {
            let m = Metric::indicator(&f);
            let (ws, wt) = (source.weight(&m), target.weight(&m));
            if wt > ws {
                return Err(RefinementError::WeightExceeded {
                    metric: format!("indicator({f})"),
                    source_weight: ws,
                    target_weight: wt,
                });
            }
        }
        return Err(RefinementError::WeightExceeded {
            metric: "open-call profile domination".to_owned(),
            source_weight: 0,
            target_weight: 0,
        });
    }
    Ok(())
}
