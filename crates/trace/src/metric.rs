//! Resource metrics `M : E → ℤ`.

use crate::Event;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A *stack metric*: assigns every internal function `f` a non-negative cost
/// `M(call f)` with `M(ret f) = −M(call f)`, and cost 0 to I/O events.
///
/// The compiler produces the concrete metric `M(f) = SF(f) + 4` from the
/// Mach stack-frame sizes (`SF`), so that instantiating a source-level bound
/// with this metric yields a bound on the stack usage of the compiled
/// `ASMsz` code (Theorem 1 of the paper).
///
/// Functions absent from the metric have cost 0; [`Metric::is_total_for`]
/// can be used to insist on totality.
///
/// # Examples
///
/// ```
/// use trace::{Event, Metric};
///
/// let mut m = Metric::new();
/// m.set("f", 24);
/// assert_eq!(m.cost(&Event::call("f")), 24);
/// assert_eq!(m.cost(&Event::ret("f")), -24);
/// assert_eq!(m.cost(&Event::io("print", vec![], 0)), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metric {
    costs: BTreeMap<Arc<str>, u32>,
}

impl Metric {
    /// An empty metric (every function costs 0).
    pub fn new() -> Self {
        Metric::default()
    }

    /// Builds a metric from `(function, cost)` pairs.
    pub fn from_pairs<I, S>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (S, u32)>,
        S: Into<Arc<str>>,
    {
        Metric {
            costs: pairs.into_iter().map(|(f, c)| (f.into(), c)).collect(),
        }
    }

    /// Sets the cost of calling `f` to `bytes`.
    pub fn set(&mut self, f: impl Into<Arc<str>>, bytes: u32) {
        self.costs.insert(f.into(), bytes);
    }

    /// The cost `M(call f)` of calling `f`, 0 when unknown.
    pub fn call_cost(&self, f: &str) -> u32 {
        self.costs.get(f).copied().unwrap_or(0)
    }

    /// The signed cost of an arbitrary event.
    pub fn cost(&self, e: &Event) -> i64 {
        match e {
            Event::Io(_) => 0,
            Event::Call(f) => i64::from(self.call_cost(f)),
            Event::Ret(f) => -i64::from(self.call_cost(f)),
        }
    }

    /// True when every function in `functions` has an explicit cost.
    pub fn is_total_for<'a>(&self, functions: impl IntoIterator<Item = &'a str>) -> bool {
        functions.into_iter().all(|f| self.costs.contains_key(f))
    }

    /// Iterates over `(function, cost)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u32)> {
        self.costs.iter().map(|(f, c)| (f.as_ref(), *c))
    }

    /// Number of functions with explicit costs.
    pub fn len(&self) -> usize {
        self.costs.len()
    }

    /// True when no function has an explicit cost.
    pub fn is_empty(&self) -> bool {
        self.costs.is_empty()
    }

    /// The *unit* metric over the given functions: every call costs 1, so
    /// trace weights equal the maximum call depth. Used by the refinement
    /// test battery.
    pub fn unit<'a>(functions: impl IntoIterator<Item = &'a str>) -> Self {
        Metric::from_pairs(functions.into_iter().map(|f| (f.to_owned(), 1)))
    }

    /// The *indicator* metric of a single function: calling `f` costs 1 and
    /// everything else costs 0, so trace weights equal the maximum number of
    /// simultaneously open activations of `f`. Used by the refinement test
    /// battery.
    pub fn indicator(f: &str) -> Self {
        Metric::from_pairs([(f.to_owned(), 1)])
    }
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (name, c)) in self.costs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name}: {c}")?;
        }
        write!(f, "}}")
    }
}

impl<S: Into<Arc<str>>> FromIterator<(S, u32)> for Metric {
    fn from_iter<I: IntoIterator<Item = (S, u32)>>(iter: I) -> Self {
        Metric::from_pairs(iter)
    }
}

impl<S: Into<Arc<str>>> Extend<(S, u32)> for Metric {
    fn extend<I: IntoIterator<Item = (S, u32)>>(&mut self, iter: I) {
        for (f, c) in iter {
            self.costs.insert(f.into(), c);
        }
    }
}
