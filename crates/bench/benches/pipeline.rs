//! Criterion bench for the compiler pipeline: per-pass translation cost
//! on the largest benchmark file, plus the end-to-end `verify_program`
//! loop on a medium program.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn pipeline(c: &mut Criterion) {
    let bench = stackbound::benchsuite::table1_benchmark("certikos/proc.c").unwrap();
    let program = bench.program().unwrap();

    c.bench_function("compile/certikos_proc", |b| {
        b.iter(|| stackbound::compiler::compile(black_box(&program)).unwrap())
    });
    c.bench_function("compile_no_opt/certikos_proc", |b| {
        b.iter(|| {
            stackbound::compiler::compile_with(
                black_box(&program),
                stackbound::compiler::Options::no_opt(),
            )
            .unwrap()
        })
    });

    let quickstart = "
        u32 scale(u32 x)  { return x * 3; }
        u32 offset(u32 x) { u32 s; s = scale(x); return s + 7; }
        int main() { u32 i; u32 acc; acc = 0;
            for (i = 0; i < 10; i++) { u32 v; v = offset(i); acc = acc + v; }
            return acc % 256; }";
    c.bench_function("verify_program/quickstart", |b| {
        b.iter(|| stackbound::verify_program(black_box(quickstart)).unwrap())
    });

    c.bench_function("frontend/certikos_proc", |b| {
        b.iter(|| stackbound::clight::frontend(black_box(bench.source), &[]).unwrap())
    });
}

criterion_group!(benches, pipeline);
criterion_main!(benches);
