//! Measures the cost of the observability instrumentation on the hottest
//! loop in the workspace: the `ASMsz` machine interpreting `fib(17)`.
//!
//! Three configurations of the *same* instrumented code run back to
//! back: with no recorder installed (the shipping default — counters are
//! local array bumps and the waterline decimates to a handful of
//! comparisons per `ESP` write), with the global recorder installed, and
//! with the recorder installed *plus* an open timeline span around every
//! run (the `--trace-chrome` shape: a registered worker thread with a
//! `measure/fn/*` span on its timeline). The full-timeline configuration
//! must stay within [`MAX_TIMELINE_RATIO`] of the disabled fast path —
//! the bench asserts it, so a hot-loop instrumentation regression fails
//! `cargo bench` before it ships.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Recording with live timeline spans may cost at most this much relative
/// to the disabled fast path on the fib(17) machine loop.
const MAX_TIMELINE_RATIO: f64 = 1.2;

const FIB: &str = "
    u32 fib(u32 n) { u32 a; u32 b; if (n < 2) return n;
        a = fib(n - 1); b = fib(n - 2); return a + b; }
    int main() { u32 r; r = fib(17); return r & 0xff; }";

fn obs_overhead(c: &mut Criterion) {
    let program = stackbound::clight::frontend(FIB, &[]).unwrap();
    let compiled = stackbound::compiler::compile(&program).unwrap();

    c.bench_function("obs/machine/fib17/disabled", |b| {
        assert!(!obs::is_enabled());
        b.iter(|| {
            let m = stackbound::asm::measure_main(black_box(&compiled.asm), 1 << 16, 100_000_000)
                .unwrap();
            assert!(m.behavior.converges());
            m.stack_usage
        })
    });
    c.bench_function("obs/machine/fib17/recording", |b| {
        let _session = obs::install();
        b.iter(|| {
            let m = stackbound::asm::measure_main(black_box(&compiled.asm), 1 << 16, 100_000_000)
                .unwrap();
            assert!(m.behavior.converges());
            m.stack_usage
        })
    });
    c.bench_function("obs/machine/fib17/timeline", |b| {
        let _session = obs::install();
        obs::register_thread("bench");
        b.iter(|| {
            let _span = obs::span("measure/fn/fib17");
            let m = stackbound::asm::measure_main(black_box(&compiled.asm), 1 << 16, 100_000_000)
                .unwrap();
            assert!(m.behavior.converges());
            m.stack_usage
        })
    });

    let results = c.results();
    let median = |suffix: &str| {
        results
            .iter()
            .find(|r| r.name.ends_with(suffix))
            .map(|r| r.median_ns.max(1.0))
    };
    if let (Some(off), Some(on), Some(timeline)) = (
        median("/disabled"),
        median("/recording"),
        median("/timeline"),
    ) {
        println!("obs overhead: recording/disabled = {:.3}x", on / off);
        let ratio = timeline / off;
        println!("obs overhead: timeline/disabled  = {ratio:.3}x");
        assert!(
            ratio <= MAX_TIMELINE_RATIO,
            "timeline recording costs {ratio:.3}x over the disabled fast path              (budget {MAX_TIMELINE_RATIO}x)"
        );
    }
}

criterion_group!(benches, obs_overhead);
criterion_main!(benches);
