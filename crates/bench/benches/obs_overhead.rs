//! Measures the cost of the observability instrumentation on the hottest
//! loop in the workspace: the `ASMsz` machine interpreting `fib(17)`.
//!
//! Two configurations of the *same* instrumented code run back to back:
//! with no recorder installed (the shipping default — counters are local
//! array bumps and the waterline decimates to a handful of comparisons
//! per `ESP` write), and with the global recorder installed. The first
//! must stay within a few percent of the pre-instrumentation machine
//! loop; the printed ratio makes regressions visible.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const FIB: &str = "
    u32 fib(u32 n) { u32 a; u32 b; if (n < 2) return n;
        a = fib(n - 1); b = fib(n - 2); return a + b; }
    int main() { u32 r; r = fib(17); return r & 0xff; }";

fn obs_overhead(c: &mut Criterion) {
    let program = stackbound::clight::frontend(FIB, &[]).unwrap();
    let compiled = stackbound::compiler::compile(&program).unwrap();

    c.bench_function("obs/machine/fib17/disabled", |b| {
        assert!(!obs::is_enabled());
        b.iter(|| {
            let m = stackbound::asm::measure_main(black_box(&compiled.asm), 1 << 16, 100_000_000)
                .unwrap();
            assert!(m.behavior.converges());
            m.stack_usage
        })
    });
    c.bench_function("obs/machine/fib17/recording", |b| {
        let _session = obs::install();
        b.iter(|| {
            let m = stackbound::asm::measure_main(black_box(&compiled.asm), 1 << 16, 100_000_000)
                .unwrap();
            assert!(m.behavior.converges());
            m.stack_usage
        })
    });

    let results = c.results();
    if let (Some(off), Some(on)) = (
        results.iter().find(|r| r.name.ends_with("/disabled")),
        results.iter().find(|r| r.name.ends_with("/recording")),
    ) {
        println!(
            "obs overhead: recording/disabled = {:.3}x",
            on.median_ns / off.median_ns.max(1.0)
        );
    }
}

criterion_group!(benches, obs_overhead);
criterion_main!(benches);
