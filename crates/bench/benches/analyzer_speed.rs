//! Criterion bench backing the paper's §6 timing claim: "the automatic
//! stack-bound analysis runs very efficiently and needs less than a second
//! for every example file".

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn analyzer_speed(c: &mut Criterion) {
    let mut group = c.benchmark_group("analyzer");
    for bench in stackbound::benchsuite::table1_benchmarks() {
        let program = bench.program().expect("front end");
        let name = bench.file.replace('/', "_");
        group.bench_function(format!("analyze/{name}"), |b| {
            b.iter(|| stackbound::analyzer::analyze(black_box(&program)).unwrap())
        });
        let analysis = stackbound::analyzer::analyze(&program).unwrap();
        group.bench_function(format!("check/{name}"), |b| {
            b.iter(|| analysis.check(black_box(&program)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, analyzer_speed);
criterion_main!(benches);
