//! Criterion bench for the interpreters: Clight small-step vs the `ASMsz`
//! machine on the same workload, and the monitor overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const FIB: &str = "
    u32 fib(u32 n) { u32 a; u32 b; if (n < 2) return n;
        a = fib(n - 1); b = fib(n - 2); return a + b; }
    int main() { u32 r; r = fib(17); return r & 0xff; }";

fn machine(c: &mut Criterion) {
    let program = stackbound::clight::frontend(FIB, &[]).unwrap();
    let compiled = stackbound::compiler::compile(&program).unwrap();

    c.bench_function("interp/clight/fib17", |b| {
        b.iter(|| {
            let behavior = stackbound::clight::Executor::run_main(black_box(&program), 100_000_000);
            assert!(behavior.converges());
            behavior
        })
    });
    c.bench_function("interp/mach/fib17", |b| {
        b.iter(|| {
            let behavior =
                stackbound::compiler::mach::run_main(black_box(&compiled.mach), 100_000_000);
            assert!(behavior.converges());
            behavior
        })
    });
    c.bench_function("machine/asm/fib17", |b| {
        b.iter(|| {
            let m = stackbound::asm::measure_main(black_box(&compiled.asm), 1 << 16, 100_000_000)
                .unwrap();
            assert!(m.behavior.converges());
            m.stack_usage
        })
    });
}

criterion_group!(benches, machine);
criterion_main!(benches);
