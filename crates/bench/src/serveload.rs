//! Load-generator harness for the `sbound serve` verification daemon.
//!
//! Drives an in-process [`stackbound::serve`] TCP server with closed-loop
//! clients: each client thread owns one connection and sends the next job
//! as soon as its previous response arrives, so *concurrency = clients*
//! and a request's wall clock is a true round-trip latency (queue wait
//! included). The harness records per-request latencies, aggregates them
//! into req/s plus p50/p99, and optionally checks every response against
//! the expected one-shot rendering — a load test that silently returned
//! wrong bounds would be worse than a slow one.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// One request of a workload: the protocol line to send and, optionally,
/// the exact `report` (on `expect_ok`) or `error` (otherwise) string the
/// response must carry.
pub struct LoadJob {
    /// The serialized request line (no trailing newline).
    pub line: String,
    /// Whether the response must be `ok`.
    pub expect_ok: bool,
    /// Expected `report` / `error` payload, byte-compared when present.
    pub expect: Option<String>,
}

/// Aggregated result of one workload replay.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Workload label (`cold_corpus`, `warm_corpus`, `edit_storm`, …).
    pub label: String,
    /// Requests completed.
    pub requests: usize,
    /// Closed-loop client count.
    pub concurrency: usize,
    /// Wall-clock seconds for the whole replay.
    pub elapsed_s: f64,
    /// Aggregate requests per second.
    pub rps: f64,
    /// Median round-trip latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile round-trip latency, milliseconds.
    pub p99_ms: f64,
    /// Responses that failed their expectation.
    pub mismatches: usize,
}

fn percentile(sorted_ms: &[f64], pct: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = (pct / 100.0 * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[rank.min(sorted_ms.len() - 1)]
}

/// Replays `jobs` against the server at `addr` with `concurrency`
/// closed-loop clients, verifying responses against each job's
/// expectation. Jobs are claimed from a shared cursor, so the schedule
/// interleaves across clients like real traffic would.
pub fn replay(
    addr: std::net::SocketAddr,
    label: &str,
    jobs: &[LoadJob],
    concurrency: usize,
) -> LoadReport {
    let cursor = AtomicUsize::new(0);
    let clients = concurrency.max(1).min(jobs.len().max(1));
    let started = Instant::now();
    let per_client: Vec<(Vec<f64>, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let cursor = &cursor;
                scope.spawn(move || {
                    let stream = TcpStream::connect(addr).expect("connect");
                    let _ = stream.set_nodelay(true);
                    let mut writer = stream.try_clone().expect("clone");
                    let mut reader = BufReader::new(stream);
                    let mut latencies = Vec::new();
                    let mut mismatches = 0usize;
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(job) = jobs.get(i) else { break };
                        let sent = Instant::now();
                        writeln!(writer, "{}", job.line).expect("send");
                        let mut line = String::new();
                        reader.read_line(&mut line).expect("recv");
                        latencies.push(sent.elapsed().as_secs_f64() * 1e3);
                        if !response_matches(&line, job) {
                            mismatches += 1;
                        }
                    }
                    (latencies, mismatches)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed_s = started.elapsed().as_secs_f64();

    let mut latencies: Vec<f64> = Vec::with_capacity(jobs.len());
    let mut mismatches = 0;
    for (l, m) in per_client {
        latencies.extend(l);
        mismatches += m;
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    LoadReport {
        label: label.to_owned(),
        requests: latencies.len(),
        concurrency: clients,
        elapsed_s,
        rps: latencies.len() as f64 / elapsed_s.max(f64::EPSILON),
        p50_ms: percentile(&latencies, 50.0),
        p99_ms: percentile(&latencies, 99.0),
        mismatches,
    }
}

fn response_matches(line: &str, job: &LoadJob) -> bool {
    let Ok(v) = obs::json::parse(line) else {
        return false;
    };
    let ok = v.get("ok") == Some(&obs::json::Value::Bool(true));
    if ok != job.expect_ok {
        return false;
    }
    match &job.expect {
        None => true,
        Some(want) => {
            let field = if job.expect_ok { "report" } else { "error" };
            v.get(field).and_then(|f| f.as_str()) == Some(want.as_str())
        }
    }
}

/// Asks the server for its `metrics` snapshot and returns the parsed
/// response (a fresh connection, so it can run mid-load or after).
pub fn fetch_metrics(addr: std::net::SocketAddr) -> obs::json::Value {
    let stream = TcpStream::connect(addr).expect("connect");
    let _ = stream.set_nodelay(true);
    let mut writer = stream.try_clone().expect("clone");
    writeln!(writer, "{{\"op\":\"metrics\",\"id\":0}}").expect("send");
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).expect("recv");
    obs::json::parse(&line).expect("well-formed metrics")
}

/// The full-corpus workload: every Table 1 benchmark and extra as a
/// `verify` request, and every Table 2 recursive case twice — as a
/// `verify` request (expecting the analyzer's recursion rejection) and
/// as a `table2` request re-checking its hand-written derivations (the
/// most expensive, most cache-sensitive work in the corpus) — on both
/// backend targets, each with its expected one-shot outcome.
pub fn corpus_jobs() -> Vec<LoadJob> {
    use stackbound::serve::protocol::escape;
    let verifier = |target: stackbound::asm::Target| {
        stackbound::Verifier::new().fuel(crate::FUEL).target(target)
    };
    // The expectation runs are one-shot anchors; sharing a cache between
    // them only speeds preparation up (the rendering is deterministic)
    // and never leaks into the server under test, which has its own.
    let expect_cache = stackbound::vcache::VCache::new();
    let mut jobs = Vec::new();
    let mut id = 0u64;
    for target in [stackbound::asm::Target::Sz32, stackbound::asm::Target::Rv] {
        for b in stackbound::benchsuite::table1_benchmarks()
            .into_iter()
            .chain(stackbound::benchsuite::extra_benchmarks())
        {
            id += 1;
            let want = verifier(target)
                .verify(b.source)
                .unwrap_or_else(|e| panic!("{}: one-shot: {e}", b.file))
                .to_string();
            jobs.push(LoadJob {
                line: format!(
                    "{{\"op\":\"verify\",\"id\":{id},\"source\":{},\"target\":\"{}\"}}",
                    escape(b.source),
                    target.name()
                ),
                expect_ok: true,
                expect: Some(want),
            });
        }
        for case in stackbound::benchsuite::recursive_cases() {
            id += 1;
            let want = verifier(target)
                .verify(case.source)
                .expect_err("recursive programs are rejected")
                .to_string();
            jobs.push(LoadJob {
                line: format!(
                    "{{\"op\":\"verify\",\"id\":{id},\"source\":{},\"target\":\"{}\"}}",
                    escape(case.source),
                    target.name()
                ),
                expect_ok: false,
                expect: Some(want),
            });
            id += 1;
            let want = stackbound::table2::verify_case_cached(&case, target, &expect_cache)
                .unwrap_or_else(|e| panic!("{}: one-shot table2: {e}", case.file));
            jobs.push(LoadJob {
                line: format!(
                    "{{\"op\":\"table2\",\"id\":{id},\"case\":{},\"target\":\"{}\"}}",
                    escape(case.name),
                    target.name()
                ),
                expect_ok: true,
                expect: Some(want),
            });
        }
    }
    jobs
}

/// An edit-storm workload: `requests` single-function edits of one
/// program — only `main`'s constant changes between variants, so the
/// helper functions keep their cache keys and each first-seen variant
/// recomputes `main` alone. Expectations are precomputed one-shot
/// reports per variant.
pub fn edit_storm_jobs(variants: u32, requests: usize) -> Vec<LoadJob> {
    use stackbound::serve::protocol::escape;
    let source = |k: u32| {
        format!(
            "u32 h1(u32 x) {{ u32 r; r = x + 1; return r; }}\n\
             u32 h2(u32 x) {{ u32 t; u32 r; t = h1(x); r = t * 2; return r; }}\n\
             u32 h3(u32 x) {{ u32 t; u32 r; t = h2(x); r = t + 3; return r; }}\n\
             u32 h4(u32 x) {{ u32 t; u32 r; t = h3(x); r = t ^ 5; return r; }}\n\
             int main() {{ u32 r; r = h4({k}); return r % 256; }}\n"
        )
    };
    let expected: Vec<String> = (0..variants)
        .map(|k| {
            stackbound::Verifier::new()
                .fuel(crate::FUEL)
                .verify(&source(k))
                .expect("storm variant verifies")
                .to_string()
        })
        .collect();
    (0..requests)
        .map(|i| {
            let k = (i as u32) % variants;
            LoadJob {
                line: format!(
                    "{{\"op\":\"verify\",\"id\":{},\"source\":{}}}",
                    i + 1,
                    escape(&source(k))
                ),
                expect_ok: true,
                expect: Some(expected[k as usize].clone()),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::percentile;

    #[test]
    fn percentiles_pick_the_right_ranks() {
        let ms: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&ms, 50.0), 51.0);
        assert_eq!(percentile(&ms, 99.0), 99.0);
        assert_eq!(percentile(&ms, 100.0), 100.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }
}
