//! Regenerates **Table 1**: automatically verified stack bounds for C
//! functions, with the analysis wall-clock time per file (the paper
//! reports "less than a second for every example file").
//!
//! ```sh
//! cargo run -p bench --bin table1
//! ```

use std::time::Instant;

fn main() {
    let _metrics = bench::metrics_from_args();
    let config = bench::pipeline_config_from_args();
    let opts = bench::suite_options_from_args();
    println!("Table 1: automatically verified stack bounds");
    println!("(bounds instantiate the analyzer's symbolic result with the");
    println!(" compiler's cost metric M(f) = SF(f) + 4)\n");
    println!(
        "{:<28} {:>5}  {:<20} {:>16}",
        "File Name", "LOC", "Function Name", "Verified Bound"
    );
    println!("{}", "-".repeat(75));
    for prep in bench::prepare_table1_with_opts(&config, &opts) {
        let started = Instant::now();
        let analysis = stackbound::analyzer::analyze(&prep.program).expect("analyzable");
        analysis.check(&prep.program).expect("derivations check");
        let elapsed = started.elapsed();
        let mut first = true;
        for fname in prep.functions {
            let bound = analysis
                .concrete_bound(fname, &prep.compiled.metric)
                .expect("concrete bound");
            let file_cell = if first {
                format!("{} ", prep.file)
            } else {
                String::new()
            };
            let loc_cell = if first {
                format!("{}", prep.loc)
            } else {
                String::new()
            };
            println!("{file_cell:<28} {loc_cell:>5}  {fname:<20} {bound:>10.0} bytes");
            first = false;
        }
        println!(
            "{:<28} {:>5}  (analysis + derivation check: {:.1} ms)",
            "",
            "",
            elapsed.as_secs_f64() * 1e3
        );
        println!();
    }
}
