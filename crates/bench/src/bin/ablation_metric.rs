//! Ablation: the **cost metric**. The paper's metric is
//! `M(f) = SF(f) + 4`; the `+4` pays for the return address a call pushes.
//! This harness shows what goes wrong with the naive `M(f) = SF(f)`:
//! bounds computed from trace weights then *under*-approximate the real
//! consumption — a program "verified" against them overflows.
//!
//! ```sh
//! cargo run -p bench --bin ablation_metric
//! ```

use bench::{measure_main, FUEL};
use stackbound::{asm, trace};

fn main() {
    println!("Ablation: M(f) = SF(f) + 4 (paper) vs naive M(f) = SF(f)\n");
    println!(
        "{:<28} {:>10} {:>12} {:>12} {:>10}",
        "program", "measured", "paper bound", "naive bound", "naive ok?"
    );
    println!("{}", "-".repeat(80));
    for prep in bench::prepare_table1() {
        let naive: trace::Metric = prep
            .compiled
            .mach
            .functions
            .iter()
            .map(|f| (f.name.clone(), f.frame_size))
            .collect();
        let paper_bound = prep
            .analysis
            .concrete_bound("main", &prep.compiled.metric)
            .unwrap() as u32;
        let naive_bound = prep.analysis.concrete_bound("main", &naive).unwrap() as u32;
        let m = measure_main(&prep.compiled);
        let naive_sound = naive_bound >= m.stack_usage;
        println!(
            "{:<28} {:>6} B {paper_bound:>8} B {naive_bound:>8} B {:>10}",
            prep.file,
            m.stack_usage,
            if naive_sound { "sound" } else { "UNSOUND" }
        );
        // The paper bound always holds; demonstrate the naive one failing
        // on the machine when it is below the measured usage.
        assert!(paper_bound >= m.stack_usage + 4);
        if !naive_sound {
            let run = asm::measure_main(&prep.compiled.asm, naive_bound, FUEL).expect("setup");
            assert!(
                run.overflowed(),
                "{}: expected overflow at the naive bound",
                prep.file
            );
        }
    }
    println!("\nwithout the +4 per activation, deep call chains outrun the bound and");
    println!("the machine traps — the metric term the paper derives is essential.");
}
