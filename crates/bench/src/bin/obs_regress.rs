//! CI gate: the observability layer itself is load-bearing.
//!
//! `obs_regress` runs the full corpus (Table 1 + extras + the Table 2
//! recursive cases) through the cached [`stackbound::Verifier`] under an
//! installed [`obs`] recorder, reduces the recorded report to a flat list
//! of metrics, and compares them against a checked-in baseline
//! (`ci/obs_baselines/suite.txt`) with per-metric tolerance rules. A
//! counter that drifts, a span that disappears, or a stage that blows
//! through its wall-clock ceiling fails CI — instrumentation regressions
//! are caught like any other regression.
//!
//! The workload is serial and starts from fresh caches, so every counter
//! (machine steps, analyzer effort, qhl rule applications, cache
//! hits/misses) and every span/histogram *count* is byte-deterministic;
//! only wall-clock totals need tolerance, and those are snapshotted as
//! generous ceilings.
//!
//! Baseline lines are `kind name value rule`:
//!
//! ```text
//! counter   machine/steps            1188090  exact
//! spancount measure/fn/main          14       exact
//! spanns    verify/measure           250000000 ceiling
//! histcount machine/steps_per_sec    14       exact
//! ```
//!
//! Rules: `exact`, `ceiling` (current <= value), `floor`
//! (current >= value), or `<N>%` (relative tolerance) — edit the rule in
//! place to relax a metric that is legitimately machine-dependent.
//!
//! After the serial gate, a second *parallel* pass (`--parallel-measure`
//! semantics) exports a Chrome trace of the suite, re-validates it with
//! the in-crate [`obs::json`] parser, and asserts the timeline has at
//! least two distinct thread tracks when the machine has more than one
//! core — the end-to-end guarantee behind `sbound --trace-chrome`.
//!
//! ```sh
//! cargo run -p bench --bin obs_regress                   # compare
//! cargo run -p bench --bin obs_regress -- --snapshot     # (re)write baseline
//! cargo run -p bench --bin obs_regress -- --trace-chrome trace.json
//! ```

use stackbound::{asm, vcache};
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::sync::Arc;

const DEFAULT_BASELINE: &str = "ci/obs_baselines/suite.txt";

/// Wall-clock ceilings are snapshotted at `max(observed * 10, 250ms)` so
/// a slow CI machine never trips them while a 10x stage regression does.
const CEILING_MARGIN: u64 = 10;
const CEILING_FLOOR_NS: u64 = 250_000_000;

struct Options {
    baseline: String,
    snapshot: bool,
    trace_chrome: Option<String>,
    trace_folded: Option<String>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: obs_regress [--baseline FILE] [--snapshot] \
         [--trace-chrome FILE] [--trace-folded FILE]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Options, ExitCode> {
    let mut opts = Options {
        baseline: DEFAULT_BASELINE.to_owned(),
        snapshot: false,
        trace_chrome: None,
        trace_folded: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--snapshot" => opts.snapshot = true,
            "--baseline" => opts.baseline = args.next().ok_or_else(usage)?,
            "--trace-chrome" => opts.trace_chrome = Some(args.next().ok_or_else(usage)?),
            "--trace-folded" => opts.trace_folded = Some(args.next().ok_or_else(usage)?),
            _ => return Err(usage()),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(code) => return code,
    };

    // ---- serial deterministic pass ------------------------------------
    let report = {
        let session = obs::install();
        run_corpus();
        let report = obs::report().expect("recorder is installed");
        drop(session);
        report
    };
    let current = extract_metrics(&report);
    println!(
        "obs_regress: serial corpus pass recorded {} metrics",
        current.len()
    );

    if opts.snapshot {
        let text = render_snapshot(&current);
        if let Some(dir) = std::path::Path::new(&opts.baseline).parent() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("obs_regress: cannot create `{}`: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
        if let Err(e) = std::fs::write(&opts.baseline, text) {
            eprintln!("obs_regress: cannot write `{}`: {e}", opts.baseline);
            return ExitCode::FAILURE;
        }
        println!("obs_regress: wrote baseline `{}`", opts.baseline);
    } else {
        let text = match std::fs::read_to_string(&opts.baseline) {
            Ok(t) => t,
            Err(e) => {
                eprintln!(
                    "obs_regress: cannot read `{}`: {e} (run with --snapshot to create it)",
                    opts.baseline
                );
                return ExitCode::FAILURE;
            }
        };
        let baseline = match parse_baseline(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("obs_regress: `{}`: {e}", opts.baseline);
                return ExitCode::FAILURE;
            }
        };
        let failures = compare(&baseline, &current);
        for f in &failures {
            eprintln!("obs_regress: FAILED: {f}");
        }
        let fresh: Vec<&Metric> = current
            .keys()
            .filter(|m| !baseline.iter().any(|e| e.metric == **m))
            .collect();
        if !fresh.is_empty() {
            println!(
                "obs_regress: note: {} metrics not in baseline (snapshot to adopt), e.g. {:?}",
                fresh.len(),
                fresh[0]
            );
        }
        if !failures.is_empty() {
            eprintln!(
                "obs_regress: {} of {} baseline metrics failed",
                failures.len(),
                baseline.len()
            );
            return ExitCode::FAILURE;
        }
        println!(
            "obs_regress: all {} baseline metrics within tolerance",
            baseline.len()
        );
    }

    // ---- parallel pass: the Chrome timeline is real -------------------
    match parallel_trace_pass(opts.trace_chrome.as_deref(), opts.trace_folded.as_deref()) {
        Ok(tracks) => {
            println!("obs_regress: chrome trace valid with {tracks} thread track(s)");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("obs_regress: FAILED: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The serial gate workload: the whole corpus through fresh shared
/// caches, exactly once, on one thread of control, plus one binary-level
/// stack-analysis pass (whose `stacklint/*` spans and counters are
/// deterministic and baselined like everything else).
fn run_corpus() {
    let benchmarks: Vec<_> = stackbound::benchsuite::table1_benchmarks()
        .into_iter()
        .chain(stackbound::benchsuite::extra_benchmarks())
        .collect();
    let recursive = stackbound::benchsuite::recursive_cases();
    let cache = Arc::new(vcache::VCache::new());
    let measure_cache = Arc::new(asm::MeasureCache::new());
    bench::verify_suite_cached(&benchmarks, &cache, &measure_cache);
    bench::verify_recursive_cached(&recursive, &cache);
    bench::lint_suite_on(asm::Target::Sz32);
}

/// One gated metric: the kind discriminates how the value was reduced
/// from the report.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Metric {
    /// A global counter's summed value.
    Counter(String),
    /// How many spans with this name were recorded.
    SpanCount(String),
    /// Total wall-clock over all spans with this name, nanoseconds.
    SpanNs(String),
    /// A histogram's sample count.
    HistCount(String),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::SpanCount(_) => "spancount",
            Metric::SpanNs(_) => "spanns",
            Metric::HistCount(_) => "histcount",
        }
    }

    fn name(&self) -> &str {
        match self {
            Metric::Counter(n)
            | Metric::SpanCount(n)
            | Metric::SpanNs(n)
            | Metric::HistCount(n) => n,
        }
    }

    fn from_parts(kind: &str, name: &str) -> Option<Metric> {
        match kind {
            "counter" => Some(Metric::Counter(name.to_owned())),
            "spancount" => Some(Metric::SpanCount(name.to_owned())),
            "spanns" => Some(Metric::SpanNs(name.to_owned())),
            "histcount" => Some(Metric::HistCount(name.to_owned())),
            _ => None,
        }
    }
}

/// Per-metric comparison rule.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Rule {
    /// current == value
    Exact,
    /// current <= value
    Ceiling,
    /// current >= value
    Floor,
    /// |current - value| <= value * pct / 100
    Percent(f64),
}

impl Rule {
    fn parse(s: &str) -> Result<Rule, String> {
        match s {
            "exact" => Ok(Rule::Exact),
            "ceiling" => Ok(Rule::Ceiling),
            "floor" => Ok(Rule::Floor),
            _ => match s.strip_suffix('%') {
                Some(pct) => pct
                    .parse::<f64>()
                    .ok()
                    .filter(|p| *p >= 0.0)
                    .map(Rule::Percent)
                    .ok_or_else(|| format!("bad tolerance `{s}`")),
                None => Err(format!("unknown rule `{s}`")),
            },
        }
    }

    fn admits(&self, baseline: u64, current: u64) -> bool {
        match self {
            Rule::Exact => current == baseline,
            Rule::Ceiling => current <= baseline,
            Rule::Floor => current >= baseline,
            Rule::Percent(pct) => {
                (current as f64 - baseline as f64).abs() <= baseline as f64 * pct / 100.0
            }
        }
    }

    fn render(&self) -> String {
        match self {
            Rule::Exact => "exact".to_owned(),
            Rule::Ceiling => "ceiling".to_owned(),
            Rule::Floor => "floor".to_owned(),
            Rule::Percent(p) => format!("{p}%"),
        }
    }
}

/// One baseline line.
#[derive(Debug, Clone, PartialEq)]
struct Entry {
    metric: Metric,
    value: u64,
    rule: Rule,
}

/// Reduces a recorded report to the flat, ordered metric list the
/// baseline gates: global counters, per-name span counts and wall-clock
/// totals, histogram sample counts.
fn extract_metrics(report: &obs::Report) -> BTreeMap<Metric, u64> {
    fn visit(agg: &mut BTreeMap<String, (u64, u64)>, node: &obs::SpanNode) {
        let slot = agg.entry(node.name.clone()).or_insert((0, 0));
        slot.0 += 1;
        slot.1 += node.duration_ns;
        for c in &node.children {
            visit(agg, c);
        }
    }
    let mut spans: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for root in &report.roots {
        visit(&mut spans, root);
    }
    let mut out = BTreeMap::new();
    for (name, value) in &report.counters {
        out.insert(Metric::Counter(name.clone()), *value);
    }
    for (name, (count, total_ns)) in spans {
        out.insert(Metric::SpanCount(name.clone()), count);
        out.insert(Metric::SpanNs(name), total_ns);
    }
    for (name, h) in &report.histograms {
        out.insert(Metric::HistCount(name.clone()), h.count);
    }
    out
}

/// Renders the current metrics as a fresh baseline: deterministic
/// quantities get `exact`, wall-clock totals get a generous `ceiling`.
fn render_snapshot(current: &BTreeMap<Metric, u64>) -> String {
    let mut out = String::from(
        "# obs_regress baseline: `kind name value rule` per line.\n\
         # Regenerate with `cargo run --release -p bench --bin obs_regress -- --snapshot`.\n\
         # Rules: exact | ceiling | floor | <pct>% — relax in place when a\n\
         # metric is legitimately machine-dependent.\n",
    );
    let width = current
        .keys()
        .map(|m| m.name().len())
        .max()
        .unwrap_or(0)
        .max(4);
    for (metric, value) in current {
        let (value, rule) = match metric {
            Metric::SpanNs(_) => (
                (value * CEILING_MARGIN).max(CEILING_FLOOR_NS),
                Rule::Ceiling,
            ),
            _ => (*value, Rule::Exact),
        };
        out.push_str(&format!(
            "{:<9} {:<width$} {value:>12} {}\n",
            metric.kind(),
            metric.name(),
            rule.render(),
        ));
    }
    out
}

/// Parses a baseline file (see [`render_snapshot`] for the format).
fn parse_baseline(text: &str) -> Result<Vec<Entry>, String> {
    let mut entries = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        let [kind, name, value, rule] = fields[..] else {
            return Err(format!("line {}: expected `kind name value rule`", i + 1));
        };
        let metric = Metric::from_parts(kind, name)
            .ok_or_else(|| format!("line {}: unknown kind `{kind}`", i + 1))?;
        let value = value
            .parse::<u64>()
            .map_err(|e| format!("line {}: bad value: {e}", i + 1))?;
        let rule = Rule::parse(rule).map_err(|e| format!("line {}: {e}", i + 1))?;
        entries.push(Entry {
            metric,
            value,
            rule,
        });
    }
    if entries.is_empty() {
        return Err("baseline declares no metrics".to_owned());
    }
    Ok(entries)
}

/// Checks every baseline entry against the current metrics, returning one
/// message per violation (a metric missing from the current run is a
/// violation — the instrumentation that produced it is gone).
fn compare(baseline: &[Entry], current: &BTreeMap<Metric, u64>) -> Vec<String> {
    let mut failures = Vec::new();
    for e in baseline {
        match current.get(&e.metric) {
            None => failures.push(format!(
                "{} {} missing from current run (baseline {})",
                e.metric.kind(),
                e.metric.name(),
                e.value
            )),
            Some(&got) if !e.rule.admits(e.value, got) => failures.push(format!(
                "{} {}: {got} violates {} {}",
                e.metric.kind(),
                e.metric.name(),
                e.rule.render(),
                e.value
            )),
            Some(_) => {}
        }
    }
    failures
}

/// The parallel acceptance pass: prepares and measures the Table 1 suite
/// with `--parallel-measure` semantics, exports the Chrome trace,
/// re-parses it with [`obs::json::parse`], and asserts it carries at
/// least two thread tracks on a multi-core machine. Returns the number of
/// distinct thread tracks.
fn parallel_trace_pass(
    chrome_out: Option<&str>,
    folded_out: Option<&str>,
) -> Result<usize, String> {
    let report = {
        let session = obs::install();
        let opts = bench::SuiteOptions {
            parallel_measure: true,
        };
        let preps = bench::prepare_table1_with_opts(&Default::default(), &opts);
        bench::measure_mains(&preps, &opts);
        let report = obs::report().expect("recorder is installed");
        drop(session);
        report
    };

    let trace = report.to_chrome_trace();
    let doc = obs::json::parse(&trace).map_err(|e| format!("chrome trace is invalid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(obs::json::Value::as_array)
        .ok_or("chrome trace has no traceEvents array")?;
    let mut tids: Vec<u64> = events
        .iter()
        .filter(|e| e.get("ph").and_then(obs::json::Value::as_str) == Some("X"))
        .filter_map(|e| e.get("tid").and_then(obs::json::Value::as_f64))
        .map(|t| t as u64)
        .collect();
    tids.sort_unstable();
    tids.dedup();

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores > 1 && tids.len() < 2 {
        return Err(format!(
            "expected >= 2 thread tracks on a {cores}-core machine, got {}",
            tids.len()
        ));
    }

    if let Some(path) = chrome_out {
        std::fs::write(path, &trace).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        println!("obs_regress: wrote chrome trace `{path}`");
    }
    if let Some(path) = folded_out {
        std::fs::write(path, report.to_folded_stacks())
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
        println!("obs_regress: wrote folded stacks `{path}`");
    }
    Ok(tids.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rules_parse_and_admit() {
        assert!(Rule::parse("exact").unwrap().admits(5, 5));
        assert!(!Rule::parse("exact").unwrap().admits(5, 6));
        assert!(Rule::parse("ceiling").unwrap().admits(10, 10));
        assert!(!Rule::parse("ceiling").unwrap().admits(10, 11));
        assert!(Rule::parse("floor").unwrap().admits(10, 10));
        assert!(!Rule::parse("floor").unwrap().admits(10, 9));
        let pct = Rule::parse("10%").unwrap();
        assert!(pct.admits(100, 110));
        assert!(pct.admits(100, 90));
        assert!(!pct.admits(100, 111));
        assert!(Rule::parse("ten").is_err());
        assert!(Rule::parse("-5%").is_err());
        assert!(Rule::parse("x%").is_err());
    }

    #[test]
    fn baseline_round_trips_through_snapshot() {
        let mut current = BTreeMap::new();
        current.insert(Metric::Counter("machine/steps".into()), 123);
        current.insert(Metric::SpanCount("measure/fn/main".into()), 4);
        current.insert(Metric::SpanNs("measure/fn/main".into()), 1_000);
        current.insert(Metric::HistCount("machine/steps_per_sec".into()), 4);
        let entries = parse_baseline(&render_snapshot(&current)).unwrap();
        assert_eq!(entries.len(), 4);
        assert_eq!(
            entries[0],
            Entry {
                metric: Metric::Counter("machine/steps".into()),
                value: 123,
                rule: Rule::Exact,
            }
        );
        // Wall-clock totals snapshot as generous ceilings, never exact.
        let ns = entries
            .iter()
            .find(|e| matches!(e.metric, Metric::SpanNs(_)))
            .unwrap();
        assert_eq!(ns.rule, Rule::Ceiling);
        assert_eq!(ns.value, CEILING_FLOOR_NS);
        // An identical re-run passes its own snapshot.
        assert!(compare(&entries, &current).is_empty());
    }

    #[test]
    fn compare_flags_drift_and_missing_metrics() {
        let baseline = vec![
            Entry {
                metric: Metric::Counter("steps".into()),
                value: 100,
                rule: Rule::Exact,
            },
            Entry {
                metric: Metric::SpanCount("gone".into()),
                value: 1,
                rule: Rule::Exact,
            },
        ];
        let mut current = BTreeMap::new();
        current.insert(Metric::Counter("steps".into()), 101);
        let failures = compare(&baseline, &current);
        assert_eq!(failures.len(), 2);
        assert!(
            failures[0].contains("101 violates exact 100"),
            "{failures:?}"
        );
        assert!(failures[1].contains("missing"), "{failures:?}");
    }

    #[test]
    fn baseline_parser_rejects_malformed_lines() {
        assert!(parse_baseline("").is_err());
        assert!(parse_baseline("# only comments\n").is_err());
        assert!(parse_baseline("counter a 1\n").is_err());
        assert!(parse_baseline("widget a 1 exact\n").is_err());
        assert!(parse_baseline("counter a one exact\n").is_err());
        assert!(parse_baseline("counter a 1 sometimes\n").is_err());
        let ok = parse_baseline("# c\n\ncounter a 1 exact\nspanns b 2 ceiling\n").unwrap();
        assert_eq!(ok.len(), 2);
    }
}
