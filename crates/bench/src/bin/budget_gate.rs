//! CI gate: compiles the whole Table 1 suite through the [`Pass`-manager
//! pipeline](compiler::Pipeline) with the checked-in per-pass wall-clock
//! budgets (`ci/pass_budgets.txt`) and fails if any pass regresses past
//! its budget on any program.
//!
//! ```sh
//! cargo run -p bench --bin budget_gate                # default budget file
//! cargo run -p bench --bin budget_gate -- my_budgets.txt
//! ```

use stackbound::compiler;
use std::process::ExitCode;

const DEFAULT_BUDGETS: &str = "ci/pass_budgets.txt";

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| DEFAULT_BUDGETS.to_owned());
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("budget_gate: cannot read `{path}`: {e}");
            return ExitCode::FAILURE;
        }
    };
    let budgets = match compiler::Budgets::parse(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("budget_gate: `{path}`: {e}");
            return ExitCode::FAILURE;
        }
    };
    if budgets.is_empty() {
        eprintln!("budget_gate: `{path}` declares no budgets");
        return ExitCode::FAILURE;
    }
    println!("budget_gate: enforcing {path}");
    for (pass, limit) in budgets.iter() {
        println!("  {pass:<12} {:.0} ms", limit.as_secs_f64() * 1e3);
    }
    println!();

    let pipeline = compiler::Pipeline::new(compiler::PipelineConfig {
        budgets,
        ..compiler::PipelineConfig::default()
    });
    let mut failed = false;
    for b in stackbound::benchsuite::table1_benchmarks() {
        let program = match b.program() {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{}: front end: {e}", b.file);
                failed = true;
                continue;
            }
        };
        match pipeline.run(&program) {
            Ok(_) => println!("{:<28} within budget", b.file),
            Err(e) => {
                eprintln!("{:<28} FAILED: {e}", b.file);
                failed = true;
            }
        }
    }
    if failed {
        eprintln!("\nbudget_gate: FAILED");
        ExitCode::FAILURE
    } else {
        println!("\nbudget_gate: all Table 1 programs within per-pass budgets");
        ExitCode::SUCCESS
    }
}
