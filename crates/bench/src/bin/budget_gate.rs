//! CI gate: compiles the whole Table 1 suite through the [`Pass`-manager
//! pipeline](compiler::Pipeline) with the checked-in per-pass wall-clock
//! budgets (`ci/pass_budgets.txt`) and fails if any pass regresses past
//! its budget on any program.
//!
//! The budget file may also declare an `interp` line, which is a
//! *throughput floor* in steps/second rather than a wall-clock ceiling:
//! the gate runs every compiled `main` on the decoded execution core and
//! fails if the aggregate steps/second falls below the floor.
//!
//! ```sh
//! cargo run -p bench --bin budget_gate                # default budget file
//! cargo run -p bench --bin budget_gate -- my_budgets.txt
//! ```

use stackbound::{asm, compiler};
use std::process::ExitCode;
use std::time::Instant;

const DEFAULT_BUDGETS: &str = "ci/pass_budgets.txt";

/// Repetitions for the interpreter-floor measurement; best-of-2 is enough
/// because the floor sits an order of magnitude under the expected rate.
const INTERP_REPS: u32 = 2;

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| DEFAULT_BUDGETS.to_owned());
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("budget_gate: cannot read `{path}`: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (interp_floor, pass_text) = match split_interp_floor(&text) {
        Ok(split) => split,
        Err(e) => {
            eprintln!("budget_gate: `{path}`: {e}");
            return ExitCode::FAILURE;
        }
    };
    let budgets = match compiler::Budgets::parse(&pass_text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("budget_gate: `{path}`: {e}");
            return ExitCode::FAILURE;
        }
    };
    if budgets.is_empty() && interp_floor.is_none() {
        eprintln!("budget_gate: `{path}` declares no budgets");
        return ExitCode::FAILURE;
    }
    println!("budget_gate: enforcing {path}");
    for (pass, limit) in budgets.iter() {
        println!("  {pass:<12} {:.0} ms", limit.as_secs_f64() * 1e3);
    }
    if let Some(floor) = interp_floor {
        println!("  {:<12} {floor} steps/s (floor)", "interp");
    }
    println!();

    let pipeline = compiler::Pipeline::new(compiler::PipelineConfig {
        budgets,
        ..compiler::PipelineConfig::default()
    });
    let mut failed = false;
    let mut compiled = Vec::new();
    for b in stackbound::benchsuite::table1_benchmarks() {
        let program = match b.program() {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{}: front end: {e}", b.file);
                failed = true;
                continue;
            }
        };
        match pipeline.run(&program) {
            Ok(c) => {
                println!("{:<28} within budget", b.file);
                compiled.push(c);
            }
            Err(e) => {
                eprintln!("{:<28} FAILED: {e}", b.file);
                failed = true;
            }
        }
    }

    if let Some(floor) = interp_floor {
        if failed {
            eprintln!("\ninterp floor skipped: compilation already failed");
        } else {
            let rate = suite_steps_per_sec(&compiled);
            if rate >= floor as f64 {
                println!("\ninterp: {rate:.0} steps/s >= floor {floor}");
            } else {
                eprintln!("\ninterp: FAILED: {rate:.0} steps/s < floor {floor}");
                failed = true;
            }
        }
    }

    if failed {
        eprintln!("\nbudget_gate: FAILED");
        ExitCode::FAILURE
    } else {
        println!("\nbudget_gate: all Table 1 programs within per-pass budgets");
        ExitCode::SUCCESS
    }
}

/// Splits an optional `interp <steps-per-second>` line out of the budget
/// file, returning the floor (if declared) and the remaining text for
/// [`compiler::Budgets::parse`] (which knows only wall-clock budgets).
fn split_interp_floor(text: &str) -> Result<(Option<u64>, String), String> {
    let mut floor = None;
    let mut rest = String::new();
    for line in text.lines() {
        let mut fields = line.split_whitespace();
        if fields.next() == Some("interp") {
            let value = fields
                .next()
                .ok_or("`interp` needs a steps/second floor")?
                .parse::<u64>()
                .map_err(|e| format!("bad `interp` floor: {e}"))?;
            if floor.replace(value).is_some() {
                return Err("duplicate `interp` line".into());
            }
            continue;
        }
        rest.push_str(line);
        rest.push('\n');
    }
    Ok((floor, rest))
}

/// Aggregate decoded-core throughput over every compiled `main`, timing
/// only the runs (machine setup and pre-decoding are not interpreter
/// throughput), best-of-[`INTERP_REPS`] per program.
fn suite_steps_per_sec(compiled: &[compiler::Compiled]) -> f64 {
    let (mut steps, mut secs) = (0u64, 0f64);
    for c in compiled {
        let mut best = f64::INFINITY;
        let mut ran = 0;
        for _ in 0..INTERP_REPS {
            let mut m =
                asm::Machine::for_function(&c.asm, "main", &[], 1 << 22).expect("machine setup");
            let started = Instant::now();
            m.run(bench::FUEL);
            best = best.min(started.elapsed().as_secs_f64());
            ran = m.steps();
        }
        steps += ran;
        secs += best;
    }
    steps as f64 / secs
}

#[cfg(test)]
mod tests {
    use super::split_interp_floor;

    #[test]
    fn splits_floor_from_pass_budgets() {
        let (floor, rest) = split_interp_floor("# c\ninterp 123\nasmgen 5\n").unwrap();
        assert_eq!(floor, Some(123));
        assert_eq!(rest, "# c\nasmgen 5\n");
    }

    #[test]
    fn no_floor_is_fine() {
        let (floor, rest) = split_interp_floor("asmgen 5\n").unwrap();
        assert_eq!(floor, None);
        assert_eq!(rest, "asmgen 5\n");
    }

    #[test]
    fn rejects_bad_floors() {
        assert!(split_interp_floor("interp\n").is_err());
        assert!(split_interp_floor("interp ten\n").is_err());
        assert!(split_interp_floor("interp 1\ninterp 2\n").is_err());
    }
}
