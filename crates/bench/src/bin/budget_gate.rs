//! CI gate: compiles the whole Table 1 suite through the [`Pass`-manager
//! pipeline](compiler::Pipeline) with the checked-in per-pass wall-clock
//! budgets (`ci/pass_budgets.txt`) and fails if any pass regresses past
//! its budget on any program.
//!
//! The budget file may also declare *floor* lines, which are lower
//! bounds rather than wall-clock ceilings:
//!
//! * `interp <steps/s>` — the gate runs every compiled `main` on the
//!   decoded execution core and fails if the aggregate steps/second
//!   falls below the floor;
//! * `interp_rv <steps/s>` — the same floor for the suite compiled to
//!   the link-register `rv` target (its `CallRv`/`RetRv` opcodes take a
//!   different decoded-core path);
//! * `vcache <speedup>` — the gate verifies the whole corpus (Table 1 +
//!   extras + Table 2) twice through one shared [`stackbound::vcache`]
//!   cache and fails if the warm pass is not at least `speedup`× faster
//!   than the cold pass, or if any report line diverges between passes;
//! * `vcache_rv <speedup>` — the same warm-speedup floor with the corpus
//!   verified for the `rv` target;
//! * `obs_overhead <ratio>` — the gate runs the `fib(17)` machine loop
//!   with the recorder off and again with the recorder on plus a live
//!   timeline span, and fails if recording costs more than `ratio`×
//!   the disabled fast path (a ceiling despite living among the floors:
//!   instrumentation must stay cheap enough to leave on);
//! * `stacklint <ms>` — the gate runs the binary-level stack analyzer
//!   over the whole compiled corpus on both targets and fails if the
//!   analyzer alone (compilation excluded) takes longer than `ms`
//!   milliseconds, or if it draws any diagnostic on compiler-emitted
//!   code (a wall-clock ceiling, like the per-pass budgets);
//! * `serve <req/s>` — the gate spawns an in-process `sbound serve`
//!   daemon, replays the full corpus cold then warm with closed-loop
//!   clients ([`bench::serveload`]), and fails if the warm replay's
//!   throughput falls below the floor or any served response diverges
//!   from its one-shot expectation;
//! * `serve_warm_p99 <ms>` — a ceiling on the warm replay's
//!   99th-percentile round-trip latency, measured by the same replay
//!   (tail latency can regress while aggregate throughput still clears
//!   its floor — a stalled worker, a lock convoy on the cache).
//!
//! ```sh
//! cargo run -p bench --bin budget_gate                # default budget file
//! cargo run -p bench --bin budget_gate -- my_budgets.txt
//! ```

use stackbound::{asm, compiler, vcache};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

const DEFAULT_BUDGETS: &str = "ci/pass_budgets.txt";

/// Repetitions for the interpreter-floor measurement; best-of-2 is enough
/// because the floor sits an order of magnitude under the expected rate.
const INTERP_REPS: u32 = 2;

/// Repetitions per configuration for the `obs_overhead` ratio
/// (best-of-N on both sides cancels scheduler noise).
const OVERHEAD_REPS: u32 = 5;

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| DEFAULT_BUDGETS.to_owned());
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("budget_gate: cannot read `{path}`: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (floors, pass_text) = match split_floors(&text) {
        Ok(split) => split,
        Err(e) => {
            eprintln!("budget_gate: `{path}`: {e}");
            return ExitCode::FAILURE;
        }
    };
    let budgets = match compiler::Budgets::parse(&pass_text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("budget_gate: `{path}`: {e}");
            return ExitCode::FAILURE;
        }
    };
    if budgets.is_empty()
        && floors.interp.is_none()
        && floors.interp_rv.is_none()
        && floors.vcache.is_none()
        && floors.vcache_rv.is_none()
        && floors.obs_overhead.is_none()
        && floors.stacklint.is_none()
        && floors.serve.is_none()
        && floors.serve_warm_p99.is_none()
    {
        eprintln!("budget_gate: `{path}` declares no budgets");
        return ExitCode::FAILURE;
    }
    println!("budget_gate: enforcing {path}");
    for (pass, limit) in budgets.iter() {
        println!("  {pass:<12} {:.0} ms", limit.as_secs_f64() * 1e3);
    }
    if let Some(floor) = floors.interp {
        println!("  {:<12} {floor} steps/s (floor)", "interp");
    }
    if let Some(floor) = floors.interp_rv {
        println!("  {:<12} {floor} steps/s (floor)", "interp_rv");
    }
    if let Some(floor) = floors.vcache {
        println!("  {:<12} {floor}x warm speedup (floor)", "vcache");
    }
    if let Some(floor) = floors.vcache_rv {
        println!("  {:<12} {floor}x warm speedup (floor)", "vcache_rv");
    }
    if let Some(ratio) = floors.obs_overhead {
        println!(
            "  {:<12} {ratio}x recording overhead (ceiling)",
            "obs_overhead"
        );
    }
    if let Some(ms) = floors.stacklint {
        println!("  {:<12} {ms} ms corpus analysis (ceiling)", "stacklint");
    }
    if let Some(floor) = floors.serve {
        println!("  {:<12} {floor} warm req/s (floor)", "serve");
    }
    if let Some(ms) = floors.serve_warm_p99 {
        println!(
            "  {:<12} {ms} ms warm p99 latency (ceiling)",
            "serve_warm_p99"
        );
    }
    println!();

    let pipeline = compiler::Pipeline::new(compiler::PipelineConfig {
        budgets,
        ..compiler::PipelineConfig::default()
    });
    let mut failed = false;
    let mut compiled = Vec::new();
    for b in stackbound::benchsuite::table1_benchmarks() {
        let program = match b.program() {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{}: front end: {e}", b.file);
                failed = true;
                continue;
            }
        };
        match pipeline.run(&program) {
            Ok(c) => {
                println!("{:<28} within budget", b.file);
                compiled.push(c);
            }
            Err(e) => {
                eprintln!("{:<28} FAILED: {e}", b.file);
                failed = true;
            }
        }
    }

    if let Some(floor) = floors.interp {
        if failed {
            eprintln!("\ninterp floor skipped: compilation already failed");
        } else {
            let rate = suite_steps_per_sec(&compiled);
            if rate >= floor as f64 {
                println!("\ninterp: {rate:.0} steps/s >= floor {floor}");
            } else {
                eprintln!("\ninterp: FAILED: {rate:.0} steps/s < floor {floor}");
                failed = true;
            }
        }
    }

    if let Some(floor) = floors.interp_rv {
        if failed {
            eprintln!("\ninterp_rv floor skipped: earlier checks already failed");
        } else {
            let rv = compile_suite_rv(&mut failed);
            if !failed {
                let rate = suite_steps_per_sec(&rv);
                if rate >= floor as f64 {
                    println!("\ninterp_rv: {rate:.0} steps/s >= floor {floor}");
                } else {
                    eprintln!("\ninterp_rv: FAILED: {rate:.0} steps/s < floor {floor}");
                    failed = true;
                }
            }
        }
    }

    if let Some(floor) = floors.vcache {
        if failed {
            eprintln!("\nvcache floor skipped: earlier checks already failed");
        } else if !vcache_speedup_meets(asm::Target::Sz32, floor) {
            failed = true;
        }
    }

    if let Some(floor) = floors.vcache_rv {
        if failed {
            eprintln!("\nvcache_rv floor skipped: earlier checks already failed");
        } else if !vcache_speedup_meets(asm::Target::Rv, floor) {
            failed = true;
        }
    }

    if let Some(ceiling) = floors.obs_overhead {
        if failed {
            eprintln!("\nobs_overhead ceiling skipped: earlier checks already failed");
        } else if !obs_overhead_meets(ceiling) {
            failed = true;
        }
    }

    if let Some(ceiling_ms) = floors.stacklint {
        if failed {
            eprintln!("\nstacklint ceiling skipped: earlier checks already failed");
        } else if !stacklint_meets(ceiling_ms) {
            failed = true;
        }
    }

    if floors.serve.is_some() || floors.serve_warm_p99.is_some() {
        if failed {
            eprintln!("\nserve checks skipped: earlier checks already failed");
        } else if !serve_meets(floors.serve, floors.serve_warm_p99) {
            failed = true;
        }
    }

    if failed {
        eprintln!("\nbudget_gate: FAILED");
        ExitCode::FAILURE
    } else {
        println!("\nbudget_gate: all Table 1 programs within per-pass budgets");
        ExitCode::SUCCESS
    }
}

/// The optional floor lines of the budget file.
#[derive(Debug, Default, PartialEq)]
struct Floors {
    /// `interp <steps/s>` — decoded-core throughput floor.
    interp: Option<u64>,
    /// `interp_rv <steps/s>` — the same floor on the rv-compiled suite.
    interp_rv: Option<u64>,
    /// `vcache <speedup>` — warm-over-cold verification speedup floor.
    vcache: Option<u64>,
    /// `vcache_rv <speedup>` — the same floor with the corpus verified
    /// for the rv target.
    vcache_rv: Option<u64>,
    /// `obs_overhead <ratio>` — recording-over-disabled cost ceiling.
    obs_overhead: Option<f64>,
    /// `stacklint <ms>` — binary-analyzer corpus wall-clock ceiling.
    stacklint: Option<u64>,
    /// `serve <req/s>` — warm-replay throughput floor for the daemon.
    serve: Option<u64>,
    /// `serve_warm_p99 <ms>` — warm-replay tail-latency ceiling.
    serve_warm_p99: Option<f64>,
}

/// Splits the optional `interp` / `vcache` / `obs_overhead` floor lines
/// out of the budget file, returning the declared floors and the
/// remaining text for [`compiler::Budgets::parse`] (which knows only
/// wall-clock budgets).
fn split_floors(text: &str) -> Result<(Floors, String), String> {
    let mut floors = Floors::default();
    let mut rest = String::new();
    for line in text.lines() {
        let mut fields = line.split_whitespace();
        let head = fields.next();
        if head == Some("obs_overhead") {
            let value = fields
                .next()
                .ok_or("`obs_overhead` needs a ratio value")?
                .parse::<f64>()
                .ok()
                .filter(|r| r.is_finite() && *r >= 1.0)
                .ok_or("bad `obs_overhead` ratio (need a finite number >= 1)")?;
            if floors.obs_overhead.replace(value).is_some() {
                return Err("duplicate `obs_overhead` line".to_owned());
            }
            continue;
        }
        if head == Some("serve_warm_p99") {
            let value = fields
                .next()
                .ok_or("`serve_warm_p99` needs a milliseconds value")?
                .parse::<f64>()
                .ok()
                .filter(|ms| ms.is_finite() && *ms > 0.0)
                .ok_or("bad `serve_warm_p99` ceiling (need a finite number > 0)")?;
            if floors.serve_warm_p99.replace(value).is_some() {
                return Err("duplicate `serve_warm_p99` line".to_owned());
            }
            continue;
        }
        let slot = match head {
            Some("interp") => &mut floors.interp,
            Some("interp_rv") => &mut floors.interp_rv,
            Some("vcache") => &mut floors.vcache,
            Some("vcache_rv") => &mut floors.vcache_rv,
            Some("stacklint") => &mut floors.stacklint,
            Some("serve") => &mut floors.serve,
            _ => {
                rest.push_str(line);
                rest.push('\n');
                continue;
            }
        };
        let name = head.unwrap();
        let value = fields
            .next()
            .ok_or_else(|| format!("`{name}` needs a floor value"))?
            .parse::<u64>()
            .map_err(|e| format!("bad `{name}` floor: {e}"))?;
        if slot.replace(value).is_some() {
            return Err(format!("duplicate `{name}` line"));
        }
    }
    Ok((floors, rest))
}

/// Measures the `fib(17)` machine loop with the recorder disabled, then
/// with the recorder installed and a live timeline span per run (the
/// shape `--trace-chrome` produces), and checks the cost ratio against
/// `ceiling`, printing the verdict. Best-of-[`OVERHEAD_REPS`] per side.
fn obs_overhead_meets(ceiling: f64) -> bool {
    const FIB: &str = "
        u32 fib(u32 n) { u32 a; u32 b; if (n < 2) return n;
            a = fib(n - 1); b = fib(n - 2); return a + b; }
        int main() { u32 r; r = fib(17); return r & 0xff; }";
    let program = stackbound::clight::frontend(FIB, &[]).expect("fib front end");
    let compiled = compiler::compile(&program).expect("fib compiles");

    let run_once = || {
        let started = Instant::now();
        let m = asm::measure_main(&compiled.asm, 1 << 16, bench::FUEL).expect("machine setup");
        assert!(m.behavior.converges());
        started.elapsed().as_secs_f64()
    };
    let best_of = |one_rep: &mut dyn FnMut() -> f64| {
        (0..OVERHEAD_REPS)
            .map(|_| one_rep())
            .fold(f64::INFINITY, f64::min)
    };

    assert!(!obs::is_enabled(), "budget_gate never installs a recorder");
    let disabled = best_of(&mut || run_once());
    let recording = {
        let _session = obs::install();
        obs::register_thread("gate");
        best_of(&mut || {
            let _span = obs::span("measure/fn/fib17");
            run_once()
        })
    };

    let ratio = recording / disabled.max(f64::EPSILON);
    if ratio <= ceiling {
        println!(
            "\nobs_overhead: {ratio:.3}x recording cost <= ceiling {ceiling}x (disabled {:.2} ms, recording {:.2} ms)",
            disabled * 1e3,
            recording * 1e3
        );
        true
    } else {
        eprintln!("\nobs_overhead: FAILED: {ratio:.3}x recording cost > ceiling {ceiling}x");
        false
    }
}

/// Runs the whole corpus (compiled for `target`) cold then warm through
/// one shared cache pair and checks the warm speedup against `floor`,
/// printing the verdict. Also fails if any warm report line diverges
/// from its cold counterpart — cache reuse must be invisible in the
/// output.
fn vcache_speedup_meets(target: asm::Target, floor: u64) -> bool {
    let what = match target {
        asm::Target::Sz32 => "vcache",
        asm::Target::Rv => "vcache_rv",
    };
    let benchmarks: Vec<_> = stackbound::benchsuite::table1_benchmarks()
        .into_iter()
        .chain(stackbound::benchsuite::extra_benchmarks())
        .collect();
    let recursive = stackbound::benchsuite::recursive_cases();
    let cache = Arc::new(vcache::VCache::new());
    let measure_cache = Arc::new(asm::MeasureCache::new());

    let (mut cold, mut cold_secs) =
        bench::verify_suite_cached_on(target, &benchmarks, &cache, &measure_cache);
    let (r, t) = bench::verify_recursive_cached_on(target, &recursive, &cache);
    cold.extend(r);
    cold_secs += t;
    let (mut warm, mut warm_secs) =
        bench::verify_suite_cached_on(target, &benchmarks, &cache, &measure_cache);
    let (r, t) = bench::verify_recursive_cached_on(target, &recursive, &cache);
    warm.extend(r);
    warm_secs += t;

    if cold != warm {
        eprintln!("\n{what}: FAILED: warm reports diverged from cold reports");
        return false;
    }
    let speedup = cold_secs / warm_secs;
    if speedup >= floor as f64 {
        println!(
            "\n{what}: {speedup:.1}x warm speedup >= floor {floor}x \
             (cold {:.1} ms, warm {:.1} ms)",
            cold_secs * 1e3,
            warm_secs * 1e3
        );
        true
    } else {
        eprintln!("\n{what}: FAILED: {speedup:.1}x warm speedup < floor {floor}x");
        false
    }
}

/// Runs the binary-level stack analyzer over the whole compiled corpus
/// on both targets ([`bench::lint_suite_on`] panics on any diagnostic —
/// compiler-emitted code must be clean) and checks the analyzer's own
/// wall clock against `ceiling_ms`, printing the verdict.
fn stacklint_meets(ceiling_ms: u64) -> bool {
    let (sz, sz_secs) = bench::lint_suite_on(asm::Target::Sz32);
    let (rv, rv_secs) = bench::lint_suite_on(asm::Target::Rv);
    let total_ms = (sz_secs + rv_secs) * 1e3;
    let programs = sz.len() + rv.len();
    if total_ms <= ceiling_ms as f64 {
        println!(
            "\nstacklint: {total_ms:.1} ms over {programs} program passes <= ceiling {ceiling_ms} ms"
        );
        true
    } else {
        eprintln!("\nstacklint: FAILED: {total_ms:.1} ms > ceiling {ceiling_ms} ms");
        false
    }
}

/// Closed-loop clients for the serve replay (matches `serve_bench`'s
/// default, and the acceptance shape: concurrency >= 4).
const SERVE_CONCURRENCY: usize = 4;

/// Spawns an in-process serve daemon, replays the full corpus cold then
/// warm ([`bench::serveload::corpus_jobs`], every response checked
/// against its one-shot expectation), and verifies the warm replay's
/// throughput floor and/or p99 latency ceiling, printing the verdicts.
fn serve_meets(floor_rps: Option<u64>, p99_ceiling_ms: Option<f64>) -> bool {
    use stackbound::serve::{ServeOptions, Server, Session};

    let server = Arc::new(Server::new(
        Session::new(),
        ServeOptions {
            fuel: bench::FUEL,
            ..ServeOptions::default()
        },
    ));
    let handle = match stackbound::serve::spawn_tcp(server) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("\nserve: FAILED: cannot bind loopback: {e}");
            return false;
        }
    };
    let addr = handle.addr();
    let jobs = bench::serveload::corpus_jobs();
    let cold = bench::serveload::replay(addr, "cold", &jobs, SERVE_CONCURRENCY);
    let warm = bench::serveload::replay(addr, "warm", &jobs, SERVE_CONCURRENCY);
    if let Err(e) = handle.shutdown() {
        eprintln!("\nserve: FAILED: unclean shutdown: {e}");
        return false;
    }

    if cold.mismatches + warm.mismatches > 0 {
        eprintln!(
            "\nserve: FAILED: {} served responses diverged from one-shot runs",
            cold.mismatches + warm.mismatches
        );
        return false;
    }
    let mut ok = true;
    if let Some(floor) = floor_rps {
        if warm.rps >= floor as f64 {
            println!(
                "\nserve: {:.0} warm req/s >= floor {floor} (cold {:.0} req/s, {} requests)",
                warm.rps, cold.rps, warm.requests
            );
        } else {
            eprintln!(
                "\nserve: FAILED: {:.0} warm req/s < floor {floor}",
                warm.rps
            );
            ok = false;
        }
    }
    if let Some(ceiling) = p99_ceiling_ms {
        if warm.p99_ms <= ceiling {
            println!(
                "\nserve_warm_p99: {:.3} ms <= ceiling {ceiling} ms (p50 {:.3} ms)",
                warm.p99_ms, warm.p50_ms
            );
        } else {
            eprintln!(
                "\nserve_warm_p99: FAILED: {:.3} ms > ceiling {ceiling} ms",
                warm.p99_ms
            );
            ok = false;
        }
    }
    ok
}

/// Compiles the Table 1 suite for the rv target (no budgets: the
/// wall-clock ceilings are enforced once, on the sz32 pass above).
fn compile_suite_rv(failed: &mut bool) -> Vec<compiler::Compiled> {
    let mut out = Vec::new();
    for b in stackbound::benchsuite::table1_benchmarks() {
        let program = match b.program() {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{} [rv]: front end: {e}", b.file);
                *failed = true;
                continue;
            }
        };
        match compiler::compile_with(&program, compiler::Options::for_target(asm::Target::Rv)) {
            Ok(c) => out.push(c),
            Err(e) => {
                eprintln!("{} [rv]: FAILED: {e}", b.file);
                *failed = true;
            }
        }
    }
    out
}

/// Aggregate decoded-core throughput over every compiled `main`, timing
/// only the runs (machine setup and pre-decoding are not interpreter
/// throughput), best-of-[`INTERP_REPS`] per program.
fn suite_steps_per_sec(compiled: &[compiler::Compiled]) -> f64 {
    let (mut steps, mut secs) = (0u64, 0f64);
    for c in compiled {
        let mut best = f64::INFINITY;
        let mut ran = 0;
        for _ in 0..INTERP_REPS {
            let mut m =
                asm::Machine::for_function(&c.asm, "main", &[], 1 << 22).expect("machine setup");
            let started = Instant::now();
            m.run(bench::FUEL);
            best = best.min(started.elapsed().as_secs_f64());
            ran = m.steps();
        }
        steps += ran;
        secs += best;
    }
    steps as f64 / secs
}

#[cfg(test)]
mod tests {
    use super::split_floors;

    #[test]
    fn splits_floors_from_pass_budgets() {
        let (floors, rest) = split_floors(
            "# c\ninterp 123\ninterp_rv 99\nvcache 5\nvcache_rv 4\nobs_overhead 1.5\n\
             stacklint 2000\nserve 200\nserve_warm_p99 50\nasmgen 5\n",
        )
        .unwrap();
        assert_eq!(floors.interp, Some(123));
        assert_eq!(floors.interp_rv, Some(99));
        assert_eq!(floors.vcache, Some(5));
        assert_eq!(floors.vcache_rv, Some(4));
        assert_eq!(floors.obs_overhead, Some(1.5));
        assert_eq!(floors.stacklint, Some(2000));
        assert_eq!(floors.serve, Some(200));
        assert_eq!(floors.serve_warm_p99, Some(50.0));
        assert_eq!(rest, "# c\nasmgen 5\n");
    }

    #[test]
    fn no_floor_is_fine() {
        let (floors, rest) = split_floors("asmgen 5\n").unwrap();
        assert_eq!(floors.interp, None);
        assert_eq!(floors.interp_rv, None);
        assert_eq!(floors.vcache, None);
        assert_eq!(floors.vcache_rv, None);
        assert_eq!(floors.obs_overhead, None);
        assert_eq!(floors.stacklint, None);
        assert_eq!(floors.serve, None);
        assert_eq!(floors.serve_warm_p99, None);
        assert_eq!(rest, "asmgen 5\n");
    }

    #[test]
    fn rejects_bad_floors() {
        assert!(split_floors("interp\n").is_err());
        assert!(split_floors("interp ten\n").is_err());
        assert!(split_floors("interp 1\ninterp 2\n").is_err());
        assert!(split_floors("vcache\n").is_err());
        assert!(split_floors("vcache five\n").is_err());
        assert!(split_floors("vcache 5\nvcache 6\n").is_err());
        assert!(split_floors("interp_rv\n").is_err());
        assert!(split_floors("interp_rv 1\ninterp_rv 2\n").is_err());
        assert!(split_floors("vcache_rv ten\n").is_err());
        assert!(split_floors("vcache_rv 4\nvcache_rv 4\n").is_err());
        assert!(split_floors("obs_overhead\n").is_err());
        assert!(split_floors("obs_overhead fast\n").is_err());
        assert!(split_floors("obs_overhead 0.5\n").is_err());
        assert!(split_floors("obs_overhead inf\n").is_err());
        assert!(split_floors("obs_overhead 2\nobs_overhead 3\n").is_err());
        assert!(split_floors("stacklint\n").is_err());
        assert!(split_floors("stacklint fast\n").is_err());
        assert!(split_floors("stacklint 1\nstacklint 2\n").is_err());
        assert!(split_floors("serve\n").is_err());
        assert!(split_floors("serve fast\n").is_err());
        assert!(split_floors("serve 1\nserve 2\n").is_err());
        assert!(split_floors("serve_warm_p99\n").is_err());
        assert!(split_floors("serve_warm_p99 slow\n").is_err());
        assert!(split_floors("serve_warm_p99 0\n").is_err());
        assert!(split_floors("serve_warm_p99 5\nserve_warm_p99 6\n").is_err());
    }
}
