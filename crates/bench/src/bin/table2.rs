//! Regenerates **Table 2**: manually verified symbolic stack bounds for
//! recursive functions, checked by the quantitative-logic derivation
//! checker and instantiated with the compiler's metric.
//!
//! ```sh
//! cargo run -p bench --bin table2
//! ```

use stackbound::{benchsuite, clight, compiler};

fn main() {
    let _metrics = bench::metrics_from_args();
    let opts = bench::suite_options_from_args();
    let show_proofs = std::env::args().any(|a| a == "--proofs");
    println!("Table 2: manually verified stack bounds for recursive functions\n");
    println!(
        "{:<36} {:<46} Instantiated (this compiler)",
        "Function Name", "Symbolic Bound"
    );
    println!("{}", "-".repeat(120));
    let cases = benchsuite::recursive_cases();
    let prepare = |case: &benchsuite::RecursiveCase| {
        let program =
            clight::frontend(case.source, &[]).unwrap_or_else(|e| panic!("{}: {e}", case.file));
        case.check(&program)
            .unwrap_or_else(|e| panic!("{}: derivation rejected: {e}", case.file));
        let compiled = compiler::compile(&program).expect("compiles");
        (program, compiled)
    };
    let prepared = if opts.parallel_measure {
        stackbound::par_map(&cases, prepare)
    } else {
        cases.iter().map(prepare).collect()
    };
    for (case, (program, compiled)) in cases.iter().zip(&prepared) {
        // Render the instantiated bound by substituting metric values into
        // the display string.
        let mut inst = case.bound_display.to_owned();
        for f in &compiled.mach.functions {
            inst = inst.replace(&format!("M({})", f.name), &(f.frame_size + 4).to_string());
        }
        let signature = signature(program, case.name);
        println!("{signature:<36} {:<46} {inst} bytes", case.bound_display);
        if show_proofs {
            for proof in &case.proofs {
                println!("\n  derivation for {} (spec {}):", proof.name, proof.spec);
                for line in proof.derivation.render().lines() {
                    println!("    {line}");
                }
            }
            println!();
        }
    }
    println!("\nevery derivation above was re-checked by qhl::Checker before printing.");
}

fn signature(program: &clight::Program, fname: &str) -> String {
    let f = program.function(fname).expect("headline function");
    let params: Vec<&str> = f.params.iter().map(|p| p.name.as_str()).collect();
    format!("{fname}({})", params.join(", "))
}
