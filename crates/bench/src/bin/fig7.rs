//! Regenerates **Figure 7**: measured stack consumption of compiled code
//! against the hand-derived bounds, for `bsearch` (top plot, logarithmic)
//! and `fact_sq` (bottom plot, quadratic).
//!
//! Prints gnuplot-ready columns and an ASCII sketch of each plot.
//!
//! ```sh
//! cargo run -p bench --bin fig7
//! ```

use bench::SuiteOptions;
use stackbound::{benchsuite, clight, compiler, qhl};

fn main() {
    let _metrics = bench::metrics_from_args();
    let opts = bench::suite_options_from_args();
    sweep("bsearch", &sample_points(2, 4000, 48), &opts);
    sweep("fact_sq", &(1..=100).collect::<Vec<i64>>(), &opts);
}

fn sweep(name: &str, points: &[i64], opts: &SuiteOptions) {
    let case = benchsuite::recursive_case(name).expect("case exists");
    let program = clight::frontend(case.source, &[]).expect("front end");
    case.check(&program).expect("derivation checks");
    let compiled = compiler::compile(&program).expect("compiles");
    let spec = case.spec();
    let f = program.function(name).expect("function");

    println!(
        "# Figure 7 ({name}): verified bound = {}",
        case.bound_display
    );
    println!("# with M({name}) = {}", compiled.metric.call_cost(name));
    println!("{:>8} {:>14} {:>14}", "x", "measured", "bound");

    // Measure every point up front — under `--parallel-measure` the runs
    // fan across threads; the asserts and printing below stay serial and
    // in point order, so the output is byte-identical either way.
    let argsets: Vec<Vec<u32>> = points
        .iter()
        .map(|&x| (case.args_for)(x).iter().map(|a| *a as u32).collect())
        .collect();
    let measurements = bench::measure_sweep(&compiled, name, &argsets, opts);

    let mut series = Vec::new();
    for (&x, m) in points.iter().zip(&measurements) {
        let args = (case.args_for)(x);
        let env = qhl::Valuation::of_vars(
            f.params
                .iter()
                .map(|p| p.name.clone())
                .zip(args.iter().copied()),
        );
        let bound = spec
            .pre
            .eval(&compiled.metric, &env)
            .expect("bound evaluates")
            .finite()
            .expect("finite bound")
            + f64::from(compiled.metric.call_cost(name));
        assert!(m.behavior.converges(), "x = {x}: {}", m.behavior);
        assert!(
            f64::from(m.stack_usage) <= bound,
            "x = {x}: measured {} above bound {bound}",
            m.stack_usage
        );
        println!("{x:>8} {:>8} bytes {bound:>8.0} bytes", m.stack_usage);
        series.push((x, m.stack_usage, bound));
    }
    ascii_plot(name, &series);
    println!();
}

/// Logarithmically-spaced integer sample points.
fn sample_points(lo: i64, hi: i64, n: usize) -> Vec<i64> {
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let t = i as f64 / (n - 1) as f64;
        let x = (lo as f64 * (hi as f64 / lo as f64).powf(t)).round() as i64;
        if out.last() != Some(&x) {
            out.push(x);
        }
    }
    out
}

/// A small ASCII rendition of the plot: bound curve (`-`) and measured
/// points (`x`), like the paper's blue line and red crosses.
fn ascii_plot(name: &str, series: &[(i64, u32, f64)]) {
    const ROWS: usize = 12;
    const COLS: usize = 64;
    let max_y = series
        .iter()
        .map(|(_, _, b)| *b)
        .fold(0.0f64, f64::max)
        .max(1.0);
    let max_x = series.iter().map(|(x, _, _)| *x).max().unwrap_or(1) as f64;
    let mut grid = vec![vec![b' '; COLS]; ROWS];
    for (x, measured, bound) in series {
        let col = (((*x as f64) / max_x) * (COLS - 1) as f64) as usize;
        let brow = ROWS - 1 - ((bound / max_y) * (ROWS - 1) as f64) as usize;
        grid[brow][col] = b'-';
        let mrow = ROWS - 1 - ((f64::from(*measured) / max_y) * (ROWS - 1) as f64) as usize;
        grid[mrow][col] = b'x';
    }
    println!("# {name}: bound (-) vs measured (x), y-max = {max_y:.0} bytes");
    for row in grid {
        println!("# |{}", String::from_utf8_lossy(&row));
    }
    println!("# +{}", "-".repeat(COLS));
}
