//! `serve_bench`: load-generator benchmark of the `sbound serve`
//! verification daemon.
//!
//! Spawns an in-process TCP server with one shared verification +
//! measurement cache, then replays three workloads with closed-loop
//! clients ([`bench::serveload`]):
//!
//! * `cold_corpus` — the full corpus (Table 1 + extras + Table 2) on both
//!   backend targets, against empty caches: every request pays the whole
//!   pipeline;
//! * `warm_corpus` — the same requests again (three repetitions): every
//!   stage resolves from the shared cache;
//! * `edit_storm` — single-function edits of one program (only `main`'s
//!   constant changes), the daemon's motivating interactive workload.
//!
//! Every response is byte-compared against the one-shot `Verifier`
//! rendering for the same source and target — recursive cases against
//! the analyzer's rejection message — so the throughput numbers can
//! never come at the cost of wrong answers. The run fails if any
//! response mismatches, if the warm median exceeds 10 ms, or if the
//! warm pass is not at least 10x the cold throughput.
//!
//! Writes the machine-readable `BENCH_serve.json` consumed by CI
//! (`ci/BENCH_serve.json` is the checked-in baseline; `budget_gate`
//! enforces the `serve` floor and `serve_warm_p99` ceiling declared in
//! `ci/pass_budgets.txt`).
//!
//! ```sh
//! cargo run --release -p bench --bin serve_bench
//! cargo run --release -p bench --bin serve_bench -- --concurrency 8 --out my.json
//! ```

use bench::serveload;
use stackbound::serve::{ServeOptions, Server, Session};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::sync::Arc;

/// Warm-pass repetitions of the corpus (more samples for the tails).
const WARM_REPS: usize = 3;

/// Edit-storm shape: distinct single-function variants and total requests.
const STORM_VARIANTS: u32 = 8;
const STORM_REQUESTS: usize = 64;

/// Acceptance thresholds (the checked-in floors in `ci/pass_budgets.txt`
/// gate CI; these are the bench's own, stricter sanity bars).
const WARM_P50_CEILING_MS: f64 = 10.0;
const COLD_VS_WARM_FLOOR: f64 = 10.0;

fn main() -> ExitCode {
    let (out_path, concurrency, workers) = cli_args();
    println!(
        "serve_bench: corpus + edit-storm replay, {concurrency} closed-loop clients, \
         {workers} workers\n"
    );

    let server = Arc::new(Server::new(
        Session::new(),
        ServeOptions {
            workers,
            fuel: bench::FUEL,
            ..ServeOptions::default()
        },
    ));
    let handle = stackbound::serve::spawn_tcp(server).expect("bind loopback");
    let addr = handle.addr();

    println!("preparing one-shot expectations (uncached)...");
    let corpus = serveload::corpus_jobs();
    let storm = serveload::edit_storm_jobs(STORM_VARIANTS, STORM_REQUESTS);
    let mut warm_jobs = Vec::new();
    for _ in 0..WARM_REPS {
        warm_jobs.extend(corpus.iter().map(|j| serveload::LoadJob {
            line: j.line.clone(),
            expect_ok: j.expect_ok,
            expect: j.expect.clone(),
        }));
    }

    let cold = serveload::replay(addr, "cold_corpus", &corpus, concurrency);
    let warm = serveload::replay(addr, "warm_corpus", &warm_jobs, concurrency);
    let storm_report = serveload::replay(addr, "edit_storm", &storm, concurrency);
    let metrics = serveload::fetch_metrics(addr);
    handle.shutdown().expect("clean shutdown");

    let workloads = [&cold, &warm, &storm_report];
    println!(
        "\n{:<12} {:>9} {:>12} {:>10} {:>10} {:>11}",
        "workload", "requests", "req/s", "p50 ms", "p99 ms", "mismatches"
    );
    for w in workloads {
        println!(
            "{:<12} {:>9} {:>12.1} {:>10.3} {:>10.3} {:>11}",
            w.label, w.requests, w.rps, w.p50_ms, w.p99_ms, w.mismatches
        );
    }
    let speedup = warm.rps / cold.rps.max(f64::EPSILON);
    println!("\ncold → warm throughput: {speedup:.1}x");

    let mut failed = false;
    if workloads.iter().any(|w| w.mismatches > 0) {
        eprintln!("serve_bench: FAILED: served responses diverged from one-shot runs");
        failed = true;
    }
    if warm.p50_ms > WARM_P50_CEILING_MS {
        eprintln!(
            "serve_bench: FAILED: warm p50 {:.3} ms > {WARM_P50_CEILING_MS} ms",
            warm.p50_ms
        );
        failed = true;
    }
    if speedup < COLD_VS_WARM_FLOOR {
        eprintln!("serve_bench: FAILED: cold→warm speedup {speedup:.1}x < {COLD_VS_WARM_FLOOR}x");
        failed = true;
    }

    let json = render_json(&workloads, speedup, &metrics);
    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("serve_bench: cannot write `{out_path}`: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");
    if failed {
        eprintln!("\nserve_bench: FAILED");
        return ExitCode::FAILURE;
    }
    println!("\nserve_bench: all responses identical to one-shot runs");
    ExitCode::SUCCESS
}

fn render_json(
    workloads: &[&serveload::LoadReport],
    speedup: f64,
    metrics: &obs::json::Value,
) -> String {
    let mut out = String::from("{\n  \"suite\": \"serve\",\n");
    let _ = writeln!(
        out,
        "  \"concurrency\": {},\n  \"workers\": \"available_parallelism\",",
        workloads[0].concurrency
    );
    out.push_str("  \"workloads\": [\n");
    for (i, w) in workloads.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"label\": \"{}\", \"requests\": {}, \"concurrency\": {}, \
             \"elapsed_ms\": {:.1}, \"rps\": {:.1}, \"p50_ms\": {:.3}, \
             \"p99_ms\": {:.3}, \"mismatches\": {}}}",
            w.label,
            w.requests,
            w.concurrency,
            w.elapsed_s * 1e3,
            w.rps,
            w.p50_ms,
            w.p99_ms,
            w.mismatches
        );
        out.push_str(if i + 1 < workloads.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    let _ = writeln!(out, "  \"cold_vs_warm\": {speedup:.1},");
    let hits = |stage: &str| {
        let pair = metrics
            .get("cache")
            .and_then(|c| c.get(stage))
            .and_then(|v| v.as_array());
        match pair {
            Some([h, m]) => (
                h.as_f64().unwrap_or(0.0) as u64,
                m.as_f64().unwrap_or(0.0) as u64,
            ),
            _ => (0, 0),
        }
    };
    out.push_str("  \"cache\": [\n");
    let stages = ["analyze", "check", "compile", "bound", "measure"];
    for (i, stage) in stages.iter().enumerate() {
        let (h, m) = hits(stage);
        let _ = write!(
            out,
            "    {{\"stage\": \"{stage}\", \"hits\": {h}, \"misses\": {m}}}"
        );
        out.push_str(if i + 1 < stages.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    let _ = writeln!(
        out,
        "  \"identical\": {}",
        workloads.iter().all(|w| w.mismatches == 0)
    );
    out.push_str("}\n");
    out
}

fn cli_args() -> (String, usize, usize) {
    let mut out = "BENCH_serve.json".to_owned();
    let mut concurrency = 4usize;
    let mut workers = 0usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => {
                if let Some(p) = args.next() {
                    out = p;
                }
            }
            "--concurrency" => {
                if let Some(n) = args.next().and_then(|n| n.parse().ok()) {
                    concurrency = n;
                }
            }
            "--workers" => {
                if let Some(n) = args.next().and_then(|n| n.parse().ok()) {
                    workers = n;
                }
            }
            other => {
                eprintln!(
                    "serve_bench: unknown option `{other}` \
                     (expected --out PATH, --concurrency N, --workers N)"
                );
                std::process::exit(2);
            }
        }
    }
    (out, concurrency, workers)
}
