//! `obs-diff`: the metrics-diff tool. Ingests two JSON-lines reports
//! (written by `sbound --trace-json` or any harness binary's
//! `--metrics-json`) and prints per-span duration and per-counter deltas,
//! so a perf regression in the pipeline is a reviewable artifact:
//!
//! ```sh
//! cargo run -p bench --bin table1 -- --metrics-json before.jsonl
//! # ... make a change ...
//! cargo run -p bench --bin table1 -- --metrics-json after.jsonl
//! cargo run -p bench --bin obs-diff -- before.jsonl after.jsonl
//! ```
//!
//! Counters that come in `<name>_hit` / `<name>_miss` pairs (the
//! `vcache/*` stage caches, `asm/cache_*`) additionally get a *hit rate*
//! table: the percentage on each side plus the delta in percentage
//! points, so a cache that silently stopped hitting shows up as a
//! headline row rather than two raw counters the reader must divide.
//!
//! Histograms are reconstructed from their serialized log2 buckets and
//! diffed by their p50/p95/p99 percentile estimates, so a latency
//! distribution shifting its tail is visible even when the mean holds.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Aggregated view of one report: per-span-name total duration and open
/// count, plus the global counters and histograms.
#[derive(Default)]
struct Aggregate {
    /// span name → (total duration over all spans with that name, count).
    spans: BTreeMap<String, (u64, u64)>,
    /// counter name → value.
    counters: BTreeMap<String, u64>,
    /// histogram name → distribution rebuilt from its log2 buckets.
    hists: BTreeMap<String, obs::Histogram>,
}

fn load(path: &str) -> Result<Aggregate, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let mut agg = Aggregate::default();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        ingest(&mut agg, line).map_err(|e| format!("{path}:{}: bad JSON: {e}", lineno + 1))?;
    }
    Ok(agg)
}

/// Folds one JSON-lines record into the aggregate.
fn ingest(agg: &mut Aggregate, line: &str) -> Result<(), String> {
    let v = obs::json::parse(line)?;
    let kind = v.get("k").and_then(|k| k.as_str()).unwrap_or_default();
    let name = v.get("name").and_then(|n| n.as_str()).unwrap_or_default();
    match kind {
        "span" => {
            let dur = v.get("dur_ns").and_then(|d| d.as_f64()).unwrap_or(0.0) as u64;
            let entry = agg.spans.entry(name.to_owned()).or_insert((0, 0));
            entry.0 += dur;
            entry.1 += 1;
        }
        "counter" => {
            let value = v.get("value").and_then(|d| d.as_f64()).unwrap_or(0.0) as u64;
            *agg.counters.entry(name.to_owned()).or_insert(0) += value;
        }
        "hist" => {
            let num = |key: &str| v.get(key).and_then(|d| d.as_f64()).unwrap_or(0.0) as u64;
            let mut buckets = vec![0u64; 65];
            for pair in v
                .get("buckets")
                .and_then(|b| b.as_array())
                .unwrap_or_default()
            {
                if let Some([i, n]) = pair.as_array().map(|p| [&p[0], &p[1]]) {
                    let i = i.as_f64().unwrap_or(0.0) as usize;
                    if let Some(slot) = buckets.get_mut(i) {
                        *slot = n.as_f64().unwrap_or(0.0) as u64;
                    }
                }
            }
            agg.hists.insert(
                name.to_owned(),
                obs::Histogram::from_parts(
                    num("count"),
                    num("sum"),
                    num("min"),
                    num("max"),
                    buckets,
                ),
            );
        }
        _ => {} // thread labels carry no diffable quantity
    }
    Ok(())
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Keys of both maps, in order, without duplicates.
fn union_keys<'a, V>(a: &'a BTreeMap<String, V>, b: &'a BTreeMap<String, V>) -> Vec<&'a str> {
    let mut keys: Vec<&str> = a.keys().chain(b.keys()).map(String::as_str).collect();
    keys.sort_unstable();
    keys.dedup();
    keys
}

/// Renders the number column for a side a span/counter may be absent
/// from: absence prints as `-`, which is distinct from a measured zero.
fn side<T: std::fmt::Display>(v: Option<T>) -> String {
    v.map_or_else(|| "-".to_owned(), |v| v.to_string())
}

/// One span table row. Presence is tracked per side: a span that exists
/// in only one report is marked `added`/`removed` instead of being
/// compared against a fabricated zero duration.
fn span_row(name: &str, before: Option<(u64, u64)>, after: Option<(u64, u64)>) -> String {
    let b = before.map(|(dur, _)| format!("{:.3}", ms(dur)));
    let a = after.map(|(dur, _)| format!("{:.3}", ms(dur)));
    let (delta, note) = match (before, after) {
        (None, None) => ("-".to_owned(), String::new()),
        (None, Some(_)) => ("-".to_owned(), "added".to_owned()),
        (Some(_), None) => ("-".to_owned(), "removed".to_owned()),
        (Some((b, _)), Some((a, _))) => {
            let delta = ms(a) - ms(b);
            let pct = if b > 0 {
                format!("{:+.1}%", delta / ms(b) * 100.0)
            } else {
                String::new()
            };
            (format!("{delta:+.3}"), pct)
        }
    };
    format!(
        "{name:<36} {:>12} {:>12} {delta:>12} {note:>8}",
        side(b),
        side(a)
    )
}

/// One counter table row, with the same `added`/`removed` marking as
/// [`span_row`].
fn counter_row(name: &str, before: Option<u64>, after: Option<u64>) -> String {
    let (delta, note) = match (before, after) {
        (None, None) => ("-".to_owned(), String::new()),
        (None, Some(_)) => ("-".to_owned(), "added".to_owned()),
        (Some(_), None) => ("-".to_owned(), "removed".to_owned()),
        (Some(b), Some(a)) => (
            format!("{:+}", i128::from(a) - i128::from(b)),
            String::new(),
        ),
    };
    format!(
        "{name:<36} {:>12} {:>12} {delta:>12} {note:>8}",
        side(before),
        side(after)
    )
}

/// The p50/p95/p99 rows for one histogram, with the same
/// `added`/`removed` marking as [`span_row`].
fn hist_rows(
    name: &str,
    before: Option<&obs::Histogram>,
    after: Option<&obs::Histogram>,
) -> Vec<String> {
    [50.0, 95.0, 99.0]
        .iter()
        .map(|&p| {
            let b = before.map(|h| h.percentile(p));
            let a = after.map(|h| h.percentile(p));
            let (delta, note) = match (b, a) {
                (None, None) => ("-".to_owned(), String::new()),
                (None, Some(_)) => ("-".to_owned(), "added".to_owned()),
                (Some(_), None) => ("-".to_owned(), "removed".to_owned()),
                (Some(b), Some(a)) => (
                    format!("{:+}", i128::from(a) - i128::from(b)),
                    String::new(),
                ),
            };
            format!(
                "{:<36} {:>12} {:>12} {delta:>12} {note:>8}",
                format!("{name} p{p:.0}"),
                side(b),
                side(a)
            )
        })
        .collect()
}

/// Pairs every `<base>_hit` counter with its `<base>_miss` sibling and
/// computes the hit percentage. Pairs with zero lookups are omitted — no
/// rate is distinct from a measured 0%.
fn hit_rates(counters: &BTreeMap<String, u64>) -> BTreeMap<String, f64> {
    let mut rates = BTreeMap::new();
    // Either counter of the pair may be absent (a recorder only emits
    // counters that were bumped, so an all-miss run has no `_hit` key).
    for name in counters.keys() {
        let Some(base) = name
            .strip_suffix("_hit")
            .or_else(|| name.strip_suffix("_miss"))
        else {
            continue;
        };
        let hits = counters.get(&format!("{base}_hit")).copied().unwrap_or(0);
        let misses = counters.get(&format!("{base}_miss")).copied().unwrap_or(0);
        let total = hits + misses;
        if total > 0 {
            rates.insert(base.to_owned(), hits as f64 / total as f64 * 100.0);
        }
    }
    rates
}

/// One hit-rate table row: percentages on both sides, delta in
/// percentage points, with the same `added`/`removed` marking as
/// [`span_row`].
fn hit_rate_row(name: &str, before: Option<f64>, after: Option<f64>) -> String {
    let b = before.map(|r| format!("{r:.1}%"));
    let a = after.map(|r| format!("{r:.1}%"));
    let (delta, note) = match (before, after) {
        (None, None) => ("-".to_owned(), String::new()),
        (None, Some(_)) => ("-".to_owned(), "added".to_owned()),
        (Some(_), None) => ("-".to_owned(), "removed".to_owned()),
        (Some(b), Some(a)) => (format!("{:+.1}", a - b), String::new()),
    };
    format!(
        "{name:<36} {:>12} {:>12} {delta:>12} {note:>8}",
        side(b),
        side(a)
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [before_path, after_path] = args.as_slice() else {
        eprintln!("usage: obs-diff <before.jsonl> <after.jsonl>");
        return ExitCode::from(2);
    };
    let (before, after) = match (load(before_path), load(after_path)) {
        (Ok(b), Ok(a)) => (b, a),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("obs-diff: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("obs-diff: {before_path} -> {after_path}\n");
    println!(
        "{:<36} {:>12} {:>12} {:>12} {:>8}",
        "span (total duration)", "before ms", "after ms", "delta ms", "delta"
    );
    println!("{}", "-".repeat(84));
    for name in union_keys(&before.spans, &after.spans) {
        let b = before.spans.get(name).copied();
        let a = after.spans.get(name).copied();
        println!("{}", span_row(name, b, a));
    }

    println!();
    println!(
        "{:<36} {:>12} {:>12} {:>12} {:>8}",
        "counter", "before", "after", "delta", ""
    );
    println!("{}", "-".repeat(84));
    for name in union_keys(&before.counters, &after.counters) {
        let b = before.counters.get(name).copied();
        let a = after.counters.get(name).copied();
        println!("{}", counter_row(name, b, a));
    }

    if !(before.hists.is_empty() && after.hists.is_empty()) {
        println!();
        println!(
            "{:<36} {:>12} {:>12} {:>12} {:>8}",
            "histogram percentile", "before", "after", "delta", ""
        );
        println!("{}", "-".repeat(84));
        for name in union_keys(&before.hists, &after.hists) {
            for row in hist_rows(name, before.hists.get(name), after.hists.get(name)) {
                println!("{row}");
            }
        }
    }

    let (before_rates, after_rates) = (hit_rates(&before.counters), hit_rates(&after.counters));
    if !(before_rates.is_empty() && after_rates.is_empty()) {
        println!();
        println!(
            "{:<36} {:>12} {:>12} {:>12} {:>8}",
            "cache hit rate", "before", "after", "delta pp", ""
        );
        println!("{}", "-".repeat(84));
        for name in union_keys(&before_rates, &after_rates) {
            let b = before_rates.get(name).copied();
            let a = after_rates.get(name).copied();
            println!("{}", hit_rate_row(name, b, a));
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::{counter_row, hist_rows, hit_rate_row, hit_rates, ingest, span_row, Aggregate};
    use std::collections::BTreeMap;

    #[test]
    fn span_present_in_both_reports_delta_and_percent() {
        let row = span_row("compile", Some((2_000_000, 1)), Some((3_000_000, 1)));
        assert!(row.contains("2.000"), "{row}");
        assert!(row.contains("3.000"), "{row}");
        assert!(row.contains("+1.000"), "{row}");
        assert!(row.contains("+50.0%"), "{row}");
    }

    #[test]
    fn span_only_in_after_is_added() {
        let row = span_row("verify", None, Some((1_000_000, 1)));
        assert!(row.ends_with("added"), "{row}");
        assert!(row.contains(" - "), "{row}");
        assert!(!row.contains("0.000"), "{row}");
    }

    #[test]
    fn span_only_in_before_is_removed() {
        let row = span_row("legacy_pass", Some((1_000_000, 1)), None);
        assert!(row.ends_with("removed"), "{row}");
    }

    #[test]
    fn counter_only_in_one_report_is_marked() {
        assert!(counter_row("cache.hits", None, Some(9)).ends_with("added"));
        assert!(counter_row("old.metric", Some(4), None).ends_with("removed"));
    }

    #[test]
    fn counter_in_both_reports_signed_delta() {
        let row = counter_row("steps", Some(10), Some(7));
        assert!(row.contains("-3"), "{row}");
        let row = counter_row("steps", Some(7), Some(10));
        assert!(row.contains("+3"), "{row}");
    }

    #[test]
    fn hit_rates_pair_hit_and_miss_counters() {
        let counters: BTreeMap<String, u64> = [
            ("vcache/analyze_hit".to_owned(), 3),
            ("vcache/analyze_miss".to_owned(), 1),
            ("asm/cache_miss".to_owned(), 5), // all-miss run: no `_hit` key
            ("vcache/check_hit".to_owned(), 7), // all-hit run: no `_miss` key
            ("vcache/bound_hit".to_owned(), 0), // zero lookups: no rate
            ("vcache/bound_miss".to_owned(), 0),
            ("unrelated".to_owned(), 9),
        ]
        .into_iter()
        .collect();
        let rates = hit_rates(&counters);
        assert_eq!(rates.get("vcache/analyze"), Some(&75.0));
        assert_eq!(rates.get("asm/cache"), Some(&0.0));
        assert_eq!(rates.get("vcache/check"), Some(&100.0));
        assert_eq!(rates.get("vcache/bound"), None);
        assert_eq!(rates.len(), 3);
    }

    #[test]
    fn hist_lines_round_trip_and_diff_by_percentile() {
        let mut h = obs::Histogram::from_parts(0, 0, 0, 0, Vec::new());
        for v in 1..=100u64 {
            h.record(v);
        }
        let buckets: Vec<String> = h
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| format!("[{i},{n}]"))
            .collect();
        let line = format!(
            "{{\"k\":\"hist\",\"name\":\"lat\",\"count\":{},\"min\":{},\"max\":{},\"sum\":{},\"buckets\":[{}]}}",
            h.count,
            h.min,
            h.max,
            h.sum,
            buckets.join(",")
        );
        let mut agg = Aggregate::default();
        ingest(&mut agg, &line).unwrap();
        let back = &agg.hists["lat"];
        for p in [50.0, 95.0, 99.0] {
            assert_eq!(back.percentile(p), h.percentile(p));
        }

        let mut shifted = h.clone();
        for _ in 0..40 {
            shifted.record(100_000);
        }
        let rows = hist_rows("lat", Some(&h), Some(&shifted));
        assert_eq!(rows.len(), 3);
        assert!(rows[0].contains("lat p50"), "{rows:?}");
        // The tail moved: p95/p99 show a large positive delta.
        assert!(rows[1].contains('+'), "{rows:?}");
        assert!(rows[2].contains('+'), "{rows:?}");

        let added = hist_rows("new", None, Some(&h));
        assert!(added.iter().all(|r| r.ends_with("added")), "{added:?}");
        let removed = hist_rows("old", Some(&h), None);
        assert!(
            removed.iter().all(|r| r.ends_with("removed")),
            "{removed:?}"
        );
    }

    #[test]
    fn hit_rate_row_reports_percentage_point_delta() {
        let row = hit_rate_row("vcache/compile", Some(50.0), Some(98.5));
        assert!(row.contains("50.0%"), "{row}");
        assert!(row.contains("98.5%"), "{row}");
        assert!(row.contains("+48.5"), "{row}");
        assert!(hit_rate_row("vcache/check", None, Some(100.0)).ends_with("added"));
        assert!(hit_rate_row("legacy", Some(1.0), None).ends_with("removed"));
    }
}
