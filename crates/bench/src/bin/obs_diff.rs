//! `obs-diff`: the metrics-diff tool. Ingests two JSON-lines reports
//! (written by `sbound --trace-json` or any harness binary's
//! `--metrics-json`) and prints per-span duration and per-counter deltas,
//! so a perf regression in the pipeline is a reviewable artifact:
//!
//! ```sh
//! cargo run -p bench --bin table1 -- --metrics-json before.jsonl
//! # ... make a change ...
//! cargo run -p bench --bin table1 -- --metrics-json after.jsonl
//! cargo run -p bench --bin obs-diff -- before.jsonl after.jsonl
//! ```

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Aggregated view of one report: per-span-name total duration and open
/// count, plus the global counters.
#[derive(Default)]
struct Aggregate {
    /// span name → (total duration over all spans with that name, count).
    spans: BTreeMap<String, (u64, u64)>,
    /// counter name → value.
    counters: BTreeMap<String, u64>,
}

fn load(path: &str) -> Result<Aggregate, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let mut agg = Aggregate::default();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v =
            obs::json::parse(line).map_err(|e| format!("{path}:{}: bad JSON: {e}", lineno + 1))?;
        let kind = v.get("k").and_then(|k| k.as_str()).unwrap_or_default();
        let name = v.get("name").and_then(|n| n.as_str()).unwrap_or_default();
        match kind {
            "span" => {
                let dur = v.get("dur_ns").and_then(|d| d.as_f64()).unwrap_or(0.0) as u64;
                let entry = agg.spans.entry(name.to_owned()).or_insert((0, 0));
                entry.0 += dur;
                entry.1 += 1;
            }
            "counter" => {
                let value = v.get("value").and_then(|d| d.as_f64()).unwrap_or(0.0) as u64;
                *agg.counters.entry(name.to_owned()).or_insert(0) += value;
            }
            _ => {} // histograms are not diffed
        }
    }
    Ok(agg)
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Keys of both maps, in order, without duplicates.
fn union_keys<'a, V>(a: &'a BTreeMap<String, V>, b: &'a BTreeMap<String, V>) -> Vec<&'a str> {
    let mut keys: Vec<&str> = a.keys().chain(b.keys()).map(String::as_str).collect();
    keys.sort_unstable();
    keys.dedup();
    keys
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [before_path, after_path] = args.as_slice() else {
        eprintln!("usage: obs-diff <before.jsonl> <after.jsonl>");
        return ExitCode::from(2);
    };
    let (before, after) = match (load(before_path), load(after_path)) {
        (Ok(b), Ok(a)) => (b, a),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("obs-diff: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("obs-diff: {before_path} -> {after_path}\n");
    println!(
        "{:<36} {:>12} {:>12} {:>12} {:>8}",
        "span (total duration)", "before ms", "after ms", "delta ms", "delta"
    );
    println!("{}", "-".repeat(84));
    for name in union_keys(&before.spans, &after.spans) {
        let (b, _) = before.spans.get(name).copied().unwrap_or((0, 0));
        let (a, _) = after.spans.get(name).copied().unwrap_or((0, 0));
        let delta = ms(a) - ms(b);
        let pct = if b > 0 {
            format!("{:+.1}%", delta / ms(b) * 100.0)
        } else {
            "new".to_owned()
        };
        println!(
            "{name:<36} {:>12.3} {:>12.3} {delta:>+12.3} {pct:>8}",
            ms(b),
            ms(a)
        );
    }

    println!();
    println!(
        "{:<36} {:>12} {:>12} {:>12}",
        "counter", "before", "after", "delta"
    );
    println!("{}", "-".repeat(76));
    for name in union_keys(&before.counters, &after.counters) {
        let b = before.counters.get(name).copied().unwrap_or(0);
        let a = after.counters.get(name).copied().unwrap_or(0);
        println!(
            "{name:<36} {b:>12} {a:>12} {:>+12}",
            i128::from(a) - i128::from(b)
        );
    }
    ExitCode::SUCCESS
}
