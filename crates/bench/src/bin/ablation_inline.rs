//! Ablation: **inlining** — the optimization Quantitative CompCert
//! deliberately disables (§3.3). Enabling our experimental leaf inliner
//! shows why: results and soundness are preserved (inlining only deletes
//! call events, a legal quantitative refinement), but the source-level
//! bound keeps paying `M(g)` for calls the machine no longer makes, so
//! the paper's exact `bound = measured + 4` identity degrades to a slack
//! inequality.
//!
//! ```sh
//! cargo run -p bench --bin ablation_inline
//! ```

use bench::FUEL;
use stackbound::{analyzer, asm, compiler};

fn main() {
    println!("Ablation: leaf inlining (the pass the paper disables)\n");
    println!(
        "{:<28} {:>10} {:>22} {:>22}",
        "program", "bound", "slack w/o inlining", "slack with inlining"
    );
    println!("{}", "-".repeat(88));
    for b in stackbound::benchsuite::table1_benchmarks() {
        let program = b.program().expect("front end");
        let analysis = analyzer::analyze(&program).expect("analyzable");
        let base = compiler::compile(&program).expect("compiles");
        let inlined =
            compiler::Pipeline::new(compiler::PipelineConfig::with_options(compiler::Options {
                inline: true,
                ..compiler::Options::default()
            }))
            .run(&program)
            .expect("compiles");

        let bound0 = analysis.concrete_bound("main", &base.metric).unwrap() as u32;
        let bound1 = analysis.concrete_bound("main", &inlined.metric).unwrap() as u32;
        let m0 = asm::measure_main(&base.asm, 1 << 22, FUEL).expect("setup");
        let m1 = asm::measure_main(&inlined.asm, 1 << 22, FUEL).expect("setup");
        assert_eq!(m0.result(), m1.result(), "{}", b.file);
        assert!(
            bound1 >= m1.stack_usage,
            "{}: inlining broke soundness!",
            b.file
        );
        println!(
            "{:<28} {bound0:>6} B {:>18} B {:>18} B",
            b.file,
            bound0 - m0.stack_usage,
            bound1.saturating_sub(m1.stack_usage),
        );
    }
    println!("\nwithout inlining the slack is exactly 4 everywhere; with it, bounds");
    println!("stay sound but loose — which is why §3.3 keeps the pass disabled.");
}
