//! `interp_bench`: throughput benchmark of the pre-decoded `ASMsz`
//! execution core against the reference one-instruction-at-a-time core,
//! over the full Table 1 suite.
//!
//! For every benchmark `main` the harness runs both cores (best-of
//! `--reps` repetitions each), asserts the two [`asm::Measurement`]s are
//! identical, and reports steps/second plus the speedup ratio. It then
//! re-measures the suite serially and with `--parallel-measure`-style
//! fan-out and asserts byte-identity, and drives every measurement
//! through an [`asm::MeasureCache`] twice to exercise the hit path.
//!
//! ```sh
//! cargo run --release -p bench --bin interp_bench            # 3 reps
//! cargo run --release -p bench --bin interp_bench -- --smoke # 1 rep, CI
//! ```
//!
//! Flags: `--smoke` (single rep), `--reps N`, `--out FILE` (default
//! `BENCH_interp.json`), plus the shared `--parallel-measure`.

use stackbound::asm;
use std::fmt::Write as _;
use std::time::Instant;

/// Per-program throughput record.
struct Row {
    file: &'static str,
    steps: u64,
    decoded_sps: f64,
    reference_sps: f64,
}

fn main() {
    let _metrics = bench::metrics_from_args();
    let config = bench::pipeline_config_from_args();
    let opts = bench::suite_options_from_args();
    let (reps, out_path) = cli_args();

    println!("interp_bench: decoded vs reference core, Table 1 suite ({reps} rep(s))\n");
    let preps = bench::prepare_table1_with_opts(&config, &opts);

    println!(
        "{:<28} {:>12} {:>14} {:>14} {:>8}",
        "File Name", "steps", "decoded st/s", "reference st/s", "speedup"
    );
    println!("{}", "-".repeat(82));
    let mut rows = Vec::new();
    let (mut total_steps, mut dec_secs, mut ref_secs) = (0u64, 0f64, 0f64);
    for prep in &preps {
        let a = &prep.compiled.asm;
        let (m_dec, dec_best) = best_of(reps, a, |m| m.run(bench::FUEL));
        let (m_ref, ref_best) = best_of(reps, a, |m| m.run_reference(bench::FUEL));
        assert_eq!(m_dec, m_ref, "{}: cores disagree", prep.file);
        let row = Row {
            file: prep.file,
            steps: m_dec.steps,
            decoded_sps: m_dec.steps as f64 / dec_best,
            reference_sps: m_ref.steps as f64 / ref_best,
        };
        println!(
            "{:<28} {:>12} {:>14.0} {:>14.0} {:>7.2}x",
            row.file,
            row.steps,
            row.decoded_sps,
            row.reference_sps,
            row.decoded_sps / row.reference_sps
        );
        total_steps += row.steps;
        dec_secs += row.steps as f64 / row.decoded_sps;
        ref_secs += row.steps as f64 / row.reference_sps;
        rows.push(row);
    }
    let decoded_sps = total_steps as f64 / dec_secs;
    let reference_sps = total_steps as f64 / ref_secs;
    let speedup = decoded_sps / reference_sps;
    println!("{}", "-".repeat(82));
    println!(
        "{:<28} {:>12} {:>14.0} {:>14.0} {:>7.2}x\n",
        "total", total_steps, decoded_sps, reference_sps, speedup
    );

    // Serial vs parallel measurement must be byte-identical.
    let serial = bench::measure_mains(
        &preps,
        &bench::SuiteOptions {
            parallel_measure: false,
        },
    );
    let parallel = bench::measure_mains(
        &preps,
        &bench::SuiteOptions {
            parallel_measure: true,
        },
    );
    assert_eq!(serial, parallel, "parallel measurement diverged");
    println!("serial and parallel suite measurements are identical");

    // Two passes through a shared cache: second pass is all hits, and
    // every cached result equals the directly measured one.
    let cache = asm::MeasureCache::new();
    for _ in 0..2 {
        for (prep, direct) in preps.iter().zip(&serial) {
            let m = cache
                .measure_main(&prep.compiled.asm, 1 << 22, bench::FUEL)
                .expect("machine setup");
            assert_eq!(&m, direct, "{}: cache diverged", prep.file);
        }
    }
    let (cache_hits, cache_misses) = cache.stats();
    assert_eq!(cache_hits, preps.len() as u64);
    assert_eq!(cache_misses, preps.len() as u64);
    println!("measurement cache: {cache_hits} hits, {cache_misses} misses");

    let json = render_json(
        reps,
        &rows,
        total_steps,
        decoded_sps,
        reference_sps,
        (cache_hits, cache_misses),
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("interp_bench: cannot write `{out_path}`: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");
}

/// Handles `--smoke`, `--reps N` and `--out FILE`.
fn cli_args() -> (u32, String) {
    let mut reps = 3;
    let mut out = "BENCH_interp.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => reps = 1,
            "--reps" => {
                reps = args.next().and_then(|n| n.parse().ok()).unwrap_or_else(|| {
                    eprintln!("interp_bench: --reps needs a positive integer");
                    std::process::exit(2);
                });
            }
            "--out" => {
                out = args.next().unwrap_or_else(|| {
                    eprintln!("interp_bench: --out needs a path");
                    std::process::exit(2);
                });
            }
            _ => {}
        }
    }
    (reps.max(1), out)
}

/// Runs `main` on a fresh profiled machine `reps` times, timing only the
/// run itself (machine setup — stack allocation and pre-decoding — is not
/// interpreter throughput). Returns the (identical) [`asm::Measurement`]
/// and the fastest wall-clock time in seconds.
fn best_of(
    reps: u32,
    program: &asm::AsmProgram,
    run: impl Fn(&mut asm::Machine) -> stackbound::trace::Behavior,
) -> (asm::Measurement, f64) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..reps {
        let mut machine =
            asm::Machine::for_function(program, "main", &[], 1 << 22).expect("machine setup");
        machine.enable_profiling();
        let started = Instant::now();
        let behavior = run(&mut machine);
        best = best.min(started.elapsed().as_secs_f64());
        result = Some(asm::Measurement {
            stack_usage: machine.stack_usage(),
            steps: machine.steps(),
            error: machine.last_error().cloned(),
            profile: machine.take_profile().unwrap_or_default(),
            behavior,
        });
    }
    (result.expect("reps >= 1"), best)
}

/// Renders the machine-readable report consumed by CI (uploaded as the
/// `BENCH_interp.json` artifact and checked in as `ci/BENCH_interp.json`).
fn render_json(
    reps: u32,
    rows: &[Row],
    total_steps: u64,
    decoded_sps: f64,
    reference_sps: f64,
    (cache_hits, cache_misses): (u64, u64),
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"suite\": \"table1\",");
    let _ = writeln!(s, "  \"reps\": {reps},");
    let _ = writeln!(s, "  \"programs\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"file\": \"{}\", \"steps\": {}, \"decoded_steps_per_sec\": {:.0}, \
             \"reference_steps_per_sec\": {:.0}, \"speedup\": {:.2}}}{comma}",
            r.file,
            r.steps,
            r.decoded_sps,
            r.reference_sps,
            r.decoded_sps / r.reference_sps
        );
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"total_steps\": {total_steps},");
    let _ = writeln!(s, "  \"decoded_steps_per_sec\": {decoded_sps:.0},");
    let _ = writeln!(s, "  \"reference_steps_per_sec\": {reference_sps:.0},");
    let _ = writeln!(s, "  \"speedup\": {:.2},", decoded_sps / reference_sps);
    let _ = writeln!(s, "  \"parallel_identical\": true,");
    let _ = writeln!(s, "  \"cache_hits\": {cache_hits},");
    let _ = writeln!(s, "  \"cache_misses\": {cache_misses}");
    let _ = writeln!(s, "}}");
    s
}

#[cfg(test)]
mod tests {
    use super::{render_json, Row};

    #[test]
    fn report_is_valid_json() {
        let rows = [
            Row {
                file: "a.c",
                steps: 10,
                decoded_sps: 100.0,
                reference_sps: 25.0,
            },
            Row {
                file: "b.c",
                steps: 20,
                decoded_sps: 200.0,
                reference_sps: 50.0,
            },
        ];
        let text = render_json(3, &rows, 30, 150.0, 37.5, (2, 2));
        let v = obs::json::parse(&text).expect("parses");
        assert_eq!(v.get("suite").and_then(|s| s.as_str()), Some("table1"));
        assert_eq!(v.get("speedup").and_then(|s| s.as_f64()), Some(4.0));
        assert_eq!(v.get("cache_hits").and_then(|s| s.as_f64()), Some(2.0));
        let programs = v.get("programs").and_then(|p| p.as_array()).expect("array");
        assert_eq!(programs.len(), 2);
        assert_eq!(
            programs[0].get("file").and_then(|f| f.as_str()),
            Some("a.c")
        );
    }
}
