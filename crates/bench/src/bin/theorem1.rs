//! Demonstrates **Theorem 1** empirically on every Table 1 benchmark:
//! with the verified bound as stack size the compiled program refines the
//! source (same result, no overflow) — and the boundary is *exact*: one
//! word below the measured usage, the machine traps a stack overflow.
//!
//! ```sh
//! cargo run -p bench --bin theorem1
//! ```

use bench::FUEL;
use stackbound::asm;

fn main() {
    println!("Theorem 1: exact stack-overflow boundaries\n");
    println!(
        "{:<28} {:>10} {:>14} {:>16}",
        "program", "bound", "runs at", "overflows at"
    );
    println!("{}", "-".repeat(74));
    for prep in bench::prepare_table1() {
        let bound = prep
            .analysis
            .concrete_bound("main", &prep.compiled.metric)
            .expect("bounded") as u32;

        // Source-level result for the refinement check.
        let src = stackbound::clight::Executor::run_main(&prep.program, FUEL);

        // sz = bound works and gives the same result...
        let ok = asm::measure_main(&prep.compiled.asm, bound, FUEL).expect("setup");
        assert!(ok.behavior.converges(), "{}: {}", prep.file, ok.behavior);
        assert_eq!(ok.result(), src.return_code(), "{}", prep.file);
        // ...sz = measured usage still works (the 4 slack bytes are the
        // deepest frame's unused call allowance)...
        let tight = asm::measure_main(&prep.compiled.asm, bound - 4, FUEL).expect("setup");
        assert!(tight.behavior.converges(), "{}", prep.file);
        // ...and one word below, the machine traps.
        let bad = asm::measure_main(&prep.compiled.asm, bound - 8, FUEL).expect("setup");
        assert!(bad.overflowed(), "{}: no trap below the bound", prep.file);

        println!(
            "{:<28} {bound:>6} B {:>10} B {:>12} B (trapped)",
            prep.file,
            bound - 4,
            bound - 8
        );
    }
    println!("\nall programs: refinement holds at sz = bound; overflow is trapped below.");
}
