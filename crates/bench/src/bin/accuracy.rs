//! Regenerates the §6 accuracy claim: *"all manually and automatically
//! derived bounds over-approximate the actual stack-space consumption by
//! exactly 4 bytes"* — checked for every Table 1 `main` and every Table 2
//! function on a representative input.
//!
//! ```sh
//! cargo run -p bench --bin accuracy
//! ```

use bench::{measure, measure_main};
use stackbound::{benchsuite, clight, compiler, qhl};

fn main() {
    println!("§6 accuracy: verified bound vs. measured stack consumption\n");
    println!(
        "{:<34} {:>12} {:>12} {:>8}",
        "program / function", "bound", "measured", "slack"
    );
    println!("{}", "-".repeat(72));
    let mut all_exactly_four = true;

    for prep in bench::prepare_table1() {
        let bound = prep
            .analysis
            .concrete_bound("main", &prep.compiled.metric)
            .expect("bounded") as u32;
        let m = measure_main(&prep.compiled);
        assert!(m.behavior.converges(), "{}: {}", prep.file, m.behavior);
        let slack = bound - m.stack_usage;
        all_exactly_four &= slack == 4;
        println!(
            "{:<34} {bound:>6} bytes {:>6} bytes {slack:>7}B",
            format!("{} main", prep.file),
            m.stack_usage
        );
    }

    for case in benchsuite::recursive_cases() {
        let program = clight::frontend(case.source, &[]).expect("front end");
        case.check(&program).expect("derivation");
        let compiled = compiler::compile(&program).expect("compiles");
        let n = (case.sweep.0 + case.sweep.1) / 2;
        let args = (case.args_for)(n);
        let f = program.function(case.name).expect("fn");
        let env = qhl::Valuation::of_vars(
            f.params
                .iter()
                .map(|p| p.name.clone())
                .zip(args.iter().copied()),
        );
        let bound = case
            .spec()
            .pre
            .eval(&compiled.metric, &env)
            .expect("evaluates")
            .finite()
            .expect("finite") as u32
            + compiled.metric.call_cost(case.name);
        let uargs: Vec<u32> = args.iter().map(|a| *a as u32).collect();
        let m = measure(&compiled, case.name, &uargs);
        assert!(m.behavior.converges(), "{}: {}", case.file, m.behavior);
        let slack = bound - m.stack_usage;
        all_exactly_four &= slack == 4;
        println!(
            "{:<34} {bound:>6} bytes {:>6} bytes {slack:>7}B",
            format!("{} (n = {n})", case.name),
            m.stack_usage
        );
    }

    println!("{}", "-".repeat(72));
    if all_exactly_four {
        println!("every bound over-approximates by exactly 4 bytes, as in the paper.");
    } else {
        println!("WARNING: some slack differs from 4 bytes — investigate!");
    }
}
