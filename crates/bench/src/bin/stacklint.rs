//! CI gate: the certified bounds survive a binary-level cross-check.
//!
//! For every corpus program (Table 1 + extras + the Table 2 recursive
//! cases under their driver `main`s) on both backend targets, this
//! harness re-derives a worst-case stack bound directly from the emitted
//! assembly with the [`stacklint`] abstract interpreter and checks the
//! differential sandwich
//!
//! ```text
//! measured peak  <=  binary-level bound  <=  certified bound
//! ```
//!
//! for every non-recursive program, prints the per-function
//! measured/binary/certified/slack table, and requires the analyzer to
//! report a genuine call-graph cycle through each Table 2 headline
//! function. Any stack-discipline diagnostic on compiler-emitted code,
//! any sandwich violation, or any missing cycle fails the gate.
//!
//! ```sh
//! cargo run --release -p bench --bin stacklint
//! cargo run --release -p bench --bin stacklint -- --metrics
//! ```

use stackbound::{asm, compiler, stacklint};
use std::process::ExitCode;

fn main() -> ExitCode {
    let _metrics = bench::metrics_from_args();
    let mut failed = false;
    let mut programs = 0usize;
    let mut functions = 0usize;
    let mut cycles = 0usize;

    for target in [asm::Target::Sz32, asm::Target::Rv] {
        println!("stacklint: corpus on {target}");
        for case in bench::lint_corpus() {
            programs += 1;
            match case.recursive {
                None => {
                    let report = stackbound::Verifier::new()
                        .fuel(bench::FUEL)
                        .target(target)
                        .verify(&case.source)
                        .unwrap_or_else(|e| panic!("{}: {e}", case.file));
                    let lint = stacklint::analyze(&report.compiled.asm);
                    failed |= !check_sandwich(case.file, &report, &lint);
                    functions += lint.verdicts.len();
                }
                Some(name) => {
                    let program = stackbound::clight::frontend(&case.source, &[])
                        .unwrap_or_else(|e| panic!("{}: front end: {e}", case.file));
                    let compiled =
                        compiler::compile_with(&program, compiler::Options::for_target(target))
                            .unwrap_or_else(|e| panic!("{}: compiler: {e}", case.file));
                    let lint = stacklint::analyze(&compiled.asm);
                    for d in &lint.diagnostics {
                        eprintln!("{}: FAILED: {d}", case.file);
                        failed = true;
                    }
                    match lint.cycle(name) {
                        Some(cycle) => {
                            cycles += 1;
                            println!(
                                "  {:<28} recursive: {} -> {}",
                                case.file,
                                cycle.join(" -> "),
                                cycle[0]
                            );
                        }
                        None => {
                            eprintln!(
                                "{}: FAILED: no recursion reported through `{name}`",
                                case.file
                            );
                            failed = true;
                        }
                    }
                }
            }
        }
        println!();
    }

    if failed {
        eprintln!("stacklint: FAILED");
        ExitCode::FAILURE
    } else {
        println!(
            "stacklint: sandwich held on {programs} program passes \
             ({functions} function verdicts, {cycles} recursion verdicts)"
        );
        ExitCode::SUCCESS
    }
}

/// Prints the per-function table for one verified program and checks the
/// sandwich: zero diagnostics, `binary <= certified` for every bounded
/// function, and `measured <= binary` wherever a measurement exists.
fn check_sandwich(file: &str, report: &stackbound::Report, lint: &stacklint::LintReport) -> bool {
    let mut ok = true;
    for d in &lint.diagnostics {
        eprintln!("{file}: FAILED: {d}");
        ok = false;
    }
    println!("  {file}");
    println!(
        "    {:<20} {:>12} {:>12} {:>12} {:>12}",
        "function", "measured", "binary", "certified", "slack"
    );
    for (name, verdict) in &lint.verdicts {
        let stacklint::Verdict::Bounded(binary) = verdict else {
            eprintln!("{file}: FAILED: unexpected verdict for `{name}`: {verdict}");
            ok = false;
            continue;
        };
        let certified = report.bound(name);
        let measured = report.measured(name);
        if let Some(c) = certified {
            if *binary > c {
                eprintln!("{file}: FAILED: `{name}` binary bound {binary} > certified {c}");
                ok = false;
            }
        }
        if let Some(m) = measured {
            if m > *binary {
                eprintln!("{file}: FAILED: `{name}` measured peak {m} > binary bound {binary}");
                ok = false;
            }
        }
        let cell = |v: Option<u32>| match v {
            Some(b) => format!("{b} bytes"),
            None => "-".to_owned(),
        };
        println!(
            "    {name:<20} {:>12} {:>12} {:>12} {:>12}",
            cell(measured),
            format!("{binary} bytes"),
            cell(certified),
            cell(report.slack(name)),
        );
    }
    ok
}
