//! `suite_bench`: cold-vs-warm benchmark of the content-addressed
//! verification cache ([`stackbound::vcache`]) over the whole corpus —
//! the Table 1 suite, the extra benchmarks, and the Table 2 recursive
//! cases.
//!
//! The harness verifies every program end to end (analyze, re-check
//! derivations, compile, bound, measure) twice through one shared
//! [`vcache::VCache`] + [`asm::MeasureCache`] pair: the first pass is all
//! misses, the second all hits. It asserts the two passes produce
//! byte-identical reports, reports per-stage hit/miss counters, and
//! writes the machine-readable `BENCH_vcache.json` consumed by CI
//! (`ci/BENCH_vcache.json` is the checked-in baseline; `budget_gate`
//! enforces the warm-speedup floor declared in `ci/pass_budgets.txt`).
//!
//! ```sh
//! cargo run --release -p bench --bin suite_bench
//! cargo run --release -p bench --bin suite_bench -- --out my.json
//! ```

use stackbound::{asm, vcache};
use std::fmt::Write as _;
use std::sync::Arc;

/// One stage row of the report: hit/miss counters for the cold and warm
/// passes.
struct StageRow {
    stage: &'static str,
    cold: (u64, u64),
    warm: (u64, u64),
}

fn main() {
    let out_path = cli_args();
    let benchmarks: Vec<_> = stackbound::benchsuite::table1_benchmarks()
        .into_iter()
        .chain(stackbound::benchsuite::extra_benchmarks())
        .collect();
    let recursive = stackbound::benchsuite::recursive_cases();
    println!(
        "suite_bench: cold vs warm verification, {} programs + {} recursive cases\n",
        benchmarks.len(),
        recursive.len()
    );

    let cache = Arc::new(vcache::VCache::new());
    let measure_cache = Arc::new(asm::MeasureCache::new());

    // Cold pass: every artifact is derived from scratch and stored.
    let (mut cold_reports, mut cold_secs) =
        bench::verify_suite_cached(&benchmarks, &cache, &measure_cache);
    let (r, t) = bench::verify_recursive_cached(&recursive, &cache);
    cold_reports.extend(r);
    cold_secs += t;
    let cold_stats: Vec<(u64, u64)> = vcache::CacheStage::ALL
        .iter()
        .map(|&s| cache.stats(s))
        .collect();
    let cold_measure = measure_cache.stats();

    // Warm pass: identical inputs, so every stage resolves from cache.
    let (mut warm_reports, mut warm_secs) =
        bench::verify_suite_cached(&benchmarks, &cache, &measure_cache);
    let (r, t) = bench::verify_recursive_cached(&recursive, &cache);
    warm_reports.extend(r);
    warm_secs += t;

    assert_eq!(
        cold_reports, warm_reports,
        "warm reports diverged from cold reports"
    );
    println!("cold and warm reports are byte-identical\n");

    let rows: Vec<StageRow> = vcache::CacheStage::ALL
        .iter()
        .zip(&cold_stats)
        .map(|(&s, &(ch, cm))| {
            let (h, m) = cache.stats(s);
            StageRow {
                stage: s.name(),
                cold: (ch, cm),
                warm: (h - ch, m - cm),
            }
        })
        .chain(std::iter::once({
            let (h, m) = measure_cache.stats();
            StageRow {
                stage: "measure",
                cold: cold_measure,
                warm: (h - cold_measure.0, m - cold_measure.1),
            }
        }))
        .collect();

    println!(
        "{:<10} {:>10} {:>12} {:>10} {:>12}",
        "stage", "cold hits", "cold misses", "warm hits", "warm misses"
    );
    println!("{}", "-".repeat(58));
    for r in &rows {
        println!(
            "{:<10} {:>10} {:>12} {:>10} {:>12}",
            r.stage, r.cold.0, r.cold.1, r.warm.0, r.warm.1
        );
        assert_eq!(
            r.warm.1, 0,
            "{}: warm pass missed the cache on unchanged inputs",
            r.stage
        );
    }

    let speedup = cold_secs / warm_secs;
    println!(
        "\ncold {:.1} ms, warm {:.1} ms, speedup {speedup:.2}x",
        cold_secs * 1e3,
        warm_secs * 1e3
    );

    let json = render_json(
        benchmarks.len() + recursive.len(),
        cold_secs * 1e3,
        warm_secs * 1e3,
        speedup,
        &rows,
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("suite_bench: cannot write `{out_path}`: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");
}

/// Handles `--out FILE` (default `BENCH_vcache.json`).
fn cli_args() -> String {
    let mut out = "BENCH_vcache.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--out" {
            out = args.next().unwrap_or_else(|| {
                eprintln!("suite_bench: --out needs a path");
                std::process::exit(2);
            });
        }
    }
    out
}

/// Renders the machine-readable report consumed by CI (uploaded as the
/// `BENCH_vcache.json` artifact and checked in as `ci/BENCH_vcache.json`).
fn render_json(
    programs: usize,
    cold_ms: f64,
    warm_ms: f64,
    speedup: f64,
    rows: &[StageRow],
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"suite\": \"table1+extras+table2\",");
    let _ = writeln!(s, "  \"programs\": {programs},");
    let _ = writeln!(s, "  \"cold_ms\": {cold_ms:.1},");
    let _ = writeln!(s, "  \"warm_ms\": {warm_ms:.1},");
    let _ = writeln!(s, "  \"speedup\": {speedup:.2},");
    let _ = writeln!(s, "  \"identical\": true,");
    let _ = writeln!(s, "  \"stages\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"stage\": \"{}\", \"cold_hits\": {}, \"cold_misses\": {}, \
             \"warm_hits\": {}, \"warm_misses\": {}}}{comma}",
            r.stage, r.cold.0, r.cold.1, r.warm.0, r.warm.1
        );
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}

#[cfg(test)]
mod tests {
    use super::{render_json, StageRow};

    #[test]
    fn report_is_valid_json() {
        let rows = [
            StageRow {
                stage: "analyze",
                cold: (0, 10),
                warm: (10, 0),
            },
            StageRow {
                stage: "measure",
                cold: (0, 9),
                warm: (9, 0),
            },
        ];
        let text = render_json(12, 1234.5, 67.8, 18.21, &rows);
        let v = obs::json::parse(&text).expect("parses");
        assert_eq!(v.get("programs").and_then(|p| p.as_f64()), Some(12.0));
        assert_eq!(v.get("speedup").and_then(|p| p.as_f64()), Some(18.21));
        let stages = v.get("stages").and_then(|p| p.as_array()).expect("array");
        assert_eq!(stages.len(), 2);
        assert_eq!(
            stages[0].get("stage").and_then(|p| p.as_str()),
            Some("analyze")
        );
        assert_eq!(
            stages[1].get("warm_hits").and_then(|p| p.as_f64()),
            Some(9.0)
        );
    }
}
