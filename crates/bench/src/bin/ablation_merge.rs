//! Ablation: **stack merging**. Compares the stack consumption of the
//! per-frame-block Mach semantics (one memory block per activation, as in
//! all of CompCert's intermediate languages) with the merged single-block
//! `ASMsz` execution that the paper's assembly-generation pass produces.
//!
//! The peak bytes agree exactly — merging changes *where* frames live,
//! not how much space the execution needs — which is the invariant that
//! lets the Mach frame sizes serve as the cost metric (§3.2).
//!
//! ```sh
//! cargo run -p bench --bin ablation_merge
//! ```

use bench::{measure_main, FUEL};
use stackbound::compiler::mach;

fn main() {
    println!("Ablation: per-frame blocks (Mach) vs merged stack block (ASMsz)\n");
    println!(
        "{:<28} {:>18} {:>18} {:>8}",
        "program", "Mach frame peak", "ASMsz usage", "delta"
    );
    println!("{}", "-".repeat(78));
    for prep in bench::prepare_table1() {
        let (behavior, mach_peak) = mach::run_main_with_peak(&prep.compiled.mach, FUEL);
        assert!(behavior.converges(), "{}: {behavior}", prep.file);
        let m = measure_main(&prep.compiled);
        // Mach frames do not include the 4-byte return-address pushes the
        // merged machine performs at each call; at the peak there is one
        // push per active non-leaf frame plus the entry push — which is
        // exactly usage - frame bytes.
        let delta = i64::from(m.stack_usage) - mach_peak as i64;
        println!(
            "{:<28} {mach_peak:>12} bytes {:>12} bytes {delta:>+7}B",
            prep.file, m.stack_usage
        );
    }
    println!("\nthe delta is 4 bytes per active call edge at the peak: the return");
    println!("addresses that only exist once frames share one contiguous block.");
}
