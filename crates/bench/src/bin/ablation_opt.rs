//! Ablation: **optimizations on/off**. Quantitative CompCert supports the
//! trace-preserving optimization passes (§3.3); this harness shows they
//! never increase verified bounds or measured stack usage on the benchmark
//! suite, while the results stay identical.
//!
//! ```sh
//! cargo run -p bench --bin ablation_opt
//! ```

use bench::FUEL;
use stackbound::{analyzer, asm, compiler};

fn main() {
    println!("Ablation: constant propagation + DCE on vs off\n");
    println!(
        "{:<28} {:>14} {:>14} {:>12} {:>12}",
        "program", "bound (opt)", "bound (none)", "usage (opt)", "usage (none)"
    );
    println!("{}", "-".repeat(88));
    for b in stackbound::benchsuite::table1_benchmarks() {
        let program = b.program().expect("front end");
        let analysis = analyzer::analyze(&program).expect("analyzable");
        let opt = compiler::Pipeline::new(compiler::PipelineConfig::default())
            .run(&program)
            .expect("compiles");
        let raw = compiler::Pipeline::new(compiler::PipelineConfig::with_options(
            compiler::Options::no_opt(),
        ))
        .run(&program)
        .expect("compiles");

        let bound_opt = analysis.concrete_bound("main", &opt.metric).unwrap();
        let bound_raw = analysis.concrete_bound("main", &raw.metric).unwrap();
        let run_opt = asm::measure_main(&opt.asm, 1 << 22, FUEL).expect("setup");
        let run_raw = asm::measure_main(&raw.asm, 1 << 22, FUEL).expect("setup");
        assert_eq!(run_opt.result(), run_raw.result(), "{}", b.file);
        assert!(
            bound_opt <= bound_raw,
            "{}: optimization grew the bound",
            b.file
        );
        assert!(
            run_opt.stack_usage <= run_raw.stack_usage,
            "{}: optimization grew stack usage",
            b.file
        );
        println!(
            "{:<28} {bound_opt:>8.0} bytes {bound_raw:>8.0} bytes {:>6} bytes {:>6} bytes",
            b.file, run_opt.stack_usage, run_raw.stack_usage
        );
    }
    println!("\noptimizations shrink register pressure (fewer spill slots ⇒ smaller");
    println!("frames ⇒ smaller metric costs) and never change results.");
}
