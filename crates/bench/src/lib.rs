//! Shared helpers for the paper-reproduction harness binaries.
//!
//! Each binary regenerates one artifact of the paper's evaluation (§6):
//!
//! | binary | artifact |
//! |---|---|
//! | `table1` | Table 1 — automatically verified bounds |
//! | `table2` | Table 2 — manually verified symbolic bounds |
//! | `fig7` | Figure 7 — bound vs. measured usage sweeps |
//! | `accuracy` | §6 — every bound equals measured + 4 |
//! | `theorem1` | Theorem 1 — the exact overflow boundary |
//! | `ablation_merge` | stack merging on/off |
//! | `ablation_opt` | optimizations on/off |
//! | `ablation_metric` | `M = SF + 4` vs. the naive `M = SF` |
//! | `interp_bench` | decoded vs. reference interpreter throughput |
//! | `serve_bench` | `sbound serve` daemon load test ([`serveload`]) |
//!
//! Run them with `cargo run -p bench --bin <name>`. The suite-level
//! binaries accept `--parallel-measure` to fan preparation and machine
//! executions across threads with byte-identical output.

#![warn(missing_docs)]

pub mod serveload;

use stackbound::{analyzer, asm, clight, compiler, stacklint, vcache};
use std::sync::Arc;
use std::time::Instant;

/// Fuel for all harness executions.
pub const FUEL: u64 = 400_000_000;

/// A fully prepared Table 1 benchmark: program, analysis, compiled code.
pub struct Prepared {
    /// File name as in the paper.
    pub file: &'static str,
    /// Source line count.
    pub loc: usize,
    /// The functions Table 1 reports.
    pub functions: &'static [&'static str],
    /// The type-checked program.
    pub program: clight::Program,
    /// The analyzer output.
    pub analysis: analyzer::Analysis,
    /// The compiled program.
    pub compiled: compiler::Compiled,
}

/// Suite-level measurement options shared by the harness binaries.
///
/// Parallel mode is deterministic: work is fanned out with
/// [`stackbound::par_map`], which preserves input order, so every harness
/// prints byte-identical output with and without `--parallel-measure`.
#[derive(Debug, Clone, Copy, Default)]
pub struct SuiteOptions {
    /// Fan suite preparation and machine executions across threads.
    pub parallel_measure: bool,
}

/// Handles the harness binaries' shared suite flags:
///
/// * `--parallel-measure` — fan suite preparation and machine executions
///   across threads (output stays byte-identical).
pub fn suite_options_from_args() -> SuiteOptions {
    SuiteOptions {
        parallel_measure: std::env::args().skip(1).any(|a| a == "--parallel-measure"),
    }
}

/// Analyzes and compiles every Table 1 benchmark with the default
/// pipeline configuration, panicking with a clear message on any failure
/// (the test suite guards these paths; the harness just reports).
pub fn prepare_table1() -> Vec<Prepared> {
    prepare_table1_with(&compiler::PipelineConfig::default())
}

/// [`prepare_table1`] through an explicit [`compiler::PipelineConfig`]
/// (parallel backend, refinement checkpoints, per-pass budgets, …).
pub fn prepare_table1_with(config: &compiler::PipelineConfig) -> Vec<Prepared> {
    prepare_table1_with_opts(config, &SuiteOptions::default())
}

/// [`prepare_table1_with`], optionally fanning the per-benchmark
/// front-end + analysis + compilation across threads
/// ([`SuiteOptions::parallel_measure`]). The returned vector is identical
/// either way — [`stackbound::par_map`] preserves benchmark order.
pub fn prepare_table1_with_opts(
    config: &compiler::PipelineConfig,
    opts: &SuiteOptions,
) -> Vec<Prepared> {
    let benchmarks = stackbound::benchsuite::table1_benchmarks();
    let prepare = |b: &stackbound::benchsuite::Benchmark| {
        let pipeline = compiler::Pipeline::new(config.clone());
        let program = b
            .program()
            .unwrap_or_else(|e| panic!("{}: front end: {e}", b.file));
        let analysis =
            analyzer::analyze(&program).unwrap_or_else(|e| panic!("{}: analyzer: {e}", b.file));
        analysis
            .check(&program)
            .unwrap_or_else(|e| panic!("{}: derivation: {e}", b.file));
        let compiled = pipeline
            .run(&program)
            .unwrap_or_else(|e| panic!("{}: compiler: {e}", b.file));
        Prepared {
            file: b.file,
            loc: b.loc(),
            functions: b.table1_functions,
            program,
            analysis,
            compiled,
        }
    };
    if opts.parallel_measure {
        stackbound::par_map(&benchmarks, prepare)
    } else {
        benchmarks.iter().map(prepare).collect()
    }
}

/// Measures the peak stack usage of every benchmark's `main`, in suite
/// order, optionally fanning the machine runs across threads. Results are
/// identical either way.
pub fn measure_mains(preps: &[Prepared], opts: &SuiteOptions) -> Vec<asm::Measurement> {
    let run = |p: &Prepared| {
        let _s = obs::span_dyn(|| format!("measure/fn/{}:main", p.file));
        measure_main(&p.compiled)
    };
    if opts.parallel_measure {
        stackbound::par_map(preps, run)
    } else {
        preps.iter().map(run).collect()
    }
}

/// Measures `fname` on each argument vector in turn (a Figure 7 sweep),
/// optionally fanning the runs across threads. Results are in input
/// order and identical either way.
pub fn measure_sweep(
    compiled: &compiler::Compiled,
    fname: &str,
    argsets: &[Vec<u32>],
    opts: &SuiteOptions,
) -> Vec<asm::Measurement> {
    let run = |args: &Vec<u32>| {
        let _s = obs::span_dyn(|| format!("measure/fn/{fname}"));
        measure(compiled, fname, args)
    };
    if opts.parallel_measure {
        stackbound::par_map(argsets, run)
    } else {
        argsets.iter().map(run).collect()
    }
}

/// Handles the harness binaries' shared pipeline flags:
///
/// * `--parallel` — fan per-function compiler passes across threads;
/// * `--check-refinement` — run every pass's refinement checkpoint.
pub fn pipeline_config_from_args() -> compiler::PipelineConfig {
    let mut config = compiler::PipelineConfig::default();
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--parallel" => config.parallel = true,
            "--check-refinement" => config.check_refinement = true,
            _ => {}
        }
    }
    config
}

/// Runs the full end-to-end [`stackbound::Verifier`] (analysis,
/// derivation re-check, compilation, bounds, measurement) over every
/// benchmark, routing all stages through the shared content-addressed
/// caches. Returns the rendered per-program reports in suite order plus
/// the elapsed wall-clock seconds.
///
/// Calling this twice with the same caches gives a cold and a warm pass;
/// the rendered reports must be byte-identical (`suite_bench` and the
/// `vcache` budget-gate floor both assert this).
pub fn verify_suite_cached(
    benchmarks: &[stackbound::benchsuite::Benchmark],
    cache: &Arc<vcache::VCache>,
    measure_cache: &Arc<asm::MeasureCache>,
) -> (Vec<String>, f64) {
    verify_suite_cached_on(asm::Target::Sz32, benchmarks, cache, measure_cache)
}

/// [`verify_suite_cached`] against an explicit backend [`asm::Target`].
/// The cache keys cover the target, so sz32 and rv passes through the
/// same cache never reuse each other's artifacts.
pub fn verify_suite_cached_on(
    target: asm::Target,
    benchmarks: &[stackbound::benchsuite::Benchmark],
    cache: &Arc<vcache::VCache>,
    measure_cache: &Arc<asm::MeasureCache>,
) -> (Vec<String>, f64) {
    let verifier = stackbound::Verifier::new()
        .fuel(FUEL)
        .target(target)
        .vcache(cache.clone())
        .measure_cache(measure_cache.clone());
    let started = Instant::now();
    let reports = benchmarks
        .iter()
        .map(|b| {
            let report = verifier
                .verify(b.source)
                .unwrap_or_else(|e| panic!("{}: {e}", b.file));
            format!("{}\n{report}", b.file)
        })
        .collect();
    (reports, started.elapsed().as_secs_f64())
}

/// Verifies the Table 2 recursive cases through the cache. The automatic
/// analyzer rejects recursion, so each case runs its hand-written
/// derivations through `qhl::Checker` — by far the most expensive step of
/// the corpus — with the verdict memoized under a key that covers both
/// the program content and the proof text, and the compile stage routed
/// through [`vcache::compile`]. Returns the rendered per-case report
/// lines in suite order plus the elapsed wall-clock seconds.
pub fn verify_recursive_cached(
    cases: &[stackbound::benchsuite::RecursiveCase],
    cache: &Arc<vcache::VCache>,
) -> (Vec<String>, f64) {
    verify_recursive_cached_on(asm::Target::Sz32, cases, cache)
}

/// [`verify_recursive_cached`] against an explicit backend
/// [`asm::Target`]. The proof *check* is metric-parametric (so its
/// verdict key already distinguishes targets through the content keys),
/// while the reported `M(f)` comes from the target's compiled metric.
pub fn verify_recursive_cached_on(
    target: asm::Target,
    cases: &[stackbound::benchsuite::RecursiveCase],
    cache: &Arc<vcache::VCache>,
) -> (Vec<String>, f64) {
    let started = Instant::now();
    let reports = cases
        .iter()
        .map(|case| {
            stackbound::table2::verify_case_cached(case, target, cache)
                .unwrap_or_else(|e| panic!("{}: {e}", case.file))
        })
        .collect();
    (reports, started.elapsed().as_secs_f64())
}

/// One corpus program for the binary-level differential gate: a named C
/// source plus, for the Table 2 cases, the headline recursive function
/// the binary analyzer must report a call-graph cycle through.
pub struct LintCase {
    /// File name as in the paper.
    pub file: &'static str,
    /// Complete C source (recursive cases get the driver `main`
    /// appended by [`recursive_driver`]).
    pub source: String,
    /// The headline recursive function, on Table 2 cases.
    pub recursive: Option<&'static str>,
}

/// Wraps a Table 2 recursive case in the `int main()` driver the
/// differential suite uses, so the whole-program pipeline (and the
/// binary analyzer's call graph) sees the recursion from `main`.
pub fn recursive_driver(case: &stackbound::benchsuite::RecursiveCase) -> String {
    let n = case.sweep.0.max(4);
    let args: Vec<String> = (case.args_for)(n).iter().map(|a| a.to_string()).collect();
    let (ret, use_r) = if case.name == "qsort" {
        ("", "0")
    } else {
        ("u32 r; r = ", "r & 0xff")
    };
    format!(
        "{}\nint main() {{ {ret}{}({}); return {use_r}; }}",
        case.source,
        case.name,
        args.join(", ")
    )
}

/// The full corpus the binary-level differential gate runs on: every
/// Table 1 benchmark, every extra, and every Table 2 recursive case
/// wrapped in its driver `main`.
pub fn lint_corpus() -> Vec<LintCase> {
    let mut out: Vec<LintCase> = stackbound::benchsuite::table1_benchmarks()
        .into_iter()
        .chain(stackbound::benchsuite::extra_benchmarks())
        .map(|b| LintCase {
            file: b.file,
            source: b.source.to_owned(),
            recursive: None,
        })
        .collect();
    out.extend(
        stackbound::benchsuite::recursive_cases()
            .iter()
            .map(|case| LintCase {
                file: case.file,
                source: recursive_driver(case),
                recursive: Some(case.name),
            }),
    );
    out
}

/// Compiles every [`lint_corpus`] program for `target` and runs the
/// binary-level [`stacklint`] analyzer over each, panicking on any
/// stack-discipline diagnostic (compiler-emitted code must be clean).
/// Returns the per-program lint reports in suite order plus the seconds
/// spent inside the analyzer alone — compilation is excluded, so the
/// `stacklint` budget ceiling gates the analyzer, not the compiler.
pub fn lint_suite_on(target: asm::Target) -> (Vec<(&'static str, stacklint::LintReport)>, f64) {
    let mut reports = Vec::new();
    let mut secs = 0.0;
    for case in lint_corpus() {
        let program = clight::frontend(&case.source, &[])
            .unwrap_or_else(|e| panic!("{}: front end: {e}", case.file));
        let compiled = compiler::compile_with(&program, compiler::Options::for_target(target))
            .unwrap_or_else(|e| panic!("{}: compiler: {e}", case.file));
        let started = Instant::now();
        let lint = stacklint::analyze(&compiled.asm);
        secs += started.elapsed().as_secs_f64();
        assert!(
            lint.is_clean(),
            "{} [{target}]: compiler-emitted code drew diagnostics: {:?}",
            case.file,
            lint.diagnostics
        );
        reports.push((case.file, lint));
    }
    (reports, secs)
}

/// Measures the peak stack usage of `main` with a generous stack.
pub fn measure_main(compiled: &compiler::Compiled) -> asm::Measurement {
    asm::measure_main(&compiled.asm, 1 << 22, FUEL).expect("machine setup")
}

/// Measures `fname(args)` with a generous stack.
pub fn measure(compiled: &compiler::Compiled, fname: &str, args: &[u32]) -> asm::Measurement {
    asm::measure_function(&compiled.asm, fname, args, 1 << 22, FUEL).expect("machine setup")
}

/// Handles the harness binaries' shared observability flags:
///
/// * `--metrics` — print the recorded span tree, counters, and the
///   per-function hotspots table on exit;
/// * `--metrics-json <path>` — write the machine-readable JSON-lines
///   report to `path` on exit;
/// * `--trace-chrome <path>` — write a Chrome trace-event JSON timeline
///   (one track per thread) to `path` on exit;
/// * `--trace-folded <path>` — write folded flamegraph stacks to `path`
///   on exit.
///
/// When any flag is present the global recorder is installed for the
/// binary's lifetime; keep the returned guard alive until the end of
/// `main` (it emits the reports when dropped).
pub fn metrics_from_args() -> MetricsGuard {
    let mut print = false;
    let mut json = None;
    let mut chrome = None;
    let mut folded = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--metrics" => print = true,
            "--metrics-json" => json = args.next(),
            "--trace-chrome" => chrome = args.next(),
            "--trace-folded" => folded = args.next(),
            _ => {}
        }
    }
    let enable = print || json.is_some() || chrome.is_some() || folded.is_some();
    MetricsGuard {
        session: enable.then(obs::install),
        print,
        json,
        chrome,
        folded,
    }
}

/// Guard returned by [`metrics_from_args`]; reports on drop.
pub struct MetricsGuard {
    session: Option<obs::Session>,
    print: bool,
    json: Option<String>,
    chrome: Option<String>,
    folded: Option<String>,
}

impl Drop for MetricsGuard {
    fn drop(&mut self) {
        if self.session.is_none() {
            return;
        }
        let report = obs::report().unwrap_or_default();
        let exports = [
            (
                &self.json,
                obs::Report::to_json_lines as fn(&obs::Report) -> String,
            ),
            (&self.chrome, obs::Report::to_chrome_trace),
            (&self.folded, obs::Report::to_folded_stacks),
        ];
        for (path, export) in exports {
            if let Some(path) = path {
                if let Err(e) = std::fs::write(path, export(&report)) {
                    eprintln!("cannot write metrics to `{path}`: {e}");
                }
            }
        }
        if self.print {
            println!("\n{}", report.render_tree());
            let hotspots = report.render_hotspots();
            if !hotspots.is_empty() {
                println!("{hotspots}");
            }
        }
    }
}
