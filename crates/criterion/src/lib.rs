//! A vendored, std-only stand-in for the [`criterion`] benchmark crate.
//!
//! The workspace builds offline, so the real `criterion` cannot be
//! fetched. This shim supports the subset its benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], [`black_box`], and the `criterion_group!` /
//! `criterion_main!` macros — with a simple median-of-samples timer and
//! plain-text reporting.
//!
//! Timing model: after a short calibration, each benchmark runs
//! [`Criterion::samples`] batches sized to roughly
//! [`Criterion::target_batch`] and reports the median, minimum, and
//! maximum per-iteration time. Set `CRITERION_SHIM_FAST=1` to cut both
//! for quick smoke runs.
//!
//! [`criterion`]: https://docs.rs/criterion

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver.
pub struct Criterion {
    /// Number of timed batches per benchmark.
    pub samples: usize,
    /// Wall-clock target per batch.
    pub target_batch: Duration,
    results: Vec<BenchResult>,
}

/// One benchmark's timing summary, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark id (`group/name` when inside a group).
    pub name: String,
    /// Median ns/iter across batches.
    pub median_ns: f64,
    /// Fastest batch, ns/iter.
    pub min_ns: f64,
    /// Slowest batch, ns/iter.
    pub max_ns: f64,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let fast = std::env::var("CRITERION_SHIM_FAST").is_ok_and(|v| v != "0");
        Criterion {
            samples: if fast { 3 } else { 7 },
            target_batch: Duration::from_millis(if fast { 20 } else { 120 }),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Runs one benchmark and prints its summary line.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };

        // Calibrate: grow the batch until it costs ~1/10 of the target.
        loop {
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            if bencher.elapsed * 10 >= self.target_batch || bencher.iters >= 1 << 30 {
                break;
            }
            let grow = if bencher.elapsed.is_zero() {
                16
            } else {
                let need = self.target_batch.as_nanos() / 10 / bencher.elapsed.as_nanos().max(1);
                (need as u64).clamp(2, 16)
            };
            bencher.iters = bencher.iters.saturating_mul(grow);
        }
        let per_batch = (self.target_batch.as_nanos() / bencher.elapsed.as_nanos().max(1)) as u64;
        bencher.iters = bencher.iters.saturating_mul(per_batch.clamp(1, 1 << 20));

        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                bencher.elapsed = Duration::ZERO;
                f(&mut bencher);
                bencher.elapsed.as_nanos() as f64 / bencher.iters as f64
            })
            .collect();
        per_iter.sort_by(f64::total_cmp);
        let result = BenchResult {
            name: name.clone(),
            median_ns: per_iter[per_iter.len() / 2],
            min_ns: per_iter[0],
            max_ns: per_iter[per_iter.len() - 1],
        };
        println!(
            "{:<44} time: [{} {} {}]  ({} iters/sample)",
            result.name,
            fmt_ns(result.min_ns),
            fmt_ns(result.median_ns),
            fmt_ns(result.max_ns),
            bencher.iters,
        );
        self.results.push(result);
        self
    }

    /// Opens a named group; benchmark ids become `group/name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            prefix: name.into(),
        }
    }

    /// All results recorded so far (used by comparison benches).
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

/// A group of related benchmarks sharing an id prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.prefix, name.into());
        self.criterion.bench_function(id, f);
        self
    }

    /// Ends the group (a no-op, for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; times the inner loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` executions of `f`, keeping each result alive via
    /// [`black_box`].
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_a_result() {
        std::env::set_var("CRITERION_SHIM_FAST", "1");
        let mut c = Criterion {
            samples: 3,
            target_batch: Duration::from_micros(200),
            results: Vec::new(),
        };
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        assert_eq!(c.results().len(), 1);
        assert!(c.results()[0].median_ns >= 0.0);
    }
}
