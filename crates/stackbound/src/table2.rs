//! Cached verification of the Table 2 recursive cases.
//!
//! The automatic analyzer rejects recursion, so each Table 2 row carries
//! hand-written quantitative-logic derivations
//! ([`benchsuite::RecursiveCase`]). Re-checking those derivations is by
//! far the most expensive step of the corpus, and this module routes it
//! through the shared content-addressed [`vcache::VCache`]: the verdict
//! key covers the program content, the compiler options (hence the
//! backend target), and a digest of the whole proof bundle, so editing
//! either the program or any proof invalidates the verdict while
//! everything else stays warm.
//!
//! Both the one-shot bench harness (`bench::verify_recursive_cached`)
//! and the `sbound serve` daemon's `table2` verb call
//! [`verify_case_cached`], so a served rendering is byte-identical to a
//! one-shot run by construction.

/// Verifies one Table 2 case for `target` through `cache`: re-checks
/// every hand-written derivation (memoized under a key covering program,
/// options, and proof bundle) and compiles the program to report the
/// concrete `M(f)` of the headline function. Returns the rendered
/// one-line report.
///
/// # Errors
///
/// Front-end, derivation-check, and compiler failures, rendered with a
/// stage prefix. Failures are never cached.
pub fn verify_case_cached(
    case: &benchsuite::RecursiveCase,
    target: asm::Target,
    cache: &vcache::VCache,
) -> Result<String, String> {
    let config = compiler::PipelineConfig::with_options(compiler::Options::for_target(target));
    let program = clight::frontend(case.source, &[]).map_err(|e| format!("front end: {e}"))?;
    let keys = vcache::keys(&program, &config.options);
    let Some(&case_key) = keys.get(case.name) else {
        return Err(format!(
            "function `{}` not defined by the case source",
            case.name
        ));
    };
    // One digest covers the whole proof bundle: each verdict depends on
    // every spec in the case's context, so editing any proof must
    // invalidate the case. The `Debug` rendering of the `Vec` is
    // deterministic (ordered fields, ordered elements), unlike hashing
    // the `Context`'s `HashMap` directly.
    let proofs = vcache::digest_str("table2-proofs-v1", &format!("{:?}", case.proofs));
    let verdict = vcache::combine("table2-check-v1", &[case_key, proofs]);
    vcache::check_cached(cache, verdict, || case.check(&program))
        .map_err(|e| format!("derivation: {e}"))?;
    let compiled =
        vcache::compile(cache, &program, &config, &keys).map_err(|e| format!("compiler: {e}"))?;
    Ok(format!(
        "{}: {} proofs checked, bound {}, M({}) = {}",
        case.file,
        case.proofs.len(),
        case.bound_display,
        case.name,
        compiled.metric.call_cost(case.name),
    ))
}

#[cfg(test)]
mod tests {
    use super::verify_case_cached;

    #[test]
    fn warm_rendering_matches_cold_and_hits_the_cache() {
        let case = benchsuite::recursive_case("fib").expect("fib is a Table 2 row");
        let cache = vcache::VCache::new();
        let cold = verify_case_cached(&case, asm::Target::Sz32, &cache).unwrap();
        assert!(cold.contains("proofs checked"), "{cold}");
        let (h0, _) = cache.stats(vcache::CacheStage::Check);
        let warm = verify_case_cached(&case, asm::Target::Sz32, &cache).unwrap();
        assert_eq!(cold, warm);
        let (h1, _) = cache.stats(vcache::CacheStage::Check);
        assert!(h1 > h0, "warm pass must resolve the verdict from cache");
    }
}
