//! The bounded job queue behind the verification daemon's worker pool.
//!
//! Connection readers push verification jobs in, worker threads pop them
//! out. The queue enforces **back-pressure**: [`JobQueue::submit`] blocks
//! while the queue is at capacity, so a client that pipelines faster than
//! the workers verify is throttled at its socket (TCP flow control does
//! the rest) instead of ballooning server memory. A **drain** turns the
//! queue off gracefully: no new submissions are accepted, every queued
//! and in-flight job still completes, and the drainer is woken only when
//! the last response has been handed back.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// What [`JobQueue::submit`] did with the job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Submit {
    /// The job was enqueued (possibly after blocking on back-pressure).
    Queued,
    /// The queue is draining; the job was rejected without side effects.
    Draining,
}

struct Inner<T> {
    jobs: VecDeque<T>,
    draining: bool,
    in_flight: usize,
}

/// A blocking, bounded, drainable MPMC queue.
pub struct JobQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    idle: Condvar,
    cap: usize,
}

impl<T> JobQueue<T> {
    /// An empty queue holding at most `cap` pending jobs (minimum 1).
    pub fn new(cap: usize) -> JobQueue<T> {
        JobQueue {
            inner: Mutex::new(Inner {
                jobs: VecDeque::new(),
                draining: false,
                in_flight: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            idle: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Enqueues a job, blocking while the queue is at capacity
    /// (back-pressure). Returns the job untouched when the queue is
    /// draining, so the caller can reply with an overload error.
    pub fn submit(&self, job: T) -> Result<Submit, T> {
        let mut inner = self.inner.lock().unwrap();
        while inner.jobs.len() >= self.cap && !inner.draining {
            inner = self.not_full.wait(inner).unwrap();
        }
        if inner.draining {
            return Err(job);
        }
        inner.jobs.push_back(job);
        drop(inner);
        self.not_empty.notify_one();
        Ok(Submit::Queued)
    }

    /// Pops the next job in FIFO order, blocking while the queue is
    /// empty. Returns `None` once the queue is draining *and* empty — the
    /// worker's signal to exit. A returned job counts as in-flight until
    /// the worker calls [`JobQueue::done`].
    pub fn next(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                inner.in_flight += 1;
                drop(inner);
                self.not_full.notify_one();
                return Some(job);
            }
            if inner.draining {
                return None;
            }
            inner = self.not_empty.wait(inner).unwrap();
        }
    }

    /// Marks one in-flight job as finished (response written).
    pub fn done(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.in_flight -= 1;
        if inner.in_flight == 0 && inner.jobs.is_empty() {
            drop(inner);
            self.idle.notify_all();
        }
    }

    /// Switches the queue into draining mode — subsequent [`submit`]s
    /// are rejected, blocked submitters wake with a rejection — and
    /// blocks until every queued and in-flight job has completed.
    /// Idempotent: concurrent drainers all wake once the queue is idle.
    ///
    /// [`submit`]: JobQueue::submit
    pub fn drain(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.draining = true;
        // Wake blocked submitters (to reject) and idle workers (so they
        // observe draining+empty and exit after the backlog is gone).
        self.not_full.notify_all();
        self.not_empty.notify_all();
        while !(inner.jobs.is_empty() && inner.in_flight == 0) {
            inner = self.idle.wait(inner).unwrap();
        }
    }

    /// Number of jobs waiting (excludes in-flight jobs).
    pub fn depth(&self) -> usize {
        self.inner.lock().unwrap().jobs.len()
    }

    /// Number of jobs popped but not yet [`done`](JobQueue::done).
    pub fn in_flight(&self) -> usize {
        self.inner.lock().unwrap().in_flight
    }

    /// Whether [`drain`](JobQueue::drain) has been called.
    pub fn is_draining(&self) -> bool {
        self.inner.lock().unwrap().draining
    }
}

#[cfg(test)]
mod tests {
    use super::{JobQueue, Submit};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn fifo_order_and_depth() {
        let q = JobQueue::new(8);
        assert_eq!(q.submit(1), Ok(Submit::Queued));
        assert_eq!(q.submit(2), Ok(Submit::Queued));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.next(), Some(1));
        assert_eq!(q.in_flight(), 1);
        q.done();
        assert_eq!(q.next(), Some(2));
        q.done();
        assert_eq!(q.depth(), 0);
        assert_eq!(q.in_flight(), 0);
    }

    #[test]
    fn submit_blocks_at_capacity_until_a_worker_pops() {
        let q = Arc::new(JobQueue::new(1));
        q.submit(1u32).unwrap();
        let submitted = Arc::new(AtomicUsize::new(0));
        let handle = {
            let (q, submitted) = (q.clone(), submitted.clone());
            std::thread::spawn(move || {
                q.submit(2).unwrap(); // must block: queue is full
                submitted.store(1, Ordering::SeqCst);
            })
        };
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(
            submitted.load(Ordering::SeqCst),
            0,
            "submit returned before capacity freed"
        );
        assert_eq!(q.next(), Some(1));
        q.done();
        handle.join().unwrap();
        assert_eq!(submitted.load(Ordering::SeqCst), 1);
        assert_eq!(q.next(), Some(2));
        q.done();
    }

    #[test]
    fn drain_rejects_new_jobs_and_waits_for_in_flight() {
        let q = Arc::new(JobQueue::new(4));
        q.submit(1u32).unwrap();
        let worked = Arc::new(AtomicUsize::new(0));
        let worker = {
            let (q, worked) = (q.clone(), worked.clone());
            std::thread::spawn(move || {
                while let Some(_job) = q.next() {
                    std::thread::sleep(Duration::from_millis(30));
                    worked.fetch_add(1, Ordering::SeqCst);
                    q.done();
                }
            })
        };
        q.drain(); // must block until the backlog is worked off
        assert_eq!(worked.load(Ordering::SeqCst), 1);
        assert!(q.is_draining());
        assert_eq!(q.submit(2), Err(2), "draining queue accepted a job");
        worker.join().unwrap(); // worker exits on draining + empty
    }

    #[test]
    fn blocked_submitter_is_rejected_by_drain() {
        let q = Arc::new(JobQueue::new(1));
        q.submit(1u32).unwrap();
        let submitter = {
            let q = q.clone();
            std::thread::spawn(move || q.submit(2)) // blocks: queue is full
        };
        std::thread::sleep(Duration::from_millis(30));
        let drainer = {
            let q = q.clone();
            std::thread::spawn(move || q.drain())
        };
        // Only pop the backlog *after* draining is visible, so the freed
        // slot can never be won by the blocked submitter.
        while !q.is_draining() {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(submitter.join().unwrap(), Err(2));
        assert_eq!(q.next(), Some(1));
        q.done();
        drainer.join().unwrap();
    }
}
