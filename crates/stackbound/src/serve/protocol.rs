//! The daemon's line-delimited JSON wire protocol.
//!
//! One request object per line in, one response object per line out.
//! Responses to pipelined `verify` requests may arrive out of request
//! order (the worker pool runs them in parallel). The `op` field selects
//! the verb; every request carries a client-chosen numeric `id` that is
//! echoed in the response so clients can match them up:
//!
//! ```text
//! → {"op":"verify","id":1,"source":"int main() { return 0; }",
//!    "target":"rv","params":{"ALEN":10},"measure":true,"timeout_ms":5000}
//! ← {"id":1,"ok":true,"target":"rv","functions":{"main":{"bound":8,
//!    "measured":8,"slack":0}},"report":"function ...","cache":{...},
//!    "queue_us":12,"work_us":3456}
//!
//! → {"op":"table2","id":5,"case":"fib","target":"sz32"}
//! ← {"id":5,"ok":true,"case":"fib","target":"sz32",
//!    "report":"fib.c: 1 proofs checked, bound ...","cache":{...},
//!    "queue_us":9,"work_us":187000}
//!
//! → {"op":"ping","id":2}
//! ← {"id":2,"ok":true,"pong":true}
//!
//! → {"op":"metrics","id":3}
//! ← {"id":3,"ok":true,"uptime_ms":...,"requests":{...},"cache":{...},
//!    "obs":{...}}
//!
//! → {"op":"shutdown","id":4}
//! ← {"id":4,"ok":true,"draining":true}      (written after the drain)
//! ```
//!
//! Failures — malformed JSON, unknown ops, verification errors, timeouts,
//! an overloaded (draining) queue — all use one shape:
//!
//! ```text
//! ← {"id":1,"ok":false,"error":"analyzer: recursion on f"}
//! ```
//!
//! The `id` in an error response is best-effort: if the request line was
//! parseable enough to carry one it is echoed, otherwise it is `0`.
//!
//! `verify` defaults: `target` `"sz32"`, `params` `{}`, `measure` `true`,
//! `timeout_ms` the server's default. The `report` field of a successful
//! response is exactly the [`Report`] table a one-shot
//! `sbound` run prints for the same source and target, byte for byte —
//! the serve equivalence tests hang off this field.
//!
//! `table2` re-verifies one of the daemon's built-in Table 2 recursive
//! cases (the hand-written derivations shipped with the crate) by
//! headline name, through the same shared cache; its `report` is the
//! one-shot [`table2`](crate::table2) rendering, byte for byte. It takes
//! the same `target`/`timeout_ms` options as `verify`.

use crate::Report;
use obs::json::Value;
use std::fmt::Write as _;

/// A fully parsed `verify` request.
#[derive(Debug, Clone)]
pub struct VerifyRequest {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// The C source text to verify.
    pub source: String,
    /// Backend target to certify for (`"sz32"` or `"rv"`).
    pub target: asm::Target,
    /// Compile-time parameters (the paper's `ALEN` section hypotheses),
    /// in sorted name order.
    pub params: Vec<(String, u32)>,
    /// Whether to run the measurement stage (default `true`).
    pub measure: bool,
    /// Per-request deadline override in milliseconds; `None` uses the
    /// server default.
    pub timeout_ms: Option<u64>,
}

/// A fully parsed `table2` request: re-verify one of the built-in
/// Table 2 recursive cases against the shared cache.
#[derive(Debug, Clone)]
pub struct Table2Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// Headline name of the case (`"fib"`, `"qsort"`, …).
    pub case: String,
    /// Backend target to certify for (`"sz32"` or `"rv"`).
    pub target: asm::Target,
    /// Per-request deadline override in milliseconds; `None` uses the
    /// server default.
    pub timeout_ms: Option<u64>,
}

/// One parsed protocol request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Verify a program and reply with bounds (`op: "verify"`).
    Verify(Box<VerifyRequest>),
    /// Re-verify a built-in Table 2 recursive case (`op: "table2"`).
    Table2(Table2Request),
    /// Report live server/cache/obs statistics (`op: "metrics"`).
    Metrics {
        /// Correlation id.
        id: u64,
    },
    /// Liveness probe (`op: "ping"`).
    Ping {
        /// Correlation id.
        id: u64,
    },
    /// Drain the queue and stop the server (`op: "shutdown"`).
    Shutdown {
        /// Correlation id.
        id: u64,
    },
}

fn field<'v>(v: &'v Value, key: &str) -> Option<&'v Value> {
    v.get(key)
}

fn u64_field(v: &Value, key: &str) -> Option<u64> {
    let n = field(v, key)?.as_f64()?;
    if n.fract() == 0.0 && (0.0..=u64::MAX as f64).contains(&n) {
        Some(n as u64)
    } else {
        None
    }
}

/// Parses one request line.
///
/// # Errors
///
/// Returns `(id, message)` for malformed lines — the best-effort `id` (0
/// when unrecoverable) lets the caller still address the error response.
pub fn parse_request(line: &str) -> Result<Request, (u64, String)> {
    let v = obs::json::parse(line).map_err(|e| (0, format!("malformed request: {e}")))?;
    let id = u64_field(&v, "id").unwrap_or(0);
    let op = field(&v, "op")
        .and_then(Value::as_str)
        .ok_or_else(|| (id, "missing string field `op`".to_owned()))?;
    match op {
        "ping" => Ok(Request::Ping { id }),
        "metrics" => Ok(Request::Metrics { id }),
        "shutdown" => Ok(Request::Shutdown { id }),
        "verify" => {
            let source = field(&v, "source")
                .and_then(Value::as_str)
                .ok_or_else(|| (id, "verify: missing string field `source`".to_owned()))?
                .to_owned();
            let target = target_field(&v, id, "verify")?;
            let mut params = Vec::new();
            if let Some(p) = field(&v, "params") {
                let Value::Object(map) = p else {
                    return Err((id, "verify: `params` must be an object".to_owned()));
                };
                // BTreeMap iteration gives a deterministic sorted order.
                for (name, val) in map {
                    let n = val
                        .as_f64()
                        .filter(|n| n.fract() == 0.0 && (0.0..=f64::from(u32::MAX)).contains(n));
                    match n {
                        Some(n) => params.push((name.clone(), n as u32)),
                        None => {
                            return Err((id, format!("verify: param `{name}` must be a u32")));
                        }
                    }
                }
            }
            let measure = match field(&v, "measure") {
                None => true,
                Some(Value::Bool(b)) => *b,
                Some(_) => {
                    return Err((id, "verify: `measure` must be a boolean".to_owned()));
                }
            };
            let timeout_ms = timeout_field(&v, id, "verify")?;
            Ok(Request::Verify(Box::new(VerifyRequest {
                id,
                source,
                target,
                params,
                measure,
                timeout_ms,
            })))
        }
        "table2" => {
            let case = field(&v, "case")
                .and_then(Value::as_str)
                .ok_or_else(|| (id, "table2: missing string field `case`".to_owned()))?
                .to_owned();
            let target = target_field(&v, id, "table2")?;
            let timeout_ms = timeout_field(&v, id, "table2")?;
            Ok(Request::Table2(Table2Request {
                id,
                case,
                target,
                timeout_ms,
            }))
        }
        other => Err((id, format!("unknown op `{other}`"))),
    }
}

fn target_field(v: &Value, id: u64, op: &str) -> Result<asm::Target, (u64, String)> {
    match field(v, "target") {
        None => Ok(asm::Target::default()),
        Some(t) => t
            .as_str()
            .ok_or_else(|| (id, format!("{op}: `target` must be a string")))?
            .parse()
            .map_err(|e| (id, format!("{op}: {e}"))),
    }
}

fn timeout_field(v: &Value, id: u64, op: &str) -> Result<Option<u64>, (u64, String)> {
    match field(v, "timeout_ms") {
        None => Ok(None),
        Some(_) => u64_field(v, "timeout_ms").map(Some).ok_or_else(|| {
            (
                id,
                format!("{op}: `timeout_ms` must be a non-negative integer"),
            )
        }),
    }
}

/// JSON-escapes a string (quotes included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The uniform failure response (`ok: false`).
pub fn error_response(id: u64, message: &str) -> String {
    format!("{{\"id\":{id},\"ok\":false,\"error\":{}}}", escape(message))
}

/// The `ping` → pong response.
pub fn pong_response(id: u64) -> String {
    format!("{{\"id\":{id},\"ok\":true,\"pong\":true}}")
}

/// The `shutdown` acknowledgement, written once the drain has completed.
pub fn shutdown_response(id: u64) -> String {
    format!("{{\"id\":{id},\"ok\":true,\"draining\":true}}")
}

/// The combined cache-statistics object embedded in `verify` and
/// `metrics` responses: per-stage `[hits, misses]` pairs for the four
/// [`vcache`] stages plus the measure cache, and the live entry counts.
pub fn cache_stats(vc: &vcache::VCache, mc: &asm::MeasureCache) -> String {
    let mut out = String::from("{");
    for stage in vcache::CacheStage::ALL {
        let (h, m) = vc.stats(stage);
        let _ = write!(out, "\"{}\":[{h},{m}],", stage.name());
    }
    let (h, m) = mc.stats();
    let _ = write!(
        out,
        "\"measure\":[{h},{m}],\"vcache_entries\":{},\"measure_entries\":{}}}",
        vc.len(),
        mc.len()
    );
    out
}

/// A successful `verify` response: per-function bounds/measurements, the
/// one-shot-identical report rendering, cache statistics, and the time
/// the request spent queued vs. being worked.
pub fn verify_response(
    id: u64,
    report: &Report,
    cache: &str,
    queue_us: u64,
    work_us: u64,
) -> String {
    let mut out = format!(
        "{{\"id\":{id},\"ok\":true,\"target\":\"{}\",\"functions\":{{",
        report.target().name()
    );
    let mut first = true;
    for (name, bound) in report.bounds() {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{}:{{\"bound\":{bound}", escape(name));
        if let Some(m) = report.measured(name) {
            let _ = write!(out, ",\"measured\":{m},\"slack\":{}", bound - m);
        }
        out.push('}');
    }
    let _ = write!(
        out,
        "}},\"report\":{},\"cache\":{cache},\"queue_us\":{queue_us},\"work_us\":{work_us}}}",
        escape(&report.to_string())
    );
    out
}

/// A successful `table2` response: the case name, target, the
/// one-shot-identical single-line rendering, cache statistics, and the
/// time the request spent queued vs. being worked.
pub fn table2_response(
    id: u64,
    case: &str,
    target: asm::Target,
    report: &str,
    cache: &str,
    queue_us: u64,
    work_us: u64,
) -> String {
    format!(
        "{{\"id\":{id},\"ok\":true,\"case\":{},\"target\":\"{}\",\"report\":{},\
         \"cache\":{cache},\"queue_us\":{queue_us},\"work_us\":{work_us}}}",
        escape(case),
        target.name(),
        escape(report)
    )
}

/// Live server counters for the `metrics` verb — assembled by the server,
/// rendered by [`metrics_response`].
#[derive(Debug, Clone)]
pub struct Metrics {
    /// Correlation id of the `metrics` request.
    pub id: u64,
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// Requests accepted off connections (all verbs counted).
    pub received: u64,
    /// `verify` jobs completed successfully.
    pub completed: u64,
    /// `verify` jobs that failed verification (or were rejected).
    pub failed: u64,
    /// `verify` jobs cancelled at their deadline before starting.
    pub timed_out: u64,
    /// Jobs currently waiting in the bounded queue.
    pub queue_depth: usize,
    /// Jobs currently being verified by workers.
    pub in_flight: usize,
    /// The [`cache_stats`] fragment.
    pub cache: String,
    /// Live obs recorder totals `(spans, counters, histograms)` from a
    /// non-draining [`obs::snapshot`], when a recorder is installed.
    pub obs: Option<(usize, usize, usize)>,
}

/// Renders the `metrics` response line.
pub fn metrics_response(m: &Metrics) -> String {
    let mut out = format!(
        "{{\"id\":{},\"ok\":true,\"uptime_ms\":{},\"requests\":{{\"received\":{},\
         \"completed\":{},\"failed\":{},\"timed_out\":{},\"queue_depth\":{},\
         \"in_flight\":{}}},\"cache\":{}",
        m.id,
        m.uptime_ms,
        m.received,
        m.completed,
        m.failed,
        m.timed_out,
        m.queue_depth,
        m.in_flight,
        m.cache,
    );
    match m.obs {
        Some((spans, counters, histograms)) => {
            let _ = write!(
                out,
                ",\"obs\":{{\"spans\":{spans},\"counters\":{counters},\
                 \"histograms\":{histograms}}}}}"
            );
        }
        None => out.push_str(",\"obs\":null}"),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::{
        cache_stats, error_response, metrics_response, parse_request, verify_response, Metrics,
        Request,
    };

    #[test]
    fn parses_every_verb_and_defaults() {
        match parse_request(r#"{"op":"ping","id":7}"#).unwrap() {
            Request::Ping { id } => assert_eq!(id, 7),
            other => panic!("wrong verb: {other:?}"),
        }
        match parse_request(r#"{"op":"metrics","id":8}"#).unwrap() {
            Request::Metrics { id } => assert_eq!(id, 8),
            other => panic!("wrong verb: {other:?}"),
        }
        match parse_request(r#"{"op":"shutdown"}"#).unwrap() {
            Request::Shutdown { id } => assert_eq!(id, 0),
            other => panic!("wrong verb: {other:?}"),
        }
        let req =
            parse_request(r#"{"op":"verify","id":3,"source":"int main() { return 0; }"}"#).unwrap();
        match req {
            Request::Verify(v) => {
                assert_eq!(v.id, 3);
                assert_eq!(v.target, asm::Target::Sz32);
                assert!(v.params.is_empty());
                assert!(v.measure);
                assert_eq!(v.timeout_ms, None);
            }
            other => panic!("wrong verb: {other:?}"),
        }
    }

    #[test]
    fn parses_verify_options() {
        let req = parse_request(
            r#"{"op":"verify","id":4,"source":"x","target":"rv",
                "params":{"B":2,"A":1},"measure":false,"timeout_ms":250}"#,
        )
        .unwrap();
        match req {
            Request::Verify(v) => {
                assert_eq!(v.target, asm::Target::Rv);
                assert_eq!(v.params, vec![("A".to_owned(), 1), ("B".to_owned(), 2)]);
                assert!(!v.measure);
                assert_eq!(v.timeout_ms, Some(250));
            }
            other => panic!("wrong verb: {other:?}"),
        }
    }

    #[test]
    fn parses_table2_requests() {
        let req = parse_request(r#"{"op":"table2","id":21,"case":"fib"}"#).unwrap();
        match req {
            Request::Table2(t) => {
                assert_eq!(t.id, 21);
                assert_eq!(t.case, "fib");
                assert_eq!(t.target, asm::Target::Sz32);
                assert_eq!(t.timeout_ms, None);
            }
            other => panic!("wrong verb: {other:?}"),
        }
        let req = parse_request(
            r#"{"op":"table2","id":22,"case":"qsort","target":"rv","timeout_ms":9000}"#,
        )
        .unwrap();
        match req {
            Request::Table2(t) => {
                assert_eq!(t.target, asm::Target::Rv);
                assert_eq!(t.timeout_ms, Some(9000));
            }
            other => panic!("wrong verb: {other:?}"),
        }
        let (id, msg) = parse_request(r#"{"op":"table2","id":23}"#).unwrap_err();
        assert_eq!(id, 23);
        assert!(msg.contains("case"), "{msg}");

        let line = super::table2_response(
            5,
            "fib",
            asm::Target::Rv,
            "fib.c: 1 proofs checked",
            "{}",
            10,
            20,
        );
        let v = obs::json::parse(&line).unwrap();
        assert_eq!(v.get("case").unwrap().as_str(), Some("fib"));
        assert_eq!(v.get("target").unwrap().as_str(), Some("rv"));
        assert_eq!(
            v.get("report").unwrap().as_str(),
            Some("fib.c: 1 proofs checked")
        );
    }

    #[test]
    fn errors_keep_the_request_id_when_recoverable() {
        assert_eq!(parse_request("not json").unwrap_err().0, 0);
        let (id, msg) = parse_request(r#"{"op":"frobnicate","id":9}"#).unwrap_err();
        assert_eq!(id, 9);
        assert!(msg.contains("frobnicate"), "{msg}");
        let (id, msg) = parse_request(r#"{"op":"verify","id":11}"#).unwrap_err();
        assert_eq!(id, 11);
        assert!(msg.contains("source"), "{msg}");
        let (id, _) =
            parse_request(r#"{"op":"verify","id":12,"source":"x","target":"mips"}"#).unwrap_err();
        assert_eq!(id, 12);
        let (id, msg) = parse_request(r#"{"op":"verify","id":13,"source":"x","params":{"A":1.5}}"#)
            .unwrap_err();
        assert_eq!(id, 13);
        assert!(msg.contains("u32"), "{msg}");
    }

    #[test]
    fn responses_are_well_formed_json() {
        let report = crate::verify_program(
            "u32 leaf(u32 x) { return x + 1; }
             int main() { u32 r; r = leaf(1); return r; }",
        )
        .unwrap();
        let vc = vcache::VCache::new();
        let mc = asm::MeasureCache::new();
        let cache = cache_stats(&vc, &mc);
        let line = verify_response(5, &report, &cache, 10, 2000);
        let v = obs::json::parse(&line).unwrap();
        assert_eq!(v.get("id").unwrap().as_f64(), Some(5.0));
        assert_eq!(v.get("ok"), Some(&obs::json::Value::Bool(true)));
        assert_eq!(v.get("target").unwrap().as_str(), Some("sz32"));
        let main = v.get("functions").unwrap().get("main").unwrap();
        assert_eq!(
            main.get("bound").unwrap().as_f64(),
            Some(f64::from(report.bound("main").unwrap()))
        );
        assert_eq!(main.get("slack").unwrap().as_f64(), Some(4.0));
        // The embedded report is the one-shot rendering, byte for byte.
        assert_eq!(
            v.get("report").unwrap().as_str(),
            Some(report.to_string().as_str())
        );

        let err = error_response(6, "analyzer: recursion on \"f\"");
        let v = obs::json::parse(&err).unwrap();
        assert_eq!(v.get("ok"), Some(&obs::json::Value::Bool(false)));
        assert!(v
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("recursion"));

        let m = metrics_response(&Metrics {
            id: 7,
            uptime_ms: 1234,
            received: 10,
            completed: 8,
            failed: 1,
            timed_out: 1,
            queue_depth: 0,
            in_flight: 0,
            cache: cache_stats(&vc, &mc),
            obs: Some((3, 2, 1)),
        });
        let v = obs::json::parse(&m).unwrap();
        assert_eq!(
            v.get("requests")
                .unwrap()
                .get("completed")
                .unwrap()
                .as_f64(),
            Some(8.0)
        );
        assert_eq!(
            v.get("obs").unwrap().get("spans").unwrap().as_f64(),
            Some(3.0)
        );
        assert!(v.get("cache").unwrap().get("analyze").is_some());
    }
}
