//! `sbound serve` — a cache-resident verification daemon.
//!
//! A one-shot `sbound` run pays the whole pipeline every time and throws
//! its caches away on exit. The daemon inverts that: one long-lived
//! process holds a single shared [`vcache::VCache`] and
//! [`asm::MeasureCache`] in memory and verifies requests arriving over a
//! socket, so an edit-verify loop (or a fleet of CI clients) pays the
//! cold pipeline once and then reuses every per-function artifact whose
//! inputs are unchanged. Stage output is byte-identical to a one-shot
//! run — the cache layer guarantees it — so a served `report` string can
//! be diffed directly against `sbound` output.
//!
//! The moving parts:
//!
//! * [`Session`] — the shared caches plus verification defaults; every
//!   request builds a fresh [`Verifier`] against them.
//! * [`queue::JobQueue`] — a bounded queue between connection readers
//!   and the worker pool; back-pressure blocks the reader (and, through
//!   TCP flow control, the client) instead of buffering unboundedly.
//! * [`protocol`] — the line-delimited JSON wire format.
//! * [`Server`] — workers, transports (TCP, Unix-domain sockets, stdio),
//!   live `metrics`, and graceful drain on `shutdown`.
//!
//! Two verbs go through the worker pool: `verify` (the automatic
//! pipeline on client-supplied source) and `table2` (re-verification of
//! a built-in Table 2 recursive case's hand-written derivations — the
//! most expensive, and most cache-sensitive, work in the corpus).
//! Responses to pipelined pool requests may arrive out of request
//! order (the pool works them in parallel); clients match them by `id`.
//! A request's `timeout_ms` bounds its *queue wait*: a job still queued
//! at its deadline is rejected without being worked. Once a job reaches
//! a worker it runs to completion, bounded by the machine fuel — the
//! pipeline has no preemption points, so fuel is the in-work budget.
//!
//! ```
//! use stackbound::serve::{Server, ServeOptions, Session};
//! use std::io::{BufRead, BufReader, Write};
//!
//! let server = std::sync::Arc::new(Server::new(Session::new(), ServeOptions::default()));
//! let handle = stackbound::serve::spawn_tcp(server).unwrap();
//!
//! let mut conn = std::net::TcpStream::connect(handle.addr()).unwrap();
//! writeln!(conn, r#"{{"op":"verify","id":1,"source":"int main() {{ return 0; }}"}}"#).unwrap();
//! let mut line = String::new();
//! BufReader::new(conn.try_clone().unwrap()).read_line(&mut line).unwrap();
//! assert!(line.contains("\"ok\":true"));
//! handle.shutdown().unwrap();
//! ```

pub mod protocol;
pub mod queue;

use crate::{Error, Report, Verifier, DEFAULT_FUEL};
use protocol::{Request, Table2Request, VerifyRequest};
use queue::JobQueue;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The caches and verification defaults shared by every request the
/// daemon serves. Cloning is cheap (everything shared is behind an
/// [`Arc`]); clones keep hitting the same caches.
#[derive(Clone)]
pub struct Session {
    vcache: Arc<vcache::VCache>,
    measure_cache: Arc<asm::MeasureCache>,
    fuel: u64,
}

impl Default for Session {
    fn default() -> Session {
        Session::new()
    }
}

impl Session {
    /// A session with fresh caches and [`DEFAULT_FUEL`].
    pub fn new() -> Session {
        Session {
            vcache: Arc::new(vcache::VCache::new()),
            measure_cache: Arc::new(asm::MeasureCache::new()),
            fuel: DEFAULT_FUEL,
        }
    }

    /// Replaces the verification cache (e.g. one pre-loaded from disk).
    #[must_use]
    pub fn vcache(mut self, cache: Arc<vcache::VCache>) -> Session {
        self.vcache = cache;
        self
    }

    /// Replaces the measurement cache.
    #[must_use]
    pub fn measure_cache(mut self, cache: Arc<asm::MeasureCache>) -> Session {
        self.measure_cache = cache;
        self
    }

    /// Sets the machine fuel used for every request's measurement stage.
    #[must_use]
    pub fn fuel(mut self, fuel: u64) -> Session {
        self.fuel = fuel;
        self
    }

    /// The shared verification cache.
    pub fn cache(&self) -> &Arc<vcache::VCache> {
        &self.vcache
    }

    /// The shared measurement cache.
    pub fn measures(&self) -> &Arc<asm::MeasureCache> {
        &self.measure_cache
    }

    /// Verifies one request against the shared caches. Equivalent to a
    /// one-shot [`Verifier`] run with the same target/params/measure
    /// settings — including byte-identical [`Report`] rendering.
    ///
    /// # Errors
    ///
    /// Exactly the one-shot pipeline's [`Error`] cases.
    pub fn verify(&self, req: &VerifyRequest) -> Result<Report, Error> {
        let params: Vec<(&str, u32)> = req.params.iter().map(|(n, v)| (n.as_str(), *v)).collect();
        Verifier::new()
            .fuel(self.fuel)
            .target(req.target)
            .params(&params)
            .measure(req.measure)
            .vcache(self.vcache.clone())
            .measure_cache(self.measure_cache.clone())
            .verify(&req.source)
    }

    /// Re-verifies one built-in Table 2 recursive case (by headline
    /// name) through the shared cache — exactly the one-shot
    /// [`table2::verify_case_cached`](crate::table2::verify_case_cached)
    /// rendering.
    ///
    /// # Errors
    ///
    /// Unknown case names, and the one-shot pipeline's rendered
    /// derivation/compiler failures.
    pub fn table2(&self, req: &Table2Request) -> Result<String, String> {
        let case = benchsuite::recursive_case(&req.case)
            .ok_or_else(|| format!("unknown table2 case `{}`", req.case))?;
        crate::table2::verify_case_cached(&case, req.target, &self.vcache)
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker threads; `0` uses the machine's available parallelism.
    pub workers: usize,
    /// Bounded queue capacity — the back-pressure threshold.
    pub queue_cap: usize,
    /// Default per-request queue deadline (`timeout_ms` overrides it).
    pub timeout: Duration,
    /// Machine fuel per measurement.
    pub fuel: u64,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            workers: 0,
            queue_cap: 128,
            timeout: Duration::from_secs(30),
            fuel: DEFAULT_FUEL,
        }
    }
}

impl ServeOptions {
    fn worker_count(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// A writer shared between a connection's reader thread (inline
/// responses) and the workers (verify responses), serialized per line.
type SharedWriter = Arc<Mutex<Box<dyn Write + Send>>>;

fn write_line(writer: &SharedWriter, line: &str) {
    // A dead client is the client's problem, not the server's.
    let mut w = writer.lock().unwrap();
    let _ = w.write_all(line.as_bytes());
    let _ = w.write_all(b"\n");
    let _ = w.flush();
}

/// The work a queued job carries: the two verbs that go through the
/// worker pool (everything else is answered inline by the reader).
enum Work {
    Verify(Box<VerifyRequest>),
    Table2(Table2Request),
}

impl Work {
    fn id(&self) -> u64 {
        match self {
            Work::Verify(r) => r.id,
            Work::Table2(r) => r.id,
        }
    }

    fn timeout_ms(&self) -> Option<u64> {
        match self {
            Work::Verify(r) => r.timeout_ms,
            Work::Table2(r) => r.timeout_ms,
        }
    }
}

/// One queued job.
struct Job {
    work: Work,
    reply: SharedWriter,
    enqueued: Instant,
    deadline: Instant,
}

/// The verification daemon: a [`Session`], a worker pool behind a
/// bounded [`JobQueue`], and the transport loops.
pub struct Server {
    session: Session,
    opts: ServeOptions,
    queue: JobQueue<Job>,
    started: Instant,
    received: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    timed_out: AtomicU64,
    stop: AtomicBool,
}

impl Server {
    /// A server over `session` with the fuel from `opts` taking
    /// precedence over the session's.
    pub fn new(session: Session, opts: ServeOptions) -> Server {
        let session = session.fuel(opts.fuel);
        Server {
            queue: JobQueue::new(opts.queue_cap),
            session,
            opts,
            started: Instant::now(),
            received: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        }
    }

    /// The session (for cache persistence after a drain).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Whether a `shutdown` has been requested.
    pub fn is_stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    fn worker(&self) {
        while let Some(job) = self.queue.next() {
            let queue_us = job.enqueued.elapsed().as_micros() as u64;
            let id = job.work.id();
            let line = if Instant::now() >= job.deadline {
                self.timed_out.fetch_add(1, Ordering::Relaxed);
                obs::counter("serve/timed_out", 1);
                protocol::error_response(id, &format!("timed out after {queue_us}us in queue"))
            } else {
                let _span = obs::span("serve/request");
                let work = Instant::now();
                let cache = || protocol::cache_stats(self.session.cache(), self.session.measures());
                let rendered = match &job.work {
                    Work::Verify(req) => {
                        self.session
                            .verify(req)
                            .map_err(|e| e.to_string())
                            .map(|report| {
                                protocol::verify_response(
                                    id,
                                    &report,
                                    &cache(),
                                    queue_us,
                                    work.elapsed().as_micros() as u64,
                                )
                            })
                    }
                    Work::Table2(req) => self.session.table2(req).map(|report| {
                        protocol::table2_response(
                            id,
                            &req.case,
                            req.target,
                            &report,
                            &cache(),
                            queue_us,
                            work.elapsed().as_micros() as u64,
                        )
                    }),
                };
                match rendered {
                    Ok(line) => {
                        self.completed.fetch_add(1, Ordering::Relaxed);
                        line
                    }
                    Err(e) => {
                        self.failed.fetch_add(1, Ordering::Relaxed);
                        protocol::error_response(id, &e)
                    }
                }
            };
            write_line(&job.reply, &line);
            self.queue.done();
        }
    }

    fn metrics_line(&self, id: u64) -> String {
        let obs = obs::snapshot().map(|r| {
            fn count(nodes: &[obs::SpanNode]) -> usize {
                nodes.iter().map(|n| 1 + count(&n.children)).sum()
            }
            (count(&r.roots), r.counters.len(), r.histograms.len())
        });
        protocol::metrics_response(&protocol::Metrics {
            id,
            uptime_ms: self.started.elapsed().as_millis() as u64,
            received: self.received.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            queue_depth: self.queue.depth(),
            in_flight: self.queue.in_flight(),
            cache: protocol::cache_stats(self.session.cache(), self.session.measures()),
            obs,
        })
    }

    /// Reads requests off one connection until EOF or a `shutdown`.
    /// Returns the `shutdown` id when one arrived — the caller owns the
    /// drain and the late acknowledgement.
    fn run_connection<R: BufRead>(&self, reader: R, reply: &SharedWriter) -> Option<u64> {
        for line in reader.lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            self.received.fetch_add(1, Ordering::Relaxed);
            match protocol::parse_request(&line) {
                Err((id, msg)) => {
                    self.failed.fetch_add(1, Ordering::Relaxed);
                    write_line(reply, &protocol::error_response(id, &msg));
                }
                Ok(Request::Ping { id }) => write_line(reply, &protocol::pong_response(id)),
                Ok(Request::Metrics { id }) => write_line(reply, &self.metrics_line(id)),
                Ok(Request::Shutdown { id }) => return Some(id),
                Ok(Request::Verify(req)) => self.enqueue(Work::Verify(req), reply),
                Ok(Request::Table2(req)) => self.enqueue(Work::Table2(req), reply),
            }
        }
        None
    }

    /// Submits one unit of pool work, bouncing it with an error response
    /// when the queue is draining.
    fn enqueue(&self, work: Work, reply: &SharedWriter) {
        let now = Instant::now();
        let timeout = work
            .timeout_ms()
            .map_or(self.opts.timeout, Duration::from_millis);
        let job = Job {
            reply: reply.clone(),
            enqueued: now,
            deadline: now + timeout,
            work,
        };
        if let Err(job) = self.queue.submit(job) {
            self.failed.fetch_add(1, Ordering::Relaxed);
            write_line(
                reply,
                &protocol::error_response(job.work.id(), "server is draining; request rejected"),
            );
        }
    }

    /// Serves a single full-duplex byte stream (no listener): used by
    /// `--stdio` and by in-process tests. Returns after EOF or
    /// `shutdown`, once every accepted job has been answered.
    pub fn run_stream<R, W>(&self, reader: R, writer: W)
    where
        R: Read,
        W: Write + Send + 'static,
    {
        let reply: SharedWriter = Arc::new(Mutex::new(Box::new(writer)));
        std::thread::scope(|scope| {
            for w in 0..self.opts.worker_count() {
                scope.spawn(move || {
                    obs::register_thread(&format!("serve-worker-{w}"));
                    self.worker();
                });
            }
            let shutdown = self.run_connection(BufReader::new(reader), &reply);
            self.stop.store(true, Ordering::SeqCst);
            self.queue.drain();
            if let Some(id) = shutdown {
                write_line(&reply, &protocol::shutdown_response(id));
            }
        });
    }

    /// Serves connections accepted from a TCP listener until a client
    /// sends `shutdown`; then stops accepting, drains the queue, answers
    /// the ack, and unblocks every connection before returning.
    ///
    /// # Errors
    ///
    /// Propagates listener address/accept failures.
    pub fn run_tcp(&self, listener: TcpListener) -> std::io::Result<()> {
        self.run_accept(TcpTransport(listener))
    }

    /// [`Server::run_tcp`] over a Unix-domain socket listener.
    ///
    /// # Errors
    ///
    /// Propagates listener address/accept failures.
    #[cfg(unix)]
    pub fn run_uds(&self, listener: UnixListener) -> std::io::Result<()> {
        self.run_accept(UdsTransport(listener))
    }

    fn run_accept<T: Transport>(&self, transport: T) -> std::io::Result<()> {
        let transport = &transport;
        // Registry of reader-side handles so a drain can unblock every
        // connection thread's blocking read.
        let conns: Mutex<Vec<T::Stream>> = Mutex::new(Vec::new());
        let conns = &conns;
        std::thread::scope(|scope| {
            for w in 0..self.opts.worker_count() {
                scope.spawn(move || {
                    obs::register_thread(&format!("serve-worker-{w}"));
                    self.worker();
                });
            }
            let result = loop {
                let stream = match transport.accept() {
                    Ok(s) => s,
                    Err(e) => {
                        if self.is_stopping() {
                            break Ok(());
                        }
                        break Err(e);
                    }
                };
                if self.is_stopping() {
                    break Ok(()); // the drainer's wakeup connection
                }
                let Ok(read_half) = T::clone_stream(&stream) else {
                    continue;
                };
                conns.lock().unwrap().push(read_half);
                scope.spawn(move || {
                    let Ok(write_half) = T::clone_stream(&stream) else {
                        return;
                    };
                    let reply: SharedWriter = Arc::new(Mutex::new(Box::new(write_half)));
                    if let Some(id) = self.run_connection(BufReader::new(stream), &reply) {
                        // This thread owns the shutdown: stop intake,
                        // finish every accepted job, ack, then release
                        // the accept loop and the other readers.
                        self.stop.store(true, Ordering::SeqCst);
                        self.queue.drain();
                        write_line(&reply, &protocol::shutdown_response(id));
                        transport.unblock_accept();
                        for conn in conns.lock().unwrap().iter() {
                            T::close(conn);
                        }
                    }
                });
            };
            // Accept failed on its own (or the listener was closed): make
            // sure the workers and readers are still released.
            if !self.is_stopping() {
                self.stop.store(true, Ordering::SeqCst);
                self.queue.drain();
                for conn in conns.lock().unwrap().iter() {
                    T::close(conn);
                }
            }
            result
        })
    }
}

/// A listener the accept loop can run over: TCP or Unix-domain sockets.
trait Transport: Sync {
    /// The accepted byte-stream type.
    type Stream: Read + Write + Send + 'static;
    fn accept(&self) -> std::io::Result<Self::Stream>;
    fn clone_stream(s: &Self::Stream) -> std::io::Result<Self::Stream>;
    /// Shuts the stream down in both directions, unblocking its reader.
    fn close(s: &Self::Stream);
    /// Wakes a blocking [`Transport::accept`] (e.g. by self-connecting).
    fn unblock_accept(&self);
}

struct TcpTransport(TcpListener);

impl Transport for TcpTransport {
    type Stream = TcpStream;

    fn accept(&self) -> std::io::Result<TcpStream> {
        let (s, _) = self.0.accept()?;
        // Responses are single small lines; Nagle + delayed ACK would
        // add tens of milliseconds to every round trip.
        let _ = s.set_nodelay(true);
        Ok(s)
    }

    fn clone_stream(s: &TcpStream) -> std::io::Result<TcpStream> {
        s.try_clone()
    }

    fn close(s: &TcpStream) {
        let _ = s.shutdown(std::net::Shutdown::Both);
    }

    fn unblock_accept(&self) {
        if let Ok(addr) = self.0.local_addr() {
            let _ = TcpStream::connect(addr);
        }
    }
}

#[cfg(unix)]
struct UdsTransport(UnixListener);

#[cfg(unix)]
impl Transport for UdsTransport {
    type Stream = UnixStream;

    fn accept(&self) -> std::io::Result<UnixStream> {
        self.0.accept().map(|(s, _)| s)
    }

    fn clone_stream(s: &UnixStream) -> std::io::Result<UnixStream> {
        s.try_clone()
    }

    fn close(s: &UnixStream) {
        let _ = s.shutdown(std::net::Shutdown::Both);
    }

    fn unblock_accept(&self) {
        if let Ok(addr) = self.0.local_addr() {
            if let Some(path) = addr.as_pathname() {
                let _ = UnixStream::connect(path);
            }
        }
    }
}

/// A handle to a [`spawn_tcp`] background server.
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    join: std::thread::JoinHandle<std::io::Result<()>>,
}

impl ServerHandle {
    /// The loopback address the server is listening on.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Sends a `shutdown` request as a client, waits for the drain
    /// acknowledgement, and joins the server thread.
    ///
    /// # Errors
    ///
    /// Propagates connection failures and the server loop's own error.
    pub fn shutdown(self) -> std::io::Result<()> {
        let conn = TcpStream::connect(self.addr)?;
        let _ = conn.set_nodelay(true);
        let mut w = conn.try_clone()?;
        writeln!(w, "{{\"op\":\"shutdown\",\"id\":0}}")?;
        let mut ack = String::new();
        BufReader::new(conn).read_line(&mut ack)?;
        match self.join.join() {
            Ok(result) => result,
            Err(_) => Err(std::io::Error::other("server thread panicked")),
        }
    }
}

/// Binds an ephemeral loopback port and runs `server` on a background
/// thread — the harness used by the serve tests and `serve_bench`.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn spawn_tcp(server: Arc<Server>) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let join = std::thread::spawn(move || server.run_tcp(listener));
    Ok(ServerHandle { addr, join })
}
