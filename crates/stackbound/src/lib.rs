//! # stackbound
//!
//! A from-scratch Rust reproduction of *End-to-End Verification of
//! Stack-Space Bounds for C Programs* (Carbonneaux, Hoffmann,
//! Ramananandro, Shao — PLDI 2014): a stack-aware, trace-preserving C
//! compiler ("Quantitative CompCert"), a quantitative Hoare logic with
//! machine-checked derivations, an automatic stack analyzer, and a
//! finite-stack x86-style machine with a ptrace-style measurement harness.
//!
//! The pieces and the paper sections they reproduce:
//!
//! | crate | contents | paper |
//! |---|---|---|
//! | [`mem`] | block-based memory model | §4.2 |
//! | [`trace`] | events, weights, quantitative refinement | §3.1 |
//! | [`clight`] | C front end + small-step semantics with events | §4.1–4.2 |
//! | [`qhl`] | quantitative Hoare logic, derivation checker | §4.3 |
//! | [`analyzer`] | automatic stack analyzer emitting derivations | §5 |
//! | [`compiler`] | Clight → Cminor → RTL → Mach → ASMsz pipeline | §3.2 |
//! | [`asm`] | the `ASMsz` finite-stack machine + monitor | §3.2, §6 |
//! | [`benchsuite`] | the evaluation programs of Tables 1 and 2 | §6 |
//!
//! # The end-to-end story in one function
//!
//! [`verify_program`] runs the complete loop of the paper's Figure 2:
//! analyze at the source level, compile, instantiate the parametric bound
//! with the compiler's cost metric `M(f) = SF(f) + 4`, and (optionally)
//! confirm on the machine that the bound holds with 4 bytes to spare.
//!
//! ```
//! let report = stackbound::verify_program("
//!     u32 square(u32 x) { return x * x; }
//!     u32 poly(u32 x) { u32 a; u32 b; a = square(x); b = square(x + 1); return a + b; }
//!     int main() { u32 r; r = poly(6); return r % 256; }
//! ").unwrap();
//!
//! let main_bound = report.bound("main").unwrap();
//! assert_eq!(report.measured("main"), Some(main_bound - 4)); // exactly 4 bytes slack
//! ```

#![warn(missing_docs)]

pub use analyzer;
pub use asm;
pub use benchsuite;
pub use clight;
pub use compiler;
pub use mem;
pub use qhl;
pub use trace;

use std::collections::BTreeMap;
use std::fmt;

/// Default interpreter/machine fuel used by [`verify_program`].
pub const DEFAULT_FUEL: u64 = 200_000_000;

/// The outcome of the end-to-end verification pipeline for one program.
#[derive(Debug, Clone)]
pub struct Report {
    /// Per-function verified stack bounds in bytes (`B_f + M(f)` under the
    /// compiler's metric).
    bounds: BTreeMap<String, u32>,
    /// Measured peak stack usage of `main` (and of any function measured
    /// later), when the program was executed.
    measured: BTreeMap<String, u32>,
    /// The compiled program.
    pub compiled: compiler::Compiled,
    /// The analysis (context + derivations).
    pub analysis: analyzer::Analysis,
    /// The monitored run of `main` (waterline profile included), when the
    /// program has a `main` that was executed.
    pub measurement: Option<asm::Measurement>,
}

impl Report {
    /// The verified stack bound of a function, in bytes.
    pub fn bound(&self, fname: &str) -> Option<u32> {
        self.bounds.get(fname).copied()
    }

    /// The measured peak stack usage of a function, in bytes.
    pub fn measured(&self, fname: &str) -> Option<u32> {
        self.measured.get(fname).copied()
    }

    /// All `(function, verified bound)` pairs in name order.
    pub fn bounds(&self) -> impl Iterator<Item = (&str, u32)> {
        self.bounds.iter().map(|(k, v)| (k.as_str(), *v))
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<24} {:>12} {:>12}", "function", "bound", "measured")?;
        for (name, bound) in &self.bounds {
            let measured = match self.measured.get(name) {
                Some(m) => format!("{m} bytes"),
                None => "-".to_owned(),
            };
            writeln!(
                f,
                "{name:<24} {:>12} {measured:>12}",
                format!("{bound} bytes")
            )?;
        }
        Ok(())
    }
}

/// An error from the end-to-end pipeline.
#[derive(Debug, Clone)]
pub enum Error {
    /// Parsing or type checking failed.
    Frontend(String),
    /// The automatic analyzer gave up (recursion — use the interactive
    /// logic instead, as in Table 2).
    Analyzer(analyzer::AnalyzerError),
    /// A generated derivation failed to re-check (an analyzer bug).
    Derivation(qhl::QhlError),
    /// Compilation failed.
    Compiler(compiler::CompileError),
    /// The machine run failed (overflow would mean an unsound bound).
    Machine(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Frontend(m) => write!(f, "front end: {m}"),
            Error::Analyzer(e) => write!(f, "analyzer: {e}"),
            Error::Derivation(e) => write!(f, "derivation check: {e}"),
            Error::Compiler(e) => write!(f, "compiler: {e}"),
            Error::Machine(m) => write!(f, "machine: {m}"),
        }
    }
}

impl std::error::Error for Error {}

/// Runs the complete verified tool of §5: parse, type-check, analyze
/// (generating and re-checking derivations), compile, and derive a
/// concrete verified stack bound for every function. If the program has a
/// `main`, it is additionally executed on the `ASMsz` machine with a stack
/// of exactly the verified bound, and the measured usage is recorded.
///
/// # Errors
///
/// Any stage can fail; see [`Error`]. Recursive programs are rejected by
/// the analyzer — verify them interactively with [`qhl`] (the
/// `interactive_proof` example shows how).
pub fn verify_program(src: &str) -> Result<Report, Error> {
    verify_with_params(src, &[])
}

/// [`verify_program`] with compile-time parameters (the paper's `ALEN`
/// section hypotheses).
///
/// # Errors
///
/// See [`verify_program`].
pub fn verify_with_params(src: &str, params: &[(&str, u32)]) -> Result<Report, Error> {
    let _span = obs::span("verify/program");
    let program = clight::frontend(src, params).map_err(Error::Frontend)?;
    let analysis = analyzer::analyze(&program).map_err(Error::Analyzer)?;
    analysis.check(&program).map_err(Error::Derivation)?;
    let compiled = compiler::compile(&program).map_err(Error::Compiler)?;

    let mut bounds = BTreeMap::new();
    {
        let _s = obs::span("verify/bounds");
        for name in program.function_names() {
            if let Some(b) = analysis.concrete_bound(name, &compiled.metric) {
                bounds.insert(name.to_owned(), b as u32);
            }
        }
        obs::counter("verify/bounded_functions", bounds.len() as u64);
    }
    let mut measured = BTreeMap::new();
    let mut measurement = None;
    if let Some(main_bound) = bounds.get("main").copied() {
        let _s = obs::span("verify/measure");
        let m = asm::measure_main(&compiled.asm, main_bound, DEFAULT_FUEL)
            .map_err(|e| Error::Machine(e.to_string()))?;
        if let Some(err) = m.error {
            return Err(Error::Machine(err.to_string()));
        }
        if m.behavior.converges() {
            measured.insert("main".to_owned(), m.stack_usage);
        }
        measurement = Some(m);
    }
    Ok(Report {
        bounds,
        measured,
        compiled,
        analysis,
        measurement,
    })
}

#[cfg(test)]
mod report_display_tests {
    #[test]
    fn report_table_columns_align() {
        let report = crate::verify_program(
            "u32 leaf(u32 x) { return x + 1; }
             int main() { u32 r; r = leaf(1); return r; }",
        )
        .unwrap();
        let text = report.to_string();

        // Golden shape: three right-aligned 12-wide columns after the name,
        // with `-` sitting in the same column as the measured cells.
        let leaf = report.bound("leaf").unwrap();
        let main = report.bound("main").unwrap();
        let meas = report.measured("main").unwrap();
        let expected = format!(
            "{:<24} {:>12} {:>12}\n{:<24} {:>12} {:>12}\n{:<24} {:>12} {:>12}\n",
            "function",
            "bound",
            "measured",
            "leaf",
            format!("{leaf} bytes"),
            "-",
            "main",
            format!("{main} bytes"),
            format!("{meas} bytes"),
        );
        assert_eq!(text, expected);

        // Every line (header included) has the same width.
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 3);
        assert!(
            lines.iter().all(|l| l.len() == lines[0].len()),
            "misaligned report:\n{text}"
        );
    }
}
