//! # stackbound
//!
//! A from-scratch Rust reproduction of *End-to-End Verification of
//! Stack-Space Bounds for C Programs* (Carbonneaux, Hoffmann,
//! Ramananandro, Shao — PLDI 2014): a stack-aware, trace-preserving C
//! compiler ("Quantitative CompCert"), a quantitative Hoare logic with
//! machine-checked derivations, an automatic stack analyzer, and a
//! finite-stack x86-style machine with a ptrace-style measurement harness.
//!
//! The pieces and the paper sections they reproduce:
//!
//! | crate | contents | paper |
//! |---|---|---|
//! | [`mem`] | block-based memory model | §4.2 |
//! | [`trace`] | events, weights, quantitative refinement | §3.1 |
//! | [`clight`] | C front end + small-step semantics with events | §4.1–4.2 |
//! | [`qhl`] | quantitative Hoare logic, derivation checker | §4.3 |
//! | [`analyzer`] | automatic stack analyzer emitting derivations | §5 |
//! | [`compiler`] | Clight → Cminor → RTL → Mach → ASMsz pipeline | §3.2 |
//! | [`asm`] | the `ASMsz` finite-stack machine + monitor | §3.2, §6 |
//! | [`benchsuite`] | the evaluation programs of Tables 1 and 2 | §6 |
//!
//! # The end-to-end story in one function
//!
//! [`verify_program`] runs the complete loop of the paper's Figure 2:
//! analyze at the source level, compile, instantiate the parametric bound
//! with the target's cost metric (`M(f) = SF(f) + 4` on the default
//! [`asm::Target::Sz32`]; `M(f) = SF(f)` on the link-register
//! [`asm::Target::Rv`], selected with [`Verifier::target`]), and
//! (optionally) confirm on the machine that the bound holds — with 4
//! bytes to spare on `sz32`, exactly on `rv`.
//!
//! ```
//! let report = stackbound::verify_program("
//!     u32 square(u32 x) { return x * x; }
//!     u32 poly(u32 x) { u32 a; u32 b; a = square(x); b = square(x + 1); return a + b; }
//!     int main() { u32 r; r = poly(6); return r % 256; }
//! ").unwrap();
//!
//! let main_bound = report.bound("main").unwrap();
//! assert_eq!(report.measured("main"), Some(main_bound - 4)); // exactly 4 bytes slack
//! ```

#![warn(missing_docs)]

pub use analyzer;
pub use asm;
pub use benchsuite;
pub use clight;
pub use compiler;
pub use mem;
pub use qhl;
pub use stacklint;
pub use trace;
pub use vcache;

pub mod serve;
pub mod table2;

use std::collections::BTreeMap;
use std::fmt;

/// Default interpreter/machine fuel used by [`verify_program`].
pub const DEFAULT_FUEL: u64 = 200_000_000;

/// The outcome of the end-to-end verification pipeline for one program.
#[derive(Debug, Clone)]
pub struct Report {
    /// Per-function verified stack bounds in bytes (`B_f + M(f)` under the
    /// compiler's metric).
    bounds: BTreeMap<String, u32>,
    /// Measured peak stack usage of `main` (and of any function measured
    /// later), when the program was executed.
    measured: BTreeMap<String, u32>,
    /// The compiled program.
    pub compiled: compiler::Compiled,
    /// The analysis (context + derivations).
    pub analysis: analyzer::Analysis,
    /// The monitored run of `main` (waterline profile included), when the
    /// program has a `main` that was executed.
    pub measurement: Option<asm::Measurement>,
}

impl Report {
    /// The verified stack bound of a function, in bytes.
    pub fn bound(&self, fname: &str) -> Option<u32> {
        self.bounds.get(fname).copied()
    }

    /// The measured peak stack usage of a function, in bytes.
    pub fn measured(&self, fname: &str) -> Option<u32> {
        self.measured.get(fname).copied()
    }

    /// All `(function, verified bound)` pairs in name order.
    pub fn bounds(&self) -> impl Iterator<Item = (&str, u32)> {
        self.bounds.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All `(function, measured peak usage)` pairs in name order. Contains
    /// `main` after a default measured run, and every converging
    /// zero-parameter bounded function under
    /// [`Verifier::measure_all_functions`].
    pub fn measured_usages(&self) -> impl Iterator<Item = (&str, u32)> {
        self.measured.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// The backend target the bounds were certified for.
    pub fn target(&self) -> asm::Target {
        self.compiled.asm.target
    }

    /// The slack of a function — certified bound minus measured peak
    /// usage, in bytes — when both are known. Theorem 1 guarantees it is
    /// never negative; on the default [`asm::Target::Sz32`] a straight
    /// call chain leaves 4 bytes (`main`'s own pushed return address), on
    /// [`asm::Target::Rv`] the bound is exact and the slack is zero.
    pub fn slack(&self, fname: &str) -> Option<u32> {
        Some(self.bound(fname)? - self.measured(fname)?)
    }
}

/// Deterministic, order-preserving parallel map over a work list: results
/// land in index order, so serial and parallel callers produce
/// byte-identical output. Mirrors the compiler backend's chunked
/// [`std::thread::scope`] fan (`compiler::pipeline`); worker count is the
/// machine's available parallelism capped at the item count, and the
/// closure runs inline when that leaves a single worker.
///
/// Shared by the [`Verifier`]'s `--parallel-measure` mode and the bench
/// harnesses.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let mut slots: Vec<Option<U>> = Vec::new();
    slots.resize_with(items.len(), || None);
    let chunk = items.len().div_ceil(workers);
    std::thread::scope(|scope| {
        for (w, (out, inp)) in slots.chunks_mut(chunk).zip(items.chunks(chunk)).enumerate() {
            let f = &f;
            scope.spawn(move || {
                obs::register_thread(&format!("worker-{w}"));
                for (slot, item) in out.iter_mut().zip(inp) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every slot is filled by exactly one worker"))
        .collect()
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The bound column names the target it was certified for
        // (`bound[sz32]`/`bound[rv]`), so two reports of the same program
        // on different machines are never confused for each other.
        let bound_col = format!("bound[{}]", self.target().name());
        let slack_col = format!("slack[{}]", self.target().name());
        writeln!(
            f,
            "{:<24} {bound_col:>12} {:>12} {slack_col:>12}",
            "function", "measured"
        )?;
        for (name, bound) in &self.bounds {
            let (measured, slack) = match self.measured.get(name) {
                Some(m) => (format!("{m} bytes"), format!("{} bytes", bound - m)),
                None => ("-".to_owned(), "-".to_owned()),
            };
            writeln!(
                f,
                "{name:<24} {:>12} {measured:>12} {slack:>12}",
                format!("{bound} bytes")
            )?;
        }
        Ok(())
    }
}

/// An error from the end-to-end pipeline.
#[derive(Debug, Clone)]
pub enum Error {
    /// Parsing or type checking failed.
    Frontend(String),
    /// The automatic analyzer gave up (recursion — use the interactive
    /// logic instead, as in Table 2).
    Analyzer(analyzer::AnalyzerError),
    /// A generated derivation failed to re-check (an analyzer bug).
    Derivation(qhl::QhlError),
    /// Compilation failed.
    Compiler(compiler::CompileError),
    /// The compiler pipeline rejected the run: a pass exceeded its
    /// wall-clock budget or failed its refinement checkpoint (only
    /// possible with a custom [`Verifier::pipeline`] configuration).
    Pipeline(compiler::PipelineError),
    /// The machine run failed (overflow would mean an unsound bound).
    Machine(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Frontend(m) => write!(f, "front end: {m}"),
            Error::Analyzer(e) => write!(f, "analyzer: {e}"),
            Error::Derivation(e) => write!(f, "derivation check: {e}"),
            Error::Compiler(e) => write!(f, "compiler: {e}"),
            Error::Pipeline(e) => write!(f, "compiler pipeline: {e}"),
            Error::Machine(m) => write!(f, "machine: {m}"),
        }
    }
}

impl std::error::Error for Error {}

/// One stage of the end-to-end verification pipeline (the paper's
/// Figure 2 loop): the [`Verifier`] runs these in declaration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Parse and type-check the C source.
    Frontend,
    /// Run the automatic stack analyzer, producing derivations.
    Analyze,
    /// Re-check the generated derivations with the [`qhl`] validator.
    CheckDerivations,
    /// Compile through the quantitative pipeline.
    Compile,
    /// Instantiate the symbolic bounds with the compiler's cost metric.
    Bound,
    /// Execute `main` on the `ASMsz` machine with a stack of exactly the
    /// verified bound and record the measured usage.
    Measure,
}

impl Stage {
    /// Every stage, in execution order.
    pub const ALL: [Stage; 6] = [
        Stage::Frontend,
        Stage::Analyze,
        Stage::CheckDerivations,
        Stage::Compile,
        Stage::Bound,
        Stage::Measure,
    ];

    /// The stage's name as it appears in obs spans and error messages.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Frontend => "frontend",
            Stage::Analyze => "analyze",
            Stage::CheckDerivations => "check-derivations",
            Stage::Compile => "compile",
            Stage::Bound => "bound",
            Stage::Measure => "measure",
        }
    }

    /// Whether the stage may be skipped. The mandatory stages produce the
    /// data every [`Report`] carries; only the re-validation and the
    /// machine run are optional.
    pub fn optional(self) -> bool {
        matches!(self, Stage::CheckDerivations | Stage::Measure)
    }
}

/// A configurable builder for the end-to-end verification pipeline.
///
/// [`verify_program`] is the all-defaults instance of this builder; use
/// the builder directly to skip or configure stages — a no-measure batch
/// mode, a custom interpreter fuel, a refinement-checked or parallel
/// compile:
///
/// ```
/// use stackbound::{Stage, Verifier};
///
/// let report = Verifier::new()
///     .skip(Stage::Measure)             // bound-only batch mode
///     .check_refinement(true)           // per-pass refinement checkpoints
///     .verify("u32 id(u32 x) { return x; }
///              int main() { u32 r; r = id(7); return r; }")
///     .unwrap();
/// assert!(report.bound("main").is_some());
/// assert_eq!(report.measured("main"), None); // measurement was skipped
/// ```
#[derive(Debug, Clone)]
pub struct Verifier {
    fuel: u64,
    params: Vec<(String, u32)>,
    skipped: std::collections::BTreeSet<Stage>,
    pipeline: compiler::PipelineConfig,
    measure_all: bool,
    parallel_measure: bool,
    measure_cache: Option<std::sync::Arc<asm::MeasureCache>>,
    vcache: Option<std::sync::Arc<vcache::VCache>>,
}

impl Default for Verifier {
    fn default() -> Verifier {
        Verifier::new()
    }
}

impl Verifier {
    /// A verifier with the defaults of [`verify_program`]: every stage,
    /// [`DEFAULT_FUEL`], the default compiler pipeline.
    pub fn new() -> Verifier {
        Verifier {
            fuel: DEFAULT_FUEL,
            params: Vec::new(),
            skipped: std::collections::BTreeSet::new(),
            pipeline: compiler::PipelineConfig::default(),
            measure_all: false,
            parallel_measure: false,
            measure_cache: None,
            vcache: None,
        }
    }

    /// Sets the interpreter/machine fuel for the measurement stage.
    #[must_use]
    pub fn fuel(mut self, fuel: u64) -> Verifier {
        self.fuel = fuel;
        self
    }

    /// Adds one compile-time parameter (the paper's section hypotheses,
    /// e.g. `ALEN`).
    #[must_use]
    pub fn param(mut self, name: &str, value: u32) -> Verifier {
        self.params.push((name.to_owned(), value));
        self
    }

    /// Adds compile-time parameters.
    #[must_use]
    pub fn params(mut self, params: &[(&str, u32)]) -> Verifier {
        self.params
            .extend(params.iter().map(|(n, v)| ((*n).to_owned(), *v)));
        self
    }

    /// Skips an [optional](Stage::optional) stage. Skipping a mandatory
    /// stage is ignored: every later stage depends on its output.
    #[must_use]
    pub fn skip(mut self, stage: Stage) -> Verifier {
        if stage.optional() {
            self.skipped.insert(stage);
        }
        self
    }

    /// Convenience for skipping/unskipping [`Stage::Measure`].
    #[must_use]
    pub fn measure(mut self, on: bool) -> Verifier {
        if on {
            self.skipped.remove(&Stage::Measure);
        } else {
            self.skipped.insert(Stage::Measure);
        }
        self
    }

    /// Convenience for skipping/unskipping [`Stage::CheckDerivations`].
    #[must_use]
    pub fn check_derivations(mut self, on: bool) -> Verifier {
        if on {
            self.skipped.remove(&Stage::CheckDerivations);
        } else {
            self.skipped.insert(Stage::CheckDerivations);
        }
        self
    }

    /// Runs the compile stage with per-pass refinement checkpoints
    /// ([`compiler::PipelineConfig::check_refinement`]).
    #[must_use]
    pub fn check_refinement(mut self, on: bool) -> Verifier {
        self.pipeline.check_refinement = on;
        self
    }

    /// Selects the backend target the program is compiled, bounded, and
    /// measured for. The target decides the frame layout, the
    /// return-address convention, and the cost metric the symbolic bounds
    /// are instantiated with, so the certified bounds of the same program
    /// genuinely differ between targets. Defaults to [`asm::Target::Sz32`].
    #[must_use]
    pub fn target(mut self, target: asm::Target) -> Verifier {
        self.pipeline.options.target = target;
        self
    }

    /// Replaces the whole compiler pipeline configuration (budgets,
    /// parallelism, optimization selection, …).
    #[must_use]
    pub fn pipeline(mut self, config: compiler::PipelineConfig) -> Verifier {
        self.pipeline = config;
        self
    }

    /// In the measurement stage, additionally runs every other bounded
    /// zero-parameter function on its own verified bound (each on a fresh
    /// machine). `main` keeps its historical strict semantics — a machine
    /// failure is a verification [`Error::Machine`] — while the extra
    /// functions record a measurement only when they converge cleanly
    /// (e.g. a helper that divides by an uninitialized global is silently
    /// skipped rather than failing the run). Off by default.
    #[must_use]
    pub fn measure_all_functions(mut self, on: bool) -> Verifier {
        self.measure_all = on;
        self
    }

    /// Fans the measurement stage's machine runs across threads with
    /// [`par_map`]. Results are byte-identical to a serial run and land in
    /// the same deterministic name order; only wall clock changes. Pair
    /// with [`Verifier::measure_all_functions`] — with `main` alone there
    /// is nothing to fan.
    #[must_use]
    pub fn parallel_measure(mut self, on: bool) -> Verifier {
        self.parallel_measure = on;
        self
    }

    /// Routes the measurement stage through a shared content-addressed
    /// [`asm::MeasureCache`], so repeated verifications of identical
    /// compiled programs (sweeps, reps, gates) skip the machine runs.
    #[must_use]
    pub fn measure_cache(mut self, cache: std::sync::Arc<asm::MeasureCache>) -> Verifier {
        self.measure_cache = Some(cache);
        self
    }

    /// Routes the analyze, derivation-check, compile, and bound stages
    /// through a shared content-addressed [`vcache::VCache`], so repeated
    /// verifications reuse every per-function artifact whose inputs are
    /// unchanged (and incremental edits recompute only the edited
    /// function plus its transitive callers). Stage output is
    /// byte-identical to an uncached run.
    ///
    /// The cached compile driver does not support per-pass refinement
    /// checkpoints or wall-clock budgets (both whole-program concepts);
    /// when either is configured on [`Verifier::pipeline`], the compile
    /// stage transparently falls back to the regular pass manager while
    /// the other stages keep caching.
    #[must_use]
    pub fn vcache(mut self, cache: std::sync::Arc<vcache::VCache>) -> Verifier {
        self.vcache = Some(cache);
        self
    }

    /// The stages this verifier will run, in order.
    pub fn stages(&self) -> Vec<Stage> {
        Stage::ALL
            .into_iter()
            .filter(|s| !self.skipped.contains(s))
            .collect()
    }

    /// Runs the configured stages on `src` and assembles the [`Report`].
    ///
    /// # Errors
    ///
    /// Any stage can fail; see [`Error`]. Recursive programs are rejected
    /// by the analyzer — verify them interactively with [`qhl`] (the
    /// `interactive_proof` example shows how).
    pub fn verify(&self, src: &str) -> Result<Report, Error> {
        let _span = obs::span("verify/program");
        let mut program = None;
        // Content keys per function, computed once after the front end
        // when a `vcache` is attached.
        let mut keys: Option<BTreeMap<String, vcache::Key>> = None;
        let mut analysis = None;
        let mut compiled: Option<compiler::Compiled> = None;
        let mut bounds = BTreeMap::new();
        let mut measured = BTreeMap::new();
        let mut measurement = None;
        for stage in self.stages() {
            match stage {
                Stage::Frontend => {
                    let params: Vec<(&str, u32)> =
                        self.params.iter().map(|(n, v)| (n.as_str(), *v)).collect();
                    let p = clight::frontend(src, &params).map_err(Error::Frontend)?;
                    if self.vcache.is_some() {
                        keys = Some(vcache::keys(&p, &self.pipeline.options));
                    }
                    program = Some(p);
                }
                Stage::Analyze => {
                    let program = program.as_ref().expect("frontend is mandatory");
                    analysis = Some(match (&self.vcache, &keys) {
                        (Some(cache), Some(keys)) => {
                            vcache::analyze(cache, program, keys).map_err(Error::Analyzer)?
                        }
                        _ => analyzer::analyze(program).map_err(Error::Analyzer)?,
                    });
                }
                Stage::CheckDerivations => {
                    let program = program.as_ref().expect("frontend is mandatory");
                    let analysis = analysis.as_ref().expect("analyze is mandatory");
                    match (&self.vcache, &keys) {
                        (Some(cache), Some(keys)) => {
                            vcache::check(cache, program, analysis, keys)
                                .map_err(Error::Derivation)?;
                        }
                        _ => analysis.check(program).map_err(Error::Derivation)?,
                    }
                }
                Stage::Compile => {
                    let program = program.as_ref().expect("frontend is mandatory");
                    // Refinement checkpoints and budgets are per-pass,
                    // whole-program features of the pass manager; the
                    // incremental driver has no equivalent, so fall back.
                    let incremental =
                        !self.pipeline.check_refinement && self.pipeline.budgets.is_empty();
                    compiled = Some(match (&self.vcache, &keys) {
                        (Some(cache), Some(keys)) if incremental => {
                            vcache::compile(cache, program, &self.pipeline, keys)
                                .map_err(Error::Compiler)?
                        }
                        _ => compiler::Pipeline::new(self.pipeline.clone())
                            .run(program)
                            .map_err(|e| match e {
                                compiler::PipelineError::Compile(e) => Error::Compiler(e),
                                other => Error::Pipeline(other),
                            })?,
                    });
                }
                Stage::Bound => {
                    let _s = obs::span("verify/bounds");
                    let program = program.as_ref().expect("frontend is mandatory");
                    let analysis = analysis.as_ref().expect("analyze is mandatory");
                    let compiled = compiled.as_ref().expect("compile is mandatory");
                    for name in program.function_names() {
                        let bound = match (&self.vcache, &keys) {
                            (Some(cache), Some(keys)) => vcache::concrete_bound(
                                cache,
                                analysis,
                                &compiled.metric,
                                name,
                                keys,
                            ),
                            _ => analysis.concrete_bound(name, &compiled.metric),
                        };
                        if let Some(b) = bound {
                            bounds.insert(name.to_owned(), b as u32);
                        }
                    }
                    obs::counter("verify/bounded_functions", bounds.len() as u64);
                }
                Stage::Measure => {
                    let Some(main_bound) = bounds.get("main").copied() else {
                        continue;
                    };
                    let _s = obs::span("verify/measure");
                    let compiled = compiled.as_ref().expect("compile is mandatory");
                    // `main` first, then (under `measure_all`) every other
                    // bounded zero-parameter function in name order —
                    // `bounds` is a BTreeMap, so the order is deterministic
                    // no matter how the measurements are scheduled.
                    let mut targets: Vec<(&str, u32)> = vec![("main", main_bound)];
                    if self.measure_all {
                        let program = program.as_ref().expect("frontend is mandatory");
                        for (name, b) in &bounds {
                            if name != "main"
                                && program.function(name).is_some_and(|f| f.params.is_empty())
                            {
                                targets.push((name.as_str(), *b));
                            }
                        }
                    }
                    let measure_one = |&(name, bound): &(&str, u32)| {
                        let _s = obs::span_dyn(|| format!("measure/fn/{name}"));
                        match &self.measure_cache {
                            Some(c) => {
                                c.measure_function(&compiled.asm, name, &[], bound, self.fuel)
                            }
                            None => {
                                asm::measure_function(&compiled.asm, name, &[], bound, self.fuel)
                            }
                        }
                    };
                    let results = if self.parallel_measure && targets.len() > 1 {
                        par_map(&targets, measure_one)
                    } else {
                        targets.iter().map(measure_one).collect()
                    };
                    let mut pairs = targets.iter().zip(results);
                    let (_, main_result) = pairs.next().expect("main is always first");
                    let m = main_result.map_err(|e| Error::Machine(e.to_string()))?;
                    if let Some(err) = m.error {
                        return Err(Error::Machine(err.to_string()));
                    }
                    if m.behavior.converges() {
                        measured.insert("main".to_owned(), m.stack_usage);
                    }
                    measurement = Some(m);
                    for (&(name, _), r) in pairs {
                        // Helpers may legitimately fail cold (e.g. reading
                        // globals main initializes); record converging runs
                        // only instead of failing the verification.
                        if let Ok(m) = r {
                            if m.error.is_none() && m.behavior.converges() {
                                measured.insert(name.to_owned(), m.stack_usage);
                            }
                        }
                    }
                }
            }
        }
        Ok(Report {
            bounds,
            measured,
            compiled: compiled.expect("compile is mandatory"),
            analysis: analysis.expect("analyze is mandatory"),
            measurement,
        })
    }
}

/// Runs the complete verified tool of §5: parse, type-check, analyze
/// (generating and re-checking derivations), compile, and derive a
/// concrete verified stack bound for every function. If the program has a
/// `main`, it is additionally executed on the `ASMsz` machine with a stack
/// of exactly the verified bound, and the measured usage is recorded.
///
/// This is the all-defaults instance of [`Verifier`]; use the builder to
/// skip or configure stages.
///
/// # Errors
///
/// Any stage can fail; see [`Error`]. Recursive programs are rejected by
/// the analyzer — verify them interactively with [`qhl`] (the
/// `interactive_proof` example shows how).
pub fn verify_program(src: &str) -> Result<Report, Error> {
    Verifier::new().verify(src)
}

/// [`verify_program`] with compile-time parameters (the paper's `ALEN`
/// section hypotheses).
///
/// # Errors
///
/// See [`verify_program`].
pub fn verify_with_params(src: &str, params: &[(&str, u32)]) -> Result<Report, Error> {
    Verifier::new().params(params).verify(src)
}

#[cfg(test)]
mod par_map_tests {
    use super::par_map;

    #[test]
    fn empty_slice_yields_empty_output() {
        let out: Vec<u32> = par_map(&[] as &[u32], |&x| x + 1);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_runs_inline_and_preserves_value() {
        // One item caps the pool at one worker, so the closure runs on
        // the calling thread.
        let caller = std::thread::current().id();
        let out = par_map(&[41u32], |&x| {
            assert_eq!(std::thread::current().id(), caller);
            x + 1
        });
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn results_land_in_index_order() {
        let items: Vec<u32> = (0..101).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }
}

#[cfg(test)]
mod report_display_tests {
    #[test]
    fn report_table_columns_align() {
        let report = crate::verify_program(
            "u32 leaf(u32 x) { return x + 1; }
             int main() { u32 r; r = leaf(1); return r; }",
        )
        .unwrap();
        let text = report.to_string();

        // Golden shape: three right-aligned 12-wide columns after the name,
        // with `-` sitting in the same column as the measured cells, and a
        // slack column (bound − measured) on the right.
        let leaf = report.bound("leaf").unwrap();
        let main = report.bound("main").unwrap();
        let meas = report.measured("main").unwrap();
        let slack = report.slack("main").unwrap();
        let expected = format!(
            "{:<24} {:>12} {:>12} {:>12}\n{:<24} {:>12} {:>12} {:>12}\n{:<24} {:>12} {:>12} {:>12}\n",
            "function",
            "bound[sz32]",
            "measured",
            "slack[sz32]",
            "leaf",
            format!("{leaf} bytes"),
            "-",
            "-",
            "main",
            format!("{main} bytes"),
            format!("{meas} bytes"),
            format!("{slack} bytes"),
        );
        assert_eq!(text, expected);
        // The call chain leaves exactly main's own pushed return address.
        assert_eq!(slack, 4);

        // Every line (header included) has the same width.
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 3);
        assert!(
            lines.iter().all(|l| l.len() == lines[0].len()),
            "misaligned report:\n{text}"
        );
    }

    #[test]
    fn report_header_names_the_target() {
        let src = "u32 leaf(u32 x) { return x + 1; }
                   int main() { u32 r; r = leaf(1); return r; }";
        let rv = crate::Verifier::new()
            .target(asm::Target::Rv)
            .verify(src)
            .unwrap();
        assert_eq!(rv.target(), asm::Target::Rv);
        let text = rv.to_string();
        assert!(text.contains("bound[rv]"), "missing rv header:\n{text}");
        assert!(text.contains("slack[rv]"), "missing slack header:\n{text}");
        // Alignment holds for the rv header width too.
        let lines: Vec<&str> = text.lines().collect();
        assert!(
            lines.iter().all(|l| l.len() == lines[0].len()),
            "misaligned report:\n{text}"
        );
        // On the link-register machine the bound is exact: zero slack.
        assert_eq!(rv.measured("main"), rv.bound("main"));
        assert_eq!(rv.slack("main"), Some(0));
    }
}
