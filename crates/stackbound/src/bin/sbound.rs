//! `sbound`: the command-line verified stack analyzer.
//!
//! The executable counterpart of the paper's "verified C compiler that …
//! automatically derives a stack bound for each function in the program
//! including main()" (§5).
//!
//! ```text
//! USAGE:
//!     sbound [OPTIONS] <file.c>
//!     sbound serve [--listen ADDR] [--uds PATH] [--stdio] [--workers N]
//!                  [--queue-cap N] [--timeout-ms MS] [--fuel N] [--obs]
//!                  [--cache-dir DIR] [--cache-cap N]
//!     sbound cache-key [--target T]
//!
//! SUBCOMMANDS:
//!     serve             run the cache-resident verification daemon: one
//!                       shared verification + measurement cache, requests
//!                       over line-delimited JSON (TCP, Unix socket, or
//!                       stdio); verbs: verify, table2 (re-check a built-in
//!                       Table 2 case's derivations), metrics, ping,
//!                       shutdown — see DESIGN.md "Verification server"
//!     cache-key         print the compiler-configuration digest that
//!                       scopes a shared `--cache-dir` (CI keys restored
//!                       caches by toolchain + this digest)
//!
//! OPTIONS:
//!     -D <NAME=VALUE>   define a compile-time parameter (repeatable)
//!     --target <T>      backend target: sz32 (default, pushed return
//!                       addresses, M(f) = SF(f) + 4) or rv (link
//!                       register, 8-byte words, M(f) = SF(f))
//!     --run             also execute main() on the ASMsz machine with a
//!                       stack of exactly the verified bound
//!     --no-measure      skip the measurement stage (bound-only batch mode)
//!     --check-refinement run every compiler pass's refinement checkpoint
//!     --parallel        fan per-function compiler passes across threads
//!     --measure-all     also measure every zero-argument function on its
//!                       own verified bound
//!     --parallel-measure fan the machine runs across threads (implies
//!                       --measure-all; results are byte-identical)
//!     --cache-dir <D>   load/save a content-addressed verification cache
//!                       (function-granular; incremental re-verification)
//!     --cache-cap <N>   cap the persisted cache at N entries (least
//!                       recently used keys are evicted from the file)
//!     --lint            re-derive stack bounds from the emitted binary
//!                       with the stacklint abstract interpreter and
//!                       cross-check them against the certified bounds
//!                       (exit 1 on any stack-discipline diagnostic)
//!     --emit-asm        print the generated assembly listing
//!     --metric          print the target's cost metric M(f)
//!     --symbolic        print the symbolic (metric-parametric) bounds
//!     --metrics         print the span tree, counters, and per-function
//!                       hotspots table of the run
//!     --trace-json <F>  write the spans/counters/histograms as JSON lines
//!     --trace-chrome <F> write a Chrome trace-event JSON timeline (one
//!                       track per thread; open in Perfetto/chrome://tracing)
//!     --trace-folded <F> write folded flamegraph stacks (self time)
//!     --profile-stack   print the stack waterline of the main() run
//! ```

use std::process::ExitCode;

struct Options {
    file: Option<String>,
    params: Vec<(String, u32)>,
    target: stackbound::asm::Target,
    run: bool,
    no_measure: bool,
    check_refinement: bool,
    parallel: bool,
    measure_all: bool,
    parallel_measure: bool,
    cache_dir: Option<String>,
    cache_cap: Option<usize>,
    lint: bool,
    emit_asm: bool,
    metric: bool,
    symbolic: bool,
    metrics: bool,
    trace_json: Option<String>,
    trace_chrome: Option<String>,
    trace_folded: Option<String>,
    profile_stack: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: sbound [-D NAME=VALUE]... [--target sz32|rv] [--run] [--no-measure] [--check-refinement] \
         [--parallel] [--measure-all] [--parallel-measure] \
         [--cache-dir DIR] [--cache-cap N] [--lint] [--emit-asm] [--metric] [--symbolic] \
         [--metrics] [--trace-json FILE] [--trace-chrome FILE] \
         [--trace-folded FILE] [--profile-stack] <file.c>\n       \
         sbound serve [--listen ADDR] [--uds PATH] [--stdio] [--workers N] [--queue-cap N] \
         [--timeout-ms MS] [--fuel N] [--obs] [--cache-dir DIR] [--cache-cap N]\n       \
         sbound cache-key [--target sz32|rv]"
    );
    ExitCode::from(2)
}

fn parse_args(mut args: impl Iterator<Item = String>) -> Result<Options, ExitCode> {
    let mut opts = Options {
        file: None,
        params: Vec::new(),
        target: stackbound::asm::Target::default(),
        run: false,
        no_measure: false,
        check_refinement: false,
        parallel: false,
        measure_all: false,
        parallel_measure: false,
        cache_dir: None,
        cache_cap: None,
        lint: false,
        emit_asm: false,
        metric: false,
        symbolic: false,
        metrics: false,
        trace_json: None,
        trace_chrome: None,
        trace_folded: None,
        profile_stack: false,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--run" => opts.run = true,
            "--no-measure" => opts.no_measure = true,
            "--check-refinement" => opts.check_refinement = true,
            "--parallel" => opts.parallel = true,
            "--measure-all" => opts.measure_all = true,
            "--parallel-measure" => {
                opts.measure_all = true;
                opts.parallel_measure = true;
            }
            "--lint" => opts.lint = true,
            "--emit-asm" => opts.emit_asm = true,
            "--metric" => opts.metric = true,
            "--symbolic" => opts.symbolic = true,
            "--metrics" => opts.metrics = true,
            "--profile-stack" => opts.profile_stack = true,
            "--trace-json" => {
                let Some(path) = args.next() else {
                    return Err(usage());
                };
                opts.trace_json = Some(path);
            }
            "--trace-chrome" => {
                let Some(path) = args.next() else {
                    return Err(usage());
                };
                opts.trace_chrome = Some(path);
            }
            "--trace-folded" => {
                let Some(path) = args.next() else {
                    return Err(usage());
                };
                opts.trace_folded = Some(path);
            }
            "--target" => {
                let Some(t) = args.next() else {
                    return Err(usage());
                };
                match t.parse() {
                    Ok(t) => opts.target = t,
                    Err(e) => {
                        eprintln!("sbound: {e}");
                        return Err(usage());
                    }
                }
            }
            "--cache-dir" => {
                let Some(dir) = args.next() else {
                    return Err(usage());
                };
                opts.cache_dir = Some(dir);
            }
            "--cache-cap" => {
                let Some(cap) = args.next().and_then(|c| c.parse().ok()) else {
                    return Err(usage());
                };
                opts.cache_cap = Some(cap);
            }
            "-D" => {
                let Some(def) = args.next() else {
                    return Err(usage());
                };
                let Some((name, value)) = def.split_once('=') else {
                    eprintln!("sbound: bad definition `{def}` (expected NAME=VALUE)");
                    return Err(usage());
                };
                let Ok(value) = value.parse::<u32>() else {
                    eprintln!("sbound: `{value}` is not an unsigned integer");
                    return Err(usage());
                };
                opts.params.push((name.to_owned(), value));
            }
            "-h" | "--help" => return Err(usage()),
            _ if arg.starts_with('-') => {
                eprintln!("sbound: unknown option `{arg}`");
                return Err(usage());
            }
            _ if opts.file.is_none() => opts.file = Some(arg),
            _ => return Err(usage()),
        }
    }
    if opts.file.is_none() {
        return Err(usage());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1).peekable();
    match args.peek().map(String::as_str) {
        Some("serve") => return serve_main(args.skip(1)),
        Some("cache-key") => return cache_key_main(args.skip(1)),
        _ => {}
    }
    let opts = match parse_args(args) {
        Ok(o) => o,
        Err(code) => return code,
    };
    let file = opts.file.expect("checked in parse_args");
    let source = match std::fs::read_to_string(&file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sbound: cannot read `{file}`: {e}");
            return ExitCode::FAILURE;
        }
    };
    let params: Vec<(&str, u32)> = opts.params.iter().map(|(n, v)| (n.as_str(), *v)).collect();

    let tracing = opts.metrics
        || opts.trace_json.is_some()
        || opts.trace_chrome.is_some()
        || opts.trace_folded.is_some();
    let session = tracing.then(obs::install);

    let pipeline = stackbound::compiler::PipelineConfig {
        check_refinement: opts.check_refinement,
        parallel: opts.parallel,
        options: stackbound::compiler::Options::for_target(opts.target),
        ..stackbound::compiler::PipelineConfig::default()
    };
    // With `--cache-dir`, route the verification and measurement stages
    // through shared content-addressed caches, warmed from disk.
    let vcache = opts.cache_dir.as_ref().map(|dir| {
        let cache = std::sync::Arc::new(stackbound::vcache::VCache::new());
        cache.set_disk_cap(opts.cache_cap);
        if let Err(e) = cache.load_dir(std::path::Path::new(dir)) {
            eprintln!("sbound: cannot load cache from `{dir}`: {e}");
        }
        cache
    });
    let measure_cache = opts
        .cache_dir
        .is_some()
        .then(|| std::sync::Arc::new(stackbound::asm::MeasureCache::new()));

    let mut verifier = stackbound::Verifier::new()
        .params(&params)
        .measure(!opts.no_measure)
        .measure_all_functions(opts.measure_all)
        .parallel_measure(opts.parallel_measure)
        .pipeline(pipeline);
    if let Some(cache) = &vcache {
        verifier = verifier.vcache(cache.clone());
    }
    if let Some(cache) = &measure_cache {
        verifier = verifier.measure_cache(cache.clone());
    }
    let report = match verifier.verify(&source) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sbound: {file}: {e}");
            if matches!(
                e,
                stackbound::Error::Analyzer(analyzer::AnalyzerError::Recursion { .. })
            ) {
                eprintln!(
                    "sbound: hint: recursive functions need an interactive derivation; \
                     see the `interactive_proof` example"
                );
            }
            return ExitCode::FAILURE;
        }
    };

    println!("{file}: verified stack bounds [{}]", report.target());
    for (name, bound) in report.bounds() {
        if opts.symbolic {
            let symbolic = report
                .analysis
                .bound(name)
                .map(|b| b.to_string())
                .unwrap_or_default();
            println!("    {name:<24} {bound:>8} bytes    = M({name}) + {symbolic}");
        } else {
            println!("    {name:<24} {bound:>8} bytes");
        }
    }

    if opts.metric {
        let allowance = opts.target.call_allowance();
        match allowance {
            0 => println!("\ncost metric for {} (Mach frame sizes):", opts.target),
            a => println!(
                "\ncost metric for {} (Mach frame sizes + {a}):",
                opts.target
            ),
        }
        for (f, c) in report.compiled.metric.iter() {
            println!("    M({f}) = {c}");
        }
    }

    if opts.run {
        match (report.bound("main"), report.measured("main")) {
            (Some(bound), Some(measured)) => {
                println!("\nmain() ran on a {bound}-byte stack: peak usage {measured} bytes");
            }
            _ => println!("\nmain() was not executed (no main or it diverged)"),
        }
    }

    if opts.measure_all {
        println!("\nmeasured peak usage (each function on its own bound):");
        for (name, usage) in report.measured_usages() {
            println!("    {name:<24} {usage:>8} bytes");
        }
    }

    let mut lint_failed = false;
    if opts.lint {
        let lint = stackbound::stacklint::analyze(&report.compiled.asm);
        if !lint.is_clean() {
            lint_failed = true;
            println!("\nstack-discipline diagnostics:");
            for d in &lint.diagnostics {
                println!("    {d}");
            }
        }
        println!(
            "\nbinary stack analysis [{}] (measured <= binary <= certified):",
            report.target()
        );
        println!(
            "    {:<24} {:>12} {:>12} {:>12} {:>12}",
            "function", "measured", "binary", "certified", "slack"
        );
        for (name, verdict) in &lint.verdicts {
            let cell = |v: Option<u32>| match v {
                Some(b) => format!("{b} bytes"),
                None => "-".to_owned(),
            };
            match verdict {
                stackbound::stacklint::Verdict::Bounded(b) => println!(
                    "    {name:<24} {:>12} {:>12} {:>12} {:>12}",
                    cell(report.measured(name)),
                    format!("{b} bytes"),
                    cell(report.bound(name)),
                    cell(report.slack(name)),
                ),
                recursive => println!("    {name:<24} {recursive}"),
            }
        }
    }

    if opts.emit_asm {
        println!("\n{}", report.compiled.asm.listing());
    }

    if opts.profile_stack {
        match &report.measurement {
            Some(m) => {
                println!("\nstack waterline of main() ({} steps):", m.steps);
                print!("{}", m.profile.render());
            }
            None => println!("\nno stack waterline: main() was not executed"),
        }
    }

    if let (Some(cache), Some(dir)) = (&vcache, &opts.cache_dir) {
        if let Err(e) = cache.save_dir(std::path::Path::new(dir)) {
            eprintln!("sbound: cannot save cache to `{dir}`: {e}");
        }
    }

    if let Some(session) = session {
        let obs_report = obs::report().unwrap_or_default();
        drop(session);
        let exports = [
            (
                &opts.trace_json,
                obs::Report::to_json_lines as fn(&obs::Report) -> String,
            ),
            (&opts.trace_chrome, obs::Report::to_chrome_trace),
            (&opts.trace_folded, obs::Report::to_folded_stacks),
        ];
        for (path, export) in exports {
            if let Some(path) = path {
                if let Err(e) = std::fs::write(path, export(&obs_report)) {
                    eprintln!("sbound: cannot write `{path}`: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        if opts.metrics {
            println!("\n{}", obs_report.render_tree());
            let hotspots = obs_report.render_hotspots();
            if !hotspots.is_empty() {
                println!("{hotspots}");
            }
            if let Some(cache) = &vcache {
                println!("verification cache ({} entries):", cache.len());
                for stage in stackbound::vcache::CacheStage::ALL {
                    let (hits, misses) = cache.stats(stage);
                    let rate = cache
                        .hit_rate(stage)
                        .map(|r| format!("{:.1}%", r * 100.0))
                        .unwrap_or_else(|| "-".to_owned());
                    println!(
                        "    {:<10} {hits:>6} hits {misses:>6} misses  hit rate {rate:>6}",
                        stage.name()
                    );
                }
            }
            if let Some(cache) = &measure_cache {
                let (hits, misses) = cache.stats();
                let rate = cache
                    .hit_rate()
                    .map(|r| format!("{:.1}%", r * 100.0))
                    .unwrap_or_else(|| "-".to_owned());
                println!(
                    "measure cache: {} entries, {hits} hits {misses} misses  hit rate {rate:>6}",
                    cache.len()
                );
            }
        }
    }
    if lint_failed {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `sbound cache-key`: prints the digest that scopes shared cache
/// storage — two machines may share a `--cache-dir` exactly when their
/// toolchain fingerprint and this digest agree.
fn cache_key_main(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut target = stackbound::asm::Target::default();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--target" => {
                let Some(t) = args.next() else {
                    return usage();
                };
                match t.parse() {
                    Ok(t) => target = t,
                    Err(e) => {
                        eprintln!("sbound: {e}");
                        return usage();
                    }
                }
            }
            _ => {
                eprintln!("sbound: cache-key: unknown option `{arg}`");
                return usage();
            }
        }
    }
    let options = stackbound::compiler::Options::for_target(target);
    println!("{}", stackbound::vcache::config_digest(&options));
    ExitCode::SUCCESS
}

/// `sbound serve`: the cache-resident verification daemon.
fn serve_main(mut args: impl Iterator<Item = String>) -> ExitCode {
    use stackbound::serve::{ServeOptions, Server, Session};

    let mut listen: Option<String> = None;
    let mut uds: Option<String> = None;
    let mut stdio = false;
    let mut cache_dir: Option<String> = None;
    let mut cache_cap: Option<usize> = None;
    let mut obs_on = false;
    let mut opts = ServeOptions::default();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--stdio" => stdio = true,
            "--obs" => obs_on = true,
            "--listen" | "--uds" | "--cache-dir" => {
                let Some(value) = args.next() else {
                    return usage();
                };
                match arg.as_str() {
                    "--listen" => listen = Some(value),
                    "--uds" => uds = Some(value),
                    _ => cache_dir = Some(value),
                }
            }
            "--workers" | "--queue-cap" | "--timeout-ms" | "--fuel" | "--cache-cap" => {
                let Some(n) = args.next().and_then(|n| n.parse::<u64>().ok()) else {
                    return usage();
                };
                match arg.as_str() {
                    "--workers" => opts.workers = n as usize,
                    "--queue-cap" => opts.queue_cap = n as usize,
                    "--timeout-ms" => opts.timeout = std::time::Duration::from_millis(n),
                    "--fuel" => opts.fuel = n,
                    _ => cache_cap = Some(n as usize),
                }
            }
            _ => {
                eprintln!("sbound: serve: unknown option `{arg}`");
                return usage();
            }
        }
    }
    if stdio as usize + listen.is_some() as usize + uds.is_some() as usize > 1 {
        eprintln!("sbound: serve: --listen, --uds, and --stdio are mutually exclusive");
        return usage();
    }

    // A long-lived recorder grows without bound, so obs is opt-in; the
    // `metrics` verb reports `"obs":null` without it.
    let _session = obs_on.then(obs::install);

    let mut session = Session::new();
    if let Some(dir) = &cache_dir {
        let cache = std::sync::Arc::new(stackbound::vcache::VCache::new());
        cache.set_disk_cap(cache_cap);
        if let Err(e) = cache.load_dir(std::path::Path::new(dir)) {
            eprintln!("sbound: cannot load cache from `{dir}`: {e}");
        }
        session = session.vcache(cache);
    }
    let server = Server::new(session, opts);

    // Protocol answers own stdout under --stdio, so status goes to stderr.
    let result = if stdio {
        server.run_stream(std::io::stdin().lock(), std::io::stdout());
        Ok(())
    } else if let Some(path) = uds {
        let _ = std::fs::remove_file(&path); // stale socket from a dead server
        match std::os::unix::net::UnixListener::bind(&path) {
            Ok(listener) => {
                eprintln!("sbound: serving on {path}");
                let r = server.run_uds(listener);
                let _ = std::fs::remove_file(&path);
                r
            }
            Err(e) => Err(e),
        }
    } else {
        let addr = listen.as_deref().unwrap_or("127.0.0.1:7777");
        match std::net::TcpListener::bind(addr) {
            Ok(listener) => {
                match listener.local_addr() {
                    Ok(a) => eprintln!("sbound: serving on {a}"),
                    Err(_) => eprintln!("sbound: serving on {addr}"),
                }
                server.run_tcp(listener)
            }
            Err(e) => Err(e),
        }
    };
    if let Err(e) = result {
        eprintln!("sbound: serve: {e}");
        return ExitCode::FAILURE;
    }

    if let Some(dir) = &cache_dir {
        if let Err(e) = server.session().cache().save_dir(std::path::Path::new(dir)) {
            eprintln!("sbound: cannot save cache to `{dir}`: {e}");
        }
    }
    ExitCode::SUCCESS
}
