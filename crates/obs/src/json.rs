//! The JSON-lines exporter and a minimal validating JSON parser.
//!
//! One JSON object per line; the `k` field discriminates the record kind:
//!
//! ```text
//! {"k":"thread","tid":0,"name":"main"}
//! {"k":"span","id":0,"parent":null,"tid":0,"name":"verify","start_ns":12,
//!  "dur_ns":3456,"counters":{"clight/tokens":42}}
//! {"k":"counter","name":"qhl/rule/Q:SEQ","value":17}
//! {"k":"hist","name":"asm/stack_depth","count":9,"min":0,"max":48,"sum":212,
//!  "buckets":[[0,1],[6,8]]}
//! ```
//!
//! Span `id`s are depth-first preorder indices; `parent` is the parent's
//! `id` or `null` for roots, so consumers can rebuild the tree without
//! relying on line order. `tid` is the span's timeline (thread) id;
//! `thread` records map registered timeline labels. Histogram buckets
//! are `[bit_length, count]` pairs — bucket `b` covers values whose
//! binary length is `b`.
//!
//! The [`parse`] function implements just enough of RFC 8259 to validate
//! and inspect these lines in tests without external dependencies.

use crate::record::{Report, SpanNode};
use std::collections::BTreeMap;
use std::fmt::Write;

impl Report {
    /// Serializes the whole report as JSON-lines (spans depth-first, then
    /// counters, then histograms).
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for (tid, name) in &self.threads {
            let _ = writeln!(
                out,
                "{{\"k\":\"thread\",\"tid\":{tid},\"name\":{}}}",
                escape(name)
            );
        }
        let mut next_id = 0usize;
        for root in &self.roots {
            write_span(&mut out, root, None, &mut next_id);
        }
        for (name, value) in &self.counters {
            let _ = writeln!(
                out,
                "{{\"k\":\"counter\",\"name\":{},\"value\":{value}}}",
                escape(name)
            );
        }
        for (name, h) in &self.histograms {
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &n)| n > 0)
                .map(|(i, &n)| format!("[{i},{n}]"))
                .collect();
            let _ = writeln!(
                out,
                "{{\"k\":\"hist\",\"name\":{},\"count\":{},\"min\":{},\"max\":{},\"sum\":{},\"buckets\":[{}]}}",
                escape(name),
                h.count,
                if h.count == 0 { 0 } else { h.min },
                h.max,
                h.sum,
                buckets.join(","),
            );
        }
        out
    }
}

fn write_span(out: &mut String, node: &SpanNode, parent: Option<usize>, next_id: &mut usize) {
    let id = *next_id;
    *next_id += 1;
    let counters: Vec<String> = node
        .counters
        .iter()
        .map(|(k, v)| format!("{}:{v}", escape(k)))
        .collect();
    let parent_str = parent.map_or("null".to_owned(), |p| p.to_string());
    let _ = writeln!(
        out,
        "{{\"k\":\"span\",\"id\":{id},\"parent\":{parent_str},\"tid\":{},\"name\":{},\"start_ns\":{},\"dur_ns\":{},\"counters\":{{{}}}}}",
        node.tid,
        escape(&node.name),
        node.start_ns,
        node.duration_ns,
        counters.join(","),
    );
    for child in &node.children {
        write_span(out, child, Some(id), next_id);
    }
}

pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (key order dropped).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses one complete JSON document (e.g. one exporter line).
///
/// # Errors
///
/// Returns a byte offset and message for malformed input or trailing
/// garbage.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn lit(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'n' => self.lit("null", Value::Null),
            b't' => self.lit("true", Value::Bool(true)),
            b'f' => self.lit("false", Value::Bool(false)),
            b'"' => Ok(Value::String(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            c => Err(self.err(&format!("unexpected byte `{}`", c as char))),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.eat(b'{')?;
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            members.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or_else(|| self.err("unterminated string"))? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    let start = self.pos;
                    while !matches!(self.peek(), None | Some(b'"' | b'\\')) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid utf-8"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err(&format!("bad number `{text}`")))
    }
}
