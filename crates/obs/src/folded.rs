//! The folded-stacks exporter (`sbound --trace-folded`).
//!
//! One line per distinct span stack, in Brendan Gregg's folded format:
//!
//! ```text
//! main;verify/program;compiler/compile;compiler/machgen 48210
//! ```
//!
//! The leading frame is the thread label, so every worker timeline
//! becomes its own flame tower. The trailing number is the stack's
//! *self* time in nanoseconds — the span's duration minus its
//! children's — which is exactly what `flamegraph.pl` / `inferno`
//! expect as the sample weight.

use crate::record::{Report, SpanNode};
use std::collections::BTreeMap;
use std::fmt::Write;

impl Report {
    /// Serializes the span timelines as folded stacks, self time in
    /// nanoseconds, one stack per line, lexicographically sorted (so the
    /// output is deterministic and diff-friendly).
    pub fn to_folded_stacks(&self) -> String {
        let mut agg: BTreeMap<String, u64> = BTreeMap::new();
        for root in &self.roots {
            fold(&mut agg, &self.thread_label(root.tid), root);
        }
        let mut out = String::new();
        for (stack, self_ns) in &agg {
            let _ = writeln!(out, "{stack} {self_ns}");
        }
        out
    }
}

fn fold(agg: &mut BTreeMap<String, u64>, prefix: &str, node: &SpanNode) {
    let stack = format!("{prefix};{}", node.name);
    let child_ns: u64 = node.children.iter().map(|c| c.duration_ns).sum();
    let self_ns = node.duration_ns.saturating_sub(child_ns);
    if self_ns > 0 {
        *agg.entry(stack.clone()).or_insert(0) += self_ns;
    }
    for child in &node.children {
        fold(agg, &stack, child);
    }
}
