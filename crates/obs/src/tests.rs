use crate::json::{parse, Value};
use std::sync::Mutex;

/// The recorder is process-global; serialize the tests that install it.
static GLOBAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GLOBAL.lock().unwrap_or_else(|p| p.into_inner())
}

#[test]
fn disabled_recorder_records_nothing() {
    let _g = lock();
    crate::uninstall();
    {
        let _span = crate::span("should-not-appear");
        crate::counter("nope", 1);
        crate::observe("nope", 1);
        crate::register_thread("nope");
    }
    let _session = crate::install();
    assert!(crate::report().is_none());
}

#[test]
fn spans_nest_and_counters_attribute_to_the_innermost() {
    let _g = lock();
    let _session = crate::install();
    {
        let _outer = crate::span("outer");
        crate::counter("outer_work", 2);
        {
            let _inner = crate::span_dyn(|| "inner/dynamic".to_owned());
            crate::counter("inner_work", 3);
            crate::counter("inner_work", 4);
        }
    }
    crate::counter_dyn("global_only", 5);
    crate::observe("sizes", 0);
    crate::observe("sizes", 9);

    let report = crate::report().unwrap();
    assert_eq!(report.roots.len(), 1);
    let outer = &report.roots[0];
    assert_eq!(outer.name, "outer");
    assert!(outer.duration_ns > 0);
    assert_eq!(outer.counters.get("outer_work"), Some(&2));
    assert_eq!(outer.children.len(), 1);
    let inner = &outer.children[0];
    assert_eq!(inner.name, "inner/dynamic");
    assert_eq!(inner.counters.get("inner_work"), Some(&7));
    assert!(inner.duration_ns <= outer.duration_ns);
    // Single-threaded recording lives on one timeline, labeled `main`.
    assert_eq!(inner.tid, outer.tid);
    assert_eq!(report.thread_ids(), vec![outer.tid]);
    assert_eq!(report.thread_label(outer.tid), "main");

    // Globals aggregate across spans.
    assert_eq!(report.counters.get("inner_work"), Some(&7));
    assert_eq!(report.counters.get("global_only"), Some(&5));
    let h = &report.histograms["sizes"];
    assert_eq!((h.count, h.min, h.max, h.sum), (2, 0, 9, 9));

    let tree = report.render_tree();
    assert!(tree.contains("outer"), "{tree}");
    assert!(tree.contains("inner/dynamic"), "{tree}");
    assert!(tree.contains("inner_work = 7"), "{tree}");
    assert!(tree.contains("sizes: n=2"), "{tree}");
}

#[test]
fn json_lines_are_parseable_and_reconstruct_the_tree() {
    let _g = lock();
    let _session = crate::install();
    {
        let _a = crate::span("a \"quoted\" name");
        let _b = crate::span("a/b");
        crate::counter("edge\ncount", 1);
    }
    crate::observe("depths", 5);
    let report = crate::report().unwrap();
    let lines: Vec<Value> = report
        .to_json_lines()
        .lines()
        .map(|l| parse(l).unwrap_or_else(|e| panic!("{e}: {l}")))
        .collect();
    // 1 thread label (main), 2 spans, 1 counter, 1 histogram.
    assert_eq!(lines.len(), 5);

    let threads: Vec<&Value> = lines
        .iter()
        .filter(|v| v.get("k").and_then(Value::as_str) == Some("thread"))
        .collect();
    assert_eq!(threads.len(), 1);
    assert_eq!(threads[0].get("name").and_then(Value::as_str), Some("main"));

    let spans: Vec<&Value> = lines
        .iter()
        .filter(|v| v.get("k").and_then(Value::as_str) == Some("span"))
        .collect();
    assert_eq!(spans.len(), 2);
    assert_eq!(
        spans[0].get("name").and_then(Value::as_str),
        Some("a \"quoted\" name")
    );
    assert_eq!(spans[0].get("parent"), Some(&Value::Null));
    assert_eq!(spans[1].get("parent").and_then(Value::as_f64), Some(0.0));
    // Both spans carry the recording timeline's id.
    assert_eq!(
        spans[0].get("tid").and_then(Value::as_f64),
        threads[0].get("tid").and_then(Value::as_f64)
    );

    let hist = lines
        .iter()
        .find(|v| v.get("k").and_then(Value::as_str) == Some("hist"))
        .unwrap();
    assert_eq!(hist.get("max").and_then(Value::as_f64), Some(5.0));
}

#[test]
fn reinstall_resets_state() {
    let _g = lock();
    let _s1 = crate::install();
    crate::counter("old", 1);
    let _s2 = crate::install();
    crate::counter("new", 1);
    let report = crate::report().unwrap();
    assert!(!report.counters.contains_key("old"));
    assert!(report.counters.contains_key("new"));
}

#[test]
fn span_guard_from_previous_session_is_inert() {
    let _g = lock();
    let _s1 = crate::install();
    let stale = crate::span("from-session-one");
    let _s2 = crate::install();
    {
        let _fresh = crate::span("fresh");
        drop(stale); // must not close or corrupt `fresh`
        crate::counter("inside_fresh", 1);
    }
    let report = crate::report().unwrap();
    assert_eq!(report.roots.len(), 1);
    assert_eq!(report.roots[0].name, "fresh");
    assert_eq!(report.roots[0].counters.get("inside_fresh"), Some(&1));
    assert!(report.roots[0].duration_ns > 0);
}

#[test]
fn session_drop_uninstalls() {
    let _g = lock();
    {
        let _session = crate::install();
        assert!(crate::is_enabled());
    }
    assert!(!crate::is_enabled());
}

#[test]
fn json_parser_handles_rfc_shapes_and_rejects_garbage() {
    assert_eq!(parse("null").unwrap(), Value::Null);
    assert_eq!(
        parse(" [1, -2.5e1, \"x\"] ").unwrap(),
        Value::Array(vec![
            Value::Number(1.0),
            Value::Number(-25.0),
            Value::String("x".into()),
        ])
    );
    assert_eq!(
        parse("{\"a\": {\"b\": [true, false]}}")
            .unwrap()
            .get("a")
            .and_then(|a| a.get("b")),
        Some(&Value::Array(vec![Value::Bool(true), Value::Bool(false)]))
    );
    assert_eq!(
        parse("\"\\u0041\\n\"").unwrap(),
        Value::String("A\n".into())
    );
    for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
        assert!(parse(bad).is_err(), "accepted {bad:?}");
    }
}

/// Satellite: concurrent recording. Spans opened by `thread::scope`
/// workers must land on distinct timelines, nest correctly *per thread*,
/// and survive the Chrome-trace round trip with no interleaving
/// corruption.
#[test]
fn concurrent_spans_land_on_distinct_thread_timelines() {
    use std::sync::Barrier;

    const WORKERS: usize = 4;
    let _g = lock();
    let _session = crate::install();

    // All workers hold their outer span open at the same time, so a
    // single shared open-stack would interleave them; per-thread stacks
    // must keep each worker's inner span under its own outer span.
    let barrier = Barrier::new(WORKERS);
    std::thread::scope(|scope| {
        for w in 0..WORKERS {
            let barrier = &barrier;
            scope.spawn(move || {
                crate::register_thread(&format!("worker-{w}"));
                let _outer = crate::span_dyn(|| format!("outer-{w}"));
                barrier.wait();
                {
                    let _inner = crate::span_dyn(|| format!("inner-{w}"));
                    crate::counter_dyn(&format!("work-{w}"), (w + 1) as u64);
                }
                barrier.wait();
            });
        }
    });

    let report = crate::report().unwrap();
    assert_eq!(report.roots.len(), WORKERS, "one root per worker timeline");
    let mut tids = Vec::new();
    for root in &report.roots {
        let w: usize = root.name.strip_prefix("outer-").unwrap().parse().unwrap();
        tids.push(root.tid);
        // Nesting is per thread: each outer span holds exactly its own
        // worker's inner span, and the attributed counter sits on it.
        assert_eq!(root.children.len(), 1, "outer-{w} children");
        let inner = &root.children[0];
        assert_eq!(inner.name, format!("inner-{w}"));
        assert_eq!(inner.tid, root.tid);
        assert_eq!(
            inner.counters.get(&format!("work-{w}")),
            Some(&((w + 1) as u64))
        );
        assert_eq!(report.thread_label(root.tid), format!("worker-{w}"));
    }
    tids.sort_unstable();
    tids.dedup();
    assert_eq!(tids.len(), WORKERS, "each worker has its own timeline");

    // The Chrome export round-trips through the in-crate parser and
    // reproduces every (tid, name) pair exactly once.
    let trace = report.to_chrome_trace();
    let doc = parse(&trace).unwrap_or_else(|e| panic!("invalid chrome trace: {e}"));
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    let mut exported: Vec<(u64, String)> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
        .map(|e| {
            (
                e.get("tid").and_then(Value::as_f64).unwrap() as u64,
                e.get("name").and_then(Value::as_str).unwrap().to_owned(),
            )
        })
        .collect();
    let mut recorded: Vec<(u64, String)> = Vec::new();
    for root in &report.roots {
        recorded.push((root.tid, root.name.clone()));
        for c in &root.children {
            recorded.push((c.tid, c.name.clone()));
        }
    }
    exported.sort();
    recorded.sort();
    assert_eq!(exported, recorded, "chrome export lost or invented spans");

    // Every worker label made it out as a thread_name metadata record.
    let labels: Vec<&str> = events
        .iter()
        .filter(|e| {
            e.get("ph").and_then(Value::as_str) == Some("M")
                && e.get("name").and_then(Value::as_str) == Some("thread_name")
        })
        .map(|e| {
            e.get("args")
                .and_then(|a| a.get("name"))
                .and_then(Value::as_str)
                .unwrap()
        })
        .collect();
    for w in 0..WORKERS {
        let name = format!("worker-{w}");
        assert!(labels.contains(&name.as_str()), "{name} not in {labels:?}");
    }
}

#[test]
fn chrome_trace_is_valid_json_with_counters_and_timestamps() {
    let _g = lock();
    let _session = crate::install();
    {
        let _a = crate::span("phase \"a\"");
        crate::counter("steps", 41);
        let _b = crate::span("phase/b");
    }
    crate::counter("steps", 1);
    let report = crate::report().unwrap();
    let doc = parse(&report.to_chrome_trace()).unwrap();
    let events = doc.get("traceEvents").and_then(Value::as_array).unwrap();
    // 2 metadata (name + sort) + 2 spans + 1 counter event.
    assert_eq!(events.len(), 5);
    let span = events
        .iter()
        .find(|e| e.get("name").and_then(Value::as_str) == Some("phase \"a\""))
        .unwrap();
    assert!(span.get("ts").and_then(Value::as_f64).is_some());
    assert!(span.get("dur").and_then(Value::as_f64).unwrap() >= 0.0);
    assert_eq!(
        span.get("args")
            .and_then(|a| a.get("steps"))
            .and_then(Value::as_f64),
        Some(41.0)
    );
    let counter = events
        .iter()
        .find(|e| e.get("ph").and_then(Value::as_str) == Some("C"))
        .unwrap();
    assert_eq!(
        counter
            .get("args")
            .and_then(|a| a.get("value"))
            .and_then(Value::as_f64),
        Some(42.0)
    );
}

#[test]
fn folded_stacks_attribute_self_time_per_thread() {
    let _g = lock();
    let _session = crate::install();
    {
        let _outer = crate::span("outer");
        std::thread::sleep(std::time::Duration::from_millis(2));
        let _inner = crate::span("inner");
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let report = crate::report().unwrap();
    let folded = report.to_folded_stacks();
    let mut lines = folded.lines();
    let (outer_line, inner_line) = (lines.next().unwrap(), lines.next().unwrap());
    assert!(outer_line.starts_with("main;outer "), "{folded}");
    assert!(inner_line.starts_with("main;outer;inner "), "{folded}");
    let self_ns = |l: &str| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap();
    let (outer_self, inner_self) = (self_ns(outer_line), self_ns(inner_line));
    assert!(inner_self >= 1_000_000, "inner slept ≥1ms: {folded}");
    // Self time excludes the child: outer's line covers only its own ~2ms.
    let outer_total = report.roots[0].duration_ns;
    assert_eq!(
        outer_self,
        outer_total - report.roots[0].children[0].duration_ns
    );
}

#[test]
fn hotspots_aggregate_fn_spans_exclusively() {
    let _g = lock();
    let _session = crate::install();
    {
        // vcache wrapper around the analyzer's own span for the same
        // function: the analyzer slice must not be double counted.
        let _w = crate::span_dyn(|| "vcache/analyze/fn/alpha".to_owned());
        std::thread::sleep(std::time::Duration::from_millis(1));
        {
            let _a = crate::span_dyn(|| "analyzer/fn/alpha".to_owned());
            crate::counter("analyzer/derivation_nodes", 7);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }
    {
        let _m = crate::span_dyn(|| "measure/fn/alpha".to_owned());
        crate::counter("machine/steps", 900);
        crate::counter("asm/cache_hit", 2);
        crate::counter("asm/cache_miss", 1);
    }
    {
        let _b = crate::span_dyn(|| "measure/fn/beta".to_owned());
        crate::counter("machine/steps", 10);
    }
    let report = crate::report().unwrap();
    let spots = report.hotspots();
    assert_eq!(spots.len(), 2);
    // alpha slept ~2ms total, beta ~0: ranked first.
    assert_eq!(spots[0].function, "alpha");
    let alpha = &spots[0];
    let wrapper = alpha.stages.get("vcache/analyze").copied().unwrap();
    let analyzer = alpha.stages.get("analyzer").copied().unwrap();
    let measure = alpha.stages.get("measure").copied().unwrap();
    assert_eq!(alpha.total_ns, wrapper + analyzer + measure);
    // Exclusive attribution: the wrapper's slice excludes the nested
    // analyzer span, so the total is less than wall-of-wrapper + analyzer
    // double counted.
    assert!(analyzer >= 1_000_000);
    assert!(wrapper >= 1_000_000);
    assert_eq!(alpha.steps(), 900);
    assert_eq!(alpha.cache_stats(), (2, 1));
    assert_eq!(alpha.counters.get("analyzer/derivation_nodes"), Some(&7));

    let rendered = report.render_hotspots();
    assert!(rendered.contains("alpha"), "{rendered}");
    assert!(rendered.contains("beta"), "{rendered}");
    for col in ["analyze", "measure", "steps", "hit", "miss"] {
        assert!(rendered.contains(col), "missing `{col}`:\n{rendered}");
    }
    // Only stage groups with attributed time get a column.
    assert!(!rendered.contains("check"), "{rendered}");
    assert!(!rendered.contains("compile"), "{rendered}");
}

#[test]
fn histogram_percentiles_follow_log2_buckets() {
    let mut h = crate::Histogram::from_parts(0, 0, 0, 0, Vec::new());
    assert_eq!(h.percentile(50.0), 0);
    for v in 1..=100u64 {
        h.record(v);
    }
    assert_eq!(h.count, 100);
    // p50 falls in the bucket of 50 (bit length 6 → values 32..=63).
    assert_eq!(h.percentile(50.0), 63);
    // p95 and p99 fall in the top bucket, clamped to the observed max.
    assert_eq!(h.percentile(95.0), 100);
    assert_eq!(h.percentile(99.0), 100);
    assert_eq!(h.percentile(100.0), 100);
    // p1 falls in the first bucket, clamped up to the observed min.
    assert_eq!(h.percentile(1.0), 1);

    let mut zeros = crate::Histogram::from_parts(0, 0, 0, 0, Vec::new());
    zeros.record(0);
    assert_eq!(zeros.percentile(99.0), 0);
}

#[test]
fn live_snapshots_are_non_destructive_and_monotone() {
    let _g = lock();
    let _session = crate::install();

    fn span_count(node: &crate::SpanNode) -> usize {
        1 + node.children.iter().map(span_count).sum::<usize>()
    }
    fn totals(r: &crate::Report) -> (usize, u64, u64) {
        (
            r.roots.iter().map(span_count).sum(),
            r.counters.values().sum(),
            r.histograms.values().map(|h| h.count).sum(),
        )
    }

    let _outer = crate::span("serve/session"); // stays open across snapshots
    {
        let _s = crate::span("serve/request");
        crate::counter("serve/requests", 2);
        crate::observe("serve/latency_us", 100);
    }
    let first = crate::snapshot().expect("recorded data");

    // Taking a snapshot drains nothing: the recorder is still enabled and
    // keeps accumulating on top of what the first snapshot saw.
    assert!(crate::is_enabled());
    {
        let _s = crate::span("serve/request");
        crate::counter("serve/requests", 1);
        crate::observe("serve/latency_us", 70);
    }
    let second = crate::snapshot().expect("recorded data");

    let (spans1, counters1, obs1) = totals(&first);
    let (spans2, counters2, obs2) = totals(&second);
    assert!(
        spans2 > spans1,
        "span count must grow: {spans1} -> {spans2}"
    );
    assert_eq!(counters1, 2);
    assert_eq!(counters2, 3);
    assert_eq!(obs1, 1);
    assert_eq!(obs2, 2);

    // Monotonicity key by key: every counter present in the first
    // snapshot is present in the second with a value at least as large.
    for (name, &v1) in &first.counters {
        let v2 = second.counters.get(name).copied().unwrap_or(0);
        assert!(v2 >= v1, "counter {name} regressed: {v1} -> {v2}");
    }
    for (name, h1) in &first.histograms {
        let c2 = second.histograms.get(name).map_or(0, |h| h.count);
        assert!(c2 >= h1.count, "histogram {name} regressed");
    }

    // The still-open enclosing span is visible (duration 0) in both.
    let open = |r: &crate::Report| {
        r.roots
            .iter()
            .any(|n| n.name == "serve/session" && n.duration_ns == 0)
    };
    assert!(open(&first) && open(&second));
}
