use crate::json::{parse, Value};
use std::sync::Mutex;

/// The recorder is process-global; serialize the tests that install it.
static GLOBAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GLOBAL.lock().unwrap_or_else(|p| p.into_inner())
}

#[test]
fn disabled_recorder_records_nothing() {
    let _g = lock();
    crate::uninstall();
    {
        let _span = crate::span("should-not-appear");
        crate::counter("nope", 1);
        crate::observe("nope", 1);
    }
    let _session = crate::install();
    assert!(crate::report().is_none());
}

#[test]
fn spans_nest_and_counters_attribute_to_the_innermost() {
    let _g = lock();
    let _session = crate::install();
    {
        let _outer = crate::span("outer");
        crate::counter("outer_work", 2);
        {
            let _inner = crate::span_dyn(|| "inner/dynamic".to_owned());
            crate::counter("inner_work", 3);
            crate::counter("inner_work", 4);
        }
    }
    crate::counter_dyn("global_only", 5);
    crate::observe("sizes", 0);
    crate::observe("sizes", 9);

    let report = crate::report().unwrap();
    assert_eq!(report.roots.len(), 1);
    let outer = &report.roots[0];
    assert_eq!(outer.name, "outer");
    assert!(outer.duration_ns > 0);
    assert_eq!(outer.counters.get("outer_work"), Some(&2));
    assert_eq!(outer.children.len(), 1);
    let inner = &outer.children[0];
    assert_eq!(inner.name, "inner/dynamic");
    assert_eq!(inner.counters.get("inner_work"), Some(&7));
    assert!(inner.duration_ns <= outer.duration_ns);

    // Globals aggregate across spans.
    assert_eq!(report.counters.get("inner_work"), Some(&7));
    assert_eq!(report.counters.get("global_only"), Some(&5));
    let h = &report.histograms["sizes"];
    assert_eq!((h.count, h.min, h.max, h.sum), (2, 0, 9, 9));

    let tree = report.render_tree();
    assert!(tree.contains("outer"), "{tree}");
    assert!(tree.contains("inner/dynamic"), "{tree}");
    assert!(tree.contains("inner_work = 7"), "{tree}");
    assert!(tree.contains("sizes: n=2"), "{tree}");
}

#[test]
fn json_lines_are_parseable_and_reconstruct_the_tree() {
    let _g = lock();
    let _session = crate::install();
    {
        let _a = crate::span("a \"quoted\" name");
        let _b = crate::span("a/b");
        crate::counter("edge\ncount", 1);
    }
    crate::observe("depths", 5);
    let report = crate::report().unwrap();
    let lines: Vec<Value> = report
        .to_json_lines()
        .lines()
        .map(|l| parse(l).unwrap_or_else(|e| panic!("{e}: {l}")))
        .collect();
    assert_eq!(lines.len(), 4); // 2 spans, 1 counter, 1 histogram

    let spans: Vec<&Value> = lines
        .iter()
        .filter(|v| v.get("k").and_then(Value::as_str) == Some("span"))
        .collect();
    assert_eq!(spans.len(), 2);
    assert_eq!(
        spans[0].get("name").and_then(Value::as_str),
        Some("a \"quoted\" name")
    );
    assert_eq!(spans[0].get("parent"), Some(&Value::Null));
    assert_eq!(spans[1].get("parent").and_then(Value::as_f64), Some(0.0));

    let hist = lines
        .iter()
        .find(|v| v.get("k").and_then(Value::as_str) == Some("hist"))
        .unwrap();
    assert_eq!(hist.get("max").and_then(Value::as_f64), Some(5.0));
}

#[test]
fn reinstall_resets_state() {
    let _g = lock();
    let _s1 = crate::install();
    crate::counter("old", 1);
    let _s2 = crate::install();
    crate::counter("new", 1);
    let report = crate::report().unwrap();
    assert!(!report.counters.contains_key("old"));
    assert!(report.counters.contains_key("new"));
}

#[test]
fn session_drop_uninstalls() {
    let _g = lock();
    {
        let _session = crate::install();
        assert!(crate::is_enabled());
    }
    assert!(!crate::is_enabled());
}

#[test]
fn json_parser_handles_rfc_shapes_and_rejects_garbage() {
    assert_eq!(parse("null").unwrap(), Value::Null);
    assert_eq!(
        parse(" [1, -2.5e1, \"x\"] ").unwrap(),
        Value::Array(vec![
            Value::Number(1.0),
            Value::Number(-25.0),
            Value::String("x".into()),
        ])
    );
    assert_eq!(
        parse("{\"a\": {\"b\": [true, false]}}")
            .unwrap()
            .get("a")
            .and_then(|a| a.get("b")),
        Some(&Value::Array(vec![Value::Bool(true), Value::Bool(false)]))
    );
    assert_eq!(
        parse("\"\\u0041\\n\"").unwrap(),
        Value::String("A\n".into())
    );
    for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
        assert!(parse(bad).is_err(), "accepted {bad:?}");
    }
}
