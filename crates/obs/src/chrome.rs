//! The Chrome trace-event exporter (`sbound --trace-chrome`).
//!
//! Emits one JSON document in the [trace-event format] understood by
//! Perfetto and `chrome://tracing`:
//!
//! * every timeline gets a `thread_name` metadata record (`ph:"M"`), so
//!   worker tracks render with their registered labels;
//! * every span becomes a complete duration event (`ph:"X"`) on its
//!   thread's track, with its attributed counters as `args`;
//! * every global counter becomes one counter event (`ph:"C"`) stamped
//!   at the end of the trace.
//!
//! Timestamps are microseconds from recorder installation, with
//! nanosecond precision kept in the fractional part. The whole document
//! round-trips through [`crate::json::parse`], which the test suite uses
//! to pin well-formedness without external dependencies.
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::json::escape;
use crate::record::{Report, SpanNode};
use std::fmt::Write;

/// Microseconds with the nanosecond remainder kept as three decimals.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

impl Report {
    /// Serializes the whole report as one Chrome trace-event JSON
    /// document (load it in Perfetto or `chrome://tracing`).
    pub fn to_chrome_trace(&self) -> String {
        let mut events: Vec<String> = Vec::new();
        // Track labels for every timeline that recorded a span; sort_index
        // keeps tracks in timeline order instead of name order.
        for tid in self.thread_ids() {
            events.push(format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":{}}}}}",
                escape(&self.thread_label(tid))
            ));
            events.push(format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_sort_index\",\
                 \"args\":{{\"sort_index\":{tid}}}}}"
            ));
        }
        let mut end_ns = 0u64;
        for root in &self.roots {
            write_span(&mut events, root, &mut end_ns);
        }
        for (name, value) in &self.counters {
            events.push(format!(
                "{{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"name\":{},\"ts\":{},\
                 \"args\":{{\"value\":{value}}}}}",
                escape(name),
                us(end_ns)
            ));
        }
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\"}}",
            events.join(",")
        );
        out
    }
}

fn write_span(events: &mut Vec<String>, node: &SpanNode, end_ns: &mut u64) {
    *end_ns = (*end_ns).max(node.end_ns());
    let args: Vec<String> = node
        .counters
        .iter()
        .map(|(k, v)| format!("{}:{v}", escape(k)))
        .collect();
    events.push(format!(
        "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"name\":{},\"cat\":\"span\",\
         \"ts\":{},\"dur\":{},\"args\":{{{}}}}}",
        node.tid,
        escape(&node.name),
        us(node.start_ns),
        us(node.duration_ns),
        args.join(","),
    ));
    for child in &node.children {
        write_span(events, child, end_ns);
    }
}
