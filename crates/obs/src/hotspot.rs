//! Per-function cost attribution (the `hotspots` table).
//!
//! Instrumented layers attribute work to a corpus function by opening a
//! span whose name follows the `<stage>/fn/<function>` convention —
//! `analyzer/fn/filter`, `qhl/fn/main`, `compiler/machgen/fn/fib`,
//! `measure/fn/main`. This module aggregates those spans across the
//! whole report into one row per function: wall-clock per stage,
//! decoded-core steps executed, and cache hits/misses, ranked by total
//! attributed time.
//!
//! Attribution is *exclusive* with respect to nesting: when a
//! `vcache/analyze/fn/f` span wraps the analyzer's own
//! `analyzer/fn/f` span, each stage is charged only its own slice, so
//! per-function totals never double-count wall clock. Counters bumped
//! inside a function span (machine steps, cache hits) are charged to the
//! innermost enclosing function span.

use crate::record::{Report, SpanNode};
use std::collections::BTreeMap;
use std::fmt::Write;

/// The aggregated cost of one corpus function across every instrumented
/// stage.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Hotspot {
    /// The function name (the `<function>` part of `<stage>/fn/<function>`).
    pub function: String,
    /// Total attributed wall-clock across all stages, nanoseconds
    /// (exclusive — nested function spans are charged to themselves).
    pub total_ns: u64,
    /// Per-stage attributed wall-clock, nanoseconds, keyed by the
    /// `<stage>` prefix of the span name.
    pub stages: BTreeMap<String, u64>,
    /// Counters recorded inside this function's spans (machine steps,
    /// cache hits/misses, instruction counts, …), summed.
    pub counters: BTreeMap<String, u64>,
}

impl Hotspot {
    /// Decoded-core steps executed while measuring this function.
    pub fn steps(&self) -> u64 {
        self.counters.get("machine/steps").copied().unwrap_or(0)
    }

    /// Summed cache lookups over every `*_hit` / `*_miss` counter pair
    /// recorded in this function's spans, as `(hits, misses)`.
    pub fn cache_stats(&self) -> (u64, u64) {
        let sum_suffix = |suffix: &str| {
            self.counters
                .iter()
                .filter(|(k, _)| k.ends_with(suffix))
                .map(|(_, v)| *v)
                .sum()
        };
        (sum_suffix("_hit"), sum_suffix("_miss"))
    }
}

/// Splits a `<stage>/fn/<function>` span name; `None` for ordinary spans.
fn split_fn(name: &str) -> Option<(&str, &str)> {
    let i = name.find("/fn/")?;
    let (stage, function) = (&name[..i], &name[i + 4..]);
    (!stage.is_empty() && !function.is_empty()).then_some((stage, function))
}

/// Wall-clock of every function span nested anywhere below `node`
/// (stopping at each one — a function span charges its own slice).
fn nested_fn_ns(node: &SpanNode) -> u64 {
    node.children
        .iter()
        .map(|c| {
            if split_fn(&c.name).is_some() {
                c.duration_ns
            } else {
                nested_fn_ns(c)
            }
        })
        .sum()
}

/// Sums the counters of `node` and its non-function descendants into
/// `into` (nested function spans keep their own counters).
fn absorb_counters(into: &mut BTreeMap<String, u64>, node: &SpanNode) {
    for (k, v) in &node.counters {
        *into.entry(k.clone()).or_insert(0) += v;
    }
    for c in &node.children {
        if split_fn(&c.name).is_none() {
            absorb_counters(into, c);
        }
    }
}

impl Report {
    /// Aggregates every `<stage>/fn/<function>` span into one [`Hotspot`]
    /// per function, ranked by total attributed wall-clock (descending,
    /// ties by name). Empty when nothing used the attribution convention.
    pub fn hotspots(&self) -> Vec<Hotspot> {
        fn visit(map: &mut BTreeMap<String, Hotspot>, node: &SpanNode) {
            if let Some((stage, function)) = split_fn(&node.name) {
                let own = node.duration_ns.saturating_sub(nested_fn_ns(node));
                let h = map.entry(function.to_owned()).or_default();
                h.function = function.to_owned();
                h.total_ns += own;
                *h.stages.entry(stage.to_owned()).or_insert(0) += own;
                absorb_counters(&mut h.counters, node);
            }
            for c in &node.children {
                visit(map, c);
            }
        }
        let mut map = BTreeMap::new();
        for root in &self.roots {
            visit(&mut map, root);
        }
        let mut spots: Vec<Hotspot> = map.into_values().collect();
        spots.sort_by(|a, b| {
            b.total_ns
                .cmp(&a.total_ns)
                .then(a.function.cmp(&b.function))
        });
        spots
    }

    /// Renders [`Report::hotspots`] as the `hotspots` table shown by
    /// `sbound --metrics` and the harness binaries: one row per function,
    /// ranked by total attributed time, with the canonical stage columns
    /// (analyze / check / compile / measure), decoded-core steps, and
    /// cache hits/misses. Empty string when there are no hotspots.
    pub fn render_hotspots(&self) -> String {
        render(&self.hotspots())
    }
}

/// The canonical stage group of a raw `<stage>` prefix, for the fixed
/// table columns. Attribution spans from any layer fold into the
/// pipeline stage they serve: `analyzer` and `vcache/analyze` are both
/// analysis, `qhl` and `vcache/check` are derivation checking, every
/// `compiler/*` phase is compilation.
fn stage_group(stage: &str) -> &'static str {
    if stage.contains("analy") {
        "analyze"
    } else if stage.contains("check") || stage.starts_with("qhl") {
        "check"
    } else if stage.starts_with("compiler") {
        "compile"
    } else if stage.contains("measure") {
        "measure"
    } else {
        "other"
    }
}

const GROUPS: [&str; 5] = ["analyze", "check", "compile", "measure", "other"];

fn ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

/// Renders a hotspot list as a fixed-width table (see
/// [`Report::render_hotspots`]).
pub fn render(spots: &[Hotspot]) -> String {
    if spots.is_empty() {
        return String::new();
    }
    // Only show stage-group columns that have any attributed time, and
    // `other` only when a non-canonical stage actually appeared.
    let mut group_ns: BTreeMap<&str, u64> = BTreeMap::new();
    for s in spots {
        for (stage, ns) in &s.stages {
            *group_ns.entry(stage_group(stage)).or_insert(0) += ns;
        }
    }
    let groups: Vec<&str> = GROUPS
        .iter()
        .copied()
        .filter(|g| group_ns.contains_key(g))
        .collect();

    let mut out = String::new();
    let _ = write!(
        out,
        "hotspots (per-function, ms):\n  {:<24} {:>10}",
        "function", "total"
    );
    for g in &groups {
        let _ = write!(out, " {g:>10}");
    }
    let _ = writeln!(out, " {:>12} {:>8} {:>8}", "steps", "hit", "miss");
    for s in spots {
        let _ = write!(out, "  {:<24} {:>10}", s.function, ms(s.total_ns));
        for g in &groups {
            let ns: u64 = s
                .stages
                .iter()
                .filter(|(stage, _)| stage_group(stage) == *g)
                .map(|(_, v)| *v)
                .sum();
            let _ = write!(out, " {:>10}", ms(ns));
        }
        let (hit, miss) = s.cache_stats();
        let _ = writeln!(out, " {:>12} {:>8} {:>8}", s.steps(), hit, miss);
    }
    out
}
