//! Zero-dependency observability for the `stackbound` pipeline.
//!
//! The paper's evaluation (§6) is all about *measuring* the system:
//! per-pass compiler behavior, analyzer effort, and a ptrace harness
//! watching the stack pointer step by step. This crate is the measuring
//! substrate: structured **spans** (nested, wall-clock timed, each on
//! its thread's own timeline), **counters**, and **histograms**,
//! recorded through a global recorder that is a no-op until
//! [`install`]ed — the disabled fast path is a single relaxed atomic
//! load, so instrumentation can stay in hot code.
//!
//! Spans record begin/end monotonic timestamps plus a stable numeric
//! [`thread_id`]; worker pools label their timelines with
//! [`register_thread`], and nesting is per thread, so concurrent
//! recorders never corrupt each other's trees.
//!
//! Four exporters ship with the crate:
//!
//! * [`Report::render_tree`] — a human-readable summary tree
//!   (`sbound --metrics`), histograms with p50/p95/p99 rows;
//! * [`Report::to_json_lines`] — machine-readable JSON-lines
//!   (`sbound --trace-json`, and the bench harnesses' `--metrics-json`),
//!   with a minimal validating parser in [`json`] so tests can assert the
//!   output is well-formed without external dependencies;
//! * [`Report::to_chrome_trace`] — Chrome trace-event JSON
//!   (`sbound --trace-chrome`), one track per thread, loadable in
//!   Perfetto / `chrome://tracing`;
//! * [`Report::to_folded_stacks`] — folded flamegraph text
//!   (`sbound --trace-folded`), self time per stack.
//!
//! On top of the timelines, [`Report::hotspots`] aggregates every span
//! following the `<stage>/fn/<function>` naming convention into a
//! per-function cost table (stage wall-clock, decoded-core steps, cache
//! hits/misses) — see [`hotspot`].
//!
//! # Examples
//!
//! ```
//! let _session = obs::install();
//! {
//!     let _span = obs::span("frontend");
//!     obs::counter("frontend/tokens", 42);
//! }
//! obs::observe("stack_depth", 16);
//! let report = obs::report().unwrap();
//! assert!(report.render_tree().contains("frontend"));
//! obs::json::parse(&report.to_chrome_trace()).unwrap();
//! for line in report.to_json_lines().lines() {
//!     obs::json::parse(line).unwrap();
//! }
//! ```

#![warn(missing_docs)]

mod chrome;
mod folded;
pub mod hotspot;
pub mod json;
mod record;
mod summary;

pub use hotspot::Hotspot;
pub use record::{
    counter, counter_dyn, install, is_enabled, observe, register_thread, report, snapshot, span,
    span_dyn, thread_id, uninstall, Histogram, Report, Session, Span, SpanNode,
};

#[cfg(test)]
mod tests;
