//! Zero-dependency observability for the `stackbound` pipeline.
//!
//! The paper's evaluation (§6) is all about *measuring* the system:
//! per-pass compiler behavior, analyzer effort, and a ptrace harness
//! watching the stack pointer step by step. This crate is the measuring
//! substrate: structured **spans** (nested, wall-clock timed),
//! **counters**, and **histograms**, recorded through a global recorder
//! that is a no-op until [`install`]ed — the disabled fast path is a
//! single relaxed atomic load, so instrumentation can stay in hot code.
//!
//! Two exporters ship with the crate:
//!
//! * [`Report::render_tree`] — a human-readable summary tree
//!   (`sbound --metrics`);
//! * [`Report::to_json_lines`] — machine-readable JSON-lines
//!   (`sbound --trace-json`, and the bench harnesses' `--metrics-json`),
//!   with a minimal validating parser in [`json`] so tests can assert the
//!   output is well-formed without external dependencies.
//!
//! # Examples
//!
//! ```
//! let _session = obs::install();
//! {
//!     let _span = obs::span("frontend");
//!     obs::counter("frontend/tokens", 42);
//! }
//! obs::observe("stack_depth", 16);
//! let report = obs::report().unwrap();
//! assert!(report.render_tree().contains("frontend"));
//! for line in report.to_json_lines().lines() {
//!     obs::json::parse(line).unwrap();
//! }
//! ```

#![warn(missing_docs)]

pub mod json;
mod record;
mod summary;

pub use record::{
    counter, counter_dyn, install, is_enabled, observe, report, span, span_dyn, uninstall,
    Histogram, Report, Session, Span, SpanNode,
};

#[cfg(test)]
mod tests;
