//! The global recorder: spans, counters, histograms — on per-thread
//! timelines.
//!
//! Every recording thread owns a *timeline*: a stable numeric thread id
//! (assigned on first use, process-wide) plus its own stack of open
//! spans. Spans nest within their thread only, so concurrent workers
//! (`stackbound::par_map`, the parallel compiler backend) never
//! interleave into each other's trees, and the Chrome-trace exporter can
//! lay every worker out on its own track.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Whether a recorder is installed. Checked first by every recording
/// function; `Relaxed` is enough because the state behind it is guarded
/// by the mutex.
static ENABLED: AtomicBool = AtomicBool::new(false);

static STATE: OnceLock<Mutex<State>> = OnceLock::new();

/// Process-wide timeline-id allocator; ids are never reused, so a span
/// recorded by a short-lived worker keeps pointing at a unique track.
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// This thread's timeline id, assigned on first recording use.
    static TID: Cell<Option<u64>> = const { Cell::new(None) };
}

/// The calling thread's stable timeline id. Ids are assigned on first
/// use, are unique for the process lifetime, and order by first
/// recording activity (the installing thread is 0 in a fresh process).
pub fn thread_id() -> u64 {
    TID.with(|t| match t.get() {
        Some(id) => id,
        None => {
            let id = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            t.set(Some(id));
            id
        }
    })
}

fn state() -> MutexGuard<'static, State> {
    STATE
        .get_or_init(|| Mutex::new(State::new(0)))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

struct SpanData {
    name: String,
    /// The timeline (thread) the span was opened on.
    tid: u64,
    parent: Option<usize>,
    children: Vec<usize>,
    start: Instant,
    /// `None` while the span is still open.
    duration_ns: Option<u64>,
    counters: BTreeMap<String, u64>,
}

struct State {
    epoch: Instant,
    /// Bumped by every [`install`]; span guards from an earlier session
    /// compare against it and become no-ops instead of closing an
    /// unrelated span of the new session.
    generation: u64,
    spans: Vec<SpanData>,
    /// Per-thread stacks of currently open spans, innermost last.
    open: BTreeMap<u64, Vec<usize>>,
    /// Labels registered via [`register_thread`].
    thread_names: BTreeMap<u64, String>,
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl State {
    fn new(generation: u64) -> State {
        State {
            epoch: Instant::now(),
            generation,
            spans: Vec::new(),
            open: BTreeMap::new(),
            thread_names: BTreeMap::new(),
            counters: BTreeMap::new(),
            histograms: BTreeMap::new(),
        }
    }
}

/// A handle returned by [`install`]; dropping it uninstalls the recorder
/// (so a test cannot leak a recorder into its neighbors).
#[must_use = "dropping the session uninstalls the recorder"]
pub struct Session(());

impl Drop for Session {
    fn drop(&mut self) {
        uninstall();
    }
}

/// Installs a fresh global recorder and returns the session handle.
/// Recording functions are no-ops until this is called. Re-installing
/// resets all recorded data (spans still held open by guards from the
/// previous session are orphaned, not resurrected). The installing
/// thread's timeline is labeled `main` until [`register_thread`] renames
/// it.
pub fn install() -> Session {
    let mut st = state();
    let generation = st.generation + 1;
    *st = State::new(generation);
    let tid = thread_id();
    st.thread_names.insert(tid, "main".to_owned());
    ENABLED.store(true, Ordering::Relaxed);
    Session(())
}

/// Uninstalls the recorder; subsequent recording calls are no-ops again.
/// Recorded data is retained until the next [`install`], so a final
/// [`report`] is still possible.
pub fn uninstall() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// True when a recorder is installed. Use to guard instrumentation whose
/// *argument construction* is itself costly; plain calls already check.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Labels the calling thread's timeline in reports and trace exports
/// (worker pools call this once per spawned thread; unlabeled timelines
/// render as `thread-<id>`). No-op unless installed.
pub fn register_thread(name: &str) {
    if !is_enabled() {
        return;
    }
    let tid = thread_id();
    state().thread_names.insert(tid, name.to_owned());
}

/// An RAII guard for one span; the span closes when the guard drops.
/// The guard remembers the session generation it was opened under, so a
/// guard that outlives its session is a no-op.
#[must_use = "a span measures until it is dropped"]
pub struct Span(Option<(u64, usize)>);

/// Opens a nested, wall-clock-timed span on the calling thread's
/// timeline. No-op unless installed.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !is_enabled() {
        return Span(None);
    }
    open_span(name.to_owned())
}

/// [`span`] with a lazily built name, for dynamic labels like
/// `analyzer/fn/<name>`; the closure only runs when a recorder is
/// installed.
#[inline]
pub fn span_dyn(make_name: impl FnOnce() -> String) -> Span {
    if !is_enabled() {
        return Span(None);
    }
    open_span(make_name())
}

fn open_span(name: String) -> Span {
    let tid = thread_id();
    let mut st = state();
    let generation = st.generation;
    let parent = st.open.get(&tid).and_then(|stack| stack.last().copied());
    let id = st.spans.len();
    st.spans.push(SpanData {
        name,
        tid,
        parent,
        children: Vec::new(),
        start: Instant::now(),
        duration_ns: None,
        counters: BTreeMap::new(),
    });
    if let Some(p) = parent {
        st.spans[p].children.push(id);
    }
    st.open.entry(tid).or_default().push(id);
    Span(Some((generation, id)))
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some((generation, id)) = self.0 else {
            return;
        };
        let mut st = state();
        if st.generation != generation {
            return; // recorder was re-installed while the span was open
        }
        let now = Instant::now();
        // Close on the timeline the span was *opened* on — robust even if
        // the guard is dropped by another thread.
        let tid = st.spans[id].tid;
        if let Some(stack) = st.open.get_mut(&tid) {
            if let Some(pos) = stack.iter().rposition(|&s| s == id) {
                stack.truncate(pos);
            }
        }
        if let Some(s) = st.spans.get_mut(id) {
            s.duration_ns = Some(now.duration_since(s.start).as_nanos() as u64);
        }
    }
}

/// Adds `delta` to the named counter. The count is recorded both globally
/// and on the calling thread's innermost open span, so the summary tree
/// can attribute work to pipeline stages (and the hotspot table to
/// functions). No-op unless installed.
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if !is_enabled() {
        return;
    }
    add_counter(name, delta);
}

/// [`counter`] with an owned name, for dynamic labels.
#[inline]
pub fn counter_dyn(name: &str, delta: u64) {
    if !is_enabled() {
        return;
    }
    add_counter(name, delta);
}

fn add_counter(name: &str, delta: u64) {
    let tid = thread_id();
    let mut st = state();
    *st.counters.entry(name.to_owned()).or_insert(0) += delta;
    if let Some(&open) = st.open.get(&tid).and_then(|stack| stack.last()) {
        *st.spans[open].counters.entry(name.to_owned()).or_insert(0) += delta;
    }
}

/// Records one observation into the named histogram (log2 buckets plus
/// count/sum/min/max). No-op unless installed.
#[inline]
pub fn observe(name: &'static str, value: u64) {
    if !is_enabled() {
        return;
    }
    let mut st = state();
    st.histograms
        .entry(name.to_owned())
        .or_default()
        .record(value);
}

/// A histogram with power-of-two buckets: bucket `i` counts values whose
/// bit length is `i` (bucket 0 counts zero).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Smallest observed value.
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
    /// `buckets[i]` counts observations with `bit_length(value) == i`.
    pub buckets: Vec<u64>,
}

/// The empty histogram: `min` starts at `u64::MAX` so the first
/// [`Histogram::record`] takes it (exporters print 0 while `count == 0`).
impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: Vec::new(),
        }
    }
}

impl Histogram {
    /// Rebuilds a histogram from its exported parts (the fields of a
    /// JSON-lines `hist` record), so external tools — `obs-diff`,
    /// `obs_regress` — can compute percentiles on ingested reports.
    pub fn from_parts(count: u64, sum: u64, min: u64, max: u64, buckets: Vec<u64>) -> Histogram {
        Histogram {
            count,
            sum,
            min: if count == 0 { u64::MAX } else { min },
            max,
            buckets,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        let bucket = (64 - value.leading_zeros()) as usize;
        if self.buckets.len() <= bucket {
            self.buckets.resize(bucket + 1, 0);
        }
        self.buckets[bucket] += 1;
    }

    /// Mean observed value, or 0 with no observations.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `p`-th percentile (0 < p ≤ 100), approximated from the log2
    /// buckets: the value returned is the upper edge of the bucket the
    /// percentile rank falls into, clamped to the observed `[min, max]`
    /// range (so `percentile(100.0) == max` exactly). Returns 0 with no
    /// observations.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64)
            .ceil()
            .clamp(1.0, self.count as f64) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let hi = match i {
                    0 => 0,
                    i if i >= 64 => u64::MAX,
                    i => (1u64 << i) - 1,
                };
                return hi.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// One span in a [`Report`]: name, timeline, timing, attributed
/// counters, children.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Span name, e.g. `compiler/rtlgen`.
    pub name: String,
    /// The timeline (thread) the span was recorded on; resolve a label
    /// with [`Report::thread_label`].
    pub tid: u64,
    /// Start offset from recorder installation, nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds (0 if the span never closed).
    pub duration_ns: u64,
    /// Counters incremented while this span was innermost on its thread.
    pub counters: BTreeMap<String, u64>,
    /// Child spans in open order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// End offset from recorder installation, nanoseconds.
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.duration_ns
    }
}

/// An immutable snapshot of everything recorded since [`install`].
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Top-level spans (each thread's stack roots), in open order across
    /// all threads.
    pub roots: Vec<SpanNode>,
    /// Labels of every timeline that recorded a span or registered a
    /// name. Unlabeled timelines are absent; [`Report::thread_label`]
    /// falls back to `thread-<id>`.
    pub threads: BTreeMap<u64, String>,
    /// Global counter totals.
    pub counters: BTreeMap<String, u64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
}

impl Report {
    /// The display label of a timeline: its registered name, or
    /// `thread-<id>`.
    pub fn thread_label(&self, tid: u64) -> String {
        self.threads
            .get(&tid)
            .cloned()
            .unwrap_or_else(|| format!("thread-{tid}"))
    }

    /// The distinct timeline ids that recorded at least one span, in
    /// ascending order.
    pub fn thread_ids(&self) -> Vec<u64> {
        fn collect(node: &SpanNode, out: &mut Vec<u64>) {
            out.push(node.tid);
            for c in &node.children {
                collect(c, out);
            }
        }
        let mut ids = Vec::new();
        for root in &self.roots {
            collect(root, &mut ids);
        }
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

/// Takes a *live* snapshot of the running recorder without stopping,
/// draining, or otherwise perturbing it: recording continues, every
/// already-closed span keeps its timing, and nothing is reset. This is
/// the API behind `sbound serve`'s `metrics` protocol verb — a daemon
/// can be asked for its metrics arbitrarily often.
///
/// Successive snapshots are *monotone*: every counter value, histogram
/// count, and the number of recorded spans can only grow between two
/// snapshots (pinned by a regression test). Spans still open at snapshot
/// time appear with a duration of 0.
///
/// Returns `None` while nothing has been recorded (or no recorder was
/// ever installed). [`report`] is the same snapshot taken at
/// end-of-session; both are non-destructive.
pub fn snapshot() -> Option<Report> {
    report()
}

/// Snapshots the recorded data, or `None` if nothing was ever recorded.
/// Open spans appear with a duration of 0. Non-destructive — see
/// [`snapshot`] for the live-recorder contract.
pub fn report() -> Option<Report> {
    let st = state();
    if st.spans.is_empty() && st.counters.is_empty() && st.histograms.is_empty() {
        return None;
    }
    fn build(st: &State, id: usize) -> SpanNode {
        let s = &st.spans[id];
        SpanNode {
            name: s.name.clone(),
            tid: s.tid,
            start_ns: s.start.duration_since(st.epoch).as_nanos() as u64,
            duration_ns: s.duration_ns.unwrap_or(0),
            counters: s.counters.clone(),
            children: s.children.iter().map(|&c| build(st, c)).collect(),
        }
    }
    let roots = (0..st.spans.len())
        .filter(|&i| st.spans[i].parent.is_none())
        .map(|i| build(&st, i))
        .collect();
    Some(Report {
        roots,
        threads: st.thread_names.clone(),
        counters: st.counters.clone(),
        histograms: st.histograms.clone(),
    })
}
