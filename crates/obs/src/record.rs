//! The global recorder: spans, counters, histograms.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Whether a recorder is installed. Checked first by every recording
/// function; `Relaxed` is enough because the state behind it is guarded
/// by the mutex.
static ENABLED: AtomicBool = AtomicBool::new(false);

static STATE: OnceLock<Mutex<State>> = OnceLock::new();

fn state() -> MutexGuard<'static, State> {
    STATE
        .get_or_init(|| Mutex::new(State::new()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

struct SpanData {
    name: String,
    parent: Option<usize>,
    children: Vec<usize>,
    start: Instant,
    /// `None` while the span is still open.
    duration_ns: Option<u64>,
    counters: BTreeMap<String, u64>,
}

struct State {
    epoch: Instant,
    spans: Vec<SpanData>,
    /// Indices of currently open spans, innermost last.
    open: Vec<usize>,
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl State {
    fn new() -> State {
        State {
            epoch: Instant::now(),
            spans: Vec::new(),
            open: Vec::new(),
            counters: BTreeMap::new(),
            histograms: BTreeMap::new(),
        }
    }
}

/// A handle returned by [`install`]; dropping it uninstalls the recorder
/// (so a test cannot leak a recorder into its neighbors).
#[must_use = "dropping the session uninstalls the recorder"]
pub struct Session(());

impl Drop for Session {
    fn drop(&mut self) {
        uninstall();
    }
}

/// Installs a fresh global recorder and returns the session handle.
/// Recording functions are no-ops until this is called. Re-installing
/// resets all recorded data.
pub fn install() -> Session {
    let mut st = state();
    *st = State::new();
    ENABLED.store(true, Ordering::Relaxed);
    Session(())
}

/// Uninstalls the recorder; subsequent recording calls are no-ops again.
/// Recorded data is retained until the next [`install`], so a final
/// [`report`] is still possible.
pub fn uninstall() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// True when a recorder is installed. Use to guard instrumentation whose
/// *argument construction* is itself costly; plain calls already check.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// An RAII guard for one span; the span closes when the guard drops.
#[must_use = "a span measures until it is dropped"]
pub struct Span(Option<usize>);

/// Opens a nested, wall-clock-timed span. No-op unless installed.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !is_enabled() {
        return Span(None);
    }
    open_span(name.to_owned())
}

/// [`span`] with a lazily built name, for dynamic labels like
/// `analyzer/fn/<name>`; the closure only runs when a recorder is
/// installed.
#[inline]
pub fn span_dyn(make_name: impl FnOnce() -> String) -> Span {
    if !is_enabled() {
        return Span(None);
    }
    open_span(make_name())
}

fn open_span(name: String) -> Span {
    let mut st = state();
    let parent = st.open.last().copied();
    let id = st.spans.len();
    st.spans.push(SpanData {
        name,
        parent,
        children: Vec::new(),
        start: Instant::now(),
        duration_ns: None,
        counters: BTreeMap::new(),
    });
    if let Some(p) = parent {
        st.spans[p].children.push(id);
    }
    st.open.push(id);
    Span(Some(id))
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(id) = self.0 else { return };
        let mut st = state();
        if st.spans.is_empty() {
            return; // recorder was re-installed while the span was open
        }
        let now = Instant::now();
        if let Some(pos) = st.open.iter().rposition(|&s| s == id) {
            st.open.truncate(pos);
        }
        if let Some(s) = st.spans.get_mut(id) {
            s.duration_ns = Some(now.duration_since(s.start).as_nanos() as u64);
        }
    }
}

/// Adds `delta` to the named counter. The count is recorded both globally
/// and on the innermost open span, so the summary tree can attribute work
/// to pipeline stages. No-op unless installed.
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if !is_enabled() {
        return;
    }
    add_counter(name, delta);
}

/// [`counter`] with an owned name, for dynamic labels.
#[inline]
pub fn counter_dyn(name: &str, delta: u64) {
    if !is_enabled() {
        return;
    }
    add_counter(name, delta);
}

fn add_counter(name: &str, delta: u64) {
    let mut st = state();
    *st.counters.entry(name.to_owned()).or_insert(0) += delta;
    if let Some(&open) = st.open.last() {
        *st.spans[open].counters.entry(name.to_owned()).or_insert(0) += delta;
    }
}

/// Records one observation into the named histogram (log2 buckets plus
/// count/sum/min/max). No-op unless installed.
#[inline]
pub fn observe(name: &'static str, value: u64) {
    if !is_enabled() {
        return;
    }
    let mut st = state();
    st.histograms
        .entry(name.to_owned())
        .or_insert_with(Histogram::new)
        .record(value);
}

/// A histogram with power-of-two buckets: bucket `i` counts values whose
/// bit length is `i` (bucket 0 counts zero).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Smallest observed value.
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
    /// `buckets[i]` counts observations with `bit_length(value) == i`.
    pub buckets: Vec<u64>,
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: Vec::new(),
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        let bucket = (64 - value.leading_zeros()) as usize;
        if self.buckets.len() <= bucket {
            self.buckets.resize(bucket + 1, 0);
        }
        self.buckets[bucket] += 1;
    }

    /// Mean observed value, or 0 with no observations.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// One span in a [`Report`]: name, timing, attributed counters, children.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Span name, e.g. `compiler/rtlgen`.
    pub name: String,
    /// Start offset from recorder installation, nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds (0 if the span never closed).
    pub duration_ns: u64,
    /// Counters incremented while this span was innermost.
    pub counters: BTreeMap<String, u64>,
    /// Child spans in open order.
    pub children: Vec<SpanNode>,
}

/// An immutable snapshot of everything recorded since [`install`].
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Top-level spans (those opened with no parent), in open order.
    pub roots: Vec<SpanNode>,
    /// Global counter totals.
    pub counters: BTreeMap<String, u64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
}

/// Snapshots the recorded data, or `None` if nothing was ever recorded.
/// Open spans appear with a duration of 0.
pub fn report() -> Option<Report> {
    let st = state();
    if st.spans.is_empty() && st.counters.is_empty() && st.histograms.is_empty() {
        return None;
    }
    fn build(st: &State, id: usize) -> SpanNode {
        let s = &st.spans[id];
        SpanNode {
            name: s.name.clone(),
            start_ns: s.start.duration_since(st.epoch).as_nanos() as u64,
            duration_ns: s.duration_ns.unwrap_or(0),
            counters: s.counters.clone(),
            children: s.children.iter().map(|&c| build(st, c)).collect(),
        }
    }
    let roots = (0..st.spans.len())
        .filter(|&i| st.spans[i].parent.is_none())
        .map(|i| build(&st, i))
        .collect();
    Some(Report {
        roots,
        counters: st.counters.clone(),
        histograms: st.histograms.clone(),
    })
}
