//! The human-readable summary exporter (`sbound --metrics`).

use crate::record::{Report, SpanNode};
use std::fmt::Write;

impl Report {
    /// Renders the span tree with durations and per-span counters,
    /// followed by global counters and histograms (count/min/mean/max
    /// plus p50/p95/p99 percentile estimates). When spans were recorded
    /// on more than one timeline, each root is annotated with its thread
    /// label.
    pub fn render_tree(&self) -> String {
        let multi_thread = self.thread_ids().len() > 1;
        let mut out = String::new();
        let _ = writeln!(out, "spans:");
        for root in &self.roots {
            let label = multi_thread.then(|| self.thread_label(root.tid));
            render_span(&mut out, root, 1, label.as_deref());
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "counters:");
            let width = self.counters.keys().map(|k| k.len()).max().unwrap_or(0);
            for (name, value) in &self.counters {
                let _ = writeln!(out, "  {name:<width$}  {value}");
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(out, "histograms:");
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {name}: n={} min={} mean={:.1} max={} p50={} p95={} p99={}",
                    h.count,
                    if h.count == 0 { 0 } else { h.min },
                    h.mean(),
                    h.max,
                    h.percentile(50.0),
                    h.percentile(95.0),
                    h.percentile(99.0),
                );
                if h.count > 0 {
                    let peak = h.buckets.iter().copied().max().unwrap_or(1).max(1);
                    for (i, &n) in h.buckets.iter().enumerate() {
                        if n == 0 {
                            continue;
                        }
                        let bar = "#".repeat((n * 24).div_ceil(peak) as usize);
                        let lo = if i == 0 { 0 } else { 1u64 << (i - 1) };
                        let hi = if i == 0 { 0 } else { (1u64 << i) - 1 };
                        let _ = writeln!(out, "    [{lo:>10} .. {hi:>10}] {n:>8} {bar}");
                    }
                }
            }
        }
        out
    }
}

fn render_span(out: &mut String, node: &SpanNode, depth: usize, thread: Option<&str>) {
    let pad = "  ".repeat(depth);
    match thread {
        Some(t) => {
            let _ = writeln!(
                out,
                "{pad}{} ({}) [{t}]",
                node.name,
                fmt_ns(node.duration_ns)
            );
        }
        None => {
            let _ = writeln!(out, "{pad}{} ({})", node.name, fmt_ns(node.duration_ns));
        }
    }
    for (name, value) in &node.counters {
        let _ = writeln!(out, "{pad}  · {name} = {value}");
    }
    for child in &node.children {
        render_span(out, child, depth + 1, None);
    }
}

fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}
