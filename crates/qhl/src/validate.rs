//! Empirical soundness validation (the testable face of Theorem 2).
//!
//! Theorem 2 states that a derived triple bounds the weight of every
//! execution: `P(σ, M) ≥ W_{(σ,M)}(S, Kstop)`. For a checked function
//! specification, [`validate_spec`] runs the function on concrete
//! arguments, computes the weight of the produced trace under a metric,
//! and compares it with the evaluated precondition. The qhl test suite and
//! the paper-reproduction benches run this over wide input sweeps.

use crate::bound::{Bound, Valuation};
use crate::logic::FunSpec;
use clight::{Executor, Program};
use mem::Value;
use trace::Metric;

/// Result of validating a specification on one input.
#[derive(Debug, Clone)]
pub struct Validation {
    /// The evaluated precondition (the claimed bound).
    pub bound: Bound,
    /// The measured trace weight.
    pub weight: i64,
    /// The behavior of the run.
    pub behavior: trace::Behavior,
}

impl Validation {
    /// True when the bound covers the measured weight.
    pub fn sound(&self) -> bool {
        Bound::Fin(self.weight as f64).le(self.bound)
    }
}

/// Runs `fname(args)` and compares the spec's precondition with the
/// measured trace weight under `metric`.
///
/// # Errors
///
/// Fails when the bound cannot be evaluated (unbound variables) — a run
/// that goes wrong is reported in the [`Validation`], not as an error,
/// because the logic promises nothing for wrong programs.
pub fn validate_spec(
    program: &Program,
    fname: &str,
    spec: &FunSpec,
    args: &[i64],
    metric: &Metric,
    fuel: u64,
) -> Result<Validation, String> {
    let f = program
        .function(fname)
        .ok_or_else(|| format!("no function `{fname}`"))?;
    if f.params.len() != args.len() {
        return Err(format!(
            "`{fname}` expects {} arguments, got {}",
            f.params.len(),
            args.len()
        ));
    }
    let env = Valuation::of_vars(
        f.params
            .iter()
            .map(|p| p.name.clone())
            .zip(args.iter().copied()),
    );
    // The spec's precondition bounds the *body*; executing `f(args)` also
    // pays M(f) for the activation itself (the Q:CALL rule), so the bound
    // reported for the function — as in Table 2 — is `pre + M(f)`.
    let bound = spec
        .pre
        .eval(metric, &env)?
        .add(Bound::Fin(f64::from(metric.call_cost(fname))));
    let vals: Vec<Value> = args.iter().map(|a| Value::Int(*a as u32)).collect();
    let behavior = Executor::run_function(program, fname, vals, fuel);
    let weight = behavior.weight(metric);
    Ok(Validation {
        bound,
        weight,
        behavior,
    })
}
