//! Triples, postconditions, function specifications, and contexts.

use crate::bound::BExpr;
use std::collections::HashMap;
use std::fmt;

/// A postcondition `Q = (Q_s, Q_b, Q_c, Q_r)`: one quantitative assertion
/// per way of exiting a block — fall-through, `break`, `continue`, and
/// `return`.
///
/// The paper's logic has the triple `(Q_s, Q_b, Q_r)`; the `continue`
/// component is the natural extension needed because our `Sloop` carries an
/// increment statement (as in full Clight). Unreachable components are
/// [`BExpr::Inf`] (the quantitative `false`).
///
/// Return assertions here do not depend on the returned *value* — none of
/// the paper's bounds do — which simplifies the machinery without losing
/// any of the evaluated examples.
#[derive(Debug, Clone, PartialEq)]
pub struct Post {
    /// Assertion on fall-through.
    pub normal: BExpr,
    /// Assertion when exiting via `break`.
    pub brk: BExpr,
    /// Assertion when exiting via `continue`.
    pub cont: BExpr,
    /// Assertion when exiting via `return`.
    pub ret: BExpr,
}

impl Post {
    /// A postcondition where every exit carries the same bound.
    pub fn uniform(b: BExpr) -> Post {
        Post {
            normal: b.clone(),
            brk: b.clone(),
            cont: b.clone(),
            ret: b,
        }
    }

    /// Fall-through and return carry `b`; `break`/`continue` are
    /// unreachable (the shape of a function-body postcondition).
    pub fn function_body(b: BExpr) -> Post {
        Post {
            normal: b.clone(),
            brk: BExpr::Inf,
            cont: BExpr::Inf,
            ret: b,
        }
    }
}

impl fmt::Display for Post {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "(s: {}, b: {}, c: {}, r: {})",
            self.normal, self.brk, self.cont, self.ret
        )
    }
}

/// A function specification `Γ(f) = (P_f, Q_f)`: quantitative pre- and
/// postconditions over the function's parameter names and auxiliary
/// variables.
#[derive(Debug, Clone, PartialEq)]
pub struct FunSpec {
    /// Precondition: bytes needed to run the function.
    pub pre: BExpr,
    /// Postcondition: bytes available again after it returns.
    pub post: BExpr,
}

impl FunSpec {
    /// The common case where the potential is fully restored
    /// (`P_f = Q_f`), as in every bound of the paper's Tables 1 and 2.
    pub fn restoring(bound: BExpr) -> FunSpec {
        FunSpec {
            pre: bound.clone(),
            post: bound,
        }
    }

    /// The zero spec used for external functions (`M(g(...)) = 0`).
    pub fn zero() -> FunSpec {
        FunSpec::restoring(BExpr::zero())
    }
}

impl fmt::Display for FunSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{}}} · {{{}}}", self.pre, self.post)
    }
}

/// The function context `Γ`, mapping function names to specifications.
///
/// When verifying a (possibly recursive) function, the context contains
/// the function's own specification — the paper justifies this by
/// step-indexing the soundness statement.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Context {
    specs: HashMap<String, FunSpec>,
}

impl Context {
    /// An empty context.
    pub fn new() -> Context {
        Context::default()
    }

    /// Adds or replaces a specification.
    pub fn insert(&mut self, fname: impl Into<String>, spec: FunSpec) {
        self.specs.insert(fname.into(), spec);
    }

    /// Looks up a specification.
    pub fn get(&self, fname: &str) -> Option<&FunSpec> {
        self.specs.get(fname)
    }

    /// Iterates over `(name, spec)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &FunSpec)> {
        self.specs.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of specifications.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True when the context has no specifications.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

impl<S: Into<String>> FromIterator<(S, FunSpec)> for Context {
    fn from_iter<I: IntoIterator<Item = (S, FunSpec)>>(iter: I) -> Self {
        Context {
            specs: iter.into_iter().map(|(k, v)| (k.into(), v)).collect(),
        }
    }
}
