//! Derivation trees and the derivation checker.
//!
//! A [`Derivation`] is an explicit proof object for a quantitative Hoare
//! triple, mirroring the rules of Figure 4 (Q:SKIP, Q:SEQ, Q:LOOP, Q:CALL,
//! Q:FRAME, Q:CONSEQ) plus the auxiliary-state machinery of §4.3. The
//! checker walks the program and the derivation in lockstep and computes
//! the precondition the derivation establishes, validating every side
//! condition.
//!
//! Inequality side conditions are discharged in one of two ways:
//!
//! * **syntactically**, by the conservative max-plus comparator
//!   ([`crate::BExpr::le_syntactic`]) — this covers everything the
//!   automatic analyzer generates; or
//! * **numerically**, by a [`Justification::Numeric`] recorded in the
//!   derivation: the inequality is verified on every point of a declared
//!   integer grid. This replaces the interactive Coq proofs of the paper
//!   with bounded exhaustive verification over the operating domain the
//!   verifier declares (compare the paper's `0 < ALEN ≤ 2³²−1` section
//!   hypothesis, which is likewise chosen by the user).

use crate::bound::{BExpr, IExpr, Valuation};
use crate::logic::{Context, FunSpec, Post};
use clight::{Expr, Program, Stmt};
use std::collections::HashMap;
use std::fmt;

/// How an inequality side condition `lhs ≤ rhs` is discharged.
#[derive(Debug, Clone, PartialEq)]
pub enum Justification {
    /// Use the conservative syntactic comparator.
    Syntactic,
    /// Verify the inequality on every point of the grid: each entry names
    /// a program/auxiliary variable with an inclusive range and step.
    /// Metric symbols are sampled over a fixed set of representative
    /// frame sizes, exploiting that bounds are monotone in each `M(f)`.
    Numeric {
        /// `(variable, lo, hi, step)` grid declarations.
        ranges: Vec<(String, i64, i64, i64)>,
    },
    /// Like [`Justification::Numeric`], but grid points where `guard`
    /// evaluates to a negative value are skipped. The guard records a
    /// *path condition* (e.g. `h - l - 2 ≥ 0` for the recursive branch of
    /// binary search) that the surrounding control flow establishes —
    /// the role the paper's logical preconditions (`Z > 0`) play in its
    /// Coq derivations. The checker does not verify the guard itself;
    /// the empirical soundness validation covers it.
    NumericGuarded {
        /// `(variable, lo, hi, step)` grid declarations.
        ranges: Vec<(String, i64, i64, i64)>,
        /// Grid points where any guard evaluates negative are outside the
        /// path condition.
        guards: Vec<IExpr>,
    },
}

impl Justification {
    /// A numeric justification over one variable range (step 1 when the
    /// range is small, coarser otherwise).
    pub fn over(var: impl Into<String>, lo: i64, hi: i64) -> Justification {
        let step = ((hi - lo) / 512).max(1);
        Justification::Numeric {
            ranges: vec![(var.into(), lo, hi, step)],
        }
    }
}

/// A derivation-checking error, with a path for locating the offending
/// rule application.
#[derive(Debug, Clone, PartialEq)]
pub struct QhlError {
    /// Human-readable location (function and rule path).
    pub at: String,
    /// Description of the violated side condition.
    pub message: String,
}

impl fmt::Display for QhlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.at, self.message)
    }
}

impl std::error::Error for QhlError {}

/// A derivation tree node.
#[derive(Debug, Clone, PartialEq)]
pub enum Derivation {
    /// Covers any *call-free* statement whose assignments do not interfere
    /// with the ambient assertions: its cost is zero, so the precondition
    /// is the maximum of the reachable postcondition components. This
    /// packages Q:SKIP, Q:BREAK, Q:RETURN and the cost-free assignment
    /// rule for the common case.
    Mono,
    /// Assignment `x = e` where the postcondition may mention `x`: the
    /// precondition is the postcondition with `e` substituted for `x`
    /// (the quantitative assignment rule).
    Assign,
    /// Q:SEQ.
    Seq(Box<Derivation>, Box<Derivation>),
    /// Conditional: the precondition is the maximum of the branch
    /// preconditions.
    If(Box<Derivation>, Box<Derivation>),
    /// Q:LOOP with a declared invariant `I` (the precondition of the loop
    /// body at every iteration).
    Loop {
        /// The loop invariant.
        invariant: BExpr,
        /// Discharges `pre(body) ≤ I`.
        just: Option<Justification>,
        /// Derivation for the body.
        body: Box<Derivation>,
        /// Derivation for the increment statement.
        incr: Box<Derivation>,
    },
    /// Q:CALL (+ Q:FRAME): instantiate the callee's specification with the
    /// call arguments and an auxiliary-variable substitution, framed by
    /// `frame` extra bytes.
    Call {
        /// Substitution for the callee spec's auxiliary variables (the
        /// extended consequence rule for recursion, e.g. `Z ↦ Z - 1`).
        aux: HashMap<String, IExpr>,
        /// Frame amount added to both sides (Q:FRAME).
        frame: BExpr,
        /// Discharges `post_f + M(f) + frame ≥ post.normal`.
        just: Option<Justification>,
    },
    /// Q:CONSEQ on the precondition: establishes `pre` from an inner
    /// derivation whose precondition is at most `pre`.
    Conseq {
        /// The weaker (larger) precondition to establish.
        pre: BExpr,
        /// Discharges `pre(inner) ≤ pre`.
        just: Option<Justification>,
        /// The inner derivation.
        inner: Box<Derivation>,
    },
    /// Q:CONSEQ on the postcondition: checks the inner derivation against
    /// a stronger postcondition (each component `≥` the ambient one).
    ConseqPost {
        /// The stronger postcondition the inner derivation satisfies.
        post: Post,
        /// Discharges the componentwise `≥` against the ambient post.
        just: Option<Justification>,
        /// The inner derivation.
        inner: Box<Derivation>,
    },
}

impl Derivation {
    /// Renders the derivation as an indented proof tree, naming the rule
    /// applied at each node (for inspecting machine-generated proofs and
    /// documenting hand-written ones).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        use std::fmt::Write;
        let pad = "  ".repeat(depth);
        match self {
            Derivation::Mono => {
                let _ = writeln!(out, "{pad}Q:MONO (call-free region)");
            }
            Derivation::Assign => {
                let _ = writeln!(out, "{pad}Q:ASSIGN (wp substitution)");
            }
            Derivation::Seq(a, b) => {
                let _ = writeln!(out, "{pad}Q:SEQ");
                a.render_into(out, depth + 1);
                b.render_into(out, depth + 1);
            }
            Derivation::If(t, e) => {
                let _ = writeln!(out, "{pad}Q:IF (max of branches)");
                t.render_into(out, depth + 1);
                e.render_into(out, depth + 1);
            }
            Derivation::Loop {
                invariant,
                body,
                incr,
                just,
            } => {
                let _ = writeln!(out, "{pad}Q:LOOP invariant {invariant}{}", just_tag(just));
                body.render_into(out, depth + 1);
                incr.render_into(out, depth + 1);
            }
            Derivation::Call { aux, frame, just } => {
                let aux_str = if aux.is_empty() {
                    String::new()
                } else {
                    let mut parts: Vec<String> =
                        aux.iter().map(|(k, v)| format!("{k} := {v}")).collect();
                    parts.sort();
                    format!(" aux[{}]", parts.join(", "))
                };
                let _ = writeln!(
                    out,
                    "{pad}Q:CALL (+Q:FRAME {frame}){aux_str}{}",
                    just_tag(just)
                );
            }
            Derivation::Conseq { pre, just, inner } => {
                let _ = writeln!(out, "{pad}Q:CONSEQ pre {pre}{}", just_tag(just));
                inner.render_into(out, depth + 1);
            }
            Derivation::ConseqPost { post, just, inner } => {
                let _ = writeln!(out, "{pad}Q:CONSEQ-POST {post}{}", just_tag(just));
                inner.render_into(out, depth + 1);
            }
        }
    }

    /// `Seq` convenience constructor.
    pub fn seq(a: Derivation, b: Derivation) -> Derivation {
        Derivation::Seq(Box::new(a), Box::new(b))
    }

    /// A plain Q:CALL with no frame and no auxiliary substitution.
    pub fn call() -> Derivation {
        Derivation::Call {
            aux: HashMap::new(),
            frame: BExpr::zero(),
            just: None,
        }
    }
}

/// The observability counter name for one rule application, matching the
/// rule names of the paper's Figure 4 as printed by [`Derivation::render`].
fn rule_counter(d: &Derivation) -> &'static str {
    match d {
        Derivation::Mono => "qhl/rule/Q:MONO",
        Derivation::Assign => "qhl/rule/Q:ASSIGN",
        Derivation::Seq(..) => "qhl/rule/Q:SEQ",
        Derivation::If(..) => "qhl/rule/Q:IF",
        Derivation::Loop { .. } => "qhl/rule/Q:LOOP",
        Derivation::Call { .. } => "qhl/rule/Q:CALL",
        Derivation::Conseq { .. } => "qhl/rule/Q:CONSEQ",
        Derivation::ConseqPost { .. } => "qhl/rule/Q:CONSEQ-POST",
    }
}

fn just_tag(just: &Option<Justification>) -> &'static str {
    match just {
        None | Some(Justification::Syntactic) => "",
        Some(Justification::Numeric { .. }) => "  [numeric justification]",
        Some(Justification::NumericGuarded { .. }) => "  [guarded numeric justification]",
    }
}

/// The derivation checker.
pub struct Checker<'p> {
    program: &'p Program,
    ctx: &'p Context,
}

impl<'p> Checker<'p> {
    /// Creates a checker for a program under a function context `Γ`.
    pub fn new(program: &'p Program, ctx: &'p Context) -> Checker<'p> {
        Checker { program, ctx }
    }

    /// Checks a derivation for the body of `fname` against its spec in
    /// `Γ` (which may include `fname` itself — recursion). `just`
    /// discharges the final `pre(body) ≤ spec.pre` obligation.
    ///
    /// # Errors
    ///
    /// Returns the first violated side condition.
    pub fn check_function(
        &self,
        fname: &str,
        deriv: &Derivation,
        just: Option<&Justification>,
    ) -> Result<(), QhlError> {
        let _span = obs::span_dyn(|| format!("qhl/fn/{fname}"));
        obs::counter("qhl/functions_checked", 1);
        let f = self.program.function(fname).ok_or_else(|| QhlError {
            at: fname.to_owned(),
            message: "no such function".into(),
        })?;
        let spec = self.ctx.get(fname).ok_or_else(|| QhlError {
            at: fname.to_owned(),
            message: "no specification in context".into(),
        })?;
        let post = Post::function_body(spec.post.clone());
        let pre = self.check_stmt(&f.body, deriv, &post, &format!("{fname}/body"))?;
        self.require_le(
            &pre,
            &spec.pre,
            just,
            &format!("{fname}: pre(body) ≤ spec.pre"),
        )
    }

    /// Checks a derivation for a statement, returning the precondition it
    /// establishes against `post`.
    ///
    /// # Errors
    ///
    /// Returns the first violated side condition.
    pub fn check_stmt(
        &self,
        s: &Stmt,
        d: &Derivation,
        post: &Post,
        at: &str,
    ) -> Result<BExpr, QhlError> {
        obs::counter(rule_counter(d), 1);
        if let Derivation::Call { frame, .. } = d {
            if *frame != BExpr::zero() {
                obs::counter("qhl/rule/Q:FRAME", 1);
            }
        }
        match d {
            Derivation::Mono => self.check_mono(s, post, at),
            Derivation::Assign => match s {
                Stmt::Assign(Expr::Var(x), e) => {
                    let ie = translate_expr(e).ok_or_else(|| QhlError {
                        at: at.to_owned(),
                        message: format!(
                            "assignment source `{e}` is not expressible as an integer expression"
                        ),
                    })?;
                    let mut map = HashMap::new();
                    map.insert(x.clone(), ie);
                    Ok(post.normal.subst_vars(&map))
                }
                other => Err(QhlError {
                    at: at.to_owned(),
                    message: format!("Assign rule applied to `{other}`"),
                }),
            },
            Derivation::Seq(d1, d2) => match s {
                Stmt::Seq(s1, s2) => {
                    let p2 = self.check_stmt(s2, d2, post, &format!("{at}/seq.2"))?;
                    let post1 = Post {
                        normal: p2,
                        brk: post.brk.clone(),
                        cont: post.cont.clone(),
                        ret: post.ret.clone(),
                    };
                    self.check_stmt(s1, d1, &post1, &format!("{at}/seq.1"))
                }
                other => Err(QhlError {
                    at: at.to_owned(),
                    message: format!("Seq rule applied to `{other}`"),
                }),
            },
            Derivation::If(dt, de) => match s {
                Stmt::If(_, t, e) => {
                    let pt = self.check_stmt(t, dt, post, &format!("{at}/then"))?;
                    let pe = self.check_stmt(e, de, post, &format!("{at}/else"))?;
                    Ok(BExpr::max(pt, pe))
                }
                other => Err(QhlError {
                    at: at.to_owned(),
                    message: format!("If rule applied to `{other}`"),
                }),
            },
            Derivation::Loop {
                invariant,
                just,
                body,
                incr,
            } => match s {
                Stmt::Loop(sb, si) => {
                    // {J} incr {(I, ⊥, ⊥, Q_r)}
                    let incr_post = Post {
                        normal: invariant.clone(),
                        brk: BExpr::Inf,
                        cont: BExpr::Inf,
                        ret: post.ret.clone(),
                    };
                    let j = self.check_stmt(si, incr, &incr_post, &format!("{at}/incr"))?;
                    // {pb} body {(J, Q_s, J, Q_r)}
                    let body_post = Post {
                        normal: j.clone(),
                        brk: post.normal.clone(),
                        cont: j,
                        ret: post.ret.clone(),
                    };
                    let pb = self.check_stmt(sb, body, &body_post, &format!("{at}/loop-body"))?;
                    self.require_le(
                        &pb,
                        invariant,
                        just.as_ref(),
                        &format!("{at}: pre(body) ≤ invariant"),
                    )?;
                    Ok(invariant.clone())
                }
                other => Err(QhlError {
                    at: at.to_owned(),
                    message: format!("Loop rule applied to `{other}`"),
                }),
            },
            Derivation::Call { aux, frame, just } => match s {
                Stmt::Call(dest, fname, args) => self.check_call(
                    dest.as_deref(),
                    fname,
                    args,
                    aux,
                    frame,
                    just.as_ref(),
                    post,
                    at,
                ),
                other => Err(QhlError {
                    at: at.to_owned(),
                    message: format!("Call rule applied to `{other}`"),
                }),
            },
            Derivation::Conseq { pre, just, inner } => {
                let p = self.check_stmt(s, inner, post, &format!("{at}/conseq"))?;
                self.require_le(&p, pre, just.as_ref(), &format!("{at}: conseq pre"))?;
                Ok(pre.clone())
            }
            Derivation::ConseqPost {
                post: stronger,
                just,
                inner,
            } => {
                for (name, strong, ambient) in [
                    ("normal", &stronger.normal, &post.normal),
                    ("break", &stronger.brk, &post.brk),
                    ("continue", &stronger.cont, &post.cont),
                    ("return", &stronger.ret, &post.ret),
                ] {
                    self.require_le(
                        ambient,
                        strong,
                        just.as_ref(),
                        &format!("{at}: conseq post ({name})"),
                    )?;
                }
                self.check_stmt(s, inner, stronger, &format!("{at}/conseq-post"))
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn check_call(
        &self,
        dest: Option<&str>,
        fname: &str,
        args: &[Expr],
        aux: &HashMap<String, IExpr>,
        frame: &BExpr,
        just: Option<&Justification>,
        post: &Post,
        at: &str,
    ) -> Result<BExpr, QhlError> {
        let spec = match self.ctx.get(fname) {
            Some(s) => s.clone(),
            None if self.program.external(fname).is_some() => FunSpec::zero(),
            None => {
                return Err(QhlError {
                    at: at.to_owned(),
                    message: format!("no specification for callee `{fname}`"),
                })
            }
        };
        // Build the parameter substitution from the call arguments.
        let mut map: HashMap<String, IExpr> = HashMap::new();
        if let Some(f) = self.program.function(fname) {
            let needed: Vec<String> = {
                let mut v = spec.pre.vars();
                v.extend(spec.post.vars());
                v
            };
            for (p, a) in f.params.iter().zip(args) {
                match translate_expr(a) {
                    Some(ie) => {
                        map.insert(p.name.clone(), ie);
                    }
                    None if needed.contains(&p.name) => {
                        return Err(QhlError {
                            at: at.to_owned(),
                            message: format!(
                                "argument `{a}` for parameter `{}` of `{fname}` is not \
                                 expressible but the specification depends on it",
                                p.name
                            ),
                        });
                    }
                    None => {}
                }
            }
        }
        // External functions have zero stack cost (M(g(v⃗ ↦ v)) = 0).
        let metric_cost = if self.program.function(fname).is_some() {
            BExpr::metric(fname)
        } else {
            BExpr::zero()
        };
        let pre_f = BExpr::add(
            BExpr::add(
                spec.pre.subst_vars(&map).subst_aux(aux),
                metric_cost.clone(),
            ),
            frame.clone(),
        );
        let post_f = BExpr::add(
            BExpr::add(spec.post.subst_vars(&map).subst_aux(aux), metric_cost),
            frame.clone(),
        );
        if let Some(d) = dest {
            if post_f.vars().iter().any(|v| v == d) || post.normal.vars().iter().any(|v| v == d) {
                return Err(QhlError {
                    at: at.to_owned(),
                    message: format!(
                        "call destination `{d}` occurs in an assertion; \
                         assign through a temporary instead"
                    ),
                });
            }
        }
        // For potential-restoring specifications (P_f = Q_f, every bound in
        // the paper's tables), the composite of Q:CALL, Q:FRAME and
        // Q:CONSEQ derives `{max(P_f + M(f), Q)} call {Q}` with no side
        // condition: running the call needs `P_f + M(f)`, and since the
        // potential is fully restored, whatever was available before the
        // call (at least `Q`) is available after it. This is how Figure 5
        // eliminates the `max` without subtraction.
        if spec.pre == spec.post {
            return Ok(BExpr::max(pre_f, post.normal.clone()));
        }
        self.require_le(
            &post.normal,
            &post_f,
            just,
            &format!("{at}: call post covers ambient post"),
        )?;
        Ok(pre_f)
    }

    /// The Mono rule: a call-free statement costs nothing, so its
    /// precondition is the maximum of the reachable exit assertions —
    /// provided the statement does not assign any variable those
    /// assertions mention.
    fn check_mono(&self, s: &Stmt, post: &Post, at: &str) -> Result<BExpr, QhlError> {
        let mut callees = Vec::new();
        collect_calls(s, &mut callees);
        // External calls cost nothing and are permitted in Mono regions.
        for c in &callees {
            if self.program.function(c).is_some() {
                return Err(QhlError {
                    at: at.to_owned(),
                    message: format!(
                        "Mono rule applied to a statement calling `{c}`; use a Call node"
                    ),
                });
            }
        }
        let exits = exits(s);
        let mut pre = BExpr::zero();
        let mut relevant_vars: Vec<String> = Vec::new();
        for (flag, b) in [
            (exits.normal, &post.normal),
            (exits.brk, &post.brk),
            (exits.cont, &post.cont),
            (exits.ret, &post.ret),
        ] {
            if flag {
                relevant_vars.extend(b.vars());
                pre = BExpr::max(pre, b.clone());
            }
        }
        let mut assigned = Vec::new();
        collect_assigned(s, &mut assigned);
        if let Some(x) = assigned.iter().find(|x| relevant_vars.contains(x)) {
            return Err(QhlError {
                at: at.to_owned(),
                message: format!(
                    "Mono rule: statement assigns `{x}`, which the postcondition mentions; \
                     use Assign/Conseq nodes"
                ),
            });
        }
        Ok(pre)
    }

    /// Discharges `lhs ≤ rhs`.
    fn require_le(
        &self,
        lhs: &BExpr,
        rhs: &BExpr,
        just: Option<&Justification>,
        what: &str,
    ) -> Result<(), QhlError> {
        if lhs.le_syntactic(rhs) {
            return Ok(());
        }
        match just {
            None | Some(Justification::Syntactic) => Err(QhlError {
                at: what.to_owned(),
                message: format!("cannot establish {lhs} ≤ {rhs} syntactically"),
            }),
            Some(Justification::Numeric { ranges }) => check_numeric(lhs, rhs, ranges, &[])
                .map_err(|message| QhlError {
                    at: what.to_owned(),
                    message,
                }),
            Some(Justification::NumericGuarded { ranges, guards }) => {
                check_numeric(lhs, rhs, ranges, guards).map_err(|message| QhlError {
                    at: what.to_owned(),
                    message,
                })
            }
        }
    }
}

/// Which exits a statement can take.
#[derive(Debug, Clone, Copy, Default)]
struct Exits {
    normal: bool,
    brk: bool,
    cont: bool,
    ret: bool,
}

fn exits(s: &Stmt) -> Exits {
    match s {
        Stmt::Skip | Stmt::Assign(..) | Stmt::Call(..) => Exits {
            normal: true,
            ..Exits::default()
        },
        Stmt::Break => Exits {
            brk: true,
            ..Exits::default()
        },
        Stmt::Continue => Exits {
            cont: true,
            ..Exits::default()
        },
        Stmt::Return(_) => Exits {
            ret: true,
            ..Exits::default()
        },
        Stmt::Seq(a, b) => {
            let ea = exits(a);
            let eb = exits(b);
            Exits {
                normal: ea.normal && eb.normal,
                brk: ea.brk || (ea.normal && eb.brk),
                cont: ea.cont || (ea.normal && eb.cont),
                ret: ea.ret || (ea.normal && eb.ret),
            }
        }
        Stmt::If(_, t, e) => {
            let et = exits(t);
            let ee = exits(e);
            Exits {
                normal: et.normal || ee.normal,
                brk: et.brk || ee.brk,
                cont: et.cont || ee.cont,
                ret: et.ret || ee.ret,
            }
        }
        Stmt::Loop(b, i) => {
            let eb = exits(b);
            let ei = exits(i);
            Exits {
                normal: eb.brk || ei.brk,
                brk: false,
                cont: false,
                ret: eb.ret || ei.ret,
            }
        }
    }
}

fn collect_calls(s: &Stmt, out: &mut Vec<String>) {
    s.visit(&mut |s| {
        if let Stmt::Call(_, f, _) = s {
            out.push(f.clone());
        }
    });
}

fn collect_assigned(s: &Stmt, out: &mut Vec<String>) {
    s.visit(&mut |s| match s {
        Stmt::Assign(Expr::Var(x), _) => out.push(x.clone()),
        Stmt::Call(Some(d), _, _) => out.push(d.clone()),
        _ => {}
    });
}

/// Translates a Clight expression to an [`IExpr`], when expressible.
///
/// Only the linear fragment plus division by a positive constant is
/// supported; comparisons, loads, and pointers are not (assertions never
/// need them in the evaluated examples).
pub fn translate_expr(e: &Expr) -> Option<IExpr> {
    use mem::Binop::*;
    Some(match e {
        Expr::Const(n, ty) => {
            if matches!(ty, clight::Ty::I32) {
                IExpr::Const(i64::from(*n as i32))
            } else {
                IExpr::Const(i64::from(*n))
            }
        }
        Expr::Var(x) => IExpr::Var(x.clone()),
        Expr::Binop(op, a, b) => {
            let ia = translate_expr(a)?;
            let ib = translate_expr(b)?;
            match op {
                Add => IExpr::Add(Box::new(ia), Box::new(ib)),
                Sub => IExpr::Sub(Box::new(ia), Box::new(ib)),
                Mul => IExpr::Mul(Box::new(ia), Box::new(ib)),
                Divu | Divs => match ib {
                    IExpr::Const(k) if k > 0 => IExpr::Div(Box::new(ia), k),
                    _ => return None,
                },
                _ => return None,
            }
        }
        Expr::Cast(_, a) => translate_expr(a)?,
        _ => return None,
    })
}

/// Verifies `lhs ≤ rhs` on every point of the declared grid (bounded
/// exhaustive verification; see module docs).
fn check_numeric(
    lhs: &BExpr,
    rhs: &BExpr,
    ranges: &[(String, i64, i64, i64)],
    guards: &[IExpr],
) -> Result<(), String> {
    // Collect metric symbols and sample them over representative frame
    // sizes (bounds are monotone in each M(f), so extremes matter most;
    // the grid includes 0 and a large value).
    let mut metrics: Vec<String> = Vec::new();
    for e in [lhs, rhs] {
        collect_metrics(e, &mut metrics);
    }
    const METRIC_SAMPLES: [u32; 4] = [0, 4, 48, 1024];
    let mut metric_choices = vec![0usize; metrics.len()];
    loop {
        let metric: trace::Metric = metrics
            .iter()
            .zip(&metric_choices)
            .map(|(f, c)| (f.clone(), METRIC_SAMPLES[*c]))
            .collect();
        check_grid(lhs, rhs, ranges, guards, &metric)?;
        // Next metric combination.
        let mut i = 0;
        loop {
            if i == metric_choices.len() {
                return Ok(());
            }
            metric_choices[i] += 1;
            if metric_choices[i] < METRIC_SAMPLES.len() {
                break;
            }
            metric_choices[i] = 0;
            i += 1;
        }
        if metrics.is_empty() {
            return Ok(());
        }
    }
}

fn check_grid(
    lhs: &BExpr,
    rhs: &BExpr,
    ranges: &[(String, i64, i64, i64)],
    guards: &[IExpr],
    metric: &trace::Metric,
) -> Result<(), String> {
    let mut point = vec![0i64; ranges.len()];
    for (i, (_, lo, _, _)) in ranges.iter().enumerate() {
        point[i] = *lo;
    }
    loop {
        let mut env = Valuation::new();
        for ((name, _, _, _), v) in ranges.iter().zip(&point) {
            env.vars.insert(name.clone(), *v);
            env.aux.insert(name.clone(), *v);
        }
        let mut in_domain = true;
        for g in guards {
            if g.eval(&env)? < 0 {
                in_domain = false;
                break;
            }
        }
        let l = lhs.eval(metric, &env)?;
        let r = rhs.eval(metric, &env)?;
        if in_domain && !l.le(r) {
            return Err(format!(
                "numeric justification fails at {:?} with metric {}: {l} > {r}",
                ranges
                    .iter()
                    .zip(&point)
                    .map(|((n, ..), v)| format!("{n}={v}"))
                    .collect::<Vec<_>>(),
                metric,
            ));
        }
        // Advance the grid point.
        let mut i = 0;
        loop {
            if i == point.len() {
                return Ok(());
            }
            let (_, lo, hi, step) = &ranges[i];
            point[i] += step;
            if point[i] <= *hi {
                break;
            }
            point[i] = *lo;
            i += 1;
        }
        if ranges.is_empty() {
            return Ok(());
        }
    }
}

fn collect_metrics(e: &BExpr, out: &mut Vec<String>) {
    match e {
        BExpr::Metric(f) if !out.contains(f) => {
            out.push(f.clone());
        }
        BExpr::Add(a, b) | BExpr::Mul(a, b) | BExpr::Max(a, b) => {
            collect_metrics(a, out);
            collect_metrics(b, out);
        }
        _ => {}
    }
}
