//! The quantitative Hoare logic of *End-to-End Verification of
//! Stack-Space Bounds for C Programs* (PLDI 2014), §4.
//!
//! Assertions generalize boolean Hoare assertions to maps into `ℕ ∪ {∞}`:
//! the precondition of a triple `{P} S {Q}` bounds the stack space needed
//! to execute `S`, and the postcondition describes the space available
//! again afterwards — amortized-analysis style. Here assertions are
//! symbolic [`BExpr`]s over program variables, auxiliary variables, and
//! metric costs `M(f)`, so one derivation covers *every* metric; the
//! compiler instantiates it with the concrete `M(f) = SF(f) + 4`.
//!
//! Derivations are explicit proof trees ([`Derivation`]) validated by
//! [`Checker`]; the automatic stack analyzer (crate `analyzer`) emits
//! them, and the recursive bounds of the paper's Table 2 are written by
//! hand exactly like the paper's interactive Coq proofs.
//!
//! # Examples
//!
//! Verify `max(M(f), M(g))`-style composition from Figure 5: calling `f`
//! and then `g` needs `max(M(f), M(g))` bytes when neither consumes stack
//! of its own:
//!
//! ```
//! use qhl::{BExpr, Checker, Context, Derivation, FunSpec};
//!
//! let program = clight::frontend("
//!     void f() { return; }
//!     void g() { return; }
//!     void h() { f(); g(); }
//! ", &[]).unwrap();
//!
//! let mut ctx = Context::new();
//! ctx.insert("f", FunSpec::zero());
//! ctx.insert("g", FunSpec::zero());
//! ctx.insert("h", FunSpec::restoring(
//!     BExpr::max(BExpr::metric("f"), BExpr::metric("g"))));
//!
//! // h's body is `f(); g();` — one Call node per call (Q:CALL + Q:FRAME
//! // + Q:CONSEQ are handled by the checker's comparator).
//! let deriv = Derivation::seq(Derivation::call(), Derivation::call());
//! Checker::new(&program, &ctx).check_function("h", &deriv, None).unwrap();
//! ```

#![warn(missing_docs)]

mod bound;
mod derive;
mod logic;
mod validate;

pub use bound::{BExpr, Bound, IExpr, Valuation};
pub use derive::{translate_expr, Checker, Derivation, Justification, QhlError};
pub use logic::{Context, FunSpec, Post};
pub use validate::{validate_spec, Validation};

#[cfg(test)]
mod tests;
