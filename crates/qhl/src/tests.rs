use crate::{
    validate_spec, BExpr, Bound, Checker, Context, Derivation, FunSpec, IExpr, Justification,
    Valuation,
};
use proptest::prelude::*;
use trace::Metric;

const FUEL: u64 = 10_000_000;

fn m(f: &str) -> BExpr {
    BExpr::metric(f)
}

// ---- bound expressions --------------------------------------------------------

#[test]
fn bound_arithmetic() {
    assert_eq!(Bound::Fin(2.0).add(Bound::Fin(3.0)), Bound::Fin(5.0));
    assert_eq!(Bound::Fin(2.0).add(Bound::Inf), Bound::Inf);
    assert_eq!(Bound::Fin(2.0).max(Bound::Fin(3.0)), Bound::Fin(3.0));
    assert!(Bound::Fin(1e9).le(Bound::Inf));
    assert!(!Bound::Inf.le(Bound::Fin(1e9)));
}

#[test]
fn eval_resolves_metric_and_vars() {
    let e = BExpr::add(
        m("f"),
        BExpr::mul(BExpr::Const(3.0), BExpr::OfInt(IExpr::var("n"))),
    );
    let metric = Metric::from_pairs([("f", 10)]);
    let env = Valuation::of_vars([("n", 4)]);
    assert_eq!(e.eval(&metric, &env).unwrap(), Bound::Fin(22.0));
}

#[test]
fn log2_follows_paper_conventions() {
    let e = BExpr::Log2(IExpr::var("d"));
    let metric = Metric::new();
    let at = |v: i64| e.eval(&metric, &Valuation::of_vars([("d", v)])).unwrap();
    assert_eq!(at(-1), Bound::Inf); // log2 of negative: no guarantee
    assert_eq!(at(0), Bound::Fin(0.0)); // log2(0) = 0 by convention
    assert_eq!(at(8), Bound::Fin(3.0));
}

#[test]
fn negative_quantities_mean_no_guarantee() {
    let e = BExpr::OfInt(IExpr::sub(IExpr::var("hi"), IExpr::var("lo")));
    let metric = Metric::new();
    let env = Valuation::of_vars([("hi", 2), ("lo", 5)]);
    assert_eq!(e.eval(&metric, &env).unwrap(), Bound::Inf);
}

#[test]
fn unbound_variable_is_an_error() {
    let e = BExpr::OfInt(IExpr::var("nope"));
    assert!(e.eval(&Metric::new(), &Valuation::new()).is_err());
}

#[test]
fn substitution_of_vars_and_aux() {
    use std::collections::HashMap;
    let e = BExpr::Log2(IExpr::sub(IExpr::var("h"), IExpr::var("l")));
    let mut map = HashMap::new();
    map.insert(
        "h".to_owned(),
        IExpr::Div(Box::new(IExpr::add(IExpr::var("h"), IExpr::var("l"))), 2),
    );
    let e2 = e.subst_vars(&map);
    // h := (h+l)/2 turns log2(h-l) into log2((h+l)/2 - l).
    let metric = Metric::new();
    let env = Valuation::of_vars([("h", 16), ("l", 0)]);
    assert_eq!(e2.eval(&metric, &env).unwrap(), Bound::Fin(3.0));
}

// ---- the syntactic comparator ----------------------------------------------------

#[test]
fn comparator_accepts_max_introduction() {
    assert!(m("f").le_syntactic(&BExpr::max(m("f"), m("g"))));
    assert!(m("g").le_syntactic(&BExpr::max(m("f"), m("g"))));
    assert!(!BExpr::max(m("f"), m("g")).le_syntactic(&m("f")));
}

#[test]
fn comparator_accepts_additive_weakening() {
    let a = BExpr::add(m("f"), BExpr::Const(8.0));
    let b = BExpr::add(BExpr::add(m("f"), BExpr::Const(12.0)), m("g"));
    assert!(a.le_syntactic(&b));
    assert!(!b.le_syntactic(&a));
}

#[test]
fn comparator_distributes_add_over_max() {
    // max(f, g) + c <= max(f + c, g + c).
    let lhs = BExpr::add(BExpr::max(m("f"), m("g")), BExpr::Const(4.0));
    let rhs = BExpr::max(
        BExpr::add(m("f"), BExpr::Const(4.0)),
        BExpr::add(m("g"), BExpr::Const(4.0)),
    );
    assert!(lhs.le_syntactic(&rhs));
    assert!(rhs.le_syntactic(&lhs));
}

#[test]
fn comparator_everything_below_inf() {
    let big = BExpr::mul(BExpr::Const(1e12), m("f"));
    assert!(big.le_syntactic(&BExpr::Inf));
    assert!(!BExpr::Inf.le_syntactic(&big));
}

#[test]
fn comparator_handles_scaled_atoms() {
    let n = BExpr::OfInt(IExpr::var("n"));
    let lhs = BExpr::mul(BExpr::Const(24.0), n.clone());
    let rhs = BExpr::add(BExpr::mul(BExpr::Const(24.0), n), BExpr::Const(40.0));
    assert!(lhs.le_syntactic(&rhs));
    assert!(!rhs.le_syntactic(&lhs));
}

// ---- checking derivations ---------------------------------------------------------

#[test]
fn figure5_max_composition() {
    let program = clight::frontend(
        "void f() { return; } void g() { return; } void h() { f(); g(); }",
        &[],
    )
    .unwrap();
    let mut ctx = Context::new();
    ctx.insert("f", FunSpec::zero());
    ctx.insert("g", FunSpec::zero());
    ctx.insert("h", FunSpec::restoring(BExpr::max(m("f"), m("g"))));
    let deriv = Derivation::seq(Derivation::call(), Derivation::call());
    Checker::new(&program, &ctx)
        .check_function("h", &deriv, None)
        .unwrap();
}

#[test]
fn underspecified_bound_is_rejected() {
    let program = clight::frontend(
        "void f() { return; } void g() { return; } void h() { f(); g(); }",
        &[],
    )
    .unwrap();
    let mut ctx = Context::new();
    ctx.insert("f", FunSpec::zero());
    ctx.insert("g", FunSpec::zero());
    // Claiming only M(f) is not enough: the call to g needs M(g).
    ctx.insert("h", FunSpec::restoring(m("f")));
    let deriv = Derivation::seq(Derivation::call(), Derivation::call());
    let err = Checker::new(&program, &ctx)
        .check_function("h", &deriv, None)
        .unwrap_err();
    assert!(err.message.contains("cannot establish"), "{err}");
}

#[test]
fn nested_call_bounds_compose() {
    // h calls g calls f: bound(h) = M(g) + M(f).
    let program = clight::frontend(
        "void f() { return; }
         void g() { f(); }
         void h() { g(); }",
        &[],
    )
    .unwrap();
    let mut ctx = Context::new();
    ctx.insert("f", FunSpec::zero());
    ctx.insert("g", FunSpec::restoring(m("f")));
    ctx.insert("h", FunSpec::restoring(BExpr::add(m("g"), m("f"))));
    let checker = Checker::new(&program, &ctx);
    checker
        .check_function("g", &Derivation::call(), None)
        .unwrap();
    checker
        .check_function("h", &Derivation::call(), None)
        .unwrap();
}

#[test]
fn loops_with_invariants() {
    let program = clight::frontend(
        "void f() { return; }
         void spin(u32 n) { u32 i; for (i = 0; i < n; i++) { f(); } return; }",
        &[],
    )
    .unwrap();
    let mut ctx = Context::new();
    ctx.insert("f", FunSpec::zero());
    ctx.insert("spin", FunSpec::restoring(m("f")));
    // Body of spin: i = 0; loop { if (i < n) skip else break; f(); } (i++)
    let loop_deriv = Derivation::Loop {
        invariant: m("f"),
        just: None,
        body: Box::new(Derivation::seq(
            Derivation::Mono, // the guard if/break
            Derivation::call(),
        )),
        incr: Box::new(Derivation::Mono),
    };
    // spin body: Seq(Seq(i = 0, loop), return) — the `for` lowering seqs
    // the init statement with the loop.
    let deriv = Derivation::seq(
        Derivation::seq(Derivation::Mono, loop_deriv),
        Derivation::Mono,
    );
    Checker::new(&program, &ctx)
        .check_function("spin", &deriv, None)
        .unwrap();
}

#[test]
fn mono_rejects_statements_with_internal_calls() {
    let program = clight::frontend("void f() { return; } void h() { f(); }", &[]).unwrap();
    let mut ctx = Context::new();
    ctx.insert("f", FunSpec::zero());
    ctx.insert("h", FunSpec::restoring(m("f")));
    let err = Checker::new(&program, &ctx)
        .check_function("h", &Derivation::Mono, None)
        .unwrap_err();
    assert!(err.message.contains("Call node"), "{err}");
}

#[test]
fn external_calls_cost_nothing() {
    let program = clight::frontend(
        "extern u32 io(u32 x);
         u32 h() { u32 r; r = io(3); return r; }",
        &[],
    )
    .unwrap();
    let mut ctx = Context::new();
    ctx.insert("h", FunSpec::restoring(BExpr::zero()));
    Checker::new(&program, &ctx)
        .check_function(
            "h",
            &Derivation::seq(Derivation::call(), Derivation::Mono),
            None,
        )
        .unwrap();
}

/// The paper's recid: linear recursion of depth `a`, bound `M(recid)·a`.
#[test]
fn recid_linear_recursion() {
    let program = clight::frontend(
        "u32 recid(u32 a) { u32 r; if (a == 0) return 0; r = recid(a - 1); return r + 1; }",
        &[],
    )
    .unwrap();
    let bound = BExpr::mul(m("recid"), BExpr::OfInt(IExpr::var("a")));
    let mut ctx = Context::new();
    ctx.insert("recid", FunSpec::restoring(bound));
    // Body: if (a == 0) return 0; (r = recid(a-1); return r+1)
    // The recursive call instantiates the spec with a := a - 1:
    //   pre = M·(a-1) + M  <=  M·a   (needs a >= 1 on the call path; we
    //   declare the verification domain a in 1..=2^16).
    let deriv = Derivation::seq(
        Derivation::Mono, // the if/return
        Derivation::seq(
            Derivation::Conseq {
                pre: BExpr::mul(m("recid"), BExpr::OfInt(IExpr::var("a"))),
                just: Some(Justification::over("a", 1, 1 << 16)),
                inner: Box::new(Derivation::call()),
            },
            Derivation::Mono, // return r + 1
        ),
    );
    Checker::new(&program, &ctx)
        .check_function("recid", &deriv, None)
        .unwrap();

    // Theorem 2, empirically: the bound covers the measured weight.
    let metric = Metric::from_pairs([("recid", 8)]);
    for a in [0i64, 1, 2, 7, 30] {
        let spec = ctx.get("recid").unwrap();
        let v = validate_spec(&program, "recid", spec, &[a], &metric, FUEL).unwrap();
        assert!(
            v.sound(),
            "a = {a}: bound {} < weight {}",
            v.bound,
            v.weight
        );
        // The linear bound is tight: weight = 8·a exactly... plus the
        // outer activation of recid itself (8 more).
        assert_eq!(v.weight, 8 * (a + 1));
    }
}

/// The bound of recid is `M·a` for the *callees*; note the outer call
/// itself costs `M(recid)` more, which is what `main`'s bound pays. This
/// test pins the off-by-one convention.
#[test]
fn spec_bounds_body_not_outer_activation() {
    let program = clight::frontend(
        "u32 recid(u32 a) { u32 r; if (a == 0) return 0; r = recid(a - 1); return r + 1; }
         int main() { u32 r; r = recid(10); return r; }",
        &[],
    )
    .unwrap();
    let recid_bound = BExpr::mul(m("recid"), BExpr::OfInt(IExpr::var("a")));
    let mut ctx = Context::new();
    ctx.insert("recid", FunSpec::restoring(recid_bound));
    // main's bound: M(recid)·10 + M(recid) = M·11.
    ctx.insert(
        "main",
        FunSpec::restoring(BExpr::mul(m("recid"), BExpr::Const(11.0))),
    );
    let deriv = Derivation::seq(Derivation::call(), Derivation::Mono);
    Checker::new(&program, &ctx)
        .check_function("main", &deriv, None)
        .unwrap();
}

/// Binary search with the logarithmic bound of Figure 6 / Table 2:
/// `L(h − l) = M(bsearch)·(2 + log2(h − l))`.
#[test]
fn bsearch_logarithmic_bound() {
    let program = clight::frontend(
        "u32 a[4096];
         u32 bsearch(u32 x, u32 l, u32 h) {
           u32 mid;
           if (h - l <= 1) return l;
           mid = (h + l) / 2;
           if (a[mid] > x) h = mid; else l = mid;
           return bsearch(x, l, h);
         }",
        &[],
    )
    .unwrap();
    // Body bound M·⌈log2(h−l)⌉; the reported bound for a call is
    // M·(1 + ⌈log2(h−l)⌉) — the integer-halving counterpart of the
    // paper's 40·(1 + log2(hi−lo)).
    let delta = IExpr::sub(IExpr::var("h"), IExpr::var("l"));
    let bound = BExpr::mul(m("bsearch"), BExpr::Log2Ceil(delta));
    let mut ctx = Context::new();
    ctx.insert("bsearch", FunSpec::restoring(bound.clone()));

    // Body: if(..)return; mid = (h+l)/2; if(..) h=mid else l=mid; tmp = bsearch(x,l,h); return tmp
    // Strategy: after the assignments, the recursive call needs
    // M·(2 + log2(h'-l')) + M where (h'-l') <= (h-l)/2 on both branches.
    // One Conseq around the whole tail discharges the inequality
    // numerically over the operating domain 2 <= h-l, l,h <= 4096.
    let tail = Derivation::Conseq {
        pre: bound.clone(),
        just: Some(Justification::NumericGuarded {
            ranges: vec![("l".into(), 0, 96, 1), ("h".into(), 0, 96, 1)],
            // Path condition: the guard `h - l <= 1` returned already.
            guards: vec![IExpr::sub(
                IExpr::sub(IExpr::var("h"), IExpr::var("l")),
                IExpr::Const(2),
            )],
        }),
        inner: Box::new(Derivation::seq(
            Derivation::Assign, // mid = (h + l) / 2
            Derivation::seq(
                Derivation::If(
                    Box::new(Derivation::Assign), // h = mid
                    Box::new(Derivation::Assign), // l = mid
                ),
                Derivation::seq(
                    Derivation::call(), // tmp = bsearch(x, l, h)
                    Derivation::Mono,   // return tmp
                ),
            ),
        )),
    };
    let deriv = Derivation::seq(Derivation::Mono, tail);
    Checker::new(&program, &ctx)
        .check_function("bsearch", &deriv, None)
        .unwrap();

    // Theorem 2, empirically, across the whole sweep of Figure 7.
    let metric = Metric::from_pairs([("bsearch", 36)]); // M = 36 -> 40 with +4
    let spec = ctx.get("bsearch").unwrap();
    for len in [2i64, 3, 4, 10, 100, 1000, 4096] {
        let v = validate_spec(&program, "bsearch", spec, &[7, 0, len], &metric, FUEL).unwrap();
        assert!(
            v.sound(),
            "len = {len}: bound {} < weight {}",
            v.bound,
            v.weight
        );
    }
}

#[test]
fn wrong_recursive_bound_is_rejected() {
    let program = clight::frontend(
        "u32 recid(u32 a) { u32 r; if (a == 0) return 0; r = recid(a - 1); return r + 1; }",
        &[],
    )
    .unwrap();
    // Claim a constant bound for a linearly recursive function.
    let mut ctx = Context::new();
    ctx.insert("recid", FunSpec::restoring(m("recid")));
    let deriv = Derivation::seq(
        Derivation::Mono,
        Derivation::seq(Derivation::call(), Derivation::Mono),
    );
    let err = Checker::new(&program, &ctx)
        .check_function("recid", &deriv, None)
        .unwrap_err();
    assert!(err.message.contains("cannot establish"), "{err}");
}

#[test]
fn numeric_justification_rejects_false_inequalities() {
    let program = clight::frontend(
        "u32 recid(u32 a) { u32 r; if (a == 0) return 0; r = recid(a - 1); return r + 1; }",
        &[],
    )
    .unwrap();
    let mut ctx = Context::new();
    // M·a is NOT enough if the domain includes a = 0 at the call site
    // (pre would be M·(a-1) + M = M·a, fine — so claim something smaller
    // to force a failure: M·(a-1)).
    ctx.insert(
        "recid",
        FunSpec::restoring(BExpr::mul(
            m("recid"),
            BExpr::OfInt(IExpr::sub(IExpr::var("a"), IExpr::Const(1))),
        )),
    );
    let deriv = Derivation::seq(
        Derivation::Mono,
        Derivation::seq(
            Derivation::Conseq {
                pre: BExpr::mul(
                    m("recid"),
                    BExpr::OfInt(IExpr::sub(IExpr::var("a"), IExpr::Const(1))),
                ),
                just: Some(Justification::over("a", 1, 64)),
                inner: Box::new(Derivation::call()),
            },
            Derivation::Mono,
        ),
    );
    let err = Checker::new(&program, &ctx)
        .check_function("recid", &deriv, None)
        .unwrap_err();
    assert!(err.message.contains("numeric justification fails"), "{err}");
}

#[test]
fn mono_rejects_interfering_assignments() {
    let program = clight::frontend("u32 f(u32 n) { n = 0; return n; }", &[]).unwrap();
    let mut ctx = Context::new();
    // The bound mentions n, and the body assigns n before returning.
    ctx.insert("f", FunSpec::restoring(BExpr::OfInt(IExpr::var("n"))));
    let err = Checker::new(&program, &ctx)
        .check_function("f", &Derivation::Mono, None)
        .unwrap_err();
    assert!(err.message.contains("assigns `n`"), "{err}");
}

#[test]
fn assign_rule_substitutes() {
    // The bound of the call to g mentions k; the Assign rule turns the
    // obligation on k into one on n via wp-substitution k := n + 1.
    let program = clight::frontend(
        "void g(u32 k) { return; }
         void f(u32 n) { u32 k; k = n + 1; g(k); return; }",
        &[],
    )
    .unwrap();
    let mut ctx = Context::new();
    ctx.insert(
        "g",
        FunSpec::restoring(BExpr::mul(BExpr::Const(8.0), BExpr::OfInt(IExpr::var("k")))),
    );
    // g is called with k = n+1, so f needs 8·(n+1) + M(g).
    ctx.insert(
        "f",
        FunSpec::restoring(BExpr::add(
            BExpr::mul(
                BExpr::Const(8.0),
                BExpr::OfInt(IExpr::add(IExpr::var("n"), IExpr::Const(1))),
            ),
            m("g"),
        )),
    );
    let deriv = Derivation::seq(
        Derivation::Assign,
        Derivation::seq(Derivation::call(), Derivation::Mono),
    );
    Checker::new(&program, &ctx)
        .check_function("f", &deriv, None)
        .unwrap();
}

// ---- property tests -----------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_le_syntactic_implies_pointwise(
        cf in 0u32..100, cg in 0u32..100, k in 0u32..64, n in 0i64..64,
    ) {
        // Random instances of the shapes the analyzer produces.
        let lhs = BExpr::add(m("f"), BExpr::Const(f64::from(k)));
        let rhs = BExpr::max(
            BExpr::add(m("f"), BExpr::Const(f64::from(k) + 1.0)),
            m("g"),
        );
        if lhs.le_syntactic(&rhs) {
            let metric = Metric::from_pairs([("f", cf), ("g", cg)]);
            let env = Valuation::of_vars([("n", n)]);
            let l = lhs.eval(&metric, &env).unwrap();
            let r = rhs.eval(&metric, &env).unwrap();
            prop_assert!(l.le(r), "{l} > {r}");
        }
    }

    #[test]
    fn prop_checked_recid_bound_is_sound_on_all_inputs(a in 0i64..200, cost in 1u32..64) {
        let program = clight::frontend(
            "u32 recid(u32 a) { u32 r; if (a == 0) return 0; r = recid(a - 1); return r + 1; }",
            &[],
        ).unwrap();
        let spec = FunSpec::restoring(BExpr::mul(m("recid"), BExpr::OfInt(IExpr::var("a"))));
        let metric = Metric::from_pairs([("recid", cost * 4)]);
        let v = validate_spec(&program, "recid", &spec, &[a], &metric, FUEL).unwrap();
        // The spec bounds the *callees*; add one activation for the entry.
        let total = v.bound.add(Bound::Fin(f64::from(cost * 4)));
        prop_assert!(Bound::Fin(v.weight as f64).le(total));
    }
}

#[test]
fn derivations_render_as_proof_trees() {
    let d = Derivation::seq(
        Derivation::Mono,
        Derivation::Conseq {
            pre: m("f"),
            just: Some(Justification::over("a", 1, 8)),
            inner: Box::new(Derivation::call()),
        },
    );
    let text = d.render();
    assert!(text.contains("Q:SEQ"), "{text}");
    assert!(text.contains("Q:MONO"), "{text}");
    assert!(text.contains("Q:CONSEQ pre M(f)"), "{text}");
    assert!(text.contains("numeric justification"), "{text}");
    assert!(text.contains("Q:CALL"), "{text}");
}

#[test]
fn conseq_post_strengthens_the_postcondition() {
    // Inner derivation checked against a stronger (larger) post; the
    // ambient post is weaker, so the consequence rule applies.
    let program = clight::frontend("void f() { return; } void h() { f(); }", &[]).unwrap();
    let mut ctx = Context::new();
    ctx.insert("f", FunSpec::zero());
    // h restores only M(f)/2 per its spec -- the inner derivation proves
    // the stronger "restores M(f)" and ConseqPost weakens it.
    ctx.insert(
        "h",
        FunSpec {
            pre: m("f"),
            post: BExpr::mul(BExpr::Const(0.5), m("f")),
        },
    );
    let deriv = Derivation::ConseqPost {
        post: qhl_post(),
        just: None,
        inner: Box::new(Derivation::call()),
    };
    fn qhl_post() -> crate::Post {
        crate::Post::function_body(BExpr::metric("f"))
    }
    Checker::new(&program, &ctx)
        .check_function("h", &deriv, None)
        .unwrap();
}

#[test]
fn post_display_shows_all_components() {
    let p = crate::Post::function_body(m("f"));
    let text = p.to_string();
    assert!(text.contains("s: M(f)"), "{text}");
    assert!(text.contains("b: ∞"), "{text}");
}
