//! Symbolic bound expressions: the assertion language of the quantitative
//! Hoare logic.
//!
//! An assertion of the paper maps a program state to `ℕ ∪ {∞}`. Here
//! assertions are *symbolic*: bound expressions over
//!
//! * integer expressions in program variables (parameter and local values)
//!   and auxiliary (logical) variables,
//! * symbolic metric costs `M(f)` resolved by a concrete [`trace::Metric`]
//!   at instantiation time (the compiler provides `M(f) = SF(f) + 4`), and
//! * the operations `+`, `·`, `max` and `log2`.
//!
//! `log2` follows the paper's convention: `log2(Δ) = +∞` for `Δ < 0` and
//! `log2(0) = 0`, which simulates the logical precondition `beg ≤ end`
//! without a separate guard. More generally a negative integer expression
//! used as a quantity makes the bound `+∞` ("no guarantee").

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A bound value: a non-negative real or `+∞`.
///
/// Bounds are evaluated in `f64` because the paper's symbolic bounds use
/// the real `log2` (e.g. `40·(1 + log2 x)` in Figure 7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Bound {
    /// A finite non-negative quantity (bytes).
    Fin(f64),
    /// No guarantee (the quantitative `false`).
    Inf,
}

#[allow(clippy::should_implement_trait)] // saturating ∞-arithmetic, not std ops
impl Bound {
    /// The finite value, if any.
    pub fn finite(self) -> Option<f64> {
        match self {
            Bound::Fin(x) => Some(x),
            Bound::Inf => None,
        }
    }

    /// Addition in `ℕ ∪ {∞}`.
    pub fn add(self, other: Bound) -> Bound {
        match (self, other) {
            (Bound::Fin(a), Bound::Fin(b)) => Bound::Fin(a + b),
            _ => Bound::Inf,
        }
    }

    /// Multiplication in `ℕ ∪ {∞}`.
    pub fn mul(self, other: Bound) -> Bound {
        match (self, other) {
            (Bound::Fin(a), Bound::Fin(b)) => Bound::Fin(a * b),
            _ => Bound::Inf,
        }
    }

    /// Maximum in `ℕ ∪ {∞}`.
    pub fn max(self, other: Bound) -> Bound {
        match (self, other) {
            (Bound::Fin(a), Bound::Fin(b)) => Bound::Fin(a.max(b)),
            _ => Bound::Inf,
        }
    }

    /// `self ≤ other` in `ℕ ∪ {∞}` (everything is below `∞`).
    pub fn le(self, other: Bound) -> bool {
        match (self, other) {
            (_, Bound::Inf) => true,
            (Bound::Inf, Bound::Fin(_)) => false,
            (Bound::Fin(a), Bound::Fin(b)) => a <= b + 1e-9,
        }
    }
}

impl fmt::Display for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bound::Fin(x) => write!(f, "{x}"),
            Bound::Inf => write!(f, "∞"),
        }
    }
}

/// An integer expression over program variables and auxiliary variables.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IExpr {
    /// Integer constant.
    Const(i64),
    /// Value of a program variable (parameter or local).
    Var(String),
    /// Value of an auxiliary (logical) variable.
    Aux(String),
    /// Sum.
    Add(Box<IExpr>, Box<IExpr>),
    /// Difference.
    Sub(Box<IExpr>, Box<IExpr>),
    /// Product.
    Mul(Box<IExpr>, Box<IExpr>),
    /// Truncated division by a positive constant (e.g. `(h + l) / 2`).
    Div(Box<IExpr>, i64),
}

#[allow(clippy::should_implement_trait)] // tree constructors, not std ops
impl IExpr {
    /// Shorthand for a program variable.
    pub fn var(name: impl Into<String>) -> IExpr {
        IExpr::Var(name.into())
    }

    /// Shorthand for an auxiliary variable.
    pub fn aux(name: impl Into<String>) -> IExpr {
        IExpr::Aux(name.into())
    }

    /// `a - b`.
    pub fn sub(a: IExpr, b: IExpr) -> IExpr {
        IExpr::Sub(Box::new(a), Box::new(b))
    }

    /// `a + b`.
    pub fn add(a: IExpr, b: IExpr) -> IExpr {
        IExpr::Add(Box::new(a), Box::new(b))
    }

    /// Evaluates under variable and auxiliary assignments.
    ///
    /// # Errors
    ///
    /// Fails with the name of the first unbound variable.
    pub fn eval(&self, env: &Valuation) -> Result<i64, String> {
        Ok(match self {
            IExpr::Const(k) => *k,
            IExpr::Var(x) => *env
                .vars
                .get(x)
                .ok_or_else(|| format!("unbound program variable `{x}`"))?,
            IExpr::Aux(z) => *env
                .aux
                .get(z)
                .ok_or_else(|| format!("unbound auxiliary variable `{z}`"))?,
            IExpr::Add(a, b) => a.eval(env)?.wrapping_add(b.eval(env)?),
            IExpr::Sub(a, b) => a.eval(env)?.wrapping_sub(b.eval(env)?),
            IExpr::Mul(a, b) => a.eval(env)?.wrapping_mul(b.eval(env)?),
            IExpr::Div(a, k) => a.eval(env)?.div_euclid(*k),
        })
    }

    /// Substitutes program variables (capture-free; auxiliary variables are
    /// untouched).
    pub fn subst_vars(&self, map: &HashMap<String, IExpr>) -> IExpr {
        match self {
            IExpr::Const(_) | IExpr::Aux(_) => self.clone(),
            IExpr::Var(x) => map.get(x).cloned().unwrap_or_else(|| self.clone()),
            IExpr::Add(a, b) => {
                IExpr::Add(Box::new(a.subst_vars(map)), Box::new(b.subst_vars(map)))
            }
            IExpr::Sub(a, b) => {
                IExpr::Sub(Box::new(a.subst_vars(map)), Box::new(b.subst_vars(map)))
            }
            IExpr::Mul(a, b) => {
                IExpr::Mul(Box::new(a.subst_vars(map)), Box::new(b.subst_vars(map)))
            }
            IExpr::Div(a, k) => IExpr::Div(Box::new(a.subst_vars(map)), *k),
        }
    }

    /// Substitutes auxiliary variables.
    pub fn subst_aux(&self, map: &HashMap<String, IExpr>) -> IExpr {
        match self {
            IExpr::Const(_) | IExpr::Var(_) => self.clone(),
            IExpr::Aux(z) => map.get(z).cloned().unwrap_or_else(|| self.clone()),
            IExpr::Add(a, b) => IExpr::Add(Box::new(a.subst_aux(map)), Box::new(b.subst_aux(map))),
            IExpr::Sub(a, b) => IExpr::Sub(Box::new(a.subst_aux(map)), Box::new(b.subst_aux(map))),
            IExpr::Mul(a, b) => IExpr::Mul(Box::new(a.subst_aux(map)), Box::new(b.subst_aux(map))),
            IExpr::Div(a, k) => IExpr::Div(Box::new(a.subst_aux(map)), *k),
        }
    }

    /// Names of program variables occurring in the expression.
    pub fn vars(&self, out: &mut Vec<String>) {
        match self {
            IExpr::Const(_) | IExpr::Aux(_) => {}
            IExpr::Var(x) => {
                if !out.contains(x) {
                    out.push(x.clone());
                }
            }
            IExpr::Add(a, b) | IExpr::Sub(a, b) | IExpr::Mul(a, b) => {
                a.vars(out);
                b.vars(out);
            }
            IExpr::Div(a, _) => a.vars(out),
        }
    }
}

impl fmt::Display for IExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IExpr::Const(k) => write!(f, "{k}"),
            IExpr::Var(x) => write!(f, "{x}"),
            IExpr::Aux(z) => write!(f, "${z}"),
            IExpr::Add(a, b) => write!(f, "({a} + {b})"),
            IExpr::Sub(a, b) => write!(f, "({a} - {b})"),
            IExpr::Mul(a, b) => write!(f, "({a} * {b})"),
            IExpr::Div(a, k) => write!(f, "({a} / {k})"),
        }
    }
}

impl From<i64> for IExpr {
    fn from(k: i64) -> IExpr {
        IExpr::Const(k)
    }
}

/// A variable/auxiliary assignment for evaluating assertions.
#[derive(Debug, Clone, Default)]
pub struct Valuation {
    /// Program variable values.
    pub vars: HashMap<String, i64>,
    /// Auxiliary variable values.
    pub aux: HashMap<String, i64>,
}

impl Valuation {
    /// An empty valuation.
    pub fn new() -> Valuation {
        Valuation::default()
    }

    /// Builds a valuation from program-variable pairs.
    pub fn of_vars<I, S>(pairs: I) -> Valuation
    where
        I: IntoIterator<Item = (S, i64)>,
        S: Into<String>,
    {
        Valuation {
            vars: pairs.into_iter().map(|(k, v)| (k.into(), v)).collect(),
            aux: HashMap::new(),
        }
    }
}

/// A symbolic bound expression (a quantitative assertion).
#[derive(Debug, Clone, PartialEq)]
pub enum BExpr {
    /// Constant number of bytes.
    Const(f64),
    /// The symbolic metric cost `M(f)` of calling `f`.
    Metric(String),
    /// A non-negative integer quantity; negative values mean `∞`
    /// (the guard-embedding convention of the paper).
    OfInt(IExpr),
    /// The non-negative part `max(0, e)`: negative values clamp to 0
    /// instead of poisoning the bound (used for sizes like `hi − lo − 1`
    /// that legitimately reach −1 at recursion leaves).
    OfIntClamp(IExpr),
    /// `log2` with the paper's conventions (`< 0 ↦ ∞`, `0 ↦ 0`).
    Log2(IExpr),
    /// `⌈log2⌉` with the same conventions. Divide-and-conquer recursion
    /// with integer halving has worst-case depth `1 + ⌈log2 Δ⌉`, so this
    /// is the variant that admits a *checkable* derivation (the paper's
    /// smooth `log2` plots slightly below it at non-powers of two).
    Log2Ceil(IExpr),
    /// Sum.
    Add(Box<BExpr>, Box<BExpr>),
    /// Product.
    Mul(Box<BExpr>, Box<BExpr>),
    /// Maximum.
    Max(Box<BExpr>, Box<BExpr>),
    /// The quantitative `false`: no bound.
    Inf,
}

#[allow(clippy::should_implement_trait)] // simplifying constructors, not std ops
impl BExpr {
    /// Zero bytes (the quantitative `true` with no potential).
    pub fn zero() -> BExpr {
        BExpr::Const(0.0)
    }

    /// `M(f)`.
    pub fn metric(f: impl Into<String>) -> BExpr {
        BExpr::Metric(f.into())
    }

    /// `a + b`, simplifying zero.
    pub fn add(a: BExpr, b: BExpr) -> BExpr {
        match (&a, &b) {
            (BExpr::Const(x), _) if *x == 0.0 => b,
            (_, BExpr::Const(x)) if *x == 0.0 => a,
            _ => BExpr::Add(Box::new(a), Box::new(b)),
        }
    }

    /// `a · b`.
    pub fn mul(a: BExpr, b: BExpr) -> BExpr {
        BExpr::Mul(Box::new(a), Box::new(b))
    }

    /// `max(a, b)`, simplifying equal operands.
    pub fn max(a: BExpr, b: BExpr) -> BExpr {
        if a == b {
            return a;
        }
        match (&a, &b) {
            (BExpr::Const(x), _) if *x == 0.0 => b,
            (_, BExpr::Const(x)) if *x == 0.0 => a,
            _ => BExpr::Max(Box::new(a), Box::new(b)),
        }
    }

    /// Maximum of an iterator of bounds (0 when empty).
    pub fn max_all(items: impl IntoIterator<Item = BExpr>) -> BExpr {
        items.into_iter().fold(BExpr::zero(), BExpr::max)
    }

    /// Evaluates the bound under a metric and a valuation.
    ///
    /// # Errors
    ///
    /// Fails when a program or auxiliary variable is unbound.
    pub fn eval(&self, metric: &trace::Metric, env: &Valuation) -> Result<Bound, String> {
        Ok(match self {
            BExpr::Const(k) => Bound::Fin(*k),
            BExpr::Metric(f) => Bound::Fin(f64::from(metric.call_cost(f))),
            BExpr::OfInt(e) => {
                let v = e.eval(env)?;
                if v < 0 {
                    Bound::Inf
                } else {
                    Bound::Fin(v as f64)
                }
            }
            BExpr::OfIntClamp(e) => Bound::Fin(e.eval(env)?.max(0) as f64),
            BExpr::Log2(e) => {
                let v = e.eval(env)?;
                if v < 0 {
                    Bound::Inf
                } else if v == 0 {
                    Bound::Fin(0.0)
                } else {
                    Bound::Fin((v as f64).log2())
                }
            }
            BExpr::Log2Ceil(e) => {
                let v = e.eval(env)?;
                if v < 0 {
                    Bound::Inf
                } else if v <= 1 {
                    Bound::Fin(0.0)
                } else {
                    Bound::Fin(f64::from(64 - ((v - 1) as u64).leading_zeros()))
                }
            }
            BExpr::Add(a, b) => a.eval(metric, env)?.add(b.eval(metric, env)?),
            BExpr::Mul(a, b) => a.eval(metric, env)?.mul(b.eval(metric, env)?),
            BExpr::Max(a, b) => a.eval(metric, env)?.max(b.eval(metric, env)?),
            BExpr::Inf => Bound::Inf,
        })
    }

    /// Substitutes program variables inside integer expressions.
    pub fn subst_vars(&self, map: &HashMap<String, IExpr>) -> BExpr {
        self.map_iexprs(&|e| e.subst_vars(map))
    }

    /// Substitutes auxiliary variables inside integer expressions.
    pub fn subst_aux(&self, map: &HashMap<String, IExpr>) -> BExpr {
        self.map_iexprs(&|e| e.subst_aux(map))
    }

    fn map_iexprs(&self, f: &dyn Fn(&IExpr) -> IExpr) -> BExpr {
        match self {
            BExpr::Const(_) | BExpr::Metric(_) | BExpr::Inf => self.clone(),
            BExpr::OfInt(e) => BExpr::OfInt(f(e)),
            BExpr::OfIntClamp(e) => BExpr::OfIntClamp(f(e)),
            BExpr::Log2(e) => BExpr::Log2(f(e)),
            BExpr::Log2Ceil(e) => BExpr::Log2Ceil(f(e)),
            BExpr::Add(a, b) => BExpr::Add(Box::new(a.map_iexprs(f)), Box::new(b.map_iexprs(f))),
            BExpr::Mul(a, b) => BExpr::Mul(Box::new(a.map_iexprs(f)), Box::new(b.map_iexprs(f))),
            BExpr::Max(a, b) => BExpr::Max(Box::new(a.map_iexprs(f)), Box::new(b.map_iexprs(f))),
        }
    }

    /// Names of program variables the bound depends on.
    pub fn vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            BExpr::Const(_) | BExpr::Metric(_) | BExpr::Inf => {}
            BExpr::OfInt(e) | BExpr::OfIntClamp(e) | BExpr::Log2(e) | BExpr::Log2Ceil(e) => {
                e.vars(out)
            }
            BExpr::Add(a, b) | BExpr::Mul(a, b) | BExpr::Max(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }

    /// Conservative syntactic comparison: `true` means `self ≤ other`
    /// pointwise, for every metric and valuation. `false` means the
    /// comparison could not be established syntactically (it may still
    /// hold — use a numeric justification then).
    pub fn le_syntactic(&self, other: &BExpr) -> bool {
        let lhs = normalize(self);
        let rhs = normalize(other);
        lhs.iter().all(|ls| rhs.iter().any(|rs| sum_le(ls, rs)))
    }
}

impl fmt::Display for BExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BExpr::Const(k) => write!(f, "{k}"),
            BExpr::Metric(g) => write!(f, "M({g})"),
            BExpr::OfInt(e) => write!(f, "{e}"),
            BExpr::OfIntClamp(e) => write!(f, "max(0, {e})"),
            BExpr::Log2(e) => write!(f, "log2({e})"),
            BExpr::Log2Ceil(e) => write!(f, "⌈log2({e})⌉"),
            BExpr::Add(a, b) => write!(f, "{a} + {b}"),
            BExpr::Mul(a, b) => write!(f, "({a})·({b})"),
            BExpr::Max(a, b) => write!(f, "max({a}, {b})"),
            BExpr::Inf => write!(f, "∞"),
        }
    }
}

// ---- normalization for the syntactic comparator --------------------------------

/// A product atom.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Atom {
    Metric(String),
    OfInt(IExpr),
    OfIntClamp(IExpr),
    Log2(IExpr),
    Log2Ceil(IExpr),
    Inf,
}

/// A sum in canonical form: atom-multiset -> coefficient.
type Sum = BTreeMap<Vec<Atom>, f64>;

/// Normalizes to max-of-sums-of-products with `+`/`·` distributed over
/// `max` (sound because all quantities are non-negative, so `max` is
/// monotone under both).
fn normalize(e: &BExpr) -> Vec<Sum> {
    match e {
        BExpr::Const(k) => vec![single(vec![], *k)],
        BExpr::Metric(f) => vec![single(vec![Atom::Metric(f.clone())], 1.0)],
        BExpr::OfInt(i) => match i {
            IExpr::Const(k) if *k >= 0 => vec![single(vec![], *k as f64)],
            _ => vec![single(vec![Atom::OfInt(i.clone())], 1.0)],
        },
        BExpr::OfIntClamp(i) => vec![single(vec![Atom::OfIntClamp(i.clone())], 1.0)],
        BExpr::Log2(i) => vec![single(vec![Atom::Log2(i.clone())], 1.0)],
        BExpr::Log2Ceil(i) => vec![single(vec![Atom::Log2Ceil(i.clone())], 1.0)],
        BExpr::Inf => vec![single(vec![Atom::Inf], 1.0)],
        BExpr::Max(a, b) => {
            let mut out = normalize(a);
            out.extend(normalize(b));
            out
        }
        BExpr::Add(a, b) => {
            let na = normalize(a);
            let nb = normalize(b);
            let mut out = Vec::new();
            for sa in &na {
                for sb in &nb {
                    let mut s = sa.clone();
                    for (atoms, c) in sb {
                        *s.entry(atoms.clone()).or_insert(0.0) += c;
                    }
                    out.push(s);
                }
            }
            out
        }
        BExpr::Mul(a, b) => {
            let na = normalize(a);
            let nb = normalize(b);
            let mut out = Vec::new();
            for sa in &na {
                for sb in &nb {
                    let mut s: Sum = BTreeMap::new();
                    for (aa, ca) in sa {
                        for (ab, cb) in sb {
                            let mut atoms = aa.clone();
                            atoms.extend(ab.iter().cloned());
                            atoms.sort();
                            *s.entry(atoms).or_insert(0.0) += ca * cb;
                        }
                    }
                    out.push(s);
                }
            }
            out
        }
    }
}

fn single(atoms: Vec<Atom>, coeff: f64) -> Sum {
    let mut s = Sum::new();
    if coeff != 0.0 {
        s.insert(atoms, coeff);
    }
    s
}

/// `ls ≤ rs` when every canonical term of `ls` has a coefficient below the
/// matching term of `rs` (missing terms count as 0; `Inf` on the right
/// dominates everything).
fn sum_le(ls: &Sum, rs: &Sum) -> bool {
    if rs.keys().any(|atoms| atoms.contains(&Atom::Inf)) {
        return true;
    }
    if ls.keys().any(|atoms| atoms.contains(&Atom::Inf)) {
        return false;
    }
    ls.iter().all(|(atoms, c)| {
        let rc = rs.get(atoms).copied().unwrap_or(0.0);
        *c <= rc + 1e-9
    })
}
