//! Additional benchmark programs beyond the paper's Table 1 — the
//! counterpart of the artifact evaluation committee "testing the
//! implemented tools on additional programs". All are MiBench-style
//! kernels in the supported subset and run through the same pipeline in
//! the test suite.

use crate::Benchmark;

/// `mibench/tele/crc32.c`: CRC-32 with a table generated at startup.
pub const CRC32: &str = r#"
// mibench/tele/crc32.c (port)
u32 crc_table[256];

void crc_init() {
    u32 i; u32 j; u32 c;
    for (i = 0; i < 256; i++) {
        c = i;
        for (j = 0; j < 8; j++) {
            if (c & 1) { c = (c >> 1) ^ 0xEDB88320; }
            else { c = c >> 1; }
        }
        crc_table[i] = c;
    }
}

u32 crc32_update(u32 crc, u32 byte) {
    return (crc >> 8) ^ crc_table[(crc ^ byte) & 0xff];
}

u32 crc32_buf(u32 *words, u32 nwords) {
    u32 crc; u32 i; u32 w;
    crc = 0xFFFFFFFF;
    for (i = 0; i < nwords; i++) {
        w = words[i];
        crc = crc32_update(crc, w & 0xff);
        crc = crc32_update(crc, (w >> 8) & 0xff);
        crc = crc32_update(crc, (w >> 16) & 0xff);
        crc = crc32_update(crc, (w >> 24) & 0xff);
    }
    return ~crc;
}

u32 payload[64];

int main() {
    u32 i; u32 c;
    crc_init();
    for (i = 0; i < 64; i++) {
        payload[i] = i * 0x01000193 + 0x811C9DC5;
    }
    c = crc32_buf(payload, 64);
    return c & 0xff;
}
"#;

/// `mibench/sec/sha.c`: an SHA-1-shaped compression loop over word blocks.
pub const SHA: &str = r#"
// mibench/sec/sha.c (port; word-oriented)
u32 sha_state[5];
u32 sha_w[80];

u32 rol(u32 x, u32 n) {
    return (x << n) | (x >> (32 - n));
}

void sha_transform(u32 *block) {
    u32 i; u32 a; u32 b; u32 c; u32 d; u32 e; u32 f; u32 k; u32 tmp;
    for (i = 0; i < 16; i++) {
        sha_w[i] = block[i];
    }
    for (i = 16; i < 80; i++) {
        tmp = sha_w[i-3] ^ sha_w[i-8] ^ sha_w[i-14] ^ sha_w[i-16];
        sha_w[i] = rol(tmp, 1);
    }
    a = sha_state[0]; b = sha_state[1]; c = sha_state[2];
    d = sha_state[3]; e = sha_state[4];
    for (i = 0; i < 80; i++) {
        if (i < 20) { f = (b & c) | (~b & d); k = 0x5A827999; }
        else if (i < 40) { f = b ^ c ^ d; k = 0x6ED9EBA1; }
        else if (i < 60) { f = (b & c) | (b & d) | (c & d); k = 0x8F1BBCDC; }
        else { f = b ^ c ^ d; k = 0xCA62C1D6; }
        tmp = rol(a, 5);
        tmp = tmp + f + e + k + sha_w[i];
        e = d;
        d = c;
        c = rol(b, 30);
        b = a;
        a = tmp;
    }
    sha_state[0] = sha_state[0] + a;
    sha_state[1] = sha_state[1] + b;
    sha_state[2] = sha_state[2] + c;
    sha_state[3] = sha_state[3] + d;
    sha_state[4] = sha_state[4] + e;
}

void sha_init() {
    sha_state[0] = 0x67452301;
    sha_state[1] = 0xEFCDAB89;
    sha_state[2] = 0x98BADCFE;
    sha_state[3] = 0x10325476;
    sha_state[4] = 0xC3D2E1F0;
}

u32 message[32];

int main() {
    u32 i;
    sha_init();
    for (i = 0; i < 32; i++) {
        message[i] = i * 0x9E3779B9 + 1;
    }
    sha_transform(message);
    sha_transform(&message[16]);
    return (sha_state[0] ^ sha_state[4]) & 0xff;
}
"#;

/// `mibench/auto/qsort_large.c`: the iterative driver around an in-place
/// shell sort (the MiBench program sorts large arrays without recursion,
/// so the automatic analyzer handles it).
pub const QSORT_LARGE: &str = r#"
// mibench/auto/qsort_large.c (port; shell sort, non-recursive)
const u32 N = 512;
u32 data[512];

void fill(u32 seed) {
    u32 i;
    for (i = 0; i < N; i++) {
        seed = seed * 1664525 + 1013904223;
        data[i] = seed % 10000;
    }
}

void shellsort() {
    u32 gap; u32 i; u32 j; u32 tmp;
    for (gap = N / 2; gap > 0; gap = gap / 2) {
        for (i = gap; i < N; i++) {
            tmp = data[i];
            j = i;
            while (j >= gap && data[j - gap] > tmp) {
                data[j] = data[j - gap];
                j = j - gap;
            }
            data[j] = tmp;
        }
    }
}

u32 is_sorted() {
    u32 i;
    for (i = 1; i < N; i++) {
        if (data[i - 1] > data[i]) return 0;
    }
    return 1;
}

int main() {
    u32 ok;
    fill(0xC0FFEE);
    shellsort();
    ok = is_sorted();
    if (ok == 0) return 255;
    return data[N / 2] & 0xff;
}
"#;

/// `mibench/auto/matmult.c`: fixed-size integer matrix multiplication.
pub const MATMULT: &str = r#"
// mibench/auto/matmult.c (port)
const u32 DIM = 12;
u32 ma[144];
u32 mb[144];
u32 mc[144];

void minit(u32 *m, u32 seed) {
    u32 i;
    for (i = 0; i < DIM * DIM; i++) {
        seed = seed * 1664525 + 1013904223;
        m[i] = seed % 16;
    }
}

void mmul(u32 *a, u32 *b, u32 *c) {
    u32 i; u32 j; u32 k; u32 acc;
    for (i = 0; i < DIM; i++) {
        for (j = 0; j < DIM; j++) {
            acc = 0;
            for (k = 0; k < DIM; k++) {
                acc = acc + a[i * DIM + k] * b[k * DIM + j];
            }
            c[i * DIM + j] = acc;
        }
    }
}

u32 mtrace(u32 *m) {
    u32 i; u32 t;
    t = 0;
    for (i = 0; i < DIM; i++) {
        t = t + m[i * DIM + i];
    }
    return t;
}

int main() {
    u32 t;
    minit(ma, 1);
    minit(mb, 2);
    mmul(ma, mb, mc);
    t = mtrace(mc);
    return t & 0xff;
}
"#;

/// `mibench/office/stringsearch.c`: Boyer–Moore–Horspool-style search over
/// word "characters".
pub const STRINGSEARCH: &str = r#"
// mibench/office/stringsearch.c (port; word alphabet)
const u32 HAYLEN = 400;
const u32 NEEDLELEN = 6;
u32 haystack[400];
u32 needle[6];
u32 shift[64];

void build_shift() {
    u32 i;
    for (i = 0; i < 64; i++) {
        shift[i] = NEEDLELEN;
    }
    for (i = 0; i + 1 < NEEDLELEN; i++) {
        shift[needle[i] % 64] = NEEDLELEN - 1 - i;
    }
}

u32 search(u32 from) {
    u32 pos; u32 j; u32 ok;
    pos = from;
    while (pos + NEEDLELEN <= HAYLEN) {
        ok = 1;
        for (j = 0; j < NEEDLELEN; j++) {
            if (haystack[pos + j] != needle[j]) { ok = 0; break; }
        }
        if (ok) return pos;
        pos = pos + shift[haystack[pos + NEEDLELEN - 1] % 64];
    }
    return HAYLEN;
}

int main() {
    u32 i; u32 s; u32 hits; u32 at;
    s = 0xBEEF;
    for (i = 0; i < HAYLEN; i++) {
        s = s * 1664525 + 1013904223;
        haystack[i] = s % 17;
    }
    for (i = 0; i < NEEDLELEN; i++) {
        needle[i] = haystack[200 + i];
    }
    build_shift();
    hits = 0;
    at = search(0);
    while (at < HAYLEN) {
        hits = hits + 1;
        at = search(at + 1);
    }
    if (hits == 0) return 255;
    return hits & 0xff;
}
"#;

/// The extra benchmark registry.
pub fn extra_benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            file: "mibench/tele/crc32.c",
            source: CRC32,
            table1_functions: &["crc_init", "crc32_update", "crc32_buf"],
        },
        Benchmark {
            file: "mibench/sec/sha.c",
            source: SHA,
            table1_functions: &["rol", "sha_transform", "sha_init"],
        },
        Benchmark {
            file: "mibench/auto/qsort_large.c",
            source: QSORT_LARGE,
            table1_functions: &["fill", "shellsort", "is_sorted"],
        },
        Benchmark {
            file: "mibench/auto/matmult.c",
            source: MATMULT,
            table1_functions: &["minit", "mmul", "mtrace"],
        },
        Benchmark {
            file: "mibench/office/stringsearch.c",
            source: STRINGSEARCH,
            table1_functions: &["build_shift", "search"],
        },
    ]
}
