//! The recursive functions of Table 2, each with its hand-written
//! quantitative-logic derivation — the counterpart of the paper's
//! interactive Coq proofs.
//!
//! Every case carries: the C source, a symbolic specification per function
//! (parametric in the metric, like the paper's `M(search)·(2 + log2 Δ)`),
//! a derivation checked by `qhl::Checker`, and a sweep description used by
//! the Figure 7 experiment to compare the instantiated bound with the
//! measured stack consumption of the compiled code.

use qhl::{BExpr, Checker, Context, Derivation, FunSpec, IExpr, Justification, QhlError};

/// A specification + derivation for one function.
#[derive(Debug, Clone)]
pub struct FunctionProof {
    /// Function name.
    pub name: &'static str,
    /// The quantitative specification.
    pub spec: FunSpec,
    /// The derivation of the body triple.
    pub derivation: Derivation,
    /// Justification for the final `pre(body) ≤ spec.pre` obligation.
    pub final_just: Option<Justification>,
}

/// One row of Table 2: a recursive function, its proof, and its
/// experimental sweep.
pub struct RecursiveCase {
    /// Headline function (the table row).
    pub name: &'static str,
    /// Source file name, as in the paper.
    pub file: &'static str,
    /// The C source.
    pub source: &'static str,
    /// Proofs for every function the case verifies.
    pub proofs: Vec<FunctionProof>,
    /// Human-readable symbolic bound (the Table 2 cell).
    pub bound_display: &'static str,
    /// Maps the sweep parameter to the headline function's arguments.
    pub args_for: fn(i64) -> Vec<i64>,
    /// Inclusive sweep range for the parameter.
    pub sweep: (i64, i64),
}

impl RecursiveCase {
    /// Builds the function context containing every spec of the case.
    pub fn context(&self) -> Context {
        self.proofs
            .iter()
            .map(|p| (p.name, p.spec.clone()))
            .collect()
    }

    /// The headline function's specification.
    pub fn spec(&self) -> &FunSpec {
        &self
            .proofs
            .iter()
            .find(|p| p.name == self.name)
            .expect("headline proof present")
            .spec
    }

    /// Checks every derivation of the case.
    ///
    /// # Errors
    ///
    /// Returns the first failing side condition.
    pub fn check(&self, program: &clight::Program) -> Result<(), QhlError> {
        let ctx = self.context();
        let checker = Checker::new(program, &ctx);
        for p in &self.proofs {
            checker.check_function(p.name, &p.derivation, p.final_just.as_ref())?;
        }
        Ok(())
    }
}

fn m(f: &str) -> BExpr {
    BExpr::metric(f)
}

fn v(x: &str) -> IExpr {
    IExpr::var(x)
}

fn k(n: i64) -> IExpr {
    IExpr::Const(n)
}

/// `max(0, a − b)` as a clamped size.
fn size(a: IExpr, b: IExpr) -> BExpr {
    BExpr::OfIntClamp(IExpr::sub(a, b))
}

/// All eight rows of Table 2.
pub fn recursive_cases() -> Vec<RecursiveCase> {
    vec![
        recid(),
        bsearch(),
        fib(),
        qsort(),
        filter_pos(),
        sum(),
        fact_sq(),
        filter_find(),
    ]
}

/// Finds a case by headline name.
pub fn recursive_case(name: &str) -> Option<RecursiveCase> {
    recursive_cases().into_iter().find(|c| c.name == name)
}

// ---- recid ---------------------------------------------------------------------

fn recid() -> RecursiveCase {
    let source = r#"
u32 recid(u32 a) {
    u32 r;
    if (a <= 1) return a;
    r = recid(a - 1);
    return r;
}
"#;
    // Body bound M·max(0, a−1); the bound for calling recid(a) is M·a.
    let bound = BExpr::mul(m("recid"), size(v("a"), k(1)));
    let deriv = Derivation::seq(
        Derivation::Mono, // if (a <= 1) return a;
        Derivation::seq(
            Derivation::Conseq {
                pre: bound.clone(),
                just: Some(Justification::NumericGuarded {
                    ranges: vec![("a".into(), 0, 4096, 1)],
                    // Path condition: a >= 2 on the recursive branch.
                    guards: vec![IExpr::sub(v("a"), k(2))],
                }),
                inner: Box::new(Derivation::call()),
            },
            Derivation::Mono, // return r;
        ),
    );
    RecursiveCase {
        name: "recid",
        file: "recid.c",
        source,
        proofs: vec![FunctionProof {
            name: "recid",
            spec: FunSpec::restoring(bound),
            derivation: deriv,
            final_just: None,
        }],
        bound_display: "M(recid) · a",
        args_for: |n| vec![n],
        sweep: (1, 512),
    }
}

// ---- bsearch -------------------------------------------------------------------

fn bsearch_proof() -> FunctionProof {
    // Body bound M·⌈log2(h − l)⌉; calling bsearch costs M·(1 + ⌈log2 Δ⌉),
    // the integer-halving form of the paper's 40·(1 + log2(hi − lo)).
    let delta = IExpr::sub(v("h"), v("l"));
    let bound = BExpr::mul(m("bsearch"), BExpr::Log2Ceil(delta.clone()));
    let tail = Derivation::Conseq {
        pre: bound.clone(),
        just: Some(Justification::NumericGuarded {
            ranges: vec![("l".into(), 0, 160, 1), ("h".into(), 0, 160, 1)],
            // Path condition: h − l >= 2 (the guard returned otherwise).
            guards: vec![IExpr::sub(delta, k(2))],
        }),
        inner: Box::new(Derivation::seq(
            Derivation::Assign, // mid = (h + l) / 2;
            Derivation::seq(
                Derivation::If(
                    Box::new(Derivation::Assign), // h = mid;
                    Box::new(Derivation::Assign), // l = mid;
                ),
                Derivation::seq(Derivation::call(), Derivation::Mono),
            ),
        )),
    };
    FunctionProof {
        name: "bsearch",
        spec: FunSpec::restoring(bound),
        derivation: Derivation::seq(Derivation::Mono, tail),
        final_just: None,
    }
}

fn bsearch() -> RecursiveCase {
    let source = r#"
u32 table[8192];

u32 bsearch(u32 x, u32 l, u32 h) {
    u32 mid;
    if (h - l <= 1) return l;
    mid = (h + l) / 2;
    if (table[mid] > x) h = mid; else l = mid;
    return bsearch(x, l, h);
}
"#;
    RecursiveCase {
        name: "bsearch",
        file: "bsearch.c",
        source,
        proofs: vec![bsearch_proof()],
        bound_display: "M(bsearch) · (1 + ⌈log2(hi − lo)⌉)",
        args_for: |n| vec![n / 2, 0, n],
        sweep: (2, 4096),
    }
}

// ---- fib -----------------------------------------------------------------------

fn fib() -> RecursiveCase {
    let source = r#"
u32 fib(u32 n) {
    u32 a;
    u32 b;
    if (n < 2) return n;
    a = fib(n - 1);
    b = fib(n - 2);
    return a + b;
}
"#;
    // Body bound M·max(0, n−1); recursion depth of fib(n) is n for n >= 1.
    let bound = BExpr::mul(m("fib"), size(v("n"), k(1)));
    let just = Justification::NumericGuarded {
        ranges: vec![("n".into(), 0, 256, 1)],
        guards: vec![IExpr::sub(v("n"), k(2))],
    };
    let deriv = Derivation::seq(
        Derivation::Mono, // if (n < 2) return n;
        Derivation::Conseq {
            pre: bound.clone(),
            just: Some(just),
            inner: Box::new(Derivation::seq(
                Derivation::call(), // a = fib(n - 1);
                Derivation::seq(
                    Derivation::call(), // b = fib(n - 2);
                    Derivation::Mono,   // return a + b;
                ),
            )),
        },
    );
    RecursiveCase {
        name: "fib",
        file: "fib.c",
        source,
        proofs: vec![FunctionProof {
            name: "fib",
            spec: FunSpec::restoring(bound),
            derivation: deriv,
            final_just: None,
        }],
        bound_display: "M(fib) · n",
        args_for: |n| vec![n],
        sweep: (1, 22),
    }
}

// ---- qsort ---------------------------------------------------------------------

fn qsort() -> RecursiveCase {
    let source = r#"
u32 arr[1024];

void qsort(u32 lo, u32 hi) {
    u32 p; u32 i; u32 t; u32 pivot;
    if (hi - lo <= 1) return;
    pivot = arr[hi - 1];
    p = lo;
    for (i = lo; i < hi - 1; i++) {
        if (arr[i] < pivot) {
            t = arr[i];
            arr[i] = arr[p];
            arr[p] = t;
            p = p + 1;
        }
    }
    t = arr[p];
    arr[p] = arr[hi - 1];
    arr[hi - 1] = t;
    qsort(lo, p);
    qsort(p + 1, hi);
    return;
}
"#;
    // Body bound M·max(0, hi−lo−1): worst-case recursion depth is hi−lo.
    let bound = BExpr::mul(m("qsort"), size(IExpr::sub(v("hi"), v("lo")), k(1)));
    let guards = vec![
        IExpr::sub(IExpr::sub(v("hi"), v("lo")), k(2)), // hi − lo >= 2
        IExpr::sub(v("p"), v("lo")),                    // p >= lo
        IExpr::sub(IExpr::sub(v("hi"), k(1)), v("p")),  // p <= hi − 1
    ];
    let ranges = vec![
        ("lo".into(), 0, 48, 1),
        ("p".into(), 0, 48, 1),
        ("hi".into(), 0, 48, 1),
    ];
    // The partition loop: guard-if then the swap block (assigns p but the
    // invariant does not mention p).
    let loop_deriv = Derivation::Loop {
        invariant: bound.clone(),
        just: Some(Justification::NumericGuarded {
            ranges: ranges.clone(),
            guards: guards.clone(),
        }),
        body: Box::new(Derivation::seq(Derivation::Mono, Derivation::Mono)),
        incr: Box::new(Derivation::Mono),
    };
    // Body (right-nested): if; pivot=; p=lo; (i=lo; loop); t=; arr[p]=;
    // arr[hi-1]=; qsort(lo,p); qsort(p+1,hi); return — the `for` lowering
    // sequences its init statement with the loop.
    let deriv = Derivation::seq(
        Derivation::Mono, // if (hi - lo <= 1) return;
        Derivation::seq(
            Derivation::Mono, // pivot = arr[hi - 1];
            Derivation::seq(
                Derivation::Assign, // p = lo;
                Derivation::seq(
                    Derivation::seq(Derivation::Mono, loop_deriv), // i = lo; loop
                    Derivation::seq(
                        Derivation::Mono, // t = arr[p];
                        Derivation::seq(
                            Derivation::Mono, // arr[p] = ...;
                            Derivation::seq(
                                Derivation::Mono, // arr[hi-1] = t;
                                Derivation::Conseq {
                                    pre: bound.clone(),
                                    just: Some(Justification::NumericGuarded { ranges, guards }),
                                    inner: Box::new(Derivation::seq(
                                        Derivation::call(), // qsort(lo, p);
                                        Derivation::seq(
                                            Derivation::call(), // qsort(p+1, hi);
                                            Derivation::Mono,   // return;
                                        ),
                                    )),
                                },
                            ),
                        ),
                    ),
                ),
            ),
        ),
    );
    RecursiveCase {
        name: "qsort",
        file: "qsort.c",
        source,
        proofs: vec![FunctionProof {
            name: "qsort",
            spec: FunSpec::restoring(bound),
            derivation: deriv,
            final_just: None,
        }],
        bound_display: "M(qsort) · (hi − lo)",
        args_for: |n| vec![0, n],
        sweep: (1, 192),
    }
}

// ---- filter_pos -----------------------------------------------------------------

fn filter_pos() -> RecursiveCase {
    let source = r#"
u32 arr[1024];
u32 out[1024];

u32 filter_pos(u32 lo, u32 hi) {
    u32 c;
    if (hi - lo <= 1) {
        if (hi - lo == 0) return 0;
        if (arr[lo] > 0) {
            out[0] = arr[lo];
            return 1;
        }
        return 0;
    }
    c = filter_pos(lo + 1, hi);
    if (arr[lo] > 0) {
        out[c] = arr[lo];
        c = c + 1;
    }
    return c;
}
"#;
    let bound = BExpr::mul(m("filter_pos"), size(IExpr::sub(v("hi"), v("lo")), k(1)));
    let deriv = Derivation::seq(
        Derivation::Mono, // the base-case if
        Derivation::Conseq {
            pre: bound.clone(),
            just: Some(Justification::NumericGuarded {
                ranges: vec![("lo".into(), 0, 96, 1), ("hi".into(), 0, 96, 1)],
                guards: vec![IExpr::sub(IExpr::sub(v("hi"), v("lo")), k(2))],
            }),
            inner: Box::new(Derivation::seq(
                Derivation::call(), // c = filter_pos(lo + 1, hi);
                Derivation::seq(
                    Derivation::Mono, // the filtering if
                    Derivation::Mono, // return c;
                ),
            )),
        },
    );
    RecursiveCase {
        name: "filter_pos",
        file: "filter_pos.c",
        source,
        proofs: vec![FunctionProof {
            name: "filter_pos",
            spec: FunSpec::restoring(bound),
            derivation: deriv,
            final_just: None,
        }],
        bound_display: "M(filter_pos) · (hi − lo)",
        args_for: |n| vec![0, n],
        sweep: (1, 512),
    }
}

// ---- sum ------------------------------------------------------------------------

fn sum() -> RecursiveCase {
    let source = r#"
u32 arr[1024];

u32 sum(u32 lo, u32 hi) {
    u32 r;
    if (hi - lo <= 1) {
        if (hi - lo == 0) return 0;
        return arr[lo];
    }
    r = sum(lo + 1, hi);
    return arr[lo] + r;
}
"#;
    // Recursion depth is hi − lo, so the body bound is M·max(0, hi−lo−1)
    // and calling sum costs M·(hi − lo) — the paper's 32·(hi − lo).
    let bound = BExpr::mul(m("sum"), size(IExpr::sub(v("hi"), v("lo")), k(1)));
    let deriv = Derivation::seq(
        Derivation::Mono,
        Derivation::Conseq {
            pre: bound.clone(),
            just: Some(Justification::NumericGuarded {
                ranges: vec![("lo".into(), 0, 96, 1), ("hi".into(), 0, 96, 1)],
                guards: vec![IExpr::sub(IExpr::sub(v("hi"), v("lo")), k(2))],
            }),
            inner: Box::new(Derivation::seq(Derivation::call(), Derivation::Mono)),
        },
    );
    RecursiveCase {
        name: "sum",
        file: "sum.c",
        source,
        proofs: vec![FunctionProof {
            name: "sum",
            spec: FunSpec::restoring(bound),
            derivation: deriv,
            final_just: None,
        }],
        bound_display: "M(sum) · (hi − lo)",
        args_for: |n| vec![0, n],
        sweep: (1, 512),
    }
}

// ---- fact_sq --------------------------------------------------------------------

fn fact_sq() -> RecursiveCase {
    let source = r#"
u32 fact(u32 n) {
    u32 r;
    if (n <= 1) return 1;
    r = fact(n - 1);
    return n * r;
}

u32 fact_sq(u32 n) {
    u32 m2;
    u32 r;
    m2 = n * n;
    r = fact(m2);
    return r;
}
"#;
    let fact_bound = BExpr::mul(m("fact"), size(v("n"), k(1)));
    let fact_deriv = Derivation::seq(
        Derivation::Mono,
        Derivation::seq(
            Derivation::Conseq {
                pre: fact_bound.clone(),
                just: Some(Justification::NumericGuarded {
                    ranges: vec![("n".into(), 0, 16384, 3)],
                    guards: vec![IExpr::sub(v("n"), k(2))],
                }),
                inner: Box::new(Derivation::call()),
            },
            Derivation::Mono,
        ),
    );
    // fact_sq body bound: M(fact)·max(0, n² − 1) + M(fact) — the call
    // fact(n·n) plus its own activation; verifying it demonstrates the
    // modularity of the logic (the paper's point with this example).
    let n_sq = IExpr::Mul(Box::new(v("n")), Box::new(v("n")));
    let fact_sq_bound = BExpr::add(
        BExpr::mul(m("fact"), BExpr::OfIntClamp(IExpr::sub(n_sq, k(1)))),
        m("fact"),
    );
    let fact_sq_deriv = Derivation::seq(
        Derivation::Assign, // m2 = n * n;
        Derivation::seq(Derivation::call(), Derivation::Mono),
    );
    RecursiveCase {
        name: "fact_sq",
        file: "fact_sq.c",
        source,
        proofs: vec![
            FunctionProof {
                name: "fact",
                spec: FunSpec::restoring(fact_bound),
                derivation: fact_deriv,
                final_just: None,
            },
            FunctionProof {
                name: "fact_sq",
                spec: FunSpec::restoring(fact_sq_bound),
                derivation: fact_sq_deriv,
                final_just: None,
            },
        ],
        bound_display: "M(fact_sq) + M(fact) · n²",
        args_for: |n| vec![n],
        sweep: (1, 100),
    }
}

// ---- filter_find ----------------------------------------------------------------

fn filter_find() -> RecursiveCase {
    let source = r#"
u32 table[8192];
u32 arr[1024];
u32 found[1024];

u32 bsearch(u32 x, u32 l, u32 h) {
    u32 mid;
    if (h - l <= 1) return l;
    mid = (h + l) / 2;
    if (table[mid] > x) h = mid; else l = mid;
    return bsearch(x, l, h);
}

u32 filter_find(u32 bl, u32 lo, u32 hi) {
    u32 c;
    u32 idx;
    if (hi - lo == 0) return 0;
    c = 0;
    if (hi - lo > 1) {
        c = filter_find(bl, lo + 1, hi);
    }
    idx = bsearch(arr[lo], 0, bl);
    if (table[idx] == arr[lo]) {
        found[c] = arr[lo];
        c = c + 1;
    }
    return c;
}
"#;
    // At the deepest point the whole filter_find chain is live *and* a
    // bsearch tower sits on top:
    //   M(ff)·max(0, hi−lo−1) + M(bs)·(1 + ⌈log2 bl⌉).
    let ff_delta = size(IExpr::sub(v("hi"), v("lo")), k(1));
    let bs_cost = BExpr::add(
        BExpr::mul(m("bsearch"), BExpr::Log2Ceil(IExpr::sub(v("bl"), k(0)))),
        m("bsearch"),
    );
    let bound = BExpr::add(BExpr::mul(m("filter_find"), ff_delta), bs_cost);
    let ranges = vec![
        ("bl".into(), 1, 64, 1),
        ("lo".into(), 0, 40, 1),
        ("hi".into(), 0, 40, 1),
    ];
    // The recursive call only runs when hi − lo >= 2, so its Conseq sits
    // inside the then-branch with that path condition.
    let rec_call = Derivation::If(
        Box::new(Derivation::Conseq {
            pre: bound.clone(),
            just: Some(Justification::NumericGuarded {
                ranges,
                guards: vec![IExpr::sub(IExpr::sub(v("hi"), v("lo")), k(2))],
            }),
            inner: Box::new(Derivation::call()),
        }),
        Box::new(Derivation::Mono),
    );
    let deriv = Derivation::seq(
        Derivation::Mono, // if (hi - lo == 0) return 0;
        Derivation::seq(
            Derivation::Mono, // c = 0;
            Derivation::seq(
                rec_call,
                Derivation::seq(
                    Derivation::call(), // idx = bsearch(arr[lo], 0, bl);
                    Derivation::seq(
                        Derivation::Mono, // the filtering if
                        Derivation::Mono, // return c;
                    ),
                ),
            ),
        ),
    );
    RecursiveCase {
        name: "filter_find",
        file: "filter_find.c",
        source,
        proofs: vec![
            bsearch_proof(),
            FunctionProof {
                name: "filter_find",
                spec: FunSpec::restoring(bound),
                derivation: deriv,
                final_just: None,
            },
        ],
        bound_display: "M(filter_find) · (hi − lo) + M(bsearch) · (1 + ⌈log2 BL⌉)",
        args_for: |n| vec![64, 0, n],
        sweep: (1, 256),
    }
}
