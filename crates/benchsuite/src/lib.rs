//! The evaluation benchmark suite of *End-to-End Verification of
//! Stack-Space Bounds for C Programs* (PLDI 2014), ported to the supported
//! C subset:
//!
//! * **Table 1** (automatic analysis): MiBench programs (`dijkstra.c`,
//!   `bitcount.c`, `blowfish.c`, `md5.c`, `fft.c`), the simplified
//!   CertiKOS modules (`vmm.c`, `proc.c`), and CompCert test-suite
//!   programs (`mandelbrot.c`, `nbody.c`) — see [`table1_benchmarks`];
//! * **Table 2** (interactive derivations): the eight recursive functions
//!   with hand-written quantitative-logic proofs — see
//!   [`recursive_cases`].
//!
//! # Examples
//!
//! ```
//! // Every Table 1 benchmark parses, type-checks and runs.
//! for b in benchsuite::table1_benchmarks() {
//!     let program = b.program().unwrap();
//!     assert!(program.function("main").is_some(), "{}", b.file);
//! }
//! ```

#![warn(missing_docs)]

mod extras;
mod recursive;
mod sources;

pub use extras::extra_benchmarks;
pub use recursive::{recursive_case, recursive_cases, FunctionProof, RecursiveCase};

/// One benchmark file of Table 1.
#[derive(Debug, Clone, Copy)]
pub struct Benchmark {
    /// File path as printed in the paper's Table 1.
    pub file: &'static str,
    /// The C source.
    pub source: &'static str,
    /// The functions whose bounds Table 1 reports for this file.
    pub table1_functions: &'static [&'static str],
}

impl Benchmark {
    /// Parses and type-checks the benchmark.
    ///
    /// # Errors
    ///
    /// Returns the front-end error message (never happens for the shipped
    /// sources; the test suite pins this).
    pub fn program(&self) -> Result<clight::Program, String> {
        let _span = obs::span_dyn(|| format!("benchsuite/program/{}", self.file));
        clight::frontend(self.source, &[])
    }

    /// Number of source lines (for the LOC column of Table 1).
    pub fn loc(&self) -> usize {
        self.source.lines().filter(|l| !l.trim().is_empty()).count()
    }
}

/// The Table 1 benchmark files, in the paper's order.
pub fn table1_benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            file: "mibench/net/dijkstra.c",
            source: sources::DIJKSTRA,
            table1_functions: &["enqueue", "dequeue", "dijkstra"],
        },
        Benchmark {
            file: "mibench/auto/bitcount.c",
            source: sources::BITCOUNT,
            table1_functions: &["bitcount", "bitstring"],
        },
        Benchmark {
            file: "mibench/sec/blowfish.c",
            source: sources::BLOWFISH,
            table1_functions: &["BF_encrypt", "BF_options", "BF_ecb_encrypt"],
        },
        Benchmark {
            file: "mibench/sec/pgp/md5.c",
            source: sources::MD5,
            table1_functions: &["MD5Init", "MD5Update", "MD5Final", "MD5Transform"],
        },
        Benchmark {
            file: "mibench/tele/fft.c",
            source: sources::FFT,
            table1_functions: &[
                "IsPowerOfTwo",
                "NumberOfBitsNeeded",
                "ReverseBits",
                "fft_float",
            ],
        },
        Benchmark {
            file: "certikos/vmm.c",
            source: sources::CERTIKOS_VMM,
            table1_functions: &[
                "palloc",
                "pfree",
                "mem_init",
                "pmap_init",
                "pt_free",
                "pt_init",
                "pt_init_kern",
                "pt_insert",
                "pt_read",
                "pt_resv",
            ],
        },
        Benchmark {
            file: "certikos/proc.c",
            source: sources::CERTIKOS_PROC,
            table1_functions: &[
                "enqueue",
                "dequeue",
                "kctxt_new",
                "sched_init",
                "tdqueue_init",
                "thread_init",
                "thread_spawn",
                "main",
            ],
        },
        Benchmark {
            file: "compcert/mandelbrot.c",
            source: sources::MANDELBROT,
            table1_functions: &["main"],
        },
        Benchmark {
            file: "compcert/nbody.c",
            source: sources::NBODY,
            table1_functions: &[
                "advance",
                "energy",
                "offset_momentum",
                "setup_bodies",
                "main",
            ],
        },
    ]
}

/// Finds a Table 1 benchmark by file name.
pub fn table1_benchmark(file: &str) -> Option<Benchmark> {
    table1_benchmarks().into_iter().find(|b| b.file == file)
}

#[cfg(test)]
mod tests;
