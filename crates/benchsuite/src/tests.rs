use crate::{extra_benchmarks, recursive_cases, table1_benchmarks};
use qhl::validate_spec;

const FUEL: u64 = 80_000_000;

// ---- Table 1 benchmarks --------------------------------------------------------

#[test]
fn all_table1_benchmarks_parse_and_typecheck() {
    for b in table1_benchmarks() {
        let p = b.program().unwrap_or_else(|e| panic!("{}: {e}", b.file));
        for f in b.table1_functions {
            assert!(
                p.function(f).is_some(),
                "{}: Table 1 function `{f}` missing",
                b.file
            );
        }
    }
}

#[test]
fn all_table1_benchmarks_run_to_completion() {
    for b in table1_benchmarks() {
        let p = b.program().unwrap();
        let behavior = clight::Executor::run_main(&p, FUEL);
        assert!(behavior.converges(), "{}: {behavior}", b.file);
        assert_eq!(behavior.trace().check_bracketing(), Some(0), "{}", b.file);
    }
}

#[test]
fn all_table1_benchmarks_are_analyzable() {
    for b in table1_benchmarks() {
        let p = b.program().unwrap();
        let analysis =
            analyzer::analyze(&p).unwrap_or_else(|e| panic!("{}: analyzer failed: {e}", b.file));
        analysis
            .check(&p)
            .unwrap_or_else(|e| panic!("{}: derivation check failed: {e}", b.file));
    }
}

#[test]
fn table1_benchmarks_compile_and_respect_bounds() {
    for b in table1_benchmarks() {
        let p = b.program().unwrap();
        let analysis = analyzer::analyze(&p).unwrap();
        let compiled =
            compiler::compile(&p).unwrap_or_else(|e| panic!("{}: compile failed: {e}", b.file));
        let bound = analysis
            .concrete_bound("main", &compiled.metric)
            .unwrap_or_else(|| panic!("{}: no main bound", b.file));
        let m = asm::measure_main(&compiled.asm, bound as u32, FUEL)
            .unwrap_or_else(|e| panic!("{}: machine setup failed: {e}", b.file));
        assert!(
            m.behavior.converges(),
            "{}: asm behavior {}",
            b.file,
            m.behavior
        );
        // Theorem 1: no overflow at the verified bound; the paper's §6
        // observation: bounds over-approximate by exactly 4 bytes.
        assert!(!m.overflowed(), "{}", b.file);
        assert_eq!(
            bound,
            f64::from(m.stack_usage + 4),
            "{}: bound vs measured mismatch",
            b.file
        );
    }
}

#[test]
fn table1_results_agree_between_source_and_asm() {
    for b in table1_benchmarks() {
        let p = b.program().unwrap();
        let src = clight::Executor::run_main(&p, FUEL);
        let compiled = compiler::compile(&p).unwrap();
        let m = asm::measure_main(&compiled.asm, 1 << 20, FUEL).unwrap();
        assert_eq!(
            src.return_code(),
            m.result(),
            "{}: source {src} vs asm {}",
            b.file,
            m.behavior
        );
    }
}

#[test]
fn benchmark_registry_lookup() {
    assert!(crate::table1_benchmark("certikos/vmm.c").is_some());
    assert!(crate::table1_benchmark("nonexistent.c").is_none());
    for b in table1_benchmarks() {
        assert!(b.loc() > 0);
    }
}

// ---- Table 2 recursive cases ------------------------------------------------------

#[test]
fn all_recursive_derivations_check() {
    for case in recursive_cases() {
        let p = clight::frontend(case.source, &[]).unwrap_or_else(|e| panic!("{}: {e}", case.file));
        case.check(&p)
            .unwrap_or_else(|e| panic!("{}: derivation rejected: {e}", case.file));
    }
}

#[test]
fn recursive_bounds_are_sound_on_sweeps() {
    for case in recursive_cases() {
        let p = clight::frontend(case.source, &[]).unwrap();
        let compiled = compiler::compile(&p).unwrap();
        let spec = case.spec();
        let (lo, hi) = case.sweep;
        // A handful of points across the sweep, including both ends.
        let points = [lo, (lo + hi) / 2, hi];
        for n in points {
            let args = (case.args_for)(n);
            let v = validate_spec(&p, case.name, spec, &args, &compiled.metric, FUEL)
                .unwrap_or_else(|e| panic!("{}: {e}", case.file));
            assert!(
                v.behavior.converges(),
                "{} n={n}: {}",
                case.file,
                v.behavior
            );
            assert!(
                v.sound(),
                "{} n={n}: bound {} < weight {}",
                case.file,
                v.bound,
                v.weight
            );
        }
    }
}

#[test]
fn recursive_bounds_are_exactly_measured_plus_4() {
    // The worst-case paths of these benchmarks are realized by their
    // sweep inputs, so the bound is *tight*: measured + 4.
    for case in recursive_cases() {
        let p = clight::frontend(case.source, &[]).unwrap();
        let compiled = compiler::compile(&p).unwrap();
        let spec = case.spec();
        let n = case.sweep.1 / 2 + 1;
        let args = (case.args_for)(n);
        let v = validate_spec(&p, case.name, spec, &args, &compiled.metric, FUEL).unwrap();
        let uargs: Vec<u32> = args.iter().map(|a| *a as u32).collect();
        let m = asm::measure_function(&compiled.asm, case.name, &uargs, 1 << 22, FUEL)
            .unwrap_or_else(|e| panic!("{}: {e}", case.file));
        assert!(m.behavior.converges(), "{}: {}", case.file, m.behavior);
        let bound = v
            .bound
            .finite()
            .unwrap_or_else(|| panic!("{}: infinite bound", case.file));
        assert_eq!(
            bound,
            f64::from(m.stack_usage + 4),
            "{} (n = {n}): bound vs measured + 4",
            case.file
        );
    }
}

#[test]
fn recursive_asm_results_match_source() {
    for case in recursive_cases() {
        let p = clight::frontend(case.source, &[]).unwrap();
        let compiled = compiler::compile(&p).unwrap();
        let n = case.sweep.0.max(3);
        let args = (case.args_for)(n);
        let vals: Vec<mem::Value> = args.iter().map(|a| mem::Value::Int(*a as u32)).collect();
        let src = clight::Executor::run_function(&p, case.name, vals, FUEL);
        let uargs: Vec<u32> = args.iter().map(|a| *a as u32).collect();
        let m = asm::measure_function(&compiled.asm, case.name, &uargs, 1 << 22, FUEL).unwrap();
        assert_eq!(src.return_code(), m.result(), "{}", case.file);
    }
}

#[test]
fn wrong_bounds_for_recursive_cases_are_rejected() {
    // Halving any bound must make its derivation fail to check.
    for case in recursive_cases() {
        let p = clight::frontend(case.source, &[]).unwrap();
        let mut ctx = case.context();
        let headline = case.spec().clone();
        let halved = qhl::FunSpec::restoring(qhl::BExpr::mul(
            qhl::BExpr::Const(0.4),
            headline.pre.clone(),
        ));
        ctx.insert(case.name, halved);
        let checker = qhl::Checker::new(&p, &ctx);
        let proof = case.proofs.iter().find(|pr| pr.name == case.name).unwrap();
        assert!(
            checker
                .check_function(case.name, &proof.derivation, proof.final_just.as_ref())
                .is_err(),
            "{}: halved bound was accepted",
            case.file
        );
    }
}

// ---- extra benchmarks (beyond Table 1) --------------------------------------------

#[test]
fn extra_benchmarks_run_the_full_pipeline() {
    for b in extra_benchmarks() {
        let p = b.program().unwrap_or_else(|e| panic!("{}: {e}", b.file));
        let analysis =
            analyzer::analyze(&p).unwrap_or_else(|e| panic!("{}: analyzer: {e}", b.file));
        analysis
            .check(&p)
            .unwrap_or_else(|e| panic!("{}: derivation: {e}", b.file));
        let compiled = compiler::compile(&p).unwrap_or_else(|e| panic!("{}: {e}", b.file));
        let bound = analysis.concrete_bound("main", &compiled.metric).unwrap() as u32;
        let m = asm::measure_main(&compiled.asm, bound, FUEL)
            .unwrap_or_else(|e| panic!("{}: {e}", b.file));
        assert!(m.behavior.converges(), "{}: {}", b.file, m.behavior);
        assert_eq!(bound, m.stack_usage + 4, "{}", b.file);
        // Agreement with the source interpreter.
        let src = clight::Executor::run_main(&p, FUEL);
        assert_eq!(src.return_code(), m.result(), "{}", b.file);
    }
}

#[test]
fn every_benchmark_roundtrips_through_the_pretty_printer() {
    for b in table1_benchmarks().into_iter().chain(extra_benchmarks()) {
        let p1 = b.program().unwrap();
        let printed = clight::pretty::print_program(&p1);
        let p2 =
            clight::frontend(&printed, &[]).unwrap_or_else(|e| panic!("{}: reparse: {e}", b.file));
        let b1 = clight::Executor::run_main(&p1, FUEL);
        let b2 = clight::Executor::run_main(&p2, FUEL);
        assert_eq!(b1.return_code(), b2.return_code(), "{}", b.file);
        assert_eq!(b1.trace().events(), b2.trace().events(), "{}", b.file);
    }
}
