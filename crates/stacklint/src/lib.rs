//! # stacklint
//!
//! A binary-level worst-case stack analyzer for `ASMsz` programs, in the
//! style of the industrial abstract-interpretation tools (AbsInt's
//! StackAnalyzer) the paper's related work contrasts itself against.
//!
//! Where the verified pipeline derives bounds *from the source-level
//! quantitative logic* and validates them dynamically, `stacklint` works
//! on the compiled binary alone, with no knowledge of how it was
//! produced:
//!
//! 1. **CFG recovery** over every function ([`asm::cfg`]), for both
//!    [`asm::Target`] flavors;
//! 2. a **per-block abstract interpreter** over the ESP-offset lattice
//!    (constant offset ⊔ ⊤) that verifies *stack discipline*: every path
//!    through a block has a balanced, statically-known ESP delta, non-leaf
//!    `rv` frames save/restore `ra` before a call clobbers it, no
//!    load/store ever touches memory below the current ESP, and the
//!    declared frame size matches both what the code actually allocates
//!    and the target's layout rules;
//! 3. an **interprocedural worst-case bound** over the call-graph
//!    condensation (iterative Tarjan SCCs, the same shape `vcache` uses):
//!    an exact longest-path bound for non-recursive programs, and an
//!    explicit [`Verdict::RecursionDetected`] carrying a real call cycle
//!    for recursive ones.
//!
//! The result is a third, independent oracle for every corpus program:
//! for non-recursive code the measured peak, the binary-level bound, and
//! the certified source-level bound must sandwich as
//! `measured ≤ stacklint ≤ certified` — and the per-function slack
//! (certified − binary) quantifies exactly how loose the logic's
//! over-approximation is (the unused call allowance of the deepest
//! activation on `sz32`, zero on `rv`).

#![warn(missing_docs)]

use asm::cfg::Cfg;
use asm::{AsmFunction, AsmProgram, Instr, Operand, Reg, Target};
use std::collections::BTreeMap;
use std::fmt;

/// How the ESP-offset abstract value left the "statically known constant"
/// half of the lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EspFault {
    /// ESP was written from a non-constant source (a register move, a
    /// load, unit/non-additive arithmetic): the offset is ⊤ from here on.
    Unknown,
    /// Two paths reach the same block with different ESP deltas.
    Join {
        /// The delta already recorded for the block.
        a: i64,
        /// The conflicting delta arriving on the new edge.
        b: i64,
    },
    /// ESP moved above its function-entry value (negative delta).
    Negative(i64),
    /// `ret` executes with the frame not fully deallocated (or
    /// over-deallocated): a nonzero delta at return.
    AtReturn(i64),
}

/// One stack-discipline violation class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiagKind {
    /// The ESP delta is not one statically-known, balanced constant on
    /// every path (see [`EspFault`] for how it broke).
    UnbalancedEsp(EspFault),
    /// A link-register function returns through `ra` after a call
    /// clobbered it without the entry return address having been saved
    /// (or restored).
    RaClobbered {
        /// The instruction that lost the unsaved return address, when the
        /// abstract interpreter saw it happen.
        lost_at: Option<usize>,
    },
    /// A load or store addressed memory below the current ESP — space the
    /// function does not own (reads *above* the frame are the legal
    /// incoming-parameter idiom; writes below are stack smashing waiting
    /// for the next call).
    MemBelowEsp {
        /// The offending `[esp + disp]` displacement.
        disp: i64,
    },
    /// The declared frame size disagrees with the target's layout rules:
    /// the code allocates a different number of bytes than `SF(f)`
    /// declares, or the size violates the target's alignment rule.
    FrameMismatch {
        /// The frame size the function declares.
        declared: u32,
        /// What the layout rules require (the bytes the paths actually
        /// allocate, or the aligned size the target demands).
        required: u32,
    },
}

/// One diagnostic: a discipline violation pinned to an instruction of a
/// function. The abstract interpreter stops a function at its first
/// violation, so each ill-disciplined function yields exactly one
/// diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The function the violation is in.
    pub function: String,
    /// The index of the offending instruction in the function's code.
    pub at: usize,
    /// The violation class.
    pub kind: DiagKind,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: ", self.function, self.at)?;
        match self.kind {
            DiagKind::UnbalancedEsp(EspFault::Unknown) => {
                write!(f, "esp written from a non-constant source")
            }
            DiagKind::UnbalancedEsp(EspFault::Join { a, b }) => {
                write!(f, "unbalanced esp: paths join with deltas {a} and {b}")
            }
            DiagKind::UnbalancedEsp(EspFault::Negative(d)) => {
                write!(f, "unbalanced esp: delta {d} above the function entry")
            }
            DiagKind::UnbalancedEsp(EspFault::AtReturn(d)) => {
                write!(
                    f,
                    "unbalanced esp: ret with {d} frame bytes still allocated"
                )
            }
            DiagKind::RaClobbered { lost_at: Some(i) } => {
                write!(f, "returns through ra clobbered by the call at [{i}]")
            }
            DiagKind::RaClobbered { lost_at: None } => {
                write!(
                    f,
                    "returns through ra that no longer holds the return address"
                )
            }
            DiagKind::MemBelowEsp { disp } => {
                write!(f, "memory access at [esp{disp:+}], below the stack pointer")
            }
            DiagKind::FrameMismatch { declared, required } if declared == required => {
                write!(
                    f,
                    "frame size {declared} violates the target's alignment rule"
                )
            }
            DiagKind::FrameMismatch { declared, required } => {
                write!(
                    f,
                    "declared frame size {declared} but paths allocate {required} bytes"
                )
            }
        }
    }
}

/// The interprocedural worst-case verdict for one function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The exact longest-path stack bound in bytes: every execution of
    /// the function (including everything it calls) stays within it.
    Bounded(u32),
    /// The function sits on — or reaches — a call-graph cycle, so no
    /// finite static bound exists. The cycle is a real one: consecutive
    /// entries (and last back to first) are genuine call edges.
    RecursionDetected {
        /// The call cycle, as function names.
        cycle: Vec<String>,
    },
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Bounded(b) => write!(f, "{b} bytes"),
            Verdict::RecursionDetected { cycle } => {
                write!(f, "recursive ({} -> {})", cycle.join(" -> "), cycle[0])
            }
        }
    }
}

/// The complete result of analyzing one program: discipline diagnostics
/// plus a per-function worst-case verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintReport {
    /// The target the program was analyzed for (taken from the program).
    pub target: Target,
    /// Discipline violations, in program function order (at most one per
    /// function). Empty on everything our compiler emits.
    pub diagnostics: Vec<Diagnostic>,
    /// Per-function verdicts, in name order. A function whose own body
    /// (or a callee's) produced a diagnostic has no verdict: its usage
    /// cannot be trusted.
    pub verdicts: BTreeMap<String, Verdict>,
}

impl LintReport {
    /// Whether the program is discipline-clean (no diagnostics).
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The binary-level worst-case bound of a function, when it has one.
    pub fn bound(&self, fname: &str) -> Option<u32> {
        match self.verdicts.get(fname) {
            Some(Verdict::Bounded(b)) => Some(*b),
            _ => None,
        }
    }

    /// The recursion cycle a function reaches, when it reaches one.
    pub fn cycle(&self, fname: &str) -> Option<&[String]> {
        match self.verdicts.get(fname) {
            Some(Verdict::RecursionDetected { cycle }) => Some(cycle),
            _ => None,
        }
    }
}

/// The abstract per-path state: the ESP delta (bytes currently allocated
/// below the function-entry ESP) and, on link-register targets, where the
/// entry return address lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct State {
    /// entry_esp − current_esp, always a known constant (⊤ aborts the
    /// function with a diagnostic instead of living in the state).
    delta: i64,
    /// Whether `ra` still holds this function's return address.
    ra_in_reg: bool,
    /// Entry-relative offset of a slot known to hold the entry return
    /// address (negative = inside this function's frame).
    ra_saved: Option<i64>,
    /// First instruction that lost an unsaved entry return address.
    ra_lost_at: Option<usize>,
}

impl State {
    fn entry() -> State {
        State {
            delta: 0,
            ra_in_reg: true,
            ra_saved: None,
            ra_lost_at: None,
        }
    }

    /// Drops knowledge that `ra` holds the entry return address,
    /// remembering the first site where that loses information.
    fn clobber_ra(&mut self, at: usize) {
        if self.ra_in_reg && self.ra_saved.is_none() {
            self.ra_lost_at.get_or_insert(at);
        }
        self.ra_in_reg = false;
    }
}

/// An internal call site of a function, with the ESP delta it executes at.
#[derive(Debug, Clone, Copy)]
struct CallSite {
    callee: usize,
    delta: i64,
}

/// Everything the intraprocedural pass learned about one function.
struct FnFacts {
    /// Maximum ESP delta on any path (the frame bytes the function itself
    /// allocates).
    max_delta: i64,
    /// Internal call sites with their deltas.
    calls: Vec<CallSite>,
    /// The first discipline violation, if any (analysis stops there).
    diag: Option<Diagnostic>,
}

/// Runs the full binary-level analysis on `program`.
pub fn analyze(program: &AsmProgram) -> LintReport {
    let _span = obs::span("stacklint/program");
    let target = program.target;
    let facts: Vec<FnFacts> = program
        .functions
        .iter()
        .map(|f| {
            let _s = obs::span_dyn(|| format!("stacklint/fn/{}", f.name));
            analyze_function(f, target)
        })
        .collect();
    let diagnostics: Vec<Diagnostic> = facts.iter().filter_map(|f| f.diag.clone()).collect();
    obs::counter("stacklint/functions", facts.len() as u64);
    obs::counter("stacklint/diagnostics", diagnostics.len() as u64);

    let verdicts = condense(program, &facts);
    obs::counter(
        "stacklint/recursive_functions",
        verdicts
            .values()
            .filter(|v| matches!(v, Verdict::RecursionDetected { .. }))
            .count() as u64,
    );
    LintReport {
        target,
        diagnostics,
        verdicts,
    }
}

/// The per-function abstract interpretation over the recovered CFG.
fn analyze_function(f: &AsmFunction, target: Target) -> FnFacts {
    let cfg = Cfg::of(f);
    let link = target.uses_link_register();
    let mut facts = FnFacts {
        max_delta: 0,
        calls: Vec::new(),
        diag: None,
    };
    let mut max_at = 0usize;
    let fail = |at: usize, kind: DiagKind| Diagnostic {
        function: f.name.clone(),
        at,
        kind,
    };

    let mut in_states: Vec<Option<State>> = vec![None; cfg.blocks.len()];
    let mut worklist: Vec<usize> = Vec::new();
    if !cfg.blocks.is_empty() {
        in_states[0] = Some(State::entry());
        worklist.push(0);
    }
    'blocks: while let Some(b) = worklist.pop() {
        let block = &cfg.blocks[b];
        let mut st = in_states[b].expect("worklist blocks have an in-state");
        for at in block.range() {
            match &f.code[at] {
                Instr::Label(_) | Instr::Cmp(_, _) | Instr::Jcc(_, _) | Instr::Jmp(_) => {}
                Instr::Mov(Reg::Esp, _) => {
                    facts.diag = Some(fail(at, DiagKind::UnbalancedEsp(EspFault::Unknown)));
                    break 'blocks;
                }
                Instr::Mov(r, _) => {
                    if link && *r == Reg::Ra {
                        st.clobber_ra(at);
                    }
                }
                Instr::LeaGlobal(Reg::Esp, _, _) => {
                    facts.diag = Some(fail(at, DiagKind::UnbalancedEsp(EspFault::Unknown)));
                    break 'blocks;
                }
                Instr::LeaGlobal(r, _, _) => {
                    if link && *r == Reg::Ra {
                        st.clobber_ra(at);
                    }
                }
                Instr::Alu(op, Reg::Esp, Operand::Imm(n)) => {
                    match op {
                        mem::Binop::Sub => st.delta += i64::from(*n),
                        mem::Binop::Add => st.delta -= i64::from(*n),
                        _ => {
                            facts.diag = Some(fail(at, DiagKind::UnbalancedEsp(EspFault::Unknown)));
                            break 'blocks;
                        }
                    }
                    if st.delta < 0 {
                        facts.diag = Some(fail(
                            at,
                            DiagKind::UnbalancedEsp(EspFault::Negative(st.delta)),
                        ));
                        break 'blocks;
                    }
                    if st.delta > facts.max_delta {
                        facts.max_delta = st.delta;
                        max_at = at;
                    }
                }
                Instr::Alu(_, Reg::Esp, Operand::Reg(_)) | Instr::Un(_, Reg::Esp) => {
                    facts.diag = Some(fail(at, DiagKind::UnbalancedEsp(EspFault::Unknown)));
                    break 'blocks;
                }
                Instr::Alu(_, r, _) | Instr::Un(_, r) => {
                    if link && *r == Reg::Ra {
                        st.clobber_ra(at);
                    }
                }
                Instr::Load(dst, base, disp) => {
                    if *base == Reg::Esp && i64::from(*disp) < 0 {
                        facts.diag = Some(fail(
                            at,
                            DiagKind::MemBelowEsp {
                                disp: i64::from(*disp),
                            },
                        ));
                        break 'blocks;
                    }
                    if *dst == Reg::Esp {
                        facts.diag = Some(fail(at, DiagKind::UnbalancedEsp(EspFault::Unknown)));
                        break 'blocks;
                    }
                    if link && *dst == Reg::Ra {
                        // A reload from the slot known to hold the entry
                        // return address restores it; anything else
                        // clobbers the register.
                        let restores =
                            *base == Reg::Esp && st.ra_saved == Some(i64::from(*disp) - st.delta);
                        if restores {
                            st.ra_in_reg = true;
                        } else {
                            st.clobber_ra(at);
                        }
                    }
                }
                Instr::Store(base, disp, src) => {
                    if *base == Reg::Esp {
                        if i64::from(*disp) < 0 {
                            facts.diag = Some(fail(
                                at,
                                DiagKind::MemBelowEsp {
                                    disp: i64::from(*disp),
                                },
                            ));
                            break 'blocks;
                        }
                        if link {
                            let slot = i64::from(*disp) - st.delta;
                            if *src == Reg::Ra && st.ra_in_reg {
                                st.ra_saved = Some(slot);
                            } else if st.ra_saved == Some(slot) {
                                // Overwrote the saved return address.
                                st.ra_saved = None;
                            }
                        }
                    }
                }
                Instr::Call(callee) => {
                    facts.calls.push(CallSite {
                        callee: *callee as usize,
                        delta: st.delta,
                    });
                    if link {
                        // An internal call writes its own return address
                        // into `ra`.
                        st.clobber_ra(at);
                    }
                }
                Instr::CallExt(_) => {
                    // External stubs read their arguments from the
                    // outgoing area and leave both ESP and `ra` alone.
                }
                Instr::Ret => {
                    if st.delta != 0 {
                        facts.diag = Some(fail(
                            at,
                            DiagKind::UnbalancedEsp(EspFault::AtReturn(st.delta)),
                        ));
                        break 'blocks;
                    }
                    if link && !st.ra_in_reg {
                        facts.diag = Some(fail(
                            at,
                            DiagKind::RaClobbered {
                                lost_at: st.ra_lost_at,
                            },
                        ));
                        break 'blocks;
                    }
                }
            }
        }
        for &s in &cfg.blocks[b].succs {
            match in_states[s] {
                None => {
                    in_states[s] = Some(st);
                    worklist.push(s);
                }
                Some(prev) => {
                    if prev.delta != st.delta {
                        facts.diag = Some(fail(
                            cfg.blocks[s].start,
                            DiagKind::UnbalancedEsp(EspFault::Join {
                                a: prev.delta,
                                b: st.delta,
                            }),
                        ));
                        break 'blocks;
                    }
                    // The delta lattice is exact; the `ra` facts join
                    // conservatively (meet of knowledge). Re-process the
                    // block only when the join actually lost something.
                    let joined = State {
                        delta: prev.delta,
                        ra_in_reg: prev.ra_in_reg && st.ra_in_reg,
                        ra_saved: (prev.ra_saved == st.ra_saved)
                            .then_some(prev.ra_saved)
                            .flatten(),
                        ra_lost_at: match (prev.ra_lost_at, st.ra_lost_at) {
                            (Some(a), Some(b)) => Some(a.min(b)),
                            (a, b) => a.or(b),
                        },
                    };
                    if joined != prev {
                        in_states[s] = Some(joined);
                        worklist.push(s);
                    }
                }
            }
        }
    }

    // The frame-size rules: the paths must allocate exactly the declared
    // `SF(f)`, and on the link-register target every frame is rounded to
    // the word size so calls keep ESP word-aligned.
    if facts.diag.is_none() {
        let declared = i64::from(f.frame_size);
        if facts.max_delta != declared {
            facts.diag = Some(fail(
                max_at,
                DiagKind::FrameMismatch {
                    declared: f.frame_size,
                    required: facts.max_delta as u32,
                },
            ));
        } else if !f.frame_size.is_multiple_of(target.word_size()) {
            facts.diag = Some(fail(
                0,
                DiagKind::FrameMismatch {
                    declared: f.frame_size,
                    required: f.frame_size.next_multiple_of(target.word_size()),
                },
            ));
        }
    }
    facts
}

/// Interprocedural propagation over the call-graph condensation: Tarjan's
/// SCCs (iterative, mirroring `vcache`'s), in reverse topological order —
/// callee components first — so each function's bound folds over already-
/// resolved callees in one pass.
fn condense(program: &AsmProgram, facts: &[FnFacts]) -> BTreeMap<String, Verdict> {
    let n = facts.len();
    let succs: Vec<Vec<usize>> = facts
        .iter()
        .map(|f| {
            f.calls
                .iter()
                .map(|c| c.callee)
                .filter(|&c| c < n)
                .collect()
        })
        .collect();
    let allowance = i64::from(program.target.call_allowance());

    /// A function's resolved usage during propagation.
    #[derive(Clone)]
    enum Usage {
        /// Worst-case bytes, exact.
        Bound(i64),
        /// Reaches this cycle.
        Rec(std::rc::Rc<Vec<String>>),
        /// A diagnostic (here or below) voids the verdict.
        Tainted,
    }

    let mut usage: Vec<Option<Usage>> = vec![None; n];
    for scc in sccs(&succs) {
        let cyclic = scc.len() > 1 || succs[scc[0]].contains(&scc[0]);
        if cyclic {
            let cycle = std::rc::Rc::new(
                find_cycle(&scc, &succs)
                    .into_iter()
                    .map(|i| program.functions[i].name.clone())
                    .collect::<Vec<_>>(),
            );
            for &v in &scc {
                usage[v] = Some(Usage::Rec(cycle.clone()));
            }
            continue;
        }
        let v = scc[0];
        if facts[v].diag.is_some() {
            usage[v] = Some(Usage::Tainted);
            continue;
        }
        let mut worst = facts[v].max_delta;
        let mut resolved = Usage::Bound(0);
        for call in &facts[v].calls {
            match usage[call.callee].as_ref() {
                Some(Usage::Bound(c)) => worst = worst.max(call.delta + allowance + c),
                Some(Usage::Rec(cycle)) => {
                    resolved = Usage::Rec(cycle.clone());
                    break;
                }
                // Tainted callee, or a call target out of range (the
                // `c < n` filter above dropped its edge): no verdict.
                _ => {
                    resolved = Usage::Tainted;
                    break;
                }
            }
        }
        usage[v] = Some(match resolved {
            Usage::Bound(_) => Usage::Bound(worst),
            other => other,
        });
    }

    let mut verdicts = BTreeMap::new();
    for (i, f) in program.functions.iter().enumerate() {
        let verdict = match usage[i].as_ref() {
            Some(Usage::Bound(b)) => Verdict::Bounded(u32::try_from(*b).unwrap_or(u32::MAX)),
            Some(Usage::Rec(cycle)) => Verdict::RecursionDetected {
                cycle: cycle.as_ref().clone(),
            },
            _ => continue,
        };
        verdicts.insert(f.name.clone(), verdict);
    }
    verdicts
}

/// A genuine call cycle inside a cyclic SCC: walk in-SCC successors until
/// a node repeats; the tail from its first occurrence is the cycle. Every
/// member of a strongly-connected component has an in-SCC successor, so
/// the walk cannot get stuck.
fn find_cycle(scc: &[usize], succs: &[Vec<usize>]) -> Vec<usize> {
    let in_scc = |w: usize| scc.contains(&w);
    let mut path: Vec<usize> = Vec::new();
    let mut v = scc[0];
    loop {
        if let Some(i) = path.iter().position(|&p| p == v) {
            return path[i..].to_vec();
        }
        path.push(v);
        v = *succs[v]
            .iter()
            .find(|&&w| in_scc(w))
            .expect("cyclic SCC member has an in-SCC successor");
    }
}

/// Strongly connected components in reverse topological order (callee
/// components come before their callers) — Tarjan's algorithm with
/// explicit DFS frames, mirroring `vcache::key::sccs`.
fn sccs(succs: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = succs.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut out: Vec<Vec<usize>> = Vec::new();

    // Explicit DFS frames: (node, next-successor position).
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        frames.push((root, 0));
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
            if let Some(&w) = succs[v].get(*pos) {
                *pos += 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut component = Vec::new();
                    loop {
                        let w = stack.pop().expect("scc stack underflow");
                        on_stack[w] = false;
                        component.push(w);
                        if w == v {
                            break;
                        }
                    }
                    out.push(component);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests;
