//! Unit tests, including the ill-disciplined regression fixtures: one
//! hand-assembled program per diagnostic class, each pinning exactly its
//! intended `stacklint` verdict.

use super::*;
use asm::{AsmFunction, AsmProgram};
use mem::Binop;

fn program(target: Target, functions: Vec<AsmFunction>) -> AsmProgram {
    AsmProgram {
        globals: vec![],
        externals: vec![],
        functions,
        target,
    }
}

/// A balanced function: allocate `frame`, run `body`, deallocate, return.
fn balanced(name: &str, frame: u32, body: Vec<Instr>) -> AsmFunction {
    let mut code = vec![Instr::Alu(Binop::Sub, Reg::Esp, Operand::Imm(frame))];
    code.extend(body);
    code.push(Instr::Alu(Binop::Add, Reg::Esp, Operand::Imm(frame)));
    code.push(Instr::Ret);
    AsmFunction::new(name, frame, code)
}

/// The one diagnostic of an expectedly-dirty report.
fn only_diagnostic(report: &LintReport) -> &Diagnostic {
    assert_eq!(
        report.diagnostics.len(),
        1,
        "expected exactly one diagnostic, got {:?}",
        report.diagnostics
    );
    &report.diagnostics[0]
}

// ---- clean programs & bounds -------------------------------------------

#[test]
fn doc_example_bounds_exactly_on_sz32() {
    // The asm crate's doc example: main(frame 8) calls leaf(frame 8).
    let p = program(
        Target::Sz32,
        vec![
            balanced("leaf", 8, vec![Instr::Mov(Reg::Eax, Operand::Imm(7))]),
            balanced("main", 8, vec![Instr::Call(0)]),
        ],
    );
    let report = analyze(&p);
    assert!(report.is_clean(), "{:?}", report.diagnostics);
    assert_eq!(report.bound("leaf"), Some(8));
    // 8 (main) + 4 (push) + 8 (leaf): matches the measured 20 bytes.
    assert_eq!(report.bound("main"), Some(20));
}

#[test]
fn rv_nonleaf_saves_and_restores_ra_cleanly() {
    let leaf = balanced("leaf", 8, vec![]);
    let caller = AsmFunction::new(
        "caller",
        16,
        vec![
            Instr::Alu(Binop::Sub, Reg::Esp, Operand::Imm(16)),
            Instr::Store(Reg::Esp, 8, Reg::Ra),
            Instr::Call(0),
            Instr::Load(Reg::Ra, Reg::Esp, 8),
            Instr::Alu(Binop::Add, Reg::Esp, Operand::Imm(16)),
            Instr::Ret,
        ],
    );
    let report = analyze(&program(Target::Rv, vec![leaf, caller]));
    assert!(report.is_clean(), "{:?}", report.diagnostics);
    // Link-register calls push nothing: 16 + 0 + 8.
    assert_eq!(report.bound("caller"), Some(24));
    assert_eq!(report.bound("leaf"), Some(8));
}

#[test]
fn rv_leaf_may_leave_ra_untouched() {
    let report = analyze(&program(Target::Rv, vec![balanced("leaf", 8, vec![])]));
    assert!(report.is_clean());
    assert_eq!(report.bound("leaf"), Some(8));
}

#[test]
fn branchy_but_balanced_function_is_clean() {
    // if/else with both arms reconverging at the same delta.
    let f = AsmFunction::new(
        "f",
        8,
        vec![
            Instr::Alu(Binop::Sub, Reg::Esp, Operand::Imm(8)),
            Instr::Cmp(Reg::Eax, Operand::Imm(0)),
            Instr::Jcc(Binop::Eq, 0),
            Instr::Mov(Reg::Ebx, Operand::Imm(1)),
            Instr::Jmp(1),
            Instr::Label(0),
            Instr::Mov(Reg::Ebx, Operand::Imm(2)),
            Instr::Label(1),
            Instr::Alu(Binop::Add, Reg::Esp, Operand::Imm(8)),
            Instr::Ret,
        ],
    );
    let report = analyze(&program(Target::Sz32, vec![f]));
    assert!(report.is_clean(), "{:?}", report.diagnostics);
    assert_eq!(report.bound("f"), Some(8));
}

#[test]
fn loads_above_the_frame_are_the_parameter_idiom() {
    // GetParam on sz32: [esp + SF + 4 + 4i] — above the frame, legal.
    let f = balanced("f", 8, vec![Instr::Load(Reg::Eax, Reg::Esp, 12)]);
    let report = analyze(&program(Target::Sz32, vec![f]));
    assert!(report.is_clean(), "{:?}", report.diagnostics);
}

#[test]
fn external_calls_cost_no_stack_and_keep_ra() {
    let f = AsmFunction::new(
        "f",
        8,
        vec![
            Instr::Alu(Binop::Sub, Reg::Esp, Operand::Imm(8)),
            Instr::CallExt(0),
            Instr::Alu(Binop::Add, Reg::Esp, Operand::Imm(8)),
            Instr::Ret,
        ],
    );
    let mut p = program(Target::Rv, vec![f]);
    p.externals.push(asm::AsmExternal {
        name: "ext".into(),
        arity: 1,
    });
    let report = analyze(&p);
    assert!(report.is_clean(), "{:?}", report.diagnostics);
    assert_eq!(report.bound("f"), Some(8));
}

// ---- recursion ----------------------------------------------------------

#[test]
fn self_recursion_is_detected_with_its_cycle() {
    let f = balanced("f", 8, vec![Instr::Call(0)]);
    let report = analyze(&program(Target::Sz32, vec![f]));
    assert!(report.is_clean());
    assert_eq!(report.cycle("f"), Some(&["f".to_owned()][..]));
    assert_eq!(report.bound("f"), None);
}

#[test]
fn mutual_recursion_cycle_is_real_and_callers_inherit_it() {
    let a = balanced("a", 8, vec![Instr::Call(1)]);
    let b = balanced("b", 8, vec![Instr::Call(0)]);
    let main = balanced("main", 8, vec![Instr::Call(0)]);
    let report = analyze(&program(Target::Sz32, vec![a, b, main]));
    assert!(report.is_clean());
    let cycle = report.cycle("a").expect("a is recursive");
    assert_eq!(cycle.len(), 2);
    assert!(cycle.contains(&"a".to_owned()) && cycle.contains(&"b".to_owned()));
    // main is not on the cycle but reaches it: same verdict, same cycle.
    assert_eq!(report.cycle("main"), Some(cycle));
}

// ---- the four regression fixtures --------------------------------------

/// Fixture 1 — unbalanced ESP (sz32): the epilogue frees less than the
/// prologue allocated, so `ret` runs with frame bytes still allocated.
#[test]
fn fixture_unbalanced_esp() {
    let f = AsmFunction::new(
        "unbalanced",
        8,
        vec![
            Instr::Alu(Binop::Sub, Reg::Esp, Operand::Imm(8)),
            Instr::Alu(Binop::Add, Reg::Esp, Operand::Imm(4)),
            Instr::Ret,
        ],
    );
    let report = analyze(&program(Target::Sz32, vec![f]));
    let d = only_diagnostic(&report);
    assert_eq!(d.function, "unbalanced");
    assert_eq!(d.at, 2);
    assert_eq!(d.kind, DiagKind::UnbalancedEsp(EspFault::AtReturn(4)));
    // No trustworthy verdict for the broken function.
    assert_eq!(report.bound("unbalanced"), None);
    assert!(report.cycle("unbalanced").is_none());
}

/// Fixture 2 — clobbered `ra` before save (rv): a non-leaf frame calls
/// before saving the link register, then returns through the garbage.
#[test]
fn fixture_ra_clobbered_before_save() {
    let leaf = balanced("leaf", 8, vec![]);
    let broken = AsmFunction::new(
        "broken",
        16,
        vec![
            Instr::Alu(Binop::Sub, Reg::Esp, Operand::Imm(16)),
            Instr::Call(0),                     // clobbers ra; nothing was saved
            Instr::Store(Reg::Esp, 8, Reg::Ra), // saves the *wrong* address
            Instr::Load(Reg::Ra, Reg::Esp, 8),
            Instr::Alu(Binop::Add, Reg::Esp, Operand::Imm(16)),
            Instr::Ret,
        ],
    );
    let report = analyze(&program(Target::Rv, vec![leaf, broken]));
    let d = only_diagnostic(&report);
    assert_eq!(d.function, "broken");
    assert_eq!(d.at, 5);
    assert_eq!(d.kind, DiagKind::RaClobbered { lost_at: Some(1) });
    // The clean leaf still gets its verdict.
    assert_eq!(report.bound("leaf"), Some(8));
}

/// Fixture 3 — read below ESP (sz32): a load from `[esp-4]`, space the
/// function does not own.
#[test]
fn fixture_read_below_esp() {
    let f = balanced("peek", 8, vec![Instr::Load(Reg::Eax, Reg::Esp, -4)]);
    let report = analyze(&program(Target::Sz32, vec![f]));
    let d = only_diagnostic(&report);
    assert_eq!(d.function, "peek");
    assert_eq!(d.at, 1);
    assert_eq!(d.kind, DiagKind::MemBelowEsp { disp: -4 });
}

/// Fixture 4 — frame-size mismatch (rv): the code allocates more than the
/// declared `SF(f)`, so the certified metric would under-charge it.
#[test]
fn fixture_frame_size_mismatch() {
    let f = AsmFunction::new(
        "liar",
        8,
        vec![
            Instr::Alu(Binop::Sub, Reg::Esp, Operand::Imm(16)),
            Instr::Alu(Binop::Add, Reg::Esp, Operand::Imm(16)),
            Instr::Ret,
        ],
    );
    let report = analyze(&program(Target::Rv, vec![f]));
    let d = only_diagnostic(&report);
    assert_eq!(d.function, "liar");
    assert_eq!(d.at, 0);
    assert_eq!(
        d.kind,
        DiagKind::FrameMismatch {
            declared: 8,
            required: 16,
        }
    );
}

// ---- further discipline violations --------------------------------------

#[test]
fn join_with_differing_deltas_is_unbalanced() {
    // One arm allocates 8 extra bytes, then both arms join.
    let f = AsmFunction::new(
        "skew",
        8,
        vec![
            Instr::Alu(Binop::Sub, Reg::Esp, Operand::Imm(8)),
            Instr::Cmp(Reg::Eax, Operand::Imm(0)),
            Instr::Jcc(Binop::Eq, 0),
            Instr::Alu(Binop::Sub, Reg::Esp, Operand::Imm(8)),
            Instr::Label(0),
            Instr::Alu(Binop::Add, Reg::Esp, Operand::Imm(8)),
            Instr::Ret,
        ],
    );
    let report = analyze(&program(Target::Sz32, vec![f]));
    let d = only_diagnostic(&report);
    assert!(
        matches!(d.kind, DiagKind::UnbalancedEsp(EspFault::Join { .. })),
        "{d}"
    );
}

#[test]
fn esp_from_a_register_is_not_statically_known() {
    let f = AsmFunction::new(
        "wild",
        0,
        vec![Instr::Mov(Reg::Esp, Operand::Reg(Reg::Eax)), Instr::Ret],
    );
    let report = analyze(&program(Target::Sz32, vec![f]));
    let d = only_diagnostic(&report);
    assert_eq!(d.kind, DiagKind::UnbalancedEsp(EspFault::Unknown));
}

#[test]
fn esp_above_entry_is_negative_delta() {
    let f = AsmFunction::new(
        "under",
        0,
        vec![
            Instr::Alu(Binop::Add, Reg::Esp, Operand::Imm(4)),
            Instr::Ret,
        ],
    );
    let report = analyze(&program(Target::Sz32, vec![f]));
    let d = only_diagnostic(&report);
    assert_eq!(d.kind, DiagKind::UnbalancedEsp(EspFault::Negative(-4)));
}

#[test]
fn store_below_esp_is_flagged_like_a_read() {
    let f = balanced("poke", 8, vec![Instr::Store(Reg::Esp, -8, Reg::Eax)]);
    let report = analyze(&program(Target::Rv, vec![f]));
    let d = only_diagnostic(&report);
    assert_eq!(d.kind, DiagKind::MemBelowEsp { disp: -8 });
}

#[test]
fn overwriting_the_saved_ra_slot_voids_the_save() {
    let leaf = balanced("leaf", 8, vec![]);
    let broken = AsmFunction::new(
        "overwrite",
        16,
        vec![
            Instr::Alu(Binop::Sub, Reg::Esp, Operand::Imm(16)),
            Instr::Store(Reg::Esp, 8, Reg::Ra),  // save
            Instr::Store(Reg::Esp, 8, Reg::Eax), // ...then smash the slot
            Instr::Call(0),
            Instr::Load(Reg::Ra, Reg::Esp, 8), // reloads garbage
            Instr::Alu(Binop::Add, Reg::Esp, Operand::Imm(16)),
            Instr::Ret,
        ],
    );
    let report = analyze(&program(Target::Rv, vec![leaf, broken]));
    let d = only_diagnostic(&report);
    assert_eq!(d.function, "overwrite");
    assert!(matches!(d.kind, DiagKind::RaClobbered { .. }), "{d}");
}

#[test]
fn unaligned_rv_frame_breaks_the_layout_rule() {
    // 12 is fine on sz32 (word 4) but not on rv (word 8).
    let f = balanced("odd", 12, vec![]);
    assert!(analyze(&program(Target::Sz32, vec![f.clone()])).is_clean());
    let report = analyze(&program(Target::Rv, vec![f]));
    let d = only_diagnostic(&report);
    assert_eq!(
        d.kind,
        DiagKind::FrameMismatch {
            declared: 12,
            required: 16,
        }
    );
}

#[test]
fn empty_function_with_a_declared_frame_mismatches() {
    let f = AsmFunction::new("ghost", 8, vec![]);
    let report = analyze(&program(Target::Sz32, vec![f]));
    let d = only_diagnostic(&report);
    assert_eq!(
        d.kind,
        DiagKind::FrameMismatch {
            declared: 8,
            required: 0,
        }
    );
}

#[test]
fn tainted_callee_voids_the_caller_verdict_only() {
    let bad = AsmFunction::new(
        "bad",
        8,
        vec![
            Instr::Alu(Binop::Sub, Reg::Esp, Operand::Imm(8)),
            Instr::Ret,
        ],
    );
    let caller = balanced("caller", 8, vec![Instr::Call(0)]);
    let other = balanced("other", 8, vec![]);
    let report = analyze(&program(Target::Sz32, vec![bad, caller, other]));
    assert_eq!(report.diagnostics.len(), 1);
    assert_eq!(report.bound("bad"), None);
    assert_eq!(report.bound("caller"), None);
    assert_eq!(report.bound("other"), Some(8));
}

#[test]
fn diagnostics_render_with_function_and_site() {
    let f = balanced("peek", 8, vec![Instr::Load(Reg::Eax, Reg::Esp, -4)]);
    let report = analyze(&program(Target::Sz32, vec![f]));
    let text = report.diagnostics[0].to_string();
    assert!(text.contains("peek[1]"), "{text}");
    assert!(text.contains("below the stack pointer"), "{text}");
}
