//! Content-addressed, function-granular verification cache.
//!
//! `stackbound`'s pipeline re-derives everything from scratch on every
//! run, even when only one function of a program (or nothing at all)
//! changed since the last run. This crate makes the pipeline
//! *incremental*: every per-function artifact the `stackbound` stages
//! produce — the analyzer's bound and derivation, the `qhl` check
//! verdict, the compiled per-function vertical, the evaluated concrete
//! bound — is stored under a content-addressed [`Key`] covering exactly
//! the inputs it depends on (see [`key`]). A later run with an equal key
//! reuses the artifact; a run after an edit recomputes only the edited
//! function and its transitive callers.
//!
//! Soundness does not rest on the cache: a hit returns an artifact that
//! was *computed by the same deterministic code* on an input with the
//! same content key, so the cached run's output is byte-identical to a
//! cold run (pinned by `tests/vcache_equiv.rs`). The cache can make the
//! pipeline slower, never wronger; and the `CheckDerivations` stage can
//! always be forced cold to re-validate cached derivations end to end.
//!
//! The cached stage drivers ([`analyze`], [`check`], [`compile`],
//! [`concrete_bound`]) also fan misses out across worker threads along
//! the call-graph structure: analysis by SCC level (callees before
//! callers), compilation per function within the compiler's phase
//! barriers (via [`compiler::compile_incremental`]).
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//!
//! let cache = Arc::new(vcache::VCache::new());
//! let program = clight::frontend("
//!     u32 leaf(u32 x) { return x + 1; }
//!     int main() { u32 r; r = leaf(41); return r; }
//! ", &[]).unwrap();
//! let options = compiler::Options::default();
//! let keys = vcache::keys(&program, &options);
//!
//! let cold = vcache::analyze(&cache, &program, &keys).unwrap();
//! let warm = vcache::analyze(&cache, &program, &keys).unwrap(); // all hits
//! assert_eq!(cold.bound("main"), warm.bound("main"));
//! assert_eq!(cache.stats(vcache::CacheStage::Analyze), (2, 2)); // (hits, misses)
//! ```

#![warn(missing_docs)]

pub mod key;

pub use key::{combine, config_digest, digest_str, keys, Key};

use analyzer::{Analysis, AnalyzerError};
use clight::Program;
use compiler::FnArtifacts;
use qhl::{BExpr, Checker, Context, Derivation, FunSpec, QhlError};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The cacheable stages, mirroring the artifact-producing subset of
/// `stackbound::Stage`. (`Frontend` has no per-function artifact and
/// `Measure` composes with `asm::MeasureCache` instead.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CacheStage {
    /// The analyzer's symbolic bound and qhl derivation.
    Analyze,
    /// The `qhl::Checker` verdict on a derivation.
    Check,
    /// The compiled per-function vertical ([`compiler::FnArtifacts`]).
    Compile,
    /// The concrete bound under the compiled metric.
    Bound,
}

impl CacheStage {
    /// Every cacheable stage, in pipeline order.
    pub const ALL: [CacheStage; 4] = [
        CacheStage::Analyze,
        CacheStage::Check,
        CacheStage::Compile,
        CacheStage::Bound,
    ];

    /// The stage's name as used in obs counters and the disk format.
    pub fn name(self) -> &'static str {
        match self {
            CacheStage::Analyze => "analyze",
            CacheStage::Check => "check",
            CacheStage::Compile => "compile",
            CacheStage::Bound => "bound",
        }
    }

    fn hit_counter(self) -> &'static str {
        match self {
            CacheStage::Analyze => "vcache/analyze_hit",
            CacheStage::Check => "vcache/check_hit",
            CacheStage::Compile => "vcache/compile_hit",
            CacheStage::Bound => "vcache/bound_hit",
        }
    }

    fn miss_counter(self) -> &'static str {
        match self {
            CacheStage::Analyze => "vcache/analyze_miss",
            CacheStage::Check => "vcache/check_miss",
            CacheStage::Compile => "vcache/compile_miss",
            CacheStage::Bound => "vcache/bound_miss",
        }
    }
}

#[derive(Default)]
struct StageStats {
    hits: AtomicU64,
    misses: AtomicU64,
}

/// The analyzer artifact cached per function: the symbolic bound `B_f`
/// and the machine-checkable derivation that proves it.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzeEntry {
    /// The symbolic stack bound of the function's body.
    pub bound: BExpr,
    /// The derivation of `{B_f} body {B_f}` in the quantitative logic.
    pub derivation: Derivation,
}

/// A thread-safe, content-addressed store of per-function verification
/// artifacts, shared across runs via `Arc` (and optionally across
/// processes via [`VCache::load_dir`]/[`VCache::save_dir`]).
///
/// Entries are only ever *added*; two runs racing on the same key insert
/// equal values (the key covers every input of the deterministic
/// computation), so last-write-wins is safe.
#[derive(Default)]
pub struct VCache {
    analyze: Mutex<HashMap<Key, Arc<AnalyzeEntry>>>,
    check: Mutex<HashSet<Key>>,
    compile: Mutex<HashMap<Key, Arc<FnArtifacts>>>,
    bound: Mutex<HashMap<Key, Option<f64>>>,
    stats: [StageStats; 4],
    /// Monotone logical clock driving the disk-eviction recency order.
    clock: AtomicU64,
    /// Last-touch stamp per persistable key: bumped when a key is loaded
    /// from disk, hits, or is inserted. [`VCache::save_dir`] evicts the
    /// least-recently-touched keys past the [`VCache::set_disk_cap`] cap.
    recency: Mutex<HashMap<Key, u64>>,
    /// Maximum number of entries [`VCache::save_dir`] writes
    /// (0 = unlimited).
    disk_cap: AtomicU64,
}

impl VCache {
    /// An empty cache.
    pub fn new() -> VCache {
        VCache::default()
    }

    /// Total number of cached entries across all stages.
    pub fn len(&self) -> usize {
        self.analyze.lock().unwrap().len()
            + self.check.lock().unwrap().len()
            + self.compile.lock().unwrap().len()
            + self.bound.lock().unwrap().len()
    }

    /// True when no stage has any cached entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` recorded for one stage since construction (or
    /// [`VCache::load_dir`]).
    pub fn stats(&self, stage: CacheStage) -> (u64, u64) {
        let s = &self.stats[stage as usize];
        (
            s.hits.load(Ordering::Relaxed),
            s.misses.load(Ordering::Relaxed),
        )
    }

    /// The fraction of lookups that hit for one stage, or `None` before
    /// any lookup happened.
    pub fn hit_rate(&self, stage: CacheStage) -> Option<f64> {
        let (hits, misses) = self.stats(stage);
        let total = hits + misses;
        (total > 0).then(|| hits as f64 / total as f64)
    }

    /// Caps the number of entries [`VCache::save_dir`] persists; `None`
    /// removes the cap. When the persistable entries (check verdicts +
    /// concrete bounds) exceed the cap, the least-recently-used keys —
    /// by load, hit, or insertion order — are evicted *from the file*;
    /// the in-memory cache is untouched.
    pub fn set_disk_cap(&self, cap: Option<usize>) {
        self.disk_cap
            .store(cap.map_or(0, |c| c.max(1) as u64), Ordering::Relaxed);
    }

    /// The disk entry cap, if one is set.
    pub fn disk_cap(&self) -> Option<usize> {
        match self.disk_cap.load(Ordering::Relaxed) {
            0 => None,
            c => Some(c as usize),
        }
    }

    /// Bumps the recency stamp of one persistable key.
    fn touch(&self, key: Key) {
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        self.recency.lock().unwrap().insert(key, stamp);
    }

    fn hit(&self, stage: CacheStage) {
        self.stats[stage as usize]
            .hits
            .fetch_add(1, Ordering::Relaxed);
        obs::counter(stage.hit_counter(), 1);
    }

    fn miss(&self, stage: CacheStage) {
        self.stats[stage as usize]
            .misses
            .fetch_add(1, Ordering::Relaxed);
        obs::counter(stage.miss_counter(), 1);
    }

    fn get_analyze(&self, key: Key) -> Option<Arc<AnalyzeEntry>> {
        let got = self.analyze.lock().unwrap().get(&key).cloned();
        match got {
            Some(e) => {
                self.hit(CacheStage::Analyze);
                Some(e)
            }
            None => {
                self.miss(CacheStage::Analyze);
                None
            }
        }
    }

    fn put_analyze(&self, key: Key, entry: Arc<AnalyzeEntry>) {
        self.analyze.lock().unwrap().insert(key, entry);
    }

    fn has_check(&self, key: Key) -> bool {
        let got = self.check.lock().unwrap().contains(&key);
        if got {
            self.hit(CacheStage::Check);
            self.touch(key);
        } else {
            self.miss(CacheStage::Check);
        }
        got
    }

    fn put_check(&self, key: Key) {
        self.check.lock().unwrap().insert(key);
        self.touch(key);
    }

    fn get_compile(&self, key: Key) -> Option<Arc<FnArtifacts>> {
        let got = self.compile.lock().unwrap().get(&key).cloned();
        match got {
            Some(a) => {
                self.hit(CacheStage::Compile);
                Some(a)
            }
            None => {
                self.miss(CacheStage::Compile);
                None
            }
        }
    }

    fn put_compile(&self, key: Key, artifacts: Arc<FnArtifacts>) {
        self.compile.lock().unwrap().insert(key, artifacts);
    }

    fn get_bound(&self, key: Key) -> Option<Option<f64>> {
        let got = self.bound.lock().unwrap().get(&key).copied();
        match got {
            Some(b) => {
                self.hit(CacheStage::Bound);
                self.touch(key);
                Some(b)
            }
            None => {
                self.miss(CacheStage::Bound);
                None
            }
        }
    }

    fn put_bound(&self, key: Key, bound: Option<f64>) {
        self.bound.lock().unwrap().insert(key, bound);
        self.touch(key);
    }

    /// Loads persisted entries from `dir/vcache.jsonl`, if present.
    ///
    /// Only the *value-like* artifacts are persisted — check verdicts and
    /// concrete bounds; the heavyweight in-memory artifacts (derivations,
    /// compiled IR) are deliberately not serialized, so a process warmed
    /// from disk still recomputes those on first touch while skipping
    /// every re-check and bound evaluation. Unknown or malformed lines
    /// are skipped (forward compatibility).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures other than the file being absent.
    pub fn load_dir(&self, dir: &Path) -> std::io::Result<usize> {
        let path = dir.join("vcache.jsonl");
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(e),
        };
        let mut loaded = 0;
        for line in text.lines() {
            let Ok(v) = obs::json::parse(line) else {
                continue;
            };
            let (Some(kind), Some(key)) = (
                v.get("k").and_then(|k| k.as_str()),
                v.get("key")
                    .and_then(|k| k.as_str())
                    .and_then(|s| s.parse::<Key>().ok()),
            ) else {
                continue;
            };
            match kind {
                "check" => {
                    self.put_check(key);
                    loaded += 1;
                }
                "bound" => {
                    if let Some(b) = v.get("bound").and_then(|b| b.as_f64()) {
                        self.put_bound(key, Some(b));
                        loaded += 1;
                    }
                }
                _ => {}
            }
        }
        obs::counter("vcache/disk_loaded", loaded as u64);
        Ok(loaded)
    }

    /// Writes the persistable entries to `dir/vcache.jsonl` (creating
    /// `dir` if needed). The file is always *rewritten whole* —
    /// deduplicated (the in-memory stores are keyed) and sorted, so
    /// saving is deterministic and the output is diff- and merge-friendly
    /// rather than an append-only log.
    ///
    /// Under a [`VCache::set_disk_cap`] entry cap, the least-recently
    /// used keys (by load, hit, or insertion order) are evicted from the
    /// file until the cap holds, so a long-lived cache directory stops
    /// growing without bound while the hottest verdicts stay persisted.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save_dir(&self, dir: &Path) -> std::io::Result<usize> {
        std::fs::create_dir_all(dir)?;
        // (key, line) pairs so eviction can consult the recency stamps.
        let mut entries: Vec<(Key, String)> = Vec::new();
        for &key in self.check.lock().unwrap().iter() {
            entries.push((key, format!("{{\"k\":\"check\",\"key\":\"{key}\"}}")));
        }
        for (&key, bound) in self.bound.lock().unwrap().iter() {
            // `None` bounds (unbounded functions) are cheap to recompute
            // and have no canonical JSON number; skip them.
            if let Some(b) = bound {
                entries.push((
                    key,
                    format!("{{\"k\":\"bound\",\"key\":\"{key}\",\"bound\":{b}}}"),
                ));
            }
        }
        let cap = self.disk_cap();
        if cap.is_some_and(|cap| entries.len() > cap) {
            let cap = cap.unwrap();
            let recency = self.recency.lock().unwrap();
            // Most recently touched first; the line text tie-breaks keys
            // sharing a stamp (a check verdict and a bound under the same
            // function key), keeping eviction deterministic.
            entries.sort_unstable_by(|(ka, la), (kb, lb)| {
                let (sa, sb) = (recency.get(ka).copied(), recency.get(kb).copied());
                sb.cmp(&sa).then_with(|| la.cmp(lb))
            });
            let evicted = entries.len() - cap;
            entries.truncate(cap);
            obs::counter("vcache/disk_evicted", evicted as u64);
        }
        let mut lines: Vec<String> = entries.into_iter().map(|(_, line)| line).collect();
        lines.sort_unstable();
        let mut file = std::fs::File::create(dir.join("vcache.jsonl"))?;
        for line in &lines {
            writeln!(file, "{line}")?;
        }
        obs::counter("vcache/disk_saved", lines.len() as u64);
        Ok(lines.len())
    }
}

impl std::fmt::Debug for VCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_struct("VCache");
        for stage in CacheStage::ALL {
            let (hits, misses) = self.stats(stage);
            d.field(stage.name(), &format_args!("{hits} hits / {misses} misses"));
        }
        d.finish()
    }
}

/// Deterministic, order-preserving parallel map (the `stackbound::par_map`
/// construction, duplicated here to keep the dependency arrow pointing
/// from `stackbound` to `vcache`).
fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let mut slots: Vec<Option<U>> = Vec::new();
    slots.resize_with(items.len(), || None);
    let chunk = items.len().div_ceil(workers);
    std::thread::scope(|scope| {
        for (w, (out, inp)) in slots.chunks_mut(chunk).zip(items.chunks(chunk)).enumerate() {
            let f = &f;
            scope.spawn(move || {
                obs::register_thread(&format!("worker-{w}"));
                for (slot, item) in out.iter_mut().zip(inp) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every slot is filled by exactly one worker"))
        .collect()
}

/// Groups `order` (a topological order, callees first) into *levels*: all
/// functions in a level only call into earlier levels, so one level's
/// analyses are mutually independent and can run in parallel.
fn levels(program: &Program, order: &[String]) -> Vec<Vec<String>> {
    let mut depth: HashMap<&str, usize> = HashMap::new();
    let mut out: Vec<Vec<String>> = Vec::new();
    for name in order {
        let f = program.function(name).expect("ordered names are defined");
        let d = f
            .body
            .callees()
            .iter()
            .filter_map(|g| depth.get(g.as_str()))
            .max()
            .map_or(0, |d| d + 1);
        depth.insert(name.as_str(), d);
        if out.len() <= d {
            out.resize_with(d + 1, Vec::new);
        }
        out[d].push(name.clone());
    }
    out
}

/// The cached, call-graph-parallel replacement for [`analyzer::analyze`]:
/// derives (or reuses) a bound and derivation per function, fanning each
/// SCC level of the call graph across worker threads. Output is
/// byte-identical to the serial analyzer.
///
/// `keys` must come from [`keys`] on the same program (missing entries
/// are treated as misses of an impossible key, so a wrong map can cost
/// time but never soundness — reuse only happens under a matching key).
///
/// # Errors
///
/// Exactly the [`AnalyzerError`]s [`analyzer::analyze`] reports
/// (recursion is rejected before any level runs).
pub fn analyze(
    cache: &VCache,
    program: &Program,
    keys: &BTreeMap<String, Key>,
) -> Result<Analysis, AnalyzerError> {
    let _span = obs::span("vcache/analyze");
    let order = analyzer::topological_order(program)?;
    let mut ctx = Context::new();
    let mut derivations = HashMap::new();
    for level in levels(program, &order) {
        // Hits resolve without touching the analyzer; misses of one level
        // are independent given the context of earlier levels.
        let results: Vec<Result<(Arc<AnalyzeEntry>, bool), AnalyzerError>> =
            par_map(&level, |name| {
                let _s = obs::span_dyn(|| format!("vcache/analyze/fn/{name}"));
                match keys.get(name).and_then(|&k| cache.get_analyze(k)) {
                    Some(entry) => Ok((entry, false)),
                    None => {
                        let (bound, derivation) = analyzer::analyze_function(program, &ctx, name)?;
                        Ok((Arc::new(AnalyzeEntry { bound, derivation }), true))
                    }
                }
            });
        for (name, result) in level.iter().zip(results) {
            let (entry, fresh) = result?;
            if fresh {
                if let Some(&key) = keys.get(name) {
                    cache.put_analyze(key, entry.clone());
                }
            }
            ctx.insert(name.clone(), FunSpec::restoring(entry.bound.clone()));
            derivations.insert(name.clone(), entry.derivation.clone());
        }
    }
    Ok(Analysis::from_parts(ctx, derivations, order))
}

/// The cached replacement for `Analysis::check`: re-validates every
/// derivation whose key has not been checked before, in topological
/// order, and records fresh verdicts.
///
/// A verdict is only a cache hit under a key covering the function's AST,
/// its transitive callees (hence the context specs and the derivation the
/// deterministic analyzer emits), so a hit implies the checker would
/// accept again.
///
/// # Errors
///
/// The first [`QhlError`] among the actually re-checked functions.
pub fn check(
    cache: &VCache,
    program: &Program,
    analysis: &Analysis,
    keys: &BTreeMap<String, Key>,
) -> Result<(), QhlError> {
    let _span = obs::span("vcache/check");
    let checker = Checker::new(program, analysis.context());
    for name in analysis.order() {
        let _s = obs::span_dyn(|| format!("vcache/check/fn/{name}"));
        let key = keys.get(name).copied();
        if let Some(key) = key {
            if cache.has_check(key) {
                continue;
            }
        }
        let deriv = analysis.derivation(name).expect("analysis is complete");
        checker.check_function(name, deriv, None)?;
        if let Some(key) = key {
            cache.put_check(key);
        }
    }
    Ok(())
}

/// Runs `check` unless `key` is already a recorded verdict, recording
/// success. The general-purpose entry for caching derivation checks
/// whose inputs go beyond the program AST — interactive Table 2 proofs,
/// where the caller folds a [`digest_str`] of the rendered proof into
/// the key with [`combine`] so that editing either the program or the
/// proof invalidates the verdict.
///
/// # Errors
///
/// Whatever `check` returns (failures are never cached).
pub fn check_cached(
    cache: &VCache,
    key: Key,
    check: impl FnOnce() -> Result<(), QhlError>,
) -> Result<(), QhlError> {
    if cache.has_check(key) {
        return Ok(());
    }
    check()?;
    cache.put_check(key);
    Ok(())
}

/// The cached, function-parallel replacement for the compile stage:
/// resolves cached per-function verticals by key and hands the misses to
/// [`compiler::compile_incremental`], storing the freshly compiled
/// verticals back under their keys.
///
/// Budgets and refinement checkpoints are whole-program, per-pass
/// concepts; callers wanting those must use the [`compiler::Pipeline`]
/// driver instead (the `stackbound::Verifier` falls back automatically).
///
/// # Errors
///
/// Exactly the [`compiler::CompileError`]s a pipeline run would produce
/// on the functions that are actually compiled.
pub fn compile(
    cache: &VCache,
    program: &Program,
    config: &compiler::PipelineConfig,
    keys: &BTreeMap<String, Key>,
) -> Result<compiler::Compiled, compiler::CompileError> {
    let _span = obs::span("vcache/compile");
    let mut reuse: HashMap<String, Arc<FnArtifacts>> = HashMap::new();
    for f in &program.functions {
        if let Some(artifacts) = keys.get(&f.name).and_then(|&k| cache.get_compile(k)) {
            reuse.insert(f.name.clone(), artifacts);
        }
    }
    let (compiled, fresh) = compiler::compile_incremental(program, config, &reuse)?;
    for (name, artifacts) in fresh {
        if let Some(&key) = keys.get(&name) {
            cache.put_compile(key, artifacts);
        }
    }
    Ok(compiled)
}

/// The cached replacement for `Analysis::concrete_bound`: evaluates the
/// function's symbolic bound under the compiled metric, reusing the
/// evaluated number when the key matches.
///
/// The metric values `M(g)` the bound mentions belong to the function
/// itself and its transitive callees — all covered by the closure key —
/// so a hit returns the number a fresh evaluation would.
pub fn concrete_bound(
    cache: &VCache,
    analysis: &Analysis,
    metric: &trace::Metric,
    fname: &str,
    keys: &BTreeMap<String, Key>,
) -> Option<f64> {
    let Some(&key) = keys.get(fname) else {
        return analysis.concrete_bound(fname, metric);
    };
    if let Some(bound) = cache.get_bound(key) {
        return bound;
    }
    let bound = analysis.concrete_bound(fname, metric);
    cache.put_bound(key, bound);
    bound
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "
        u32 leaf(u32 x) { return x + 1; }
        u32 mid(u32 x) { u32 r; r = leaf(x); return r; }
        int main() { u32 r; r = mid(41); return r; }
    ";

    fn program() -> Program {
        clight::frontend(SRC, &[]).unwrap()
    }

    #[test]
    fn analyze_hits_on_second_run_and_matches_cold() {
        let cache = VCache::new();
        let program = program();
        let keys = keys(&program, &compiler::Options::default());

        let cold = analyze(&cache, &program, &keys).unwrap();
        assert_eq!(cache.stats(CacheStage::Analyze), (0, 3));

        let warm = analyze(&cache, &program, &keys).unwrap();
        assert_eq!(cache.stats(CacheStage::Analyze), (3, 3));
        assert_eq!(cache.hit_rate(CacheStage::Analyze), Some(0.5));

        let reference = analyzer::analyze(&program).unwrap();
        for name in ["leaf", "mid", "main"] {
            assert_eq!(cold.bound(name), reference.bound(name));
            assert_eq!(warm.bound(name), reference.bound(name));
            assert_eq!(cold.derivation(name), reference.derivation(name));
            assert_eq!(warm.derivation(name), reference.derivation(name));
        }
        assert_eq!(cold.order(), reference.order());
    }

    #[test]
    fn check_and_bound_hit_on_second_run() {
        let cache = VCache::new();
        let program = program();
        let options = compiler::Options::default();
        let keys = keys(&program, &options);
        let analysis = analyze(&cache, &program, &keys).unwrap();

        check(&cache, &program, &analysis, &keys).unwrap();
        check(&cache, &program, &analysis, &keys).unwrap();
        assert_eq!(cache.stats(CacheStage::Check), (3, 3));

        let config = compiler::PipelineConfig::with_options(options);
        let compiled = compile(&cache, &program, &config, &keys).unwrap();
        for name in ["leaf", "mid", "main"] {
            let fresh = analysis.concrete_bound(name, &compiled.metric);
            let cold = concrete_bound(&cache, &analysis, &compiled.metric, name, &keys);
            let warm = concrete_bound(&cache, &analysis, &compiled.metric, name, &keys);
            assert_eq!(cold, fresh);
            assert_eq!(warm, fresh);
        }
        assert_eq!(cache.stats(CacheStage::Bound), (3, 3));
    }

    #[test]
    fn targets_never_share_cache_entries() {
        // One shared cache, same program, two targets: the rv run must
        // miss everywhere (an sz32 verdict answering an rv query would
        // certify the wrong machine) and produce a different bound.
        let cache = VCache::new();
        let program = program();
        let sz32 = compiler::Options::default();
        let rv = compiler::Options::for_target(asm::Target::Rv);
        let keys_sz32 = keys(&program, &sz32);
        let keys_rv = keys(&program, &rv);
        for name in ["leaf", "mid", "main"] {
            assert_ne!(keys_sz32[name], keys_rv[name], "{name}");
        }

        let analysis = analyze(&cache, &program, &keys_sz32).unwrap();
        let compiled_sz32 = compile(
            &cache,
            &program,
            &compiler::PipelineConfig::with_options(sz32),
            &keys_sz32,
        )
        .unwrap();
        assert_eq!(cache.stats(CacheStage::Compile), (0, 3));

        // The rv compile reuses nothing from the sz32 run.
        let compiled_rv = compile(
            &cache,
            &program,
            &compiler::PipelineConfig::with_options(rv),
            &keys_rv,
        )
        .unwrap();
        assert_eq!(cache.stats(CacheStage::Compile), (0, 6));

        let b_sz32 = concrete_bound(&cache, &analysis, &compiled_sz32.metric, "main", &keys_sz32);
        let b_rv = concrete_bound(&cache, &analysis, &compiled_rv.metric, "main", &keys_rv);
        assert_ne!(b_sz32, b_rv);
        assert_eq!(cache.stats(CacheStage::Bound), (0, 2));
    }

    #[test]
    fn compile_reuses_verticals_and_stays_byte_identical() {
        let cache = VCache::new();
        let program = program();
        let options = compiler::Options::default();
        let keys = keys(&program, &options);
        let config = compiler::PipelineConfig::with_options(options);

        let reference = compiler::compile_with(&program, options).unwrap();
        let cold = compile(&cache, &program, &config, &keys).unwrap();
        assert_eq!(cache.stats(CacheStage::Compile), (0, 3));
        let warm = compile(&cache, &program, &config, &keys).unwrap();
        assert_eq!(cache.stats(CacheStage::Compile), (3, 3));

        for c in [&cold, &warm] {
            assert_eq!(format!("{:?}", c.asm), format!("{:?}", reference.asm));
            assert_eq!(format!("{:?}", c.mach), format!("{:?}", reference.mach));
            assert_eq!(format!("{:?}", c.cminor), format!("{:?}", reference.cminor));
            assert_eq!(format!("{:?}", c.rtl), format!("{:?}", reference.rtl));
            assert_eq!(
                format!("{:?}", c.rtl_opt),
                format!("{:?}", reference.rtl_opt)
            );
            assert_eq!(c.metric, reference.metric);
        }
    }

    #[test]
    fn single_function_edit_invalidates_dependents_only() {
        let cache = VCache::new();
        let options = compiler::Options::default();
        let before = program();
        let keys_before = keys(&before, &options);
        analyze(&cache, &before, &keys_before).unwrap();

        let after = clight::frontend(&SRC.replace("x + 1", "x + 2"), &[]).unwrap();
        let keys_after = keys(&after, &options);
        analyze(&cache, &after, &keys_after).unwrap();

        // Everything reaches the edited leaf, so the second run misses on
        // all three functions; the cache now holds both generations.
        assert_eq!(cache.stats(CacheStage::Analyze), (0, 6));

        // Editing only `main` leaves `leaf`/`mid` keys intact: two hits.
        let top = clight::frontend(&SRC.replace("mid(41)", "mid(42)"), &[]).unwrap();
        let keys_top = keys(&top, &options);
        analyze(&cache, &top, &keys_top).unwrap();
        assert_eq!(cache.stats(CacheStage::Analyze), (2, 7));
    }

    #[test]
    fn disk_roundtrip_preserves_check_and_bound_entries() {
        let dir = std::env::temp_dir().join(format!("vcache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let cache = VCache::new();
        let program = program();
        let options = compiler::Options::default();
        let keys = keys(&program, &options);
        let analysis = analyze(&cache, &program, &keys).unwrap();
        check(&cache, &program, &analysis, &keys).unwrap();
        let config = compiler::PipelineConfig::with_options(options);
        let compiled = compile(&cache, &program, &config, &keys).unwrap();
        for name in ["leaf", "mid", "main"] {
            concrete_bound(&cache, &analysis, &compiled.metric, name, &keys);
        }
        let saved = cache.save_dir(&dir).unwrap();
        assert_eq!(saved, 6); // 3 check verdicts + 3 bounds

        let warmed = VCache::new();
        assert_eq!(warmed.load_dir(&dir).unwrap(), 6);
        check(&warmed, &program, &analysis, &keys).unwrap();
        assert_eq!(warmed.stats(CacheStage::Check), (3, 0));
        for name in ["leaf", "mid", "main"] {
            let cached = concrete_bound(&warmed, &analysis, &compiled.metric, name, &keys);
            assert_eq!(cached, analysis.concrete_bound(name, &compiled.metric));
        }
        assert_eq!(warmed.stats(CacheStage::Bound), (3, 0));

        // Saving the warmed cache reproduces the same file byte for byte.
        let dir2 = dir.join("again");
        warmed.save_dir(&dir2).unwrap();
        assert_eq!(
            std::fs::read_to_string(dir.join("vcache.jsonl")).unwrap(),
            std::fs::read_to_string(dir2.join("vcache.jsonl")).unwrap(),
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_cap_evicts_least_recently_used_keys() {
        let dir = std::env::temp_dir().join(format!("vcache-cap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let cache = VCache::new();
        let program = program();
        let options = compiler::Options::default();
        let keys = keys(&program, &options);
        let analysis = analyze(&cache, &program, &keys).unwrap();
        // Insert check verdicts in topological order (leaf, mid, main),
        // then re-touch `leaf` so `mid` becomes the coldest key.
        check(&cache, &program, &analysis, &keys).unwrap();
        assert!(cache.has_check(keys["leaf"]));

        assert_eq!(cache.disk_cap(), None);
        cache.set_disk_cap(Some(2));
        assert_eq!(cache.disk_cap(), Some(2));
        assert_eq!(cache.save_dir(&dir).unwrap(), 2);

        let warmed = VCache::new();
        assert_eq!(warmed.load_dir(&dir).unwrap(), 2);
        assert!(warmed.has_check(keys["leaf"]), "recently touched key kept");
        assert!(warmed.has_check(keys["main"]), "recently inserted key kept");
        assert!(!warmed.has_check(keys["mid"]), "coldest key evicted");

        // Without the cap the same cache persists all three verdicts.
        cache.set_disk_cap(None);
        assert_eq!(cache.save_dir(&dir).unwrap(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn capped_save_roundtrips_and_stays_deterministic() {
        let dir = std::env::temp_dir().join(format!("vcache-cap-rt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let cache = VCache::new();
        let program = program();
        let options = compiler::Options::default();
        let keys = keys(&program, &options);
        let analysis = analyze(&cache, &program, &keys).unwrap();
        check(&cache, &program, &analysis, &keys).unwrap();
        let config = compiler::PipelineConfig::with_options(options);
        let compiled = compile(&cache, &program, &config, &keys).unwrap();
        for name in ["leaf", "mid", "main"] {
            concrete_bound(&cache, &analysis, &compiled.metric, name, &keys);
        }
        // 6 persistable entries (3 checks + 3 bounds); cap at 4.
        cache.set_disk_cap(Some(4));
        assert_eq!(cache.save_dir(&dir).unwrap(), 4);

        // load -> save round-trip: a freshly warmed cache (load order =
        // recency order) rewrites the identical file under the same cap.
        let warmed = VCache::new();
        warmed.set_disk_cap(Some(4));
        assert_eq!(warmed.load_dir(&dir).unwrap(), 4);
        let dir2 = dir.join("again");
        assert_eq!(warmed.save_dir(&dir2).unwrap(), 4);
        let first = std::fs::read_to_string(dir.join("vcache.jsonl")).unwrap();
        let second = std::fs::read_to_string(dir2.join("vcache.jsonl")).unwrap();
        assert_eq!(first, second);
        // The surviving file is sorted and deduplicated.
        let lines: Vec<&str> = first.lines().collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(lines, sorted);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_dir_tolerates_missing_file_and_junk_lines() {
        let dir = std::env::temp_dir().join(format!("vcache-junk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = VCache::new();
        assert_eq!(cache.load_dir(&dir).unwrap(), 0);

        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("vcache.jsonl"),
            "not json\n{\"k\":\"future-stage\",\"key\":\"00000000000000000000000000000000\"}\n{\"k\":\"check\"}\n{\"k\":\"check\",\"key\":\"short\"}\n",
        )
        .unwrap();
        assert_eq!(cache.load_dir(&dir).unwrap(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
