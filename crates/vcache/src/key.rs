//! Content-addressed keys for function-granular verification artifacts.
//!
//! A function's [`Key`] is a 128-bit dual-FNV-1a digest covering every
//! input its verification artifacts depend on:
//!
//! 1. **Its own Clight AST** — a canonical structural encoding (tagged
//!    pre-order walk with length framing, addressable set sorted), so the
//!    key is independent of pretty-printing, spans, or `Arc` sharing.
//! 2. **The ASTs of every function it can reach** in the call graph,
//!    folded in bottom-up over the SCC condensation: the analyzer's bound
//!    `B_f`, its derivation, and (with inlining) the optimized RTL all
//!    depend on callees, transitively. Recursive programs hash their
//!    whole cycle as one component, so the closure digest is well-defined
//!    even where `analyzer::topological_order` would report a cycle.
//! 3. **The program signature environment** — names, order, sizes and
//!    initializers of globals, names/arities/returns of externals, and
//!    the ordered function-name table. `machgen` compiles name references
//!    down to positional table indices, so a compiled function's code
//!    changes when anything is added, removed, or reordered even if its
//!    own source didn't; hashing the tables makes such edits
//!    conservatively invalidate every key.
//! 4. **The optimization selection** ([`compiler::Options`]).
//!
//! Editing one function's body therefore changes exactly the keys of that
//! function and its (transitive) callers; every other function keeps its
//! key and its cached artifacts stay valid — the property the incremental
//! drivers and the invalidation property tests rely on.

use clight::{Expr, Function, Program, Stmt, Ty};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::str::FromStr;

/// A 128-bit content key: two independent 64-bit FNV-1a streams over the
/// same canonical byte encoding (the same construction as
/// `asm::MeasureCache`). A collision requires both 64-bit hashes to
/// collide simultaneously.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key(pub u64, pub u64);

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.0, self.1)
    }
}

impl FromStr for Key {
    type Err = String;

    fn from_str(s: &str) -> Result<Key, String> {
        if s.len() != 32 {
            return Err(format!("key must be 32 hex digits, got {}", s.len()));
        }
        let hi = u64::from_str_radix(&s[..16], 16).map_err(|e| e.to_string())?;
        let lo = u64::from_str_radix(&s[16..], 16).map_err(|e| e.to_string())?;
        Ok(Key(hi, lo))
    }
}

/// One FNV-1a-64 stream.
#[derive(Clone, Copy)]
struct Fnv64(u64);

impl Fnv64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }
}

/// Dual-stream canonical encoder. Every `u32`/`u64` is little-endian
/// fixed-width; every string and list is length-framed, so distinct
/// structures cannot produce the same byte stream.
struct Enc {
    a: Fnv64,
    b: Fnv64,
}

impl Enc {
    /// A fresh encoder seeded with a domain-separation tag, so digests of
    /// different kinds (function AST, SCC closure, environment, final
    /// key) never collide structurally.
    fn new(domain: &str) -> Enc {
        let mut e = Enc {
            a: Fnv64(0xcbf2_9ce4_8422_2325),
            b: Fnv64(0x6c62_272e_07bb_0142),
        };
        e.str(domain);
        e
    }

    fn bytes(&mut self, bytes: &[u8]) {
        self.a.write(bytes);
        self.b.write(bytes);
    }

    fn u8(&mut self, v: u8) {
        self.bytes(&[v]);
    }

    fn u32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.bytes(s.as_bytes());
    }

    fn opt(&mut self, present: bool) {
        self.u8(present as u8);
    }

    fn digest(&mut self, d: Key) {
        self.u64(d.0);
        self.u64(d.1);
    }

    fn finish(self) -> Key {
        Key(self.a.0, self.b.0)
    }
}

fn enc_ty(e: &mut Enc, ty: &Ty) {
    match ty {
        Ty::U32 => e.u8(1),
        Ty::I32 => e.u8(2),
        Ty::Ptr(inner) => {
            e.u8(3);
            enc_ty(e, inner);
        }
        Ty::Array(inner, n) => {
            e.u8(4);
            enc_ty(e, inner);
            e.u32(*n);
        }
    }
}

fn enc_expr(e: &mut Enc, x: &Expr) {
    match x {
        Expr::Const(n, ty) => {
            e.u8(1);
            e.u32(*n);
            enc_ty(e, ty);
        }
        Expr::Var(name) => {
            e.u8(2);
            e.str(name);
        }
        Expr::Unop(op, a) => {
            e.u8(3);
            e.u8(*op as u8);
            enc_expr(e, a);
        }
        Expr::Binop(op, a, b) => {
            e.u8(4);
            e.u8(*op as u8);
            enc_expr(e, a);
            enc_expr(e, b);
        }
        Expr::Index(a, i) => {
            e.u8(5);
            enc_expr(e, a);
            enc_expr(e, i);
        }
        Expr::Deref(a) => {
            e.u8(6);
            enc_expr(e, a);
        }
        Expr::Addr(a) => {
            e.u8(7);
            enc_expr(e, a);
        }
        Expr::Cond(c, t, f) => {
            e.u8(8);
            enc_expr(e, c);
            enc_expr(e, t);
            enc_expr(e, f);
        }
        Expr::Cast(ty, a) => {
            e.u8(9);
            enc_ty(e, ty);
            enc_expr(e, a);
        }
        Expr::Call0(g, args) => {
            e.u8(10);
            e.str(g);
            e.usize(args.len());
            for a in args {
                enc_expr(e, a);
            }
        }
    }
}

fn enc_stmt(e: &mut Enc, s: &Stmt) {
    match s {
        Stmt::Skip => e.u8(1),
        Stmt::Assign(lv, x) => {
            e.u8(2);
            enc_expr(e, lv);
            enc_expr(e, x);
        }
        Stmt::Call(dst, g, args) => {
            e.u8(3);
            e.opt(dst.is_some());
            if let Some(d) = dst {
                e.str(d);
            }
            e.str(g);
            e.usize(args.len());
            for a in args {
                enc_expr(e, a);
            }
        }
        Stmt::Seq(a, b) => {
            e.u8(4);
            enc_stmt(e, a);
            enc_stmt(e, b);
        }
        Stmt::If(c, t, f) => {
            e.u8(5);
            enc_expr(e, c);
            enc_stmt(e, t);
            enc_stmt(e, f);
        }
        Stmt::Loop(body, incr) => {
            e.u8(6);
            enc_stmt(e, body);
            enc_stmt(e, incr);
        }
        Stmt::Break => e.u8(7),
        Stmt::Continue => e.u8(8),
        Stmt::Return(x) => {
            e.u8(9);
            e.opt(x.is_some());
            if let Some(x) = x {
                enc_expr(e, x);
            }
        }
    }
}

/// Digests an arbitrary caller-supplied string under a domain tag.
///
/// This is the extension point for caching artifacts whose inputs are
/// not Clight ASTs — e.g. the Table 2 hand-written derivations, whose
/// check verdict depends on the *proof* text as well as the program.
/// Callers must render those inputs deterministically and [`combine`]
/// the digest with the function's content key.
pub fn digest_str(domain: &str, text: &str) -> Key {
    let mut e = Enc::new(domain);
    e.str(text);
    e.finish()
}

/// Combines digests into one key under a domain tag (order-sensitive).
pub fn combine(domain: &str, parts: &[Key]) -> Key {
    let mut e = Enc::new(domain);
    e.usize(parts.len());
    for &p in parts {
        e.digest(p);
    }
    e.finish()
}

/// Canonical digest of one function definition: signature, declarations
/// (with the unordered `addressable` set sorted), and body.
pub fn function_digest(f: &Function) -> Key {
    let mut e = Enc::new("clight-fn-v1");
    e.str(&f.name);
    e.opt(f.ret.is_some());
    if let Some(ty) = &f.ret {
        enc_ty(&mut e, ty);
    }
    e.usize(f.params.len());
    for p in &f.params {
        e.str(&p.name);
        enc_ty(&mut e, &p.ty);
    }
    e.usize(f.locals.len());
    for l in &f.locals {
        e.str(&l.name);
        enc_ty(&mut e, &l.ty);
    }
    let mut addressable: Vec<&str> = f.addressable.iter().map(String::as_str).collect();
    addressable.sort_unstable();
    e.usize(addressable.len());
    for name in addressable {
        e.str(name);
    }
    enc_stmt(&mut e, &f.body);
    e.finish()
}

/// Digest of the program signature environment: everything `machgen`'s
/// positional index tables and the front end's global/external lookups
/// see, *except* function bodies (those are covered per-function by the
/// closure digests, so body edits don't disturb unrelated keys).
fn env_digest(program: &Program) -> Key {
    let mut e = Enc::new("clight-env-v1");
    e.usize(program.globals.len());
    for g in &program.globals {
        e.str(&g.name);
        enc_ty(&mut e, &g.ty);
        e.usize(g.init.len());
        for &w in &g.init {
            e.u32(w);
        }
    }
    e.usize(program.externals.len());
    for x in &program.externals {
        e.str(&x.name);
        e.usize(x.arity);
        e.opt(x.ret.is_some());
        if let Some(ty) = &x.ret {
            enc_ty(&mut e, ty);
        }
    }
    e.usize(program.functions.len());
    for f in &program.functions {
        e.str(&f.name);
    }
    e.finish()
}

/// Digest of the optimization selection and the backend target. The
/// target participates because every backend artifact — frame layouts,
/// `GetParam` displacements, the stack metric — depends on it; omitting
/// it would let an `sz32` verdict answer an `rv` query (cache poisoning).
///
/// Public so deployment tooling can key *shared cache storage* the same
/// way the in-process cache keys entries: `sbound cache-key` prints this
/// digest and CI scopes its restored `--cache-dir` under it (plus the
/// toolchain fingerprint), so two machines share warm verdicts exactly
/// when their compiler configuration agrees.
pub fn config_digest(options: &compiler::Options) -> Key {
    let mut e = Enc::new("compiler-options-v1");
    e.u8(options.constprop as u8);
    e.u8(options.dce as u8);
    e.u8(options.inline as u8);
    e.str(options.target.name());
    e.finish()
}

/// Tarjan's SCC algorithm over the defined-callee graph, iterative so
/// deep call chains can't overflow the (host) stack. Returns the SCCs in
/// reverse topological order of the condensation: every SCC appears
/// *after* the SCCs it calls into, which is exactly the order the
/// closure-digest fold needs.
fn sccs(graph: &[(String, Vec<String>)]) -> Vec<Vec<usize>> {
    let index_of: HashMap<&str, usize> = graph
        .iter()
        .enumerate()
        .map(|(i, (name, _))| (name.as_str(), i))
        .collect();
    let succs: Vec<Vec<usize>> = graph
        .iter()
        .map(|(_, callees)| {
            callees
                .iter()
                .filter_map(|c| index_of.get(c.as_str()).copied())
                .collect()
        })
        .collect();

    let n = graph.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut out: Vec<Vec<usize>> = Vec::new();

    // Explicit DFS frames: (node, next-successor position).
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        frames.push((root, 0));
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
            if let Some(&w) = succs[v].get(*pos) {
                *pos += 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut component = Vec::new();
                    loop {
                        let w = stack.pop().expect("scc stack underflow");
                        on_stack[w] = false;
                        component.push(w);
                        if w == v {
                            break;
                        }
                    }
                    out.push(component);
                }
            }
        }
    }
    out
}

/// Computes the content key of every defined function in `program` under
/// the optimization selection `options`.
///
/// The returned map has one entry per defined function. Runtime is linear
/// in program size (one AST walk per function plus a linear SCC pass).
pub fn keys(program: &Program, options: &compiler::Options) -> BTreeMap<String, Key> {
    let _span = obs::span("vcache/keys");
    let env = env_digest(program);
    let config = config_digest(options);

    let graph = analyzer::call_graph(program);
    let index_of: HashMap<&str, usize> = graph
        .iter()
        .enumerate()
        .map(|(i, (name, _))| (name.as_str(), i))
        .collect();
    let ast: Vec<Key> = program.functions.iter().map(function_digest).collect();

    // Fold closure digests bottom-up over the SCC condensation. `sccs`
    // emits callee components first, so every successor closure is ready
    // when a component is processed.
    let components = sccs(&graph);
    let mut scc_of = vec![usize::MAX; graph.len()];
    for (c, members) in components.iter().enumerate() {
        for &v in members {
            scc_of[v] = c;
        }
    }
    let mut closures: Vec<Key> = Vec::with_capacity(components.len());
    for (c, members) in components.iter().enumerate() {
        let mut member_digests: Vec<Key> = members.iter().map(|&v| ast[v]).collect();
        member_digests.sort_unstable();
        let mut succ_closures: Vec<Key> = members
            .iter()
            .flat_map(|&v| graph[v].1.iter())
            .filter_map(|callee| index_of.get(callee.as_str()).copied())
            .map(|w| scc_of[w])
            .filter(|&s| s != c)
            .map(|s| closures[s])
            .collect();
        succ_closures.sort_unstable();
        succ_closures.dedup();
        let mut e = Enc::new("scc-closure-v1");
        e.usize(member_digests.len());
        for d in member_digests {
            e.digest(d);
        }
        e.usize(succ_closures.len());
        for d in succ_closures {
            e.digest(d);
        }
        closures.push(e.finish());
    }

    graph
        .iter()
        .enumerate()
        .map(|(v, (name, _))| {
            let mut e = Enc::new("vcache-key-v1");
            e.digest(ast[v]);
            e.digest(closures[scc_of[v]]);
            e.digest(env);
            e.digest(config);
            (name.clone(), e.finish())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn program(src: &str) -> Program {
        clight::frontend(src, &[]).unwrap()
    }

    const THREE_LEVEL: &str = "
        u32 leaf(u32 x) { return x + 1; }
        u32 mid(u32 x) { u32 r; r = leaf(x); return r; }
        int main() { u32 r; r = mid(41); return r; }
    ";

    #[test]
    fn keys_are_deterministic() {
        let p = program(THREE_LEVEL);
        let a = keys(&p, &compiler::Options::default());
        let b = keys(&p, &compiler::Options::default());
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn key_roundtrips_through_display() {
        let p = program(THREE_LEVEL);
        for key in keys(&p, &compiler::Options::default()).values() {
            let s = key.to_string();
            assert_eq!(s.len(), 32);
            assert_eq!(s.parse::<Key>().unwrap(), *key);
        }
        assert!("xyz".parse::<Key>().is_err());
        assert!("zz".repeat(16).parse::<Key>().is_err());
    }

    #[test]
    fn editing_leaf_invalidates_callers_only() {
        let before = keys(&program(THREE_LEVEL), &compiler::Options::default());
        let after = keys(
            &program(&THREE_LEVEL.replace("x + 1", "x + 2")),
            &compiler::Options::default(),
        );
        // Everyone reaches `leaf`, so every key changes.
        for name in ["leaf", "mid", "main"] {
            assert_ne!(before[name], after[name], "{name}");
        }

        // Editing `main` (the top of the call chain) leaves callees alone.
        let after = keys(
            &program(&THREE_LEVEL.replace("mid(41)", "mid(42)")),
            &compiler::Options::default(),
        );
        assert_eq!(before["leaf"], after["leaf"]);
        assert_eq!(before["mid"], after["mid"]);
        assert_ne!(before["main"], after["main"]);
    }

    #[test]
    fn sibling_functions_are_independent() {
        let src = "
            u32 a(u32 x) { return x + 1; }
            u32 b(u32 x) { return x * 2; }
            int main() { u32 r; u32 s; r = a(1); s = b(2); return r + s; }
        ";
        let before = keys(&program(src), &compiler::Options::default());
        let after = keys(
            &program(&src.replace("x * 2", "x * 3")),
            &compiler::Options::default(),
        );
        assert_eq!(before["a"], after["a"]);
        assert_ne!(before["b"], after["b"]);
        assert_ne!(before["main"], after["main"]);
    }

    #[test]
    fn options_and_environment_feed_the_key() {
        let p = program(THREE_LEVEL);
        let default = keys(&p, &compiler::Options::default());
        let no_opt = keys(&p, &compiler::Options::no_opt());
        assert_ne!(default["leaf"], no_opt["leaf"]);

        // Adding a global shifts machgen's index tables: every key moves.
        let with_global = keys(
            &program(&format!("u32 g; {THREE_LEVEL}")),
            &compiler::Options::default(),
        );
        for name in ["leaf", "mid", "main"] {
            assert_ne!(default[name], with_global[name], "{name}");
        }
    }

    #[test]
    fn target_feeds_the_key() {
        // The same program under the two backends must produce disjoint
        // key sets: frame layouts and the stack metric differ, so a
        // cached sz32 verdict must never answer an rv lookup.
        let p = program(THREE_LEVEL);
        let sz32 = keys(&p, &compiler::Options::default());
        let rv = keys(&p, &compiler::Options::for_target(asm::Target::Rv));
        for name in ["leaf", "mid", "main"] {
            assert_ne!(sz32[name], rv[name], "{name}");
        }
    }

    #[test]
    fn recursive_cycles_hash_as_one_component() {
        let even_odd = "
            u32 is_odd(u32 n);
            u32 is_even(u32 n) { u32 r; if (n == 0) { return 1; } r = is_odd(n - 1); return r; }
            u32 is_odd(u32 n) { u32 r; if (n == 0) { return 0; } r = is_even(n - 1); return r; }
            int main() { u32 r; r = is_even(10); return r; }
        ";
        // The front end may reject forward declarations; build by parsing
        // a straight self-recursive program instead if it does.
        let p = match clight::frontend(even_odd, &[]) {
            Ok(p) => p,
            Err(_) => program(
                "u32 fac(u32 n) { u32 r; if (n <= 1) { return 1; } r = fac(n - 1); return n * r; }
                 int main() { u32 r; r = fac(5); return r; }",
            ),
        };
        let a = keys(&p, &compiler::Options::default());
        let b = keys(&p, &compiler::Options::default());
        assert_eq!(a, b); // well-defined and stable despite the cycle
    }
}
