//! Strategies: composable generators of test values.

use crate::test_runner::TestRng;
use std::ops::Range;
use std::sync::Arc;

/// A generator of values of type `Self::Value`.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of an RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `recurse` receives a strategy for the
    /// "smaller" cases and returns the composite one. `depth` bounds the
    /// nesting; `_desired_size` and `_expected_branch_size` are accepted
    /// for API compatibility and ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let base = self.boxed();
        let mut cur = base.clone();
        for _ in 0..depth {
            // Mix the base back in so expected size stays bounded.
            let next = recurse(cur).boxed();
            cur = Union::new(vec![base.clone(), next.clone(), next]).boxed();
        }
        cur
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among strategies of a common value type; built by
/// [`prop_oneof!`](crate::prop_oneof).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// A union of the given alternatives (must be non-empty).
    pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!alternatives.is_empty(), "prop_oneof! needs an alternative");
        Union(alternatives)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range_i128(0, self.0.len() as i128) as usize;
        self.0[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range_i128(i128::from(self.start), i128::from(self.end)) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, i8, i16, i32, i64);

impl Strategy for Range<usize> {
    type Value = usize;
    fn generate(&self, rng: &mut TestRng) -> usize {
        rng.gen_range_i128(self.start as i128, self.end as i128) as usize
    }
}

impl Strategy for Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        rng.gen_range_i128(i128::from(self.start), i128::from(self.end)) as u64
    }
}

/// String patterns: a `&str` is a strategy producing strings. Only the
/// single character-class form `"[x-y]"` is interpreted (the one shape
/// the workspace uses); any other pattern generates itself literally.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let bytes = self.as_bytes();
        if bytes.len() == 5 && bytes[0] == b'[' && bytes[2] == b'-' && bytes[4] == b']' {
            let (lo, hi) = (bytes[1], bytes[3]);
            if lo <= hi {
                let c = rng.gen_range_i128(i128::from(lo), i128::from(hi) + 1) as u8;
                return (c as char).to_string();
            }
        }
        (*self).to_owned()
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// The full-range strategy for a type, mirroring `proptest::arbitrary`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    /// The strategy type returned by [`Arbitrary::arbitrary`].
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The full-domain strategy behind [`any`].
pub struct FullRange<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for FullRange<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = FullRange<$t>;
            fn arbitrary() -> FullRange<$t> {
                FullRange(std::marker::PhantomData)
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, i8, i16, i32, i64, usize);

impl Strategy for FullRange<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = FullRange<bool>;
    fn arbitrary() -> FullRange<bool> {
        FullRange(std::marker::PhantomData)
    }
}
