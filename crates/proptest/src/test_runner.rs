//! Test configuration and the deterministic random-number generator.

/// Configuration for a [`proptest!`](crate::proptest) block.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Config {
        Config { cases: 64 }
    }
}

/// A small deterministic generator (xorshift64*), seeded per test case
/// from the test name so failures reproduce across runs.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// The generator for case `case` of the test named `name`.
    pub fn for_case(name: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        if let Some(extra) = std::env::var("PROPTEST_SHIM_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
        {
            h ^= extra.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
        let mut rng = TestRng(h ^ (u64::from(case).wrapping_mul(0xa076_1d64_78bd_642f) | 1));
        // Warm up past the low-entropy seed.
        rng.next_u64();
        rng.next_u64();
        rng
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// A value in `[lo, hi)` (widened arithmetic, so any integer range
    /// expressible as `i128` works).
    pub fn gen_range_i128(&mut self, lo: i128, hi: i128) -> i128 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = (hi - lo) as u128;
        lo + (u128::from(self.next_u64()) % span) as i128
    }
}
