//! A vendored, std-only stand-in for the [`proptest`] crate.
//!
//! This workspace builds in a fully offline environment, so the real
//! `proptest` cannot be fetched from crates.io. This shim implements the
//! subset of its API that the `stackbound` test suites use — strategies
//! over integer ranges, tuples, `Just`, simple `[a-z]` character-class
//! string patterns, `prop_map`, `prop_recursive`, `boxed`,
//! `prop_oneof!`, `proptest::collection::vec`, and the `proptest!` test
//! macro — with deterministic pseudo-random generation and **no
//! shrinking**.
//!
//! Determinism: each test case is seeded from the test's module path and
//! case index, so failures are reproducible across runs and machines. Set
//! `PROPTEST_SHIM_SEED` to an integer to perturb all seeds at once.
//!
//! [`proptest`]: https://docs.rs/proptest

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Generates `#[test]` functions that run a body over generated inputs.
///
/// Supports the two source shapes used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..10, (a, b) in my_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::Config::default(); $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::Config = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(
                        let $pat = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut __rng,
                        );
                    )*
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Skips the current case when an assumption does not hold. The shim
/// simply returns from the case body (no retry), which keeps the
/// semantics sound for filtering.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case("t", 0);
        for _ in 0..200 {
            let v = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let s = (-4i32..5).generate(&mut rng);
            assert!((-4..5).contains(&s));
        }
    }

    #[test]
    fn char_class_patterns_generate_members() {
        let mut rng = crate::test_runner::TestRng::for_case("t", 1);
        for _ in 0..50 {
            let s = "[a-d]".generate(&mut rng);
            assert!(["a", "b", "c", "d"].contains(&s.as_str()), "{s}");
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        let leaf = prop_oneof![Just(0usize), (1usize..3).prop_map(|n| n)];
        let tree = leaf.prop_recursive(4, 64, 4, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| a + b + 1)
        });
        let mut rng = crate::test_runner::TestRng::for_case("t", 2);
        for _ in 0..100 {
            // Depth 4 with fan-out 2 bounds the value.
            assert!(tree.generate(&mut rng) < 1 << 8);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_binds_patterns((a, b) in (0u32..5, 0u32..5), n in 0u8..3) {
            prop_assert!(a < 5 && b < 5);
            prop_assert_eq!(u32::from(n) + a, a + u32::from(n));
        }
    }
}
