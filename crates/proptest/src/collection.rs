//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// A strategy for vectors whose length is drawn from `len` and whose
/// elements come from `element`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

/// The strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.gen_range_i128(self.len.start as i128, self.len.end as i128) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
