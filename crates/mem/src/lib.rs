//! CompCert-style block-based memory model shared by every IR interpreter in
//! the `stackbound` workspace.
//!
//! The paper's semantics (CompCert 1.13) uses a memory made of disjoint
//! *blocks*; pointer values are `(block, offset)` pairs and pointer
//! arithmetic may never cross block boundaries. The source and intermediate
//! languages allocate one block per addressable local variable and one block
//! per stack frame, while the final `ASMsz` machine pre-allocates a *single*
//! finite block holding the whole stack (see `asm`).
//!
//! Data is stored at 4-byte granularity: every C value in our subset
//! (`u32`/`i32`, pointers) occupies exactly one cell. This mirrors the way
//! the paper's benchmarks only manipulate word-sized data and lets a memory
//! cell hold abstract values such as return addresses without inventing a
//! byte-level encoding for them.
//!
//! # Examples
//!
//! ```
//! use mem::{Memory, Value};
//!
//! let mut m = Memory::new();
//! let b = m.alloc(16); // a 16-byte block: 4 cells
//! m.store(b, 4, Value::Int(7)).unwrap();
//! assert_eq!(m.load(b, 4).unwrap(), Value::Int(7));
//! m.free(b).unwrap();
//! assert!(m.load(b, 4).is_err());
//! ```

#![warn(missing_docs)]

use std::fmt;

/// Identifier of a memory block.
///
/// Blocks are never reused: freeing a block marks it dead, and loads from a
/// dead block fail, matching CompCert's `Mem.free` (the paper's `‚` label).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// A runtime value: the paper's `Val ::= int n | adr ℓ`, extended with the
/// machine-level values the `ASMsz` semantics needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Value {
    /// A 32-bit machine integer. Signed operations reinterpret the bits.
    Int(u32),
    /// A pointer: block plus byte offset within the block.
    Ptr(BlockId, u32),
    /// A code address (function index, instruction index) — only ever created
    /// by the `ASMsz` `call` instruction when it stores a return address into
    /// the stack block.
    RetAddr(u32, u32),
    /// The undefined value; reading uninitialized memory yields it.
    Undef,
}

impl Value {
    /// The integer carried by the value.
    ///
    /// # Errors
    ///
    /// Fails when the value is not an `Int` (using a pointer or `Undef` as a
    /// number is a dynamic type error, i.e. the program "goes wrong").
    #[inline]
    pub fn as_int(self) -> Result<u32, MemError> {
        match self {
            Value::Int(n) => Ok(n),
            other => Err(MemError::TypeMismatch {
                expected: "int",
                found: other,
            }),
        }
    }

    /// The pointer carried by the value.
    ///
    /// # Errors
    ///
    /// Fails when the value is not a `Ptr`.
    #[inline]
    pub fn as_ptr(self) -> Result<(BlockId, u32), MemError> {
        match self {
            Value::Ptr(b, o) => Ok((b, o)),
            other => Err(MemError::TypeMismatch {
                expected: "pointer",
                found: other,
            }),
        }
    }

    /// True when the value is defined (not [`Value::Undef`]).
    pub fn is_defined(self) -> bool {
        !matches!(self, Value::Undef)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Ptr(b, o) => write!(f, "{b}+{o}"),
            Value::RetAddr(fun, pc) => write!(f, "ra({fun},{pc})"),
            Value::Undef => write!(f, "undef"),
        }
    }
}

impl From<u32> for Value {
    fn from(n: u32) -> Self {
        Value::Int(n)
    }
}

impl From<i32> for Value {
    fn from(n: i32) -> Self {
        Value::Int(n as u32)
    }
}

/// Errors raised by memory operations.
///
/// Any of these means the program *goes wrong* in the sense of the paper's
/// `fail(t)` behaviors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// Access to a block identifier that was never allocated.
    BadBlock(BlockId),
    /// Access to a block after it was freed.
    UseAfterFree(BlockId),
    /// Offset out of the block bounds.
    OutOfBounds {
        /// The offending block.
        block: BlockId,
        /// Byte offset of the access.
        offset: u32,
        /// Size of the block in bytes.
        size: u32,
    },
    /// Offset not 4-byte aligned.
    Unaligned {
        /// The offending block.
        block: BlockId,
        /// Byte offset of the access.
        offset: u32,
    },
    /// Double free.
    DoubleFree(BlockId),
    /// A value had the wrong runtime kind.
    TypeMismatch {
        /// What the operation needed.
        expected: &'static str,
        /// What it got.
        found: Value,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::BadBlock(b) => write!(f, "access to unallocated block {b}"),
            MemError::UseAfterFree(b) => write!(f, "use after free of block {b}"),
            MemError::OutOfBounds {
                block,
                offset,
                size,
            } => write!(f, "offset {offset} out of bounds of {block} (size {size})"),
            MemError::Unaligned { block, offset } => {
                write!(f, "unaligned access at {block}+{offset}")
            }
            MemError::DoubleFree(b) => write!(f, "double free of block {b}"),
            MemError::TypeMismatch { expected, found } => {
                write!(f, "expected {expected}, found value {found}")
            }
        }
    }
}

impl std::error::Error for MemError {}

#[derive(Debug, Clone)]
struct Block {
    cells: Vec<Value>,
    live: bool,
}

/// A block-based memory: the paper's `H : Loc → Val ∪ {‚}`.
///
/// # Examples
///
/// ```
/// use mem::{Memory, Value};
///
/// let mut m = Memory::new();
/// let b = m.alloc(8);
/// assert_eq!(m.load(b, 0).unwrap(), Value::Undef);
/// m.store(b, 0, Value::Int(1)).unwrap();
/// let snapshot = m.clone(); // memories are cheap to snapshot for testing
/// assert_eq!(snapshot.load(b, 0).unwrap(), Value::Int(1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Memory {
    blocks: Vec<Block>,
    /// Currently live allocated bytes.
    live_bytes: u64,
    /// Peak number of live allocated bytes, for the stack-merging ablation.
    peak_live_bytes: u64,
}

impl Memory {
    /// Creates an empty memory with no blocks.
    pub fn new() -> Self {
        Memory::default()
    }

    /// Allocates a fresh block of `size` bytes (rounded up to a multiple of
    /// 4) filled with [`Value::Undef`], and returns its identifier.
    pub fn alloc(&mut self, size: u32) -> BlockId {
        let cells = (size as usize).div_ceil(4);
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block {
            cells: vec![Value::Undef; cells],
            live: true,
        });
        self.live_bytes += (cells * 4) as u64;
        self.peak_live_bytes = self.peak_live_bytes.max(self.live_bytes);
        obs::counter("mem/alloc_blocks", 1);
        obs::counter("mem/alloc_bytes", (cells * 4) as u64);
        id
    }

    /// Frees a block. Subsequent accesses fail with [`MemError::UseAfterFree`].
    ///
    /// # Errors
    ///
    /// Fails on unknown blocks and double frees.
    pub fn free(&mut self, b: BlockId) -> Result<(), MemError> {
        let block = self
            .blocks
            .get_mut(b.0 as usize)
            .ok_or(MemError::BadBlock(b))?;
        if !block.live {
            return Err(MemError::DoubleFree(b));
        }
        block.live = false;
        self.live_bytes -= (block.cells.len() * 4) as u64;
        Ok(())
    }

    /// The checks shared by [`Memory::load`] and [`Memory::store`],
    /// separated from the cell access so each entry point validates and
    /// indexes in a single pass (no re-checked bounds on the hot path).
    #[inline]
    fn check_access(block: &Block, b: BlockId, offset: u32) -> Result<usize, MemError> {
        if !block.live {
            return Err(MemError::UseAfterFree(b));
        }
        if offset & 3 != 0 {
            return Err(MemError::Unaligned { block: b, offset });
        }
        Ok((offset / 4) as usize)
    }

    #[cold]
    fn out_of_bounds(block: &Block, b: BlockId, offset: u32) -> MemError {
        MemError::OutOfBounds {
            block: b,
            offset,
            size: (block.cells.len() * 4) as u32,
        }
    }

    /// Loads the 4-byte cell at `offset` in block `b`.
    ///
    /// # Errors
    ///
    /// Fails on dead/unknown blocks, unaligned or out-of-bounds offsets.
    #[inline]
    pub fn load(&self, b: BlockId, offset: u32) -> Result<Value, MemError> {
        let block = self.blocks.get(b.0 as usize).ok_or(MemError::BadBlock(b))?;
        let idx = Memory::check_access(block, b, offset)?;
        block
            .cells
            .get(idx)
            .copied()
            .ok_or_else(|| Memory::out_of_bounds(block, b, offset))
    }

    /// Stores `v` into the 4-byte cell at `offset` in block `b`.
    ///
    /// # Errors
    ///
    /// Fails on dead/unknown blocks, unaligned or out-of-bounds offsets.
    #[inline]
    pub fn store(&mut self, b: BlockId, offset: u32, v: Value) -> Result<(), MemError> {
        let block = self
            .blocks
            .get_mut(b.0 as usize)
            .ok_or(MemError::BadBlock(b))?;
        let idx = Memory::check_access(block, b, offset)?;
        match block.cells.get_mut(idx) {
            Some(cell) => {
                *cell = v;
                Ok(())
            }
            None => Err(Memory::out_of_bounds(block, b, offset)),
        }
    }

    /// Size in bytes of a block (live or dead).
    ///
    /// # Errors
    ///
    /// Fails when the block was never allocated.
    pub fn block_size(&self, b: BlockId) -> Result<u32, MemError> {
        let block = self.blocks.get(b.0 as usize).ok_or(MemError::BadBlock(b))?;
        Ok((block.cells.len() * 4) as u32)
    }

    /// Whether a block is currently live.
    pub fn is_live(&self, b: BlockId) -> bool {
        self.blocks.get(b.0 as usize).is_some_and(|bl| bl.live)
    }

    /// Number of blocks ever allocated.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Currently live allocated bytes.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// High-water mark of live allocated bytes over the memory's lifetime.
    ///
    /// For the per-frame-block intermediate semantics this *is* the stack
    /// usage, which the stack-merging ablation compares against the merged
    /// `ASMsz` block usage.
    pub fn peak_live_bytes(&self) -> u64 {
        self.peak_live_bytes
    }
}

/// Evaluate a binary operation on 32-bit machine integers, shared by every
/// IR interpreter so that all languages agree on arithmetic.
///
/// Pointer arithmetic (`Ptr ± Int`) is supported for `Add`/`Sub` only and
/// never crosses block boundaries (bounds are checked at access time, like
/// CompCert). Pointer equality across blocks is defined; pointer ordering is
/// only defined within one block.
///
/// # Errors
///
/// Division or modulo by zero and ill-typed operands make the program go
/// wrong.
#[inline]
pub fn eval_binop(op: Binop, a: Value, b: Value) -> Result<Value, MemError> {
    use Binop::*;
    // Int/Int is the dominant case and no pointer-arithmetic rule below
    // matches it, so dispatch straight to the integer table.
    if let (Value::Int(x), Value::Int(y)) = (a, b) {
        return eval_binop_int(op, x, y, b);
    }
    // Pointer arithmetic.
    match (op, a, b) {
        (Add, Value::Ptr(blk, off), Value::Int(n)) | (Add, Value::Int(n), Value::Ptr(blk, off)) => {
            return Ok(Value::Ptr(blk, off.wrapping_add(n)));
        }
        (Sub, Value::Ptr(blk, off), Value::Int(n)) => {
            return Ok(Value::Ptr(blk, off.wrapping_sub(n)));
        }
        (Sub, Value::Ptr(b1, o1), Value::Ptr(b2, o2)) if b1 == b2 => {
            return Ok(Value::Int(o1.wrapping_sub(o2)));
        }
        (Eq, Value::Ptr(b1, o1), Value::Ptr(b2, o2)) => {
            return Ok(Value::Int(u32::from(b1 == b2 && o1 == o2)));
        }
        (Ne, Value::Ptr(b1, o1), Value::Ptr(b2, o2)) => {
            return Ok(Value::Int(u32::from(b1 != b2 || o1 != o2)));
        }
        // Comparing a pointer with the integer 0 (C null checks): our
        // pointers are never null.
        (Eq, Value::Ptr(..), Value::Int(0)) | (Eq, Value::Int(0), Value::Ptr(..)) => {
            return Ok(Value::Int(0));
        }
        (Ne, Value::Ptr(..), Value::Int(0)) | (Ne, Value::Int(0), Value::Ptr(..)) => {
            return Ok(Value::Int(1));
        }
        (Ltu, Value::Ptr(b1, o1), Value::Ptr(b2, o2)) if b1 == b2 => {
            return Ok(Value::Int(u32::from(o1 < o2)));
        }
        (Leu, Value::Ptr(b1, o1), Value::Ptr(b2, o2)) if b1 == b2 => {
            return Ok(Value::Int(u32::from(o1 <= o2)));
        }
        (Gtu, Value::Ptr(b1, o1), Value::Ptr(b2, o2)) if b1 == b2 => {
            return Ok(Value::Int(u32::from(o1 > o2)));
        }
        (Geu, Value::Ptr(b1, o1), Value::Ptr(b2, o2)) if b1 == b2 => {
            return Ok(Value::Int(u32::from(o1 >= o2)));
        }
        _ => {}
    }
    let x = a.as_int()?;
    let y = b.as_int()?;
    eval_binop_int(op, x, y, b)
}

/// The integer table of [`eval_binop`]; `b` is kept only for error
/// payloads.
#[inline(always)]
fn eval_binop_int(op: Binop, x: u32, y: u32, b: Value) -> Result<Value, MemError> {
    use Binop::*;
    let r = match op {
        Add => x.wrapping_add(y),
        Sub => x.wrapping_sub(y),
        Mul => x.wrapping_mul(y),
        Divu => {
            if y == 0 {
                return Err(MemError::TypeMismatch {
                    expected: "nonzero divisor",
                    found: b,
                });
            }
            x / y
        }
        Modu => {
            if y == 0 {
                return Err(MemError::TypeMismatch {
                    expected: "nonzero divisor",
                    found: b,
                });
            }
            x % y
        }
        Divs => {
            let (xs, ys) = (x as i32, y as i32);
            if ys == 0 || (xs == i32::MIN && ys == -1) {
                return Err(MemError::TypeMismatch {
                    expected: "valid signed divisor",
                    found: b,
                });
            }
            (xs / ys) as u32
        }
        Mods => {
            let (xs, ys) = (x as i32, y as i32);
            if ys == 0 || (xs == i32::MIN && ys == -1) {
                return Err(MemError::TypeMismatch {
                    expected: "valid signed divisor",
                    found: b,
                });
            }
            (xs % ys) as u32
        }
        And => x & y,
        Or => x | y,
        Xor => x ^ y,
        Shl => x.wrapping_shl(y & 31),
        Shru => x.wrapping_shr(y & 31),
        Shrs => ((x as i32).wrapping_shr(y & 31)) as u32,
        Eq => u32::from(x == y),
        Ne => u32::from(x != y),
        Ltu => u32::from(x < y),
        Leu => u32::from(x <= y),
        Gtu => u32::from(x > y),
        Geu => u32::from(x >= y),
        Lts => u32::from((x as i32) < (y as i32)),
        Les => u32::from((x as i32) <= (y as i32)),
        Gts => u32::from((x as i32) > (y as i32)),
        Ges => u32::from((x as i32) >= (y as i32)),
    };
    Ok(Value::Int(r))
}

/// Evaluate a unary operation.
///
/// # Errors
///
/// Fails on ill-typed operands.
#[inline]
pub fn eval_unop(op: Unop, a: Value) -> Result<Value, MemError> {
    let x = a.as_int()?;
    let r = match op {
        Unop::Neg => x.wrapping_neg(),
        Unop::Not => !x,
        Unop::BoolNot => u32::from(x == 0),
    };
    Ok(Value::Int(r))
}

/// Binary operators shared by every IR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Binop {
    Add,
    Sub,
    Mul,
    Divu,
    Modu,
    Divs,
    Mods,
    And,
    Or,
    Xor,
    Shl,
    Shru,
    Shrs,
    Eq,
    Ne,
    Ltu,
    Leu,
    Gtu,
    Geu,
    Lts,
    Les,
    Gts,
    Ges,
}

impl Binop {
    /// True for comparison operators (result is always 0 or 1).
    pub fn is_comparison(self) -> bool {
        use Binop::*;
        matches!(
            self,
            Eq | Ne | Ltu | Leu | Gtu | Geu | Lts | Les | Gts | Ges
        )
    }

    /// The comparison with swapped operand order (`a op b` = `b op.swapped() a`),
    /// if this is a comparison.
    pub fn swapped(self) -> Option<Binop> {
        use Binop::*;
        Some(match self {
            Eq => Eq,
            Ne => Ne,
            Ltu => Gtu,
            Leu => Geu,
            Gtu => Ltu,
            Geu => Leu,
            Lts => Gts,
            Les => Ges,
            Gts => Lts,
            Ges => Les,
            _ => return None,
        })
    }

    /// The negated comparison (`!(a op b)` = `a op.negated() b`), if this is
    /// a comparison.
    pub fn negated(self) -> Option<Binop> {
        use Binop::*;
        Some(match self {
            Eq => Ne,
            Ne => Eq,
            Ltu => Geu,
            Leu => Gtu,
            Gtu => Leu,
            Geu => Ltu,
            Lts => Ges,
            Les => Gts,
            Gts => Les,
            Ges => Lts,
            _ => return None,
        })
    }
}

impl fmt::Display for Binop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Binop::*;
        let s = match self {
            Add => "+",
            Sub => "-",
            Mul => "*",
            Divu => "/u",
            Modu => "%u",
            Divs => "/s",
            Mods => "%s",
            And => "&",
            Or => "|",
            Xor => "^",
            Shl => "<<",
            Shru => ">>u",
            Shrs => ">>s",
            Eq => "==",
            Ne => "!=",
            Ltu => "<u",
            Leu => "<=u",
            Gtu => ">u",
            Geu => ">=u",
            Lts => "<s",
            Les => "<=s",
            Gts => ">s",
            Ges => ">=s",
        };
        f.write_str(s)
    }
}

/// Unary operators shared by every IR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Unop {
    /// Two's-complement negation.
    Neg,
    /// Bitwise complement.
    Not,
    /// C logical not: `!x` is 1 when `x == 0`, else 0.
    BoolNot,
}

impl fmt::Display for Unop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Unop::Neg => "-",
            Unop::Not => "~",
            Unop::BoolNot => "!",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_load_store_roundtrip() {
        let mut m = Memory::new();
        let b = m.alloc(16);
        assert_eq!(m.block_size(b).unwrap(), 16);
        for i in 0..4 {
            m.store(b, i * 4, Value::Int(i * 10)).unwrap();
        }
        for i in 0..4 {
            assert_eq!(m.load(b, i * 4).unwrap(), Value::Int(i * 10));
        }
    }

    #[test]
    fn fresh_cells_are_undef() {
        let mut m = Memory::new();
        let b = m.alloc(8);
        assert_eq!(m.load(b, 0).unwrap(), Value::Undef);
        assert_eq!(m.load(b, 4).unwrap(), Value::Undef);
        assert!(!m.load(b, 0).unwrap().is_defined());
    }

    #[test]
    fn size_rounds_up_to_cell() {
        let mut m = Memory::new();
        let b = m.alloc(5);
        assert_eq!(m.block_size(b).unwrap(), 8);
        let z = m.alloc(0);
        assert_eq!(m.block_size(z).unwrap(), 0);
    }

    #[test]
    fn out_of_bounds_fails() {
        let mut m = Memory::new();
        let b = m.alloc(8);
        assert!(matches!(m.load(b, 8), Err(MemError::OutOfBounds { .. })));
        assert!(matches!(
            m.store(b, 12, Value::Int(0)),
            Err(MemError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn unaligned_fails() {
        let mut m = Memory::new();
        let b = m.alloc(8);
        assert!(matches!(m.load(b, 2), Err(MemError::Unaligned { .. })));
    }

    #[test]
    fn use_after_free_fails() {
        let mut m = Memory::new();
        let b = m.alloc(8);
        m.free(b).unwrap();
        assert!(matches!(m.load(b, 0), Err(MemError::UseAfterFree(_))));
        assert!(matches!(m.free(b), Err(MemError::DoubleFree(_))));
        assert!(!m.is_live(b));
    }

    #[test]
    fn unknown_block_fails() {
        let m = Memory::new();
        assert!(matches!(m.load(BlockId(3), 0), Err(MemError::BadBlock(_))));
    }

    #[test]
    fn peak_live_bytes_tracks_high_water() {
        let mut m = Memory::new();
        let a = m.alloc(16);
        let b = m.alloc(16);
        m.free(a).unwrap();
        let _c = m.alloc(8);
        assert_eq!(m.peak_live_bytes(), 32);
        m.free(b).unwrap();
        assert_eq!(m.peak_live_bytes(), 32);
        assert_eq!(m.live_bytes(), 8);
        assert_eq!(m.block_count(), 3);
    }

    #[test]
    fn pointer_arithmetic_stays_in_block() {
        let mut m = Memory::new();
        let b = m.alloc(16);
        let p = Value::Ptr(b, 0);
        let q = eval_binop(Binop::Add, p, Value::Int(8)).unwrap();
        assert_eq!(q, Value::Ptr(b, 8));
        let d = eval_binop(Binop::Sub, q, p).unwrap();
        assert_eq!(d, Value::Int(8));
    }

    #[test]
    fn cross_block_pointer_compare_eq_only() {
        let mut m = Memory::new();
        let b1 = m.alloc(4);
        let b2 = m.alloc(4);
        let p = Value::Ptr(b1, 0);
        let q = Value::Ptr(b2, 0);
        assert_eq!(eval_binop(Binop::Eq, p, q).unwrap(), Value::Int(0));
        assert_eq!(eval_binop(Binop::Ne, p, q).unwrap(), Value::Int(1));
        // Ordering across blocks is undefined behaviour -> error.
        assert!(eval_binop(Binop::Ltu, p, q).is_err());
    }

    #[test]
    fn division_by_zero_goes_wrong() {
        assert!(eval_binop(Binop::Divu, Value::Int(1), Value::Int(0)).is_err());
        assert!(eval_binop(Binop::Mods, Value::Int(1), Value::Int(0)).is_err());
        assert!(eval_binop(
            Binop::Divs,
            Value::Int(i32::MIN as u32),
            Value::Int(-1i32 as u32)
        )
        .is_err());
    }

    #[test]
    fn signed_vs_unsigned_comparisons() {
        let minus_one = Value::Int(-1i32 as u32);
        let one = Value::Int(1);
        assert_eq!(
            eval_binop(Binop::Lts, minus_one, one).unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            eval_binop(Binop::Ltu, minus_one, one).unwrap(),
            Value::Int(0)
        );
    }

    #[test]
    fn shifts_mask_count() {
        assert_eq!(
            eval_binop(Binop::Shl, Value::Int(1), Value::Int(33)).unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            eval_binop(Binop::Shrs, Value::Int(0x8000_0000), Value::Int(31)).unwrap(),
            Value::Int(0xFFFF_FFFF)
        );
    }

    #[test]
    fn unops() {
        assert_eq!(
            eval_unop(Unop::Neg, Value::Int(1)).unwrap(),
            Value::Int(u32::MAX)
        );
        assert_eq!(
            eval_unop(Unop::Not, Value::Int(0)).unwrap(),
            Value::Int(u32::MAX)
        );
        assert_eq!(
            eval_unop(Unop::BoolNot, Value::Int(0)).unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            eval_unop(Unop::BoolNot, Value::Int(7)).unwrap(),
            Value::Int(0)
        );
        assert!(eval_unop(Unop::Neg, Value::Undef).is_err());
    }

    #[test]
    fn negated_and_swapped_comparisons_are_involutive() {
        use Binop::*;
        for op in [Eq, Ne, Ltu, Leu, Gtu, Geu, Lts, Les, Gts, Ges] {
            assert_eq!(op.negated().unwrap().negated().unwrap(), op);
            assert_eq!(op.swapped().unwrap().swapped().unwrap(), op);
            assert!(op.is_comparison());
        }
        assert_eq!(Add.negated(), None);
        assert_eq!(Mul.swapped(), None);
        assert!(!Add.is_comparison());
    }

    #[test]
    fn value_conversions_and_display() {
        assert_eq!(Value::from(7u32), Value::Int(7));
        assert_eq!(Value::from(-1i32), Value::Int(u32::MAX));
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::Ptr(BlockId(2), 8).to_string(), "b2+8");
        assert_eq!(Value::Undef.to_string(), "undef");
        assert!(Value::Int(0).as_ptr().is_err());
        assert!(Value::Undef.as_int().is_err());
    }
}
