//! Mach: the last per-frame language before assembly generation.
//!
//! A Mach function's stack frame is completely laid out: outgoing-argument
//! slots at the bottom, then spill slots, then the stack-data area holding
//! the merged addressable locals (plus, on the link-register
//! [`asm::Target::Rv`], a return-address save slot in non-leaf frames).
//! Its total size `SF(f)` is the source of the per-target cost metric
//! ([`asm::Target::metric_of`]) — "at the level of Mach, we already know
//! the stack size necessary for a function call" (§3.2).
//!
//! The semantics still allocates one memory block per frame (stack merging
//! into the single finite block happens in the next pass), reads incoming
//! parameters abstractly via `GetParam`, and emits `call`/`ret` events.

use asm::Reg;
use mem::{Binop, BlockId, Memory, Unop, Value};
use std::collections::HashMap;
use std::fmt;
use trace::{Behavior, Event, Trace};

/// A Mach instruction over machine registers and frame offsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MInstr {
    /// Jump target.
    Label(u32),
    /// `dst <- k`.
    Const(u32, Reg),
    /// `dst <- src`.
    Move(Reg, Reg),
    /// `r <- op r` in place.
    Unop(Unop, Reg),
    /// `dst <- dst op src` in place.
    Binop(Binop, Reg, Reg),
    /// `dst <- &frame + off` (a pointer into the stack-data area).
    StackAddr(u32, Reg),
    /// `dst <- &global[idx] + off`.
    GlobalAddr(u32, u32, Reg),
    /// `dst <- [addr]`.
    Load(Reg, Reg),
    /// `[addr] <- src`.
    Store(Reg, Reg),
    /// `dst <- frame[off]` (spill reload or outgoing slot read).
    LoadStack(u32, Reg),
    /// `frame[off] <- src` (spill or outgoing-argument write).
    StoreStack(u32, Reg),
    /// `dst <- incoming parameter i` (resolved to a cross-frame load by
    /// assembly generation — the pass the paper highlights).
    GetParam(u32, Reg),
    /// Conditional branch.
    Cond(Binop, Reg, Reg, u32),
    /// Unconditional branch.
    Jmp(u32),
    /// Call an internal function by index; arguments were stored in the
    /// outgoing slots. The result, if any, is in `eax` afterwards.
    Call(u32),
    /// Call an external function by index.
    CallExt(u32),
    /// Return; the result, if any, is in `eax`.
    Return,
}

impl fmt::Display for MInstr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MInstr::Label(l) => write!(f, ".L{l}:"),
            MInstr::Const(k, r) => write!(f, "\t{r} = {k}"),
            MInstr::Move(d, s) => write!(f, "\t{d} = {s}"),
            MInstr::Unop(op, r) => write!(f, "\t{r} = {op}{r}"),
            MInstr::Binop(op, d, s) => write!(f, "\t{d} = {d} {op} {s}"),
            MInstr::StackAddr(o, r) => write!(f, "\t{r} = &frame[{o}]"),
            MInstr::GlobalAddr(g, o, r) => write!(f, "\t{r} = &g{g}[{o}]"),
            MInstr::Load(a, d) => write!(f, "\t{d} = [{a}]"),
            MInstr::Store(a, s) => write!(f, "\t[{a}] = {s}"),
            MInstr::LoadStack(o, r) => write!(f, "\t{r} = frame[{o}]"),
            MInstr::StoreStack(o, r) => write!(f, "\tframe[{o}] = {r}"),
            MInstr::GetParam(i, r) => write!(f, "\t{r} = param[{i}]"),
            MInstr::Cond(op, a, b, l) => write!(f, "\tif {a} {op} {b} goto .L{l}"),
            MInstr::Jmp(l) => write!(f, "\tgoto .L{l}"),
            MInstr::Call(i) => write!(f, "\tcall fn{i}"),
            MInstr::CallExt(i) => write!(f, "\tcall ext{i}"),
            MInstr::Return => write!(f, "\treturn"),
        }
    }
}

/// The region breakdown of one function's frame, as decided by the
/// stacking pass: outgoing-argument slots at the bottom, spill slots above
/// them, then the merged addressable stack data, then (on the
/// link-register target) alignment padding and the `ra` save slot.
///
/// Exported so binary-level tools — the `stacklint` analyzer in
/// particular — can cross-check the layout the compiler *declared* against
/// what the emitted assembly actually does with `ESP`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FrameLayout {
    /// Bytes of outgoing-argument slots at the bottom of the frame.
    pub outgoing: u32,
    /// Bytes of spill slots above the outgoing area.
    pub spills: u32,
    /// Bytes of merged addressable stack data above the spills.
    pub stack_data: u32,
    /// Alignment padding between the stack data and the frame top (or the
    /// `ra` slot, when there is one). Only nonzero on targets that round
    /// frames up to the word size.
    pub padding: u32,
}

impl FrameLayout {
    /// The frame size these regions require, given whether a word-sized
    /// return-address save slot sits on top.
    pub fn required_size(&self, ra_words: u32) -> u32 {
        self.outgoing + self.spills + self.stack_data + self.padding + ra_words
    }
}

/// A Mach function with its fully laid-out frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachFunction {
    /// Function name.
    pub name: String,
    /// Total frame size `SF(f)` in bytes.
    pub frame_size: u32,
    /// How `frame_size` decomposes into regions.
    pub layout: FrameLayout,
    /// Number of parameters.
    pub nparams: usize,
    /// Frame offset of the return-address save slot, on targets whose
    /// calls write a link register ([`asm::Target::Rv`]): assembly
    /// generation saves `ra` there in non-leaf prologues and restores it
    /// before `ret`. `None` on [`asm::Target::Sz32`] (the return address
    /// is pushed by `call` itself) and in leaf frames.
    pub ra_slot: Option<u32>,
    /// Code.
    pub code: Vec<MInstr>,
}

/// A Mach program. Globals and externals are indexed; the tables carry the
/// names for events and diagnostics.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MachProgram {
    /// The machine this program's frames were laid out for; decides the
    /// outgoing-slot stride and the metric.
    pub target: asm::Target,
    /// Globals: name, byte size, initial words.
    pub globals: Vec<(String, u32, Vec<u32>)>,
    /// Externals: name, arity, returns-value flag.
    pub externals: Vec<(String, usize, bool)>,
    /// Function definitions.
    pub functions: Vec<MachFunction>,
}

impl MachProgram {
    /// The stack-frame sizes `SF` produced by the stacking pass.
    pub fn frame_sizes(&self) -> impl Iterator<Item = (&str, u32)> {
        self.functions
            .iter()
            .map(|f| (f.name.as_str(), f.frame_size))
    }

    /// The cost metric of Theorem 1: `M(f) = SF(f) + 4` on
    /// [`asm::Target::Sz32`], `M(f) = SF(f)` on [`asm::Target::Rv`].
    pub fn metric(&self) -> trace::Metric {
        self.functions
            .iter()
            .map(|f| (f.name.clone(), self.target.metric_of(f.frame_size)))
            .collect()
    }

    /// Checks that every function's declared [`FrameLayout`] regions tile
    /// its `frame_size` exactly. The stacking pass always produces
    /// consistent layouts; the check exists so external analyses can
    /// assert it.
    pub fn layouts_are_consistent(&self) -> bool {
        let word = self.target.word_size();
        self.functions.iter().all(|f| {
            let ra_words = if f.ra_slot.is_some() { word } else { 0 };
            f.layout.required_size(ra_words) == f.frame_size
        })
    }

    /// Looks up a function index by name.
    pub fn function_index(&self, name: &str) -> Option<u32> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(|i| i as u32)
    }

    /// Renders the program as readable Mach text.
    pub fn listing(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for f in &self.functions {
            let ra = f.ra_slot.map(|o| format!(", ra@{o}")).unwrap_or_default();
            let _ = writeln!(
                out,
                "{}: # SF = {} bytes, {} params{ra}",
                f.name, f.frame_size, f.nparams
            );
            for i in &f.code {
                let _ = writeln!(out, "{i}");
            }
        }
        out
    }
}

// ---- semantics ---------------------------------------------------------------

struct MFrame {
    func: usize,
    pc: usize,
    block: BlockId,
    params: Vec<Value>,
}

/// Runs `main()` of a Mach program for at most `fuel` instruction steps.
pub fn run_main(program: &MachProgram, fuel: u64) -> Behavior {
    run_function(program, "main", Vec::new(), fuel)
}

/// Like [`run_main`], additionally reporting the peak number of live
/// frame bytes — the stack usage of the *per-frame-block* semantics, which
/// the stack-merging ablation compares against the merged `ASMsz` block.
pub fn run_main_with_peak(program: &MachProgram, fuel: u64) -> (Behavior, u64) {
    let globals_bytes: u64 = program
        .globals
        .iter()
        .map(|(_, size, _)| u64::from(size.div_ceil(4) * 4))
        .sum();
    let mut peak = 0;
    let behavior = run_function_impl(program, "main", Vec::new(), fuel, Some(&mut peak));
    (behavior, peak.saturating_sub(globals_bytes))
}

/// Runs `fname(args)` of a Mach program.
pub fn run_function(program: &MachProgram, fname: &str, args: Vec<Value>, fuel: u64) -> Behavior {
    run_function_impl(program, fname, args, fuel, None)
}

fn run_function_impl(
    program: &MachProgram,
    fname: &str,
    args: Vec<Value>,
    fuel: u64,
    peak_out: Option<&mut u64>,
) -> Behavior {
    let peak_slot = peak_out;
    let mut memory = Memory::new();
    let memory = &mut memory;
    let behavior = (|| -> Behavior {
        let mut trace = Trace::new();
        let mut global_blocks = Vec::new();
        for (_, size, init) in &program.globals {
            let b = memory.alloc(*size);
            for i in 0..(*size / 4) {
                let v = init.get(i as usize).copied().unwrap_or(0);
                if memory.store(b, i * 4, Value::Int(v)).is_err() {
                    return Behavior::Fails(trace, "bad global initializer".into());
                }
            }
            global_blocks.push(b);
        }
        let Some(fidx) = program.functions.iter().position(|f| f.name == fname) else {
            return Behavior::Fails(trace, format!("no function `{fname}`"));
        };
        // Per-function label tables.
        let labels: Vec<HashMap<u32, usize>> = program
            .functions
            .iter()
            .map(|f| {
                f.code
                    .iter()
                    .enumerate()
                    .filter_map(|(i, ins)| match ins {
                        MInstr::Label(l) => Some((*l, i)),
                        _ => None,
                    })
                    .collect()
            })
            .collect();

        // Outgoing-argument slots are laid out at the target's word stride.
        let word = program.target.word_size();
        let mut regs: [Value; Reg::COUNT] = [Value::Undef; Reg::COUNT];
        let mut stack: Vec<MFrame> = Vec::new();
        trace.push(Event::call(fname));
        stack.push(MFrame {
            func: fidx,
            pc: 0,
            block: memory.alloc(program.functions[fidx].frame_size),
            params: args,
        });

        let mut steps = 0u64;
        macro_rules! frame {
            () => {
                stack.last_mut().expect("nonempty call stack")
            };
        }
        while steps < fuel {
            steps += 1;
            let fr_func = frame!().func;
            let fr_pc = frame!().pc;
            let func = &program.functions[fr_func];
            let Some(instr) = func.code.get(fr_pc) else {
                return Behavior::Fails(trace, format!("fell off the end of `{}`", func.name));
            };
            frame!().pc += 1;
            macro_rules! fail {
                ($e:expr) => {
                    return Behavior::Fails(trace, $e.to_string())
                };
            }
            macro_rules! try_or_fail {
                ($e:expr) => {
                    match $e {
                        Ok(v) => v,
                        Err(e) => fail!(e),
                    }
                };
            }
            match instr {
                MInstr::Label(_) => {}
                MInstr::Const(k, r) => regs[r.index()] = Value::Int(*k),
                MInstr::Move(d, s) => regs[d.index()] = regs[s.index()],
                MInstr::Unop(op, r) => {
                    regs[r.index()] = try_or_fail!(mem::eval_unop(*op, regs[r.index()]));
                }
                MInstr::Binop(op, d, s) => {
                    regs[d.index()] =
                        try_or_fail!(mem::eval_binop(*op, regs[d.index()], regs[s.index()]));
                }
                MInstr::StackAddr(off, r) => {
                    let b = frame!().block;
                    regs[r.index()] = Value::Ptr(b, *off);
                }
                MInstr::GlobalAddr(g, off, r) => match global_blocks.get(*g as usize) {
                    Some(b) => regs[r.index()] = Value::Ptr(*b, *off),
                    None => fail!(format!("bad global index {g}")),
                },
                MInstr::Load(a, d) => {
                    let (b, off) = try_or_fail!(regs[a.index()].as_ptr());
                    regs[d.index()] = try_or_fail!(memory.load(b, off));
                }
                MInstr::Store(a, s) => {
                    let (b, off) = try_or_fail!(regs[a.index()].as_ptr());
                    try_or_fail!(memory.store(b, off, regs[s.index()]));
                }
                MInstr::LoadStack(off, r) => {
                    let b = frame!().block;
                    regs[r.index()] = try_or_fail!(memory.load(b, *off));
                }
                MInstr::StoreStack(off, r) => {
                    let b = frame!().block;
                    let v = regs[r.index()];
                    try_or_fail!(memory.store(b, *off, v));
                }
                MInstr::GetParam(i, r) => {
                    let fr = frame!();
                    match fr.params.get(*i as usize) {
                        Some(v) => regs[r.index()] = *v,
                        None => fail!(format!("parameter {i} out of range")),
                    }
                }
                MInstr::Cond(op, a, b, l) => {
                    let v = try_or_fail!(mem::eval_binop(*op, regs[a.index()], regs[b.index()]));
                    if v != Value::Int(0) {
                        match labels[fr_func].get(l) {
                            Some(t) => frame!().pc = *t,
                            None => fail!(format!("missing label {l} in `{}`", func.name)),
                        }
                    }
                }
                MInstr::Jmp(l) => match labels[fr_func].get(l) {
                    Some(t) => frame!().pc = *t,
                    None => fail!(format!("missing label {l} in `{}`", func.name)),
                },
                MInstr::Call(ci) => {
                    let Some(callee) = program.functions.get(*ci as usize) else {
                        fail!(format!("bad function index {ci}"));
                    };
                    // Read arguments from the caller's outgoing slots.
                    let b = frame!().block;
                    let mut args = Vec::with_capacity(callee.nparams);
                    for i in 0..callee.nparams {
                        args.push(try_or_fail!(memory.load(b, word * i as u32)));
                    }
                    trace.push(Event::call(callee.name.as_str()));
                    let block = memory.alloc(callee.frame_size);
                    stack.push(MFrame {
                        func: *ci as usize,
                        pc: 0,
                        block,
                        params: args,
                    });
                }
                MInstr::CallExt(ei) => {
                    let Some((name, arity, _)) = program.externals.get(*ei as usize).cloned()
                    else {
                        fail!(format!("bad external index {ei}"));
                    };
                    let b = frame!().block;
                    let mut args = Vec::with_capacity(arity);
                    for i in 0..arity {
                        let v = try_or_fail!(memory.load(b, word * i as u32));
                        args.push(try_or_fail!(v.as_int()));
                    }
                    let result = clight::io_result(&name, &args);
                    trace.push(Event::io(name.as_str(), args, result));
                    regs[Reg::Eax.index()] = Value::Int(result);
                }
                MInstr::Return => {
                    let popped = stack.pop().expect("nonempty call stack");
                    if memory.free(popped.block).is_err() {
                        fail!("frame block already freed");
                    }
                    trace.push(Event::ret(func.name.as_str()));
                    if stack.is_empty() {
                        // A void entry function leaves eax undefined; report
                        // exit code 0 like a C runtime would.
                        return match regs[Reg::Eax.index()] {
                            Value::Int(code) => Behavior::Converges(trace, code),
                            Value::Undef => Behavior::Converges(trace, 0),
                            other => Behavior::Fails(
                                trace,
                                format!("program finished with non-integer value {other}"),
                            ),
                        };
                    }
                }
            }
        }
        Behavior::Diverges(trace)
    })();
    if let Some(p) = peak_slot {
        *p = memory.peak_live_bytes();
    }
    behavior
}
