//! RTL: a control-flow-graph IR over virtual registers, the substrate for
//! the optimization passes (constant propagation, dead-code elimination).
//!
//! Each function is a graph of single instructions indexed by node id;
//! every instruction carries its successor(s). The interpreter maintains
//! an explicit call stack and emits the same `call`/`ret` events as the
//! structured languages, so quantitative refinement is checkable across
//! RTL generation and each optimization.

use mem::{Binop, BlockId, Memory, Unop, Value};
use std::collections::HashMap;
use std::fmt;
use trace::{Behavior, Event, Trace};

/// A virtual register.
pub type VReg = u32;
/// A CFG node (index into [`RtlFunction::code`]).
pub type Node = u32;

/// A register-producing operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtlOp {
    /// Integer constant.
    Const(u32),
    /// Register copy.
    Move,
    /// Unary operation.
    Unop(Unop),
    /// Binary operation.
    Binop(Binop),
    /// Address of the function's stack block plus offset.
    StackAddr(u32),
    /// Address of a global plus offset.
    GlobalAddr(String, u32),
}

impl RtlOp {
    /// Number of register arguments the operation consumes.
    pub fn arity(&self) -> usize {
        match self {
            RtlOp::Const(_) | RtlOp::StackAddr(_) | RtlOp::GlobalAddr(..) => 0,
            RtlOp::Move | RtlOp::Unop(_) => 1,
            RtlOp::Binop(_) => 2,
        }
    }
}

/// An RTL instruction; successors are explicit node ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtlInstr {
    /// `dst <- op(args); goto next`.
    Op(RtlOp, Vec<VReg>, VReg, Node),
    /// `dst <- [addr]; goto next`.
    Load(VReg, VReg, Node),
    /// `[addr] <- src; goto next`.
    Store(VReg, VReg, Node),
    /// `dst? <- f(args); goto next`.
    Call(String, Vec<VReg>, Option<VReg>, Node),
    /// `if (a op b) goto then else goto els`.
    Cond(Binop, VReg, VReg, Node, Node),
    /// Return from the function.
    Return(Option<VReg>),
    /// No-op; placeholder and jump pad.
    Nop(Node),
}

impl RtlInstr {
    /// The successor nodes of the instruction.
    pub fn successors(&self) -> Vec<Node> {
        match self {
            RtlInstr::Op(_, _, _, n)
            | RtlInstr::Load(_, _, n)
            | RtlInstr::Store(_, _, n)
            | RtlInstr::Call(_, _, _, n)
            | RtlInstr::Nop(n) => vec![*n],
            RtlInstr::Cond(_, _, _, t, e) => vec![*t, *e],
            RtlInstr::Return(_) => vec![],
        }
    }

    /// Registers read by the instruction.
    pub fn uses(&self) -> Vec<VReg> {
        match self {
            RtlInstr::Op(_, args, _, _) => args.clone(),
            RtlInstr::Load(a, _, _) => vec![*a],
            RtlInstr::Store(a, s, _) => vec![*a, *s],
            RtlInstr::Call(_, args, _, _) => args.clone(),
            RtlInstr::Cond(_, a, b, _, _) => vec![*a, *b],
            RtlInstr::Return(Some(v)) => vec![*v],
            RtlInstr::Return(None) | RtlInstr::Nop(_) => vec![],
        }
    }

    /// The register written by the instruction, if any.
    pub fn def(&self) -> Option<VReg> {
        match self {
            RtlInstr::Op(_, _, d, _) | RtlInstr::Load(_, d, _) => Some(*d),
            RtlInstr::Call(_, _, d, _) => *d,
            _ => None,
        }
    }
}

impl fmt::Display for RtlInstr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtlInstr::Op(op, args, d, n) => write!(f, "v{d} = {op:?}{args:?} -> {n}"),
            RtlInstr::Load(a, d, n) => write!(f, "v{d} = [v{a}] -> {n}"),
            RtlInstr::Store(a, s, n) => write!(f, "[v{a}] = v{s} -> {n}"),
            RtlInstr::Call(g, args, d, n) => write!(f, "{d:?} = {g}{args:?} -> {n}"),
            RtlInstr::Cond(op, a, b, t, e) => write!(f, "if v{a} {op} v{b} -> {t} | {e}"),
            RtlInstr::Return(v) => write!(f, "return {v:?}"),
            RtlInstr::Nop(n) => write!(f, "nop -> {n}"),
        }
    }
}

/// An RTL function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtlFunction {
    /// Function name.
    pub name: String,
    /// Parameter registers, in order.
    pub params: Vec<VReg>,
    /// Stack-data block size in bytes (from Cminor).
    pub stacksize: u32,
    /// Entry node.
    pub entry: Node,
    /// Instructions, indexed by node id.
    pub code: Vec<RtlInstr>,
    /// Number of virtual registers in use.
    pub nregs: u32,
    /// Whether the function returns a value.
    pub returns_value: bool,
}

/// An RTL program.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RtlProgram {
    /// Globals: name, byte size, initial words.
    pub globals: Vec<(String, u32, Vec<u32>)>,
    /// Externals: name, arity, returns-value flag.
    pub externals: Vec<(String, usize, bool)>,
    /// Function definitions.
    pub functions: Vec<RtlFunction>,
}

impl RtlProgram {
    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&RtlFunction> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Renders the program as a readable CFG dump.
    pub fn listing(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for f in &self.functions {
            let _ = writeln!(
                out,
                "{}(params {:?}) entry {} stacksize {}:",
                f.name, f.params, f.entry, f.stacksize
            );
            for (n, i) in f.code.iter().enumerate() {
                let _ = writeln!(out, "  {n:>4}: {i}");
            }
        }
        out
    }
}

// ---- semantics ---------------------------------------------------------------

struct RFrame {
    func: usize,
    pc: Node,
    regs: HashMap<VReg, Value>,
    block: BlockId,
    dest: Option<VReg>,
}

/// Runs `main()` of an RTL program for at most `fuel` instruction steps.
pub fn run_main(program: &RtlProgram, fuel: u64) -> Behavior {
    run_function(program, "main", Vec::new(), fuel)
}

/// Runs `fname(args)` of an RTL program.
pub fn run_function(program: &RtlProgram, fname: &str, args: Vec<Value>, fuel: u64) -> Behavior {
    let mut memory = Memory::new();
    let mut globals = HashMap::new();
    let mut trace = Trace::new();
    for (name, size, init) in &program.globals {
        let b = memory.alloc(*size);
        for i in 0..(*size / 4) {
            let v = init.get(i as usize).copied().unwrap_or(0);
            if memory.store(b, i * 4, Value::Int(v)).is_err() {
                return Behavior::Fails(trace, "bad global initializer".into());
            }
        }
        globals.insert(name.clone(), b);
    }
    let Some(fidx) = program.functions.iter().position(|f| f.name == fname) else {
        return Behavior::Fails(trace, format!("no function `{fname}`"));
    };
    let mut stack: Vec<RFrame> = Vec::new();
    match push_frame(program, &mut memory, &mut trace, fidx, args, None) {
        Ok(frame) => stack.push(frame),
        Err(e) => return Behavior::Fails(trace, e),
    }

    let mut steps = 0u64;
    while steps < fuel {
        steps += 1;
        let frame = stack.last_mut().expect("nonempty call stack");
        let func = &program.functions[frame.func];
        let Some(instr) = func.code.get(frame.pc as usize) else {
            return Behavior::Fails(trace, format!("bad node {} in `{}`", frame.pc, func.name));
        };
        macro_rules! fail {
            ($e:expr) => {
                return Behavior::Fails(trace, $e.to_string())
            };
        }
        macro_rules! reg {
            ($r:expr) => {
                match frame.regs.get(&$r) {
                    Some(v) => *v,
                    None => Value::Undef,
                }
            };
        }
        match instr {
            RtlInstr::Nop(n) => frame.pc = *n,
            RtlInstr::Op(op, args, dst, n) => {
                let v = match op {
                    RtlOp::Const(k) => Value::Int(*k),
                    RtlOp::Move => reg!(args[0]),
                    RtlOp::Unop(u) => match mem::eval_unop(*u, reg!(args[0])) {
                        Ok(v) => v,
                        Err(e) => fail!(e),
                    },
                    RtlOp::Binop(b) => match mem::eval_binop(*b, reg!(args[0]), reg!(args[1])) {
                        Ok(v) => v,
                        Err(e) => fail!(e),
                    },
                    RtlOp::StackAddr(off) => Value::Ptr(frame.block, *off),
                    RtlOp::GlobalAddr(g, off) => match globals.get(g) {
                        Some(b) => Value::Ptr(*b, *off),
                        None => fail!(format!("unknown global `{g}`")),
                    },
                };
                frame.regs.insert(*dst, v);
                frame.pc = *n;
            }
            RtlInstr::Load(a, d, n) => {
                let (b, off) = match reg!(*a).as_ptr() {
                    Ok(p) => p,
                    Err(e) => fail!(e),
                };
                match memory.load(b, off) {
                    Ok(v) => {
                        frame.regs.insert(*d, v);
                    }
                    Err(e) => fail!(e),
                }
                frame.pc = *n;
            }
            RtlInstr::Store(a, s, n) => {
                let (b, off) = match reg!(*a).as_ptr() {
                    Ok(p) => p,
                    Err(e) => fail!(e),
                };
                let v = reg!(*s);
                if let Err(e) = memory.store(b, off, v) {
                    fail!(e);
                }
                frame.pc = *n;
            }
            RtlInstr::Cond(op, a, b, t, e) => {
                let v = match mem::eval_binop(*op, reg!(*a), reg!(*b)) {
                    Ok(v) => v,
                    Err(err) => fail!(err),
                };
                frame.pc = if v != Value::Int(0) { *t } else { *e };
            }
            RtlInstr::Call(g, args, dst, n) => {
                let vals: Vec<Value> = args.iter().map(|r| reg!(*r)).collect();
                frame.dest = *dst;
                frame.pc = *n;
                if let Some(cidx) = program.functions.iter().position(|f| &f.name == g) {
                    match push_frame(program, &mut memory, &mut trace, cidx, vals, *dst) {
                        Ok(fr) => stack.push(fr),
                        Err(e) => fail!(e),
                    }
                } else if let Some((name, arity, has_ret)) =
                    program.externals.iter().find(|(n2, _, _)| n2 == g).cloned()
                {
                    if vals.len() != arity {
                        fail!(format!("arity mismatch calling external `{g}`"));
                    }
                    let ints: Result<Vec<u32>, _> = vals.iter().map(|v| v.as_int()).collect();
                    let ints = match ints {
                        Ok(i) => i,
                        Err(e) => fail!(e),
                    };
                    let result = clight::io_result(&name, &ints);
                    trace.push(Event::io(name.as_str(), ints, result));
                    if let Some(d) = dst {
                        if !has_ret {
                            fail!(format!("void external `{g}` used as a value"));
                        }
                        frame.regs.insert(*d, Value::Int(result));
                    }
                } else {
                    fail!(format!("call to undefined function `{g}`"));
                }
            }
            RtlInstr::Return(v) => {
                let value = match v {
                    Some(r) => reg!(*r),
                    None => Value::Undef,
                };
                let popped = stack.pop().expect("nonempty call stack");
                if memory.free(popped.block).is_err() {
                    fail!("stack block already freed");
                }
                trace.push(Event::ret(func.name.as_str()));
                match stack.last_mut() {
                    None => {
                        return match value {
                            Value::Int(code) => Behavior::Converges(trace, code),
                            Value::Undef if !func.returns_value => Behavior::Converges(trace, 0),
                            other => Behavior::Fails(
                                trace,
                                format!("program finished with non-integer value {other}"),
                            ),
                        };
                    }
                    Some(caller) => {
                        if let Some(d) = caller.dest.take() {
                            caller.regs.insert(d, value);
                        }
                    }
                }
            }
        }
    }
    Behavior::Diverges(trace)
}

fn push_frame(
    program: &RtlProgram,
    memory: &mut Memory,
    trace: &mut Trace,
    fidx: usize,
    args: Vec<Value>,
    dest: Option<VReg>,
) -> Result<RFrame, String> {
    let f = &program.functions[fidx];
    if args.len() != f.params.len() {
        return Err(format!("arity mismatch calling `{}`", f.name));
    }
    trace.push(Event::call(f.name.as_str()));
    let _ = dest;
    Ok(RFrame {
        func: fidx,
        pc: f.entry,
        regs: f.params.iter().copied().zip(args).collect(),
        block: memory.alloc(f.stacksize),
        dest: None,
    })
}
