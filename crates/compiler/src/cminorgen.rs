//! Clight → Cminor: merge each function's addressable locals into one
//! stack block with static offsets, make memory accesses explicit, and
//! erase types.

use crate::cminor::{CmExpr, CmFunction, CmProgram, CmStmt};
use crate::CompileError;
use clight::{Expr, Program, Stmt, Ty};
use std::collections::HashMap;
use std::sync::Arc;

/// Translates a type-checked Clight program to Cminor.
///
/// # Errors
///
/// Returns a [`CompileError`] on constructs the type checker should have
/// ruled out (indicating an internal invariant violation).
pub fn translate(program: &Program) -> Result<CmProgram, CompileError> {
    let mut out = CmProgram {
        globals: program
            .globals
            .iter()
            .map(|g| (g.name.clone(), g.ty.size(), g.init.clone()))
            .collect(),
        externals: program
            .externals
            .iter()
            .map(|e| (e.name.clone(), e.arity, e.ret.is_some()))
            .collect(),
        functions: Vec::new(),
    };
    for f in &program.functions {
        out.functions.push(translate_function(f, program)?);
    }
    Ok(out)
}

struct FnCtx<'a> {
    func: &'a clight::Function,
    program: &'a Program,
    /// Offsets of addressable locals within the stack block.
    offsets: HashMap<String, u32>,
}

pub(crate) fn translate_function(
    f: &clight::Function,
    program: &Program,
) -> Result<CmFunction, CompileError> {
    // Lay out addressable locals in declaration order, word-aligned.
    let mut offsets = HashMap::new();
    let mut size = 0u32;
    for l in &f.locals {
        if f.addressable.contains(&l.name) {
            offsets.insert(l.name.clone(), size);
            size += l.ty.size().div_ceil(4) * 4;
        }
    }
    let ctx = FnCtx {
        func: f,
        program,
        offsets,
    };
    let body = ctx.stmt(&f.body)?;
    Ok(CmFunction {
        name: f.name.clone(),
        params: f.params.iter().map(|p| p.name.clone()).collect(),
        temps: f
            .locals
            .iter()
            .filter(|l| !f.addressable.contains(&l.name))
            .map(|l| l.name.clone())
            .collect(),
        stacksize: size,
        body: Arc::new(body),
        returns_value: f.ret.is_some(),
    })
}

impl FnCtx<'_> {
    fn ice(&self, msg: impl Into<String>) -> CompileError {
        CompileError::Internal(format!("cminorgen `{}`: {}", self.func.name, msg.into()))
    }

    fn var_ty(&self, x: &str) -> Option<Ty> {
        self.func
            .var_ty(x)
            .cloned()
            .or_else(|| self.program.global(x).map(|g| g.ty.clone()))
    }

    fn stmt(&self, s: &Stmt) -> Result<CmStmt, CompileError> {
        Ok(match s {
            Stmt::Skip => CmStmt::Skip,
            Stmt::Assign(lv, e) => {
                let value = self.rvalue(e)?;
                match lv {
                    Expr::Var(x) if self.is_temp(x) => CmStmt::Assign(x.clone(), value),
                    _ => CmStmt::Store(self.lvalue(lv)?, value),
                }
            }
            Stmt::Call(dest, fname, args) => CmStmt::Call(
                dest.clone(),
                fname.clone(),
                args.iter()
                    .map(|a| self.rvalue(a))
                    .collect::<Result<_, _>>()?,
            ),
            Stmt::Seq(a, b) => CmStmt::seq(self.stmt(a)?, self.stmt(b)?),
            Stmt::If(c, t, e) => CmStmt::If(
                self.rvalue(c)?,
                Arc::new(self.stmt(t)?),
                Arc::new(self.stmt(e)?),
            ),
            Stmt::Loop(b, i) => CmStmt::Loop(Arc::new(self.stmt(b)?), Arc::new(self.stmt(i)?)),
            Stmt::Break => CmStmt::Break,
            Stmt::Continue => CmStmt::Continue,
            Stmt::Return(e) => CmStmt::Return(match e {
                Some(e) => Some(self.rvalue(e)?),
                None => None,
            }),
        })
    }

    /// True when `x` is a scalar local or parameter held in a temporary.
    fn is_temp(&self, x: &str) -> bool {
        (self.func.is_param(x) || self.func.var_ty(x).is_some()) && !self.offsets.contains_key(x)
    }

    /// The address of an lvalue expression.
    fn lvalue(&self, e: &Expr) -> Result<CmExpr, CompileError> {
        match e {
            Expr::Var(x) => {
                if let Some(off) = self.offsets.get(x) {
                    return Ok(CmExpr::StackAddr(*off));
                }
                if self.program.global(x).is_some() {
                    return Ok(CmExpr::GlobalAddr(x.clone(), 0));
                }
                Err(self.ice(format!("`{x}` is not addressable")))
            }
            Expr::Index(a, i) => {
                let base = self.rvalue(a)?;
                let idx = self.rvalue(i)?;
                Ok(CmExpr::Binop(
                    mem::Binop::Add,
                    Box::new(base),
                    Box::new(CmExpr::Binop(
                        mem::Binop::Mul,
                        Box::new(idx),
                        Box::new(CmExpr::Const(4)),
                    )),
                ))
            }
            Expr::Deref(p) => self.rvalue(p),
            other => Err(self.ice(format!("`{other}` is not an lvalue"))),
        }
    }

    /// The rvalue of an expression.
    fn rvalue(&self, e: &Expr) -> Result<CmExpr, CompileError> {
        match e {
            Expr::Const(n, _) => Ok(CmExpr::Const(*n)),
            Expr::Var(x) => {
                if self.is_temp(x) {
                    return Ok(CmExpr::Temp(x.clone()));
                }
                let ty = self
                    .var_ty(x)
                    .ok_or_else(|| self.ice(format!("unknown variable `{x}`")))?;
                let addr = self.lvalue(e)?;
                // Arrays decay to their address; scalars are loaded.
                if matches!(ty, Ty::Array(..)) {
                    Ok(addr)
                } else {
                    Ok(CmExpr::Load(Box::new(addr)))
                }
            }
            Expr::Unop(op, a) => Ok(CmExpr::Unop(*op, Box::new(self.rvalue(a)?))),
            Expr::Binop(op, a, b) => Ok(CmExpr::Binop(
                *op,
                Box::new(self.rvalue(a)?),
                Box::new(self.rvalue(b)?),
            )),
            Expr::Index(..) | Expr::Deref(_) => Ok(CmExpr::Load(Box::new(self.lvalue(e)?))),
            Expr::Addr(lv) => self.lvalue(lv),
            Expr::Cond(c, t, f) => Ok(CmExpr::Cond(
                Box::new(self.rvalue(c)?),
                Box::new(self.rvalue(t)?),
                Box::new(self.rvalue(f)?),
            )),
            Expr::Cast(_, a) => self.rvalue(a),
            Expr::Call0(f, _) => Err(self.ice(format!("unelaborated call to `{f}`"))),
        }
    }
}
