//! Cminor: the first intermediate language of the pipeline.
//!
//! Compared to Clight, the addressable locals of each function are merged
//! into a single per-function *stack block* with static offsets (CompCert's
//! `Cminorgen`), memory accesses are explicit `Load`/`Store` operations,
//! and types have been erased — everything is a machine word. Scalar locals
//! remain named temporaries.
//!
//! The small-step semantics mirrors Clight's and emits the same
//! `call`/`ret` events, so quantitative refinement of the Clight→Cminor
//! pass can be checked trace against trace.

use mem::{Binop, BlockId, Memory, Unop, Value};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use trace::{Behavior, Event, Trace};

/// A Cminor expression (word-valued, side-effect free).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CmExpr {
    /// Integer constant.
    Const(u32),
    /// Scalar temporary.
    Temp(String),
    /// Address of the function's own stack block plus offset.
    StackAddr(u32),
    /// Address of a global plus offset.
    GlobalAddr(String, u32),
    /// Word load from an address.
    Load(Box<CmExpr>),
    /// Unary operation.
    Unop(Unop, Box<CmExpr>),
    /// Binary operation.
    Binop(Binop, Box<CmExpr>, Box<CmExpr>),
    /// Lazy conditional expression.
    Cond(Box<CmExpr>, Box<CmExpr>, Box<CmExpr>),
}

impl fmt::Display for CmExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CmExpr::Const(n) => write!(f, "{n}"),
            CmExpr::Temp(x) => write!(f, "{x}"),
            CmExpr::StackAddr(o) => write!(f, "&stack[{o}]"),
            CmExpr::GlobalAddr(g, o) => write!(f, "&{g}[{o}]"),
            CmExpr::Load(a) => write!(f, "load({a})"),
            CmExpr::Unop(op, a) => write!(f, "{op}({a})"),
            CmExpr::Binop(op, a, b) => write!(f, "({a} {op} {b})"),
            CmExpr::Cond(c, t, e) => write!(f, "({c} ? {t} : {e})"),
        }
    }
}

/// A Cminor statement. Control flow stays structured (lowering to a CFG
/// happens in RTL generation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CmStmt {
    /// No-op.
    Skip,
    /// `temp = expr`.
    Assign(String, CmExpr),
    /// `[addr] = value`.
    Store(CmExpr, CmExpr),
    /// `temp? = f(args)`.
    Call(Option<String>, String, Vec<CmExpr>),
    /// Sequence.
    Seq(Arc<CmStmt>, Arc<CmStmt>),
    /// Conditional.
    If(CmExpr, Arc<CmStmt>, Arc<CmStmt>),
    /// Infinite loop with increment part (same shape as Clight).
    Loop(Arc<CmStmt>, Arc<CmStmt>),
    /// Exit the innermost loop.
    Break,
    /// Skip to the increment of the innermost loop.
    Continue,
    /// Return.
    Return(Option<CmExpr>),
}

impl CmStmt {
    /// `s1; s2` with skip elimination.
    pub fn seq(s1: CmStmt, s2: CmStmt) -> CmStmt {
        match (&s1, &s2) {
            (CmStmt::Skip, _) => s2,
            (_, CmStmt::Skip) => s1,
            _ => CmStmt::Seq(Arc::new(s1), Arc::new(s2)),
        }
    }
}

/// A Cminor function: named temporaries plus one stack block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CmFunction {
    /// Function name.
    pub name: String,
    /// Parameter temporaries, in order.
    pub params: Vec<String>,
    /// Non-parameter temporaries.
    pub temps: Vec<String>,
    /// Size in bytes of the function's stack block (its merged
    /// addressable locals).
    pub stacksize: u32,
    /// Body.
    pub body: Arc<CmStmt>,
    /// Whether the function returns a value.
    pub returns_value: bool,
}

/// A Cminor program.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CmProgram {
    /// Globals: name, byte size, initial words.
    pub globals: Vec<(String, u32, Vec<u32>)>,
    /// Externals: name, arity, returns-value flag.
    pub externals: Vec<(String, usize, bool)>,
    /// Function definitions.
    pub functions: Vec<CmFunction>,
}

impl CmProgram {
    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&CmFunction> {
        self.functions.iter().find(|f| f.name == name)
    }
}

// ---- semantics ---------------------------------------------------------------

#[derive(Debug, Clone, Default)]
struct Frame {
    fname: Arc<str>,
    temps: HashMap<String, Value>,
    stack_block: Option<BlockId>,
}

#[derive(Debug, Clone)]
enum Cont {
    Stop,
    Seq(Arc<CmStmt>, Arc<Cont>),
    Loop1(Arc<CmStmt>, Arc<CmStmt>, Arc<Cont>),
    Loop2(Arc<CmStmt>, Arc<CmStmt>, Arc<Cont>),
    Call(Option<String>, Box<Frame>, Arc<Cont>),
}

#[derive(Debug)]
enum State {
    Stmt(Arc<CmStmt>, Arc<Cont>),
    Call(String, Vec<Value>, Option<String>, Arc<Cont>),
    Return(Value, Arc<Cont>),
}

/// Runs `main()` of a Cminor program for at most `fuel` steps.
pub fn run_main(program: &CmProgram, fuel: u64) -> Behavior {
    run_function(program, "main", Vec::new(), fuel)
}

/// Runs `fname(args)` of a Cminor program for at most `fuel` steps.
pub fn run_function(program: &CmProgram, fname: &str, args: Vec<Value>, fuel: u64) -> Behavior {
    let mut ex = match CmExecutor::new(program, fname, args) {
        Ok(ex) => ex,
        Err(e) => return Behavior::Fails(Trace::new(), e),
    };
    ex.run(fuel)
}

struct CmExecutor<'p> {
    program: &'p CmProgram,
    globals: HashMap<String, BlockId>,
    memory: Memory,
    frame: Frame,
    state: State,
    trace: Trace,
    steps: u64,
    entry_returns: bool,
}

impl<'p> CmExecutor<'p> {
    fn new(program: &'p CmProgram, fname: &str, args: Vec<Value>) -> Result<Self, String> {
        let mut memory = Memory::new();
        let mut globals = HashMap::new();
        for (name, size, init) in &program.globals {
            let b = memory.alloc(*size);
            for i in 0..(*size / 4) {
                let v = init.get(i as usize).copied().unwrap_or(0);
                memory
                    .store(b, i * 4, Value::Int(v))
                    .map_err(|e| e.to_string())?;
            }
            globals.insert(name.clone(), b);
        }
        let Some(f) = program.function(fname) else {
            return Err(format!("no function `{fname}`"));
        };
        let entry_returns = f.returns_value;
        Ok(CmExecutor {
            program,
            globals,
            memory,
            frame: Frame::default(),
            state: State::Call(fname.to_owned(), args, None, Arc::new(Cont::Stop)),
            trace: Trace::new(),
            steps: 0,
            entry_returns,
        })
    }

    fn run(&mut self, fuel: u64) -> Behavior {
        while self.steps < fuel {
            match self.step() {
                Ok(None) => {}
                Ok(Some(code)) => return Behavior::Converges(self.trace.clone(), code),
                Err(e) => return Behavior::Fails(self.trace.clone(), e),
            }
        }
        Behavior::Diverges(self.trace.clone())
    }

    fn step(&mut self) -> Result<Option<u32>, String> {
        self.steps += 1;
        let state = std::mem::replace(
            &mut self.state,
            State::Return(Value::Undef, Arc::new(Cont::Stop)),
        );
        match state {
            State::Stmt(s, k) => {
                self.step_stmt(&s, k)?;
                Ok(None)
            }
            State::Call(fname, args, dest, k) => {
                self.enter(&fname, args, dest, k)?;
                Ok(None)
            }
            State::Return(v, k) => self.step_return(v, k),
        }
    }

    fn step_stmt(&mut self, s: &CmStmt, k: Arc<Cont>) -> Result<(), String> {
        match s {
            CmStmt::Skip => self.unwind_skip(k),
            CmStmt::Assign(x, e) => {
                let v = self.eval(e)?;
                match self.frame.temps.get_mut(x) {
                    Some(slot) => *slot = v,
                    None => return Err(format!("unknown temp `{x}`")),
                }
                self.state = State::Stmt(Arc::new(CmStmt::Skip), k);
                Ok(())
            }
            CmStmt::Store(addr, value) => {
                let a = self.eval(addr)?;
                let v = self.eval(value)?;
                let (b, off) = a.as_ptr().map_err(|e| e.to_string())?;
                self.memory.store(b, off, v).map_err(|e| e.to_string())?;
                self.state = State::Stmt(Arc::new(CmStmt::Skip), k);
                Ok(())
            }
            CmStmt::Call(dest, fname, args) => {
                let vals: Vec<Value> = args
                    .iter()
                    .map(|a| self.eval(a))
                    .collect::<Result<_, _>>()?;
                self.state = State::Call(fname.clone(), vals, dest.clone(), k);
                Ok(())
            }
            CmStmt::Seq(a, b) => {
                self.state = State::Stmt(a.clone(), Arc::new(Cont::Seq(b.clone(), k)));
                Ok(())
            }
            CmStmt::If(c, t, e) => {
                let v = self.eval(c)?;
                let s = if truthy(v)? { t } else { e };
                self.state = State::Stmt(s.clone(), k);
                Ok(())
            }
            CmStmt::Loop(body, incr) => {
                self.state = State::Stmt(
                    body.clone(),
                    Arc::new(Cont::Loop1(body.clone(), incr.clone(), k)),
                );
                Ok(())
            }
            CmStmt::Break => self.unwind_break(k),
            CmStmt::Continue => self.unwind_continue(k),
            CmStmt::Return(e) => {
                let v = match e {
                    Some(e) => self.eval(e)?,
                    None => Value::Undef,
                };
                self.leave()?;
                self.state = State::Return(v, k);
                Ok(())
            }
        }
    }

    fn unwind_skip(&mut self, k: Arc<Cont>) -> Result<(), String> {
        match k.as_ref() {
            Cont::Stop | Cont::Call(..) => {
                self.leave()?;
                self.state = State::Return(Value::Undef, k);
                Ok(())
            }
            Cont::Seq(s2, k2) => {
                self.state = State::Stmt(s2.clone(), k2.clone());
                Ok(())
            }
            Cont::Loop1(b, i, k2) => {
                self.state = State::Stmt(
                    i.clone(),
                    Arc::new(Cont::Loop2(b.clone(), i.clone(), k2.clone())),
                );
                Ok(())
            }
            Cont::Loop2(b, i, k2) => {
                self.state = State::Stmt(
                    b.clone(),
                    Arc::new(Cont::Loop1(b.clone(), i.clone(), k2.clone())),
                );
                Ok(())
            }
        }
    }

    fn unwind_break(&mut self, k: Arc<Cont>) -> Result<(), String> {
        match k.as_ref() {
            Cont::Seq(_, k2) => self.unwind_break(k2.clone()),
            Cont::Loop1(_, _, k2) | Cont::Loop2(_, _, k2) => {
                self.state = State::Stmt(Arc::new(CmStmt::Skip), k2.clone());
                Ok(())
            }
            _ => Err("break outside of a loop".into()),
        }
    }

    fn unwind_continue(&mut self, k: Arc<Cont>) -> Result<(), String> {
        match k.as_ref() {
            Cont::Seq(_, k2) => self.unwind_continue(k2.clone()),
            Cont::Loop1(b, i, k2) => {
                self.state = State::Stmt(
                    i.clone(),
                    Arc::new(Cont::Loop2(b.clone(), i.clone(), k2.clone())),
                );
                Ok(())
            }
            _ => Err("continue outside of a loop body".into()),
        }
    }

    fn enter(
        &mut self,
        fname: &str,
        args: Vec<Value>,
        dest: Option<String>,
        k: Arc<Cont>,
    ) -> Result<(), String> {
        if let Some(f) = self.program.function(fname) {
            self.trace.push(Event::call(fname));
            let caller = std::mem::take(&mut self.frame);
            if f.params.len() != args.len() {
                return Err(format!("arity mismatch calling `{fname}`"));
            }
            let mut temps: HashMap<String, Value> = f.params.iter().cloned().zip(args).collect();
            for t in &f.temps {
                temps.entry(t.clone()).or_insert(Value::Undef);
            }
            self.frame = Frame {
                fname: Arc::from(fname),
                temps,
                stack_block: Some(self.memory.alloc(f.stacksize)),
            };
            self.state = State::Stmt(
                f.body.clone(),
                Arc::new(Cont::Call(dest, Box::new(caller), k)),
            );
            return Ok(());
        }
        if let Some((name, arity, has_ret)) = self
            .program
            .externals
            .iter()
            .find(|(n, _, _)| n == fname)
            .cloned()
        {
            if args.len() != arity {
                return Err(format!("arity mismatch calling external `{fname}`"));
            }
            let ints: Vec<u32> = args
                .iter()
                .map(|v| v.as_int().map_err(|e| e.to_string()))
                .collect::<Result<_, _>>()?;
            let result = clight::io_result(&name, &ints);
            self.trace.push(Event::io(name.as_str(), ints, result));
            if let Some(d) = dest {
                if !has_ret {
                    return Err(format!("void external `{fname}` used as a value"));
                }
                match self.frame.temps.get_mut(&d) {
                    Some(slot) => *slot = Value::Int(result),
                    None => return Err(format!("unknown temp `{d}`")),
                }
            }
            self.state = State::Stmt(Arc::new(CmStmt::Skip), k);
            return Ok(());
        }
        Err(format!("call to undefined function `{fname}`"))
    }

    fn leave(&mut self) -> Result<(), String> {
        if let Some(b) = self.frame.stack_block.take() {
            self.memory.free(b).map_err(|e| e.to_string())?;
        }
        self.trace.push(Event::ret(self.frame.fname.as_ref()));
        Ok(())
    }

    fn step_return(&mut self, v: Value, k: Arc<Cont>) -> Result<Option<u32>, String> {
        match k.as_ref() {
            Cont::Stop => match v {
                Value::Int(n) => Ok(Some(n)),
                Value::Undef if !self.entry_returns => Ok(Some(0)),
                other => Err(format!("program finished with non-integer value {other}")),
            },
            Cont::Call(dest, saved, k2) => {
                if matches!(k2.as_ref(), Cont::Stop) {
                    return self.step_return(v, k2.clone());
                }
                self.frame = (**saved).clone();
                if let Some(d) = dest {
                    match self.frame.temps.get_mut(d) {
                        Some(slot) => *slot = v,
                        None => return Err(format!("unknown temp `{d}`")),
                    }
                }
                self.state = State::Stmt(Arc::new(CmStmt::Skip), k2.clone());
                Ok(None)
            }
            Cont::Seq(_, k2) | Cont::Loop1(_, _, k2) | Cont::Loop2(_, _, k2) => {
                self.step_return(v, k2.clone())
            }
        }
    }

    fn eval(&self, e: &CmExpr) -> Result<Value, String> {
        match e {
            CmExpr::Const(n) => Ok(Value::Int(*n)),
            CmExpr::Temp(x) => self
                .frame
                .temps
                .get(x)
                .copied()
                .ok_or_else(|| format!("unknown temp `{x}`")),
            CmExpr::StackAddr(off) => {
                let b = self
                    .frame
                    .stack_block
                    .ok_or_else(|| "no stack block".to_owned())?;
                Ok(Value::Ptr(b, *off))
            }
            CmExpr::GlobalAddr(g, off) => {
                let b = self
                    .globals
                    .get(g)
                    .ok_or_else(|| format!("unknown global `{g}`"))?;
                Ok(Value::Ptr(*b, *off))
            }
            CmExpr::Load(a) => {
                let v = self.eval(a)?;
                let (b, off) = v.as_ptr().map_err(|e| e.to_string())?;
                self.memory.load(b, off).map_err(|e| e.to_string())
            }
            CmExpr::Unop(op, a) => {
                let v = self.eval(a)?;
                mem::eval_unop(*op, v).map_err(|e| e.to_string())
            }
            CmExpr::Binop(op, a, b) => {
                let va = self.eval(a)?;
                let vb = self.eval(b)?;
                mem::eval_binop(*op, va, vb).map_err(|e| e.to_string())
            }
            CmExpr::Cond(c, t, f) => {
                let v = self.eval(c)?;
                if truthy(v)? {
                    self.eval(t)
                } else {
                    self.eval(f)
                }
            }
        }
    }
}

fn truthy(v: Value) -> Result<bool, String> {
    match v {
        Value::Int(n) => Ok(n != 0),
        Value::Ptr(..) => Ok(true),
        other => Err(format!("branch condition evaluated to {other}")),
    }
}
