//! Quantitative CompCert for `stackbound`: a stack-aware, trace-preserving
//! compiler from Clight to `ASMsz` (§3 of *End-to-End Verification of
//! Stack-Space Bounds for C Programs*, PLDI 2014).
//!
//! The pipeline is
//!
//! ```text
//! Clight --cminorgen--> Cminor --rtlgen--> RTL --constprop,dce--> RTL
//!        --machgen (alloc + linearize + stacking)--> Mach
//!        --asmgen (stack merging)--> ASMsz
//! ```
//!
//! Every language has an interpreter that emits `call`/`ret` events, so
//! quantitative refinement (`trace::refinement`) is checkable across every
//! pass on concrete executions — the testable counterpart of the paper's
//! Coq proofs. The compiler also produces the per-target cost metric from
//! the Mach frame sizes (`M(f) = SF(f) + 4` on the default
//! [`asm::Target::Sz32`], `M(f) = SF(f)` on the link-register
//! [`asm::Target::Rv`]); instantiating a source-level bound with this
//! metric bounds the stack usage of the produced `ASMsz` code
//! (Theorem 1).
//!
//! # Examples
//!
//! ```
//! let program = clight::frontend("
//!     u32 sq(u32 x) { return x * x; }
//!     int main() { u32 r; r = sq(6); return r + 6; }
//! ", &[]).unwrap();
//! let compiled = compiler::compile(&program)?;
//!
//! // Run the machine code on a 1 KiB stack.
//! let m = asm::measure_main(&compiled.asm, 1024, 100_000).unwrap();
//! assert_eq!(m.result(), Some(42));
//!
//! // The source-level trace weight under the compiler's metric bounds the
//! // measured usage (with the paper's 4-byte slack, exactly).
//! let source = clight::Executor::run_main(&program, 100_000);
//! let bound = source.trace().weight(&compiled.metric);
//! assert_eq!(bound, i64::from(m.stack_usage) + 4);
//! # Ok::<(), compiler::CompileError>(())
//! ```

#![warn(missing_docs)]

pub mod cminor;
mod cminorgen;
pub mod incremental;
pub mod inline;
pub mod mach;
mod machgen;
pub mod opt;
pub mod pipeline;
pub mod rtl;
mod rtlgen;

mod asmgen;

pub use incremental::{compile_incremental, FnArtifacts};
pub use pipeline::{Budgets, Pipeline, PipelineConfig, PipelineError};

use std::fmt;

/// A compiler failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The input program is not well-formed (should have been caught by
    /// `clight::typecheck`).
    BadInput(String),
    /// An internal invariant was violated; always a bug in the compiler.
    Internal(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::BadInput(m) => write!(f, "invalid input program: {m}"),
            CompileError::Internal(m) => write!(f, "internal compiler error: {m}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Compilation options; the defaults enable every optimization and
/// target the classic [`asm::Target::Sz32`] machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Options {
    /// Run constant propagation on RTL.
    pub constprop: bool,
    /// Run dead-code elimination on RTL.
    pub dce: bool,
    /// Run experimental leaf inlining. **Off by default**, like in
    /// Quantitative CompCert (§3.3): inlining keeps bounds sound but
    /// destroys the exact `measured + 4` identity — see [`inline`].
    pub inline: bool,
    /// The machine the backend emits code for. The target decides the
    /// word size, the frame layout, the call convention
    /// (pushed-on-stack vs. link-register return addresses), and the
    /// per-function cost metric `M(f)` — so certified bounds are
    /// target-specific.
    pub target: asm::Target,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            constprop: true,
            dce: true,
            inline: false,
            target: asm::Target::Sz32,
        }
    }
}

impl Options {
    /// Options with every optimization disabled (for the ablation benches).
    pub fn no_opt() -> Options {
        Options {
            constprop: false,
            dce: false,
            inline: false,
            target: asm::Target::Sz32,
        }
    }

    /// The default options retargeted to `target`.
    pub fn for_target(target: asm::Target) -> Options {
        Options {
            target,
            ..Options::default()
        }
    }
}

/// The result of compiling a Clight program: the final `ASMsz` code, the
/// cost metric of Theorem 1, and every intermediate program (retained for
/// differential refinement testing and the ablation experiments).
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The Cminor intermediate program.
    pub cminor: cminor::CmProgram,
    /// RTL before optimization.
    pub rtl: rtl::RtlProgram,
    /// RTL after the enabled optimizations.
    pub rtl_opt: rtl::RtlProgram,
    /// The Mach program with laid-out frames.
    pub mach: mach::MachProgram,
    /// The final assembly program.
    pub asm: asm::AsmProgram,
    /// The cost metric from the Mach frame sizes: `M(f) = SF(f) + 4` on
    /// [`asm::Target::Sz32`], `M(f) = SF(f)` on [`asm::Target::Rv`].
    pub metric: trace::Metric,
}

impl Compiled {
    /// The frame size `SF(f)` of a compiled function, if it exists.
    pub fn frame_size(&self, fname: &str) -> Option<u32> {
        self.mach
            .functions
            .iter()
            .find(|f| f.name == fname)
            .map(|f| f.frame_size)
    }
}

/// Compiles a type-checked Clight program with default options.
///
/// # Errors
///
/// Returns a [`CompileError`]; passing the program through
/// [`clight::typecheck`] first rules these out for well-formed inputs.
pub fn compile(program: &clight::Program) -> Result<Compiled, CompileError> {
    compile_with(program, Options::default())
}

/// Compiles with explicit [`Options`].
///
/// This is a thin wrapper over the [`pipeline`] pass manager with the
/// default [`PipelineConfig`] (serial, no budgets, no refinement
/// checkpoints); build a [`Pipeline`] directly for those features.
///
/// # Errors
///
/// See [`compile`].
pub fn compile_with(program: &clight::Program, options: Options) -> Result<Compiled, CompileError> {
    Pipeline::new(PipelineConfig::with_options(options))
        .run(program)
        .map_err(|e| match e {
            PipelineError::Compile(e) => e,
            // Unreachable with the default config: budgets and refinement
            // checkpoints are off.
            other => CompileError::Internal(other.to_string()),
        })
}

/// Convenience: parse, type-check, and compile C source in one call.
///
/// # Errors
///
/// Returns the front-end or compiler error message.
///
/// # Examples
///
/// ```
/// let compiled = compiler::compile_c("int main() { return 0; }", &[]).unwrap();
/// assert_eq!(compiled.asm.functions.len(), 1);
/// ```
pub fn compile_c(src: &str, params: &[(&str, u32)]) -> Result<Compiled, String> {
    let program = clight::frontend(src, params)?;
    compile(&program).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests;
