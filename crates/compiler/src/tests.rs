use crate::{cminor, compile_c, compile_with, mach, rtl, Options};
use proptest::prelude::*;
use trace::refinement::{check_classic, check_quantitative};
use trace::Behavior;

const FUEL: u64 = 20_000_000;

/// Compiles `src` and checks the whole pipeline on one execution:
/// quantitative refinement between every adjacent pair of IR interpreters,
/// and Theorem 1 for the final machine code. Returns the source behavior.
fn check_pipeline(src: &str) -> Behavior {
    let program = clight::frontend(src, &[]).unwrap_or_else(|e| panic!("frontend: {e}"));
    let compiled = crate::compile(&program).unwrap_or_else(|e| panic!("compile: {e}"));

    let b_clight = clight::Executor::run_main(&program, FUEL);
    let b_cminor = cminor::run_main(&compiled.cminor, FUEL);
    let b_rtl = rtl::run_main(&compiled.rtl, FUEL);
    let b_rtl_opt = rtl::run_main(&compiled.rtl_opt, FUEL);
    let b_mach = mach::run_main(&compiled.mach, FUEL);

    let metric = [("mach", &compiled.metric)];
    check_quantitative(&b_clight, &b_cminor, &metric).unwrap_or_else(|e| {
        panic!("clight -> cminor: {e}\nsource: {b_clight}\ntarget: {b_cminor}")
    });
    check_quantitative(&b_cminor, &b_rtl, &metric)
        .unwrap_or_else(|e| panic!("cminor -> rtl: {e}\nsource: {b_cminor}\ntarget: {b_rtl}"));
    check_quantitative(&b_rtl, &b_rtl_opt, &metric)
        .unwrap_or_else(|e| panic!("rtl -> rtl_opt: {e}"));
    check_quantitative(&b_rtl_opt, &b_mach, &metric)
        .unwrap_or_else(|e| panic!("rtl_opt -> mach: {e}\nsource: {b_rtl_opt}\ntarget: {b_mach}"));

    // Theorem 1 at the machine level: with sz >= the source weight under
    // the compiler's metric, the target refines the source and cannot
    // overflow, and the measured usage is exactly weight - 4.
    if !b_clight.goes_wrong() {
        let weight = b_mach.weight(&compiled.metric);
        assert!(weight >= 0);
        let sz = u32::try_from(weight).unwrap().div_ceil(4) * 4;
        let m = asm::measure_main(&compiled.asm, sz, FUEL).unwrap();
        check_classic(&b_mach, &m.behavior).unwrap_or_else(|e| {
            panic!("mach -> asm: {e}\nsource: {b_mach}\ntarget: {}", m.behavior)
        });
        assert!(!m.overflowed(), "overflow with sz = weight = {sz}");
        if m.behavior.converges() {
            assert_eq!(
                i64::from(m.stack_usage),
                weight - 4,
                "measured usage != weight - 4"
            );
        }
    }
    b_clight
}

fn returns(src: &str, expected: u32) {
    let b = check_pipeline(src);
    assert_eq!(b.return_code(), Some(expected), "behavior: {b}");
}

// ---- end-to-end correctness on a program battery ------------------------------

#[test]
fn constants_and_arithmetic() {
    returns("int main() { return (3 + 4) * (10 - 4); }", 42);
    returns("int main() { return 7 % 4 + 39; }", 42);
    returns("int main() { u32 x; x = 0x1000; return x >> 8; }", 16);
}

#[test]
fn locals_and_assignments() {
    returns(
        "int main() { u32 a; u32 b; a = 6; b = a * a; return b + a; }",
        42,
    );
}

#[test]
fn if_then_else_chains() {
    returns(
        "int main() { int x; x = -5; if (x < 0) x = -x; if (x > 4) return x + 37; return 0; }",
        42,
    );
}

#[test]
fn loops_with_break_and_continue() {
    returns(
        "int main() { u32 s; u32 i; s = 0;
           for (i = 0; i < 100; i++) {
             if (i % 3 == 0) continue;
             if (i >= 10) break;
             s += i;
           } return s; }",
        1 + 2 + 4 + 5 + 7 + 8,
    );
}

#[test]
fn while_and_do_while() {
    returns(
        "int main() { u32 n; u32 c; n = 27; c = 0;
           while (n != 1) { if (n % 2) n = 3 * n + 1; else n = n / 2; c++; }
           return c; }",
        111,
    );
}

#[test]
fn globals_and_arrays() {
    returns(
        "u32 tab[8] = {5, 4, 3}; u32 g = 30;
         int main() { tab[3] = tab[0] + tab[1]; return tab[3] + tab[2] + g; }",
        42,
    );
}

#[test]
fn local_arrays_and_pointers() {
    returns(
        "int main() { u32 b[4]; u32 *p; u32 i;
           for (i = 0; i < 4; i++) b[i] = i * i;
           p = &b[1];
           return b[0] + p[0] + p[1] + p[2] + 28; }",
        42,
    );
}

#[test]
fn address_of_scalar_local() {
    returns(
        "void bump(u32 *p) { *p = *p + 1; }
         int main() { u32 x; x = 41; bump(&x); return x; }",
        42,
    );
}

#[test]
fn simple_calls() {
    returns(
        "u32 add(u32 a, u32 b) { return a + b; }
         u32 twice(u32 x) { u32 r; r = add(x, x); return r; }
         int main() { u32 r; r = twice(21); return r; }",
        42,
    );
}

#[test]
fn many_arguments_spill_to_outgoing_slots() {
    returns(
        "u32 sum6(u32 a, u32 b, u32 c, u32 d, u32 e, u32 f) {
           return a + b + c + d + e + f;
         }
         int main() { u32 r; r = sum6(1, 2, 3, 4, 5, 27); return r; }",
        42,
    );
}

#[test]
fn recursion_fib() {
    returns(
        "u32 fib(u32 n) { u32 a; u32 b; if (n < 2) return n;
           a = fib(n - 1); b = fib(n - 2); return a + b; }
         int main() { u32 r; r = fib(10); return r; }",
        55,
    );
}

#[test]
fn mutual_recursion() {
    returns(
        "u32 even(u32 n) { u32 r; if (n == 0) return 1; r = odd(n - 1); return r; }
         u32 odd(u32 n) { u32 r; if (n == 0) return 0; r = even(n - 1); return r; }
         int main() { u32 r; r = even(10); return r; }",
        1,
    );
}

#[test]
fn externals_produce_identical_io() {
    returns(
        "extern u32 sensor(u32 ch);
         int main() { u32 a; u32 b; a = sensor(3); b = sensor(3); return a == b; }",
        1,
    );
}

#[test]
fn register_pressure_forces_spills() {
    // Nine simultaneously-live values exceed the four allocatable registers.
    returns(
        "int main() {
           u32 a; u32 b; u32 c; u32 d; u32 e; u32 f; u32 g; u32 h; u32 i;
           a = 1; b = 2; c = 3; d = 4; e = 5; f = 6; g = 7; h = 8; i = 9;
           return a + b + c + d + e + f + g + h + i - 3; }",
        42,
    );
}

#[test]
fn values_live_across_calls_are_spilled() {
    returns(
        "u32 id(u32 x) { return x; }
         int main() { u32 a; u32 b; u32 c; u32 r;
           a = 10; b = 20; c = 12;
           r = id(0);
           return a + b + c + r; }",
        42,
    );
}

#[test]
fn ternary_and_short_circuit() {
    returns(
        "int main() { u32 x; u32 y; x = 5; y = x > 3 && x < 10 ? 42 : 0; return y; }",
        42,
    );
}

#[test]
fn signed_unsigned_operations() {
    returns("int main() { int a; a = -84; return a / -2; }", 42);
    returns(
        "int main() { u32 a; a = 0xFFFFFFFF; return (a >> 28) + 27; }",
        42,
    );
}

#[test]
fn nested_loops() {
    returns(
        "int main() { u32 s; u32 i; u32 j; s = 0;
           for (i = 0; i < 6; i++)
             for (j = 0; j < 7; j++)
               s += 1;
           return s; }",
        42,
    );
}

#[test]
fn void_functions_and_global_state() {
    returns(
        "u32 counter;
         void tick() { counter = counter + 1; }
         int main() { u32 i; for (i = 0; i < 42; i++) tick(); return counter; }",
        42,
    );
}

#[test]
fn empty_frames_are_legal() {
    // A leaf with no locals has frame size 0 but metric 4.
    let c = compile_c(
        "u32 four() { return 4; } int main() { u32 r; r = four(); return r; }",
        &[],
    )
    .unwrap();
    assert_eq!(c.frame_size("four"), Some(0));
    assert_eq!(c.metric.call_cost("four"), 4);
    returns(
        "u32 four() { return 4; } int main() { u32 r; r = four(); return r + 38; }",
        42,
    );
}

// ---- failure preservation ------------------------------------------------------

#[test]
fn division_by_zero_fails_at_every_level() {
    let b = check_pipeline("int main() { u32 z; z = 0; return 4 / z; }");
    assert!(b.goes_wrong());
}

#[test]
fn out_of_bounds_fails_at_source() {
    let b = check_pipeline("u32 a[4]; int main() { u32 i; i = 4; return a[i]; }");
    assert!(b.goes_wrong());
}

#[test]
fn diverging_programs_stay_diverging() {
    let src = "int main() { u32 x; x = 0; while (1) { x++; } return x; }";
    let program = clight::frontend(src, &[]).unwrap();
    let compiled = crate::compile(&program).unwrap();
    assert!(matches!(
        mach::run_main(&compiled.mach, 100_000),
        Behavior::Diverges(_)
    ));
    let m = asm::measure_main(&compiled.asm, 1024, 100_000).unwrap();
    assert!(matches!(m.behavior, Behavior::Diverges(_)));
}

// ---- optimization-specific tests -------------------------------------------------

#[test]
fn constprop_folds_constant_expressions() {
    let c = compile_c("int main() { return 2 * 3 + 4 * 5 + 16; }", &[]).unwrap();
    let main = c.rtl_opt.function("main").unwrap();
    // After folding, a single constant feeds the return.
    let consts: Vec<u32> = main
        .code
        .iter()
        .filter_map(|i| match i {
            rtl::RtlInstr::Op(rtl::RtlOp::Const(k), _, _, _) => Some(*k),
            _ => None,
        })
        .collect();
    assert!(consts.contains(&42), "folded constants: {consts:?}");
}

#[test]
fn constprop_does_not_fold_trapping_division() {
    let src = "int main() { u32 a; a = 1; return a / 0; }";
    let b = check_pipeline(src);
    assert!(b.goes_wrong(), "division by zero must be preserved: {b}");
}

#[test]
fn dce_removes_dead_code() {
    let with_dead = compile_c("int main() { u32 dead; dead = 1000; return 42; }", &[]).unwrap();
    let live_ops = with_dead
        .rtl_opt
        .function("main")
        .unwrap()
        .code
        .iter()
        .filter(|i| !matches!(i, rtl::RtlInstr::Nop(_)))
        .count();
    let baseline = compile_c("int main() { return 42; }", &[]).unwrap();
    let base_ops = baseline
        .rtl_opt
        .function("main")
        .unwrap()
        .code
        .iter()
        .filter(|i| !matches!(i, rtl::RtlInstr::Nop(_)))
        .count();
    assert_eq!(live_ops, base_ops, "dead assignment not eliminated");
}

#[test]
fn optimizations_never_change_results_or_traces() {
    let srcs = [
        "int main() { u32 s; u32 i; s = 0; for (i = 0; i < 9; i++) s += 2 * 3; return s; }",
        "u32 f(u32 x) { return x * 2; }
         int main() { u32 a; u32 b; a = f(1 + 2); b = f(3 + 4); return a + b + 1; }",
    ];
    for src in srcs {
        let program = clight::frontend(src, &[]).unwrap();
        let opt = compile_with(&program, Options::default()).unwrap();
        let raw = compile_with(&program, Options::no_opt()).unwrap();
        let b_opt = mach::run_main(&opt.mach, FUEL);
        let b_raw = mach::run_main(&raw.mach, FUEL);
        assert_eq!(b_opt.return_code(), b_raw.return_code());
        // Call events are preserved exactly by the optimizations.
        let calls = |b: &Behavior| {
            b.trace()
                .events()
                .iter()
                .filter(|e| e.is_memory())
                .cloned()
                .collect::<Vec<_>>()
        };
        assert_eq!(calls(&b_opt), calls(&b_raw));
    }
}

// ---- frame-size and metric facts ---------------------------------------------------

#[test]
fn frame_sizes_are_static_and_metric_matches() {
    let c = compile_c(
        "u32 buf(u32 n) { u32 b[10]; b[0] = n; return b[0]; }
         int main() { u32 r; r = buf(1); return r; }",
        &[],
    )
    .unwrap();
    // buf's frame contains at least its 40-byte array.
    let sf = c.frame_size("buf").unwrap();
    assert!(sf >= 40, "SF(buf) = {sf}");
    assert_eq!(c.metric.call_cost("buf"), sf + 4);
    for f in &c.asm.functions {
        assert_eq!(c.metric.call_cost(&f.name), f.frame_size + 4);
    }
}

#[test]
fn deeper_recursion_needs_proportionally_more_stack() {
    let src = "
        u32 down(u32 n) { u32 r; if (n == 0) return 7; r = down(n - 1); return r; }
        int main() { u32 r; r = down(DEPTH); return r; }
    ";
    let mut usages = Vec::new();
    for depth in [1u32, 2, 4, 8] {
        let compiled = compile_c(src, &[("DEPTH", depth)]).unwrap();
        let m = asm::measure_main(&compiled.asm, 1 << 20, FUEL).unwrap();
        assert_eq!(m.result(), Some(7));
        usages.push((depth, m.stack_usage, compiled.metric.call_cost("down")));
    }
    // usage(depth) is affine with slope M(down).
    let (d0, u0, m0) = usages[0];
    for &(d, u, m) in &usages[1..] {
        assert_eq!(m, m0);
        assert_eq!(u - u0, (d - d0) * m0, "usage not linear in depth");
    }
}

#[test]
fn theorem1_overflow_boundary_is_exact() {
    let src = "
        u32 leaf(u32 x) { return x + 1; }
        u32 mid(u32 x) { u32 r; r = leaf(x); return r; }
        int main() { u32 r; r = mid(41); return r; }
    ";
    let compiled = compile_c(src, &[]).unwrap();
    let b = mach::run_main(&compiled.mach, FUEL);
    let weight = u32::try_from(b.weight(&compiled.metric)).unwrap();

    // sz = weight - 4 (the measured usage) still succeeds...
    let ok = asm::measure_main(&compiled.asm, weight - 4, FUEL).unwrap();
    assert_eq!(ok.result(), Some(42));
    assert_eq!(ok.stack_usage, weight - 4);
    // ...and sz = weight - 8 overflows.
    let bad = asm::measure_main(&compiled.asm, weight - 8, FUEL).unwrap();
    assert!(bad.overflowed(), "expected overflow: {}", bad.behavior);
}

// ---- property tests ------------------------------------------------------------

/// Generates a random but well-formed arithmetic/control-flow program.
fn random_program() -> impl Strategy<Value = String> {
    let stmt = prop_oneof![
        (0u32..3, 0u32..100).prop_map(|(v, k)| format!("x{v} = x{v} + {k};")),
        (0u32..3, 1u32..50).prop_map(|(v, k)| format!("x{v} = x{v} * {k};")),
        (0u32..3, 0u32..3, 0u32..20).prop_map(|(a, b, k)| {
            format!("if (x{a} < x{b} + {k}) {{ x{a} = x{a} + 1; }} else {{ x{b} = x{b} + 2; }}")
        }),
        (0u32..3, 1u32..6).prop_map(|(v, k)| { format!("for (i = 0; i < {k}; i++) x{v} += i;") }),
        (0u32..3).prop_map(|v| format!("x{v} = helper(x{v});")),
    ];
    proptest::collection::vec(stmt, 1..8).prop_map(|stmts| {
        format!(
            "u32 helper(u32 n) {{ return n % 1000 + 3; }}
             int main() {{ u32 x0; u32 x1; u32 x2; u32 i; x0 = 1; x1 = 2; x2 = 3;
             {}
             return (x0 + x1 + x2) & 0xff; }}",
            stmts.join("\n")
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_pipeline_refines_on_random_programs(src in random_program()) {
        let b = check_pipeline(&src);
        prop_assert!(b.converges(), "random programs converge: {b}");
    }

    #[test]
    fn prop_recursive_weight_equals_measured_plus_4(n in 0u32..30) {
        let src = format!("
            u32 down(u32 n) {{ u32 r; if (n == 0) return 0; r = down(n - 1); return r; }}
            int main() {{ u32 r; r = down({n}); return r; }}
        ");
        let compiled = compile_c(&src, &[]).unwrap();
        let b = mach::run_main(&compiled.mach, FUEL);
        let weight = b.weight(&compiled.metric);
        let m = asm::measure_main(&compiled.asm, 1 << 20, FUEL).unwrap();
        prop_assert_eq!(i64::from(m.stack_usage), weight - 4);
    }
}

#[test]
fn listings_render_every_ir() {
    let c = compile_c(
        "u32 f(u32 x) { return x + 1; } int main() { u32 r; r = f(1); return r; }",
        &[],
    )
    .unwrap();
    let rtl = c.rtl_opt.listing();
    assert!(rtl.contains("main("), "{rtl}");
    assert!(rtl.contains("return"), "{rtl}");
    let machl = c.mach.listing();
    assert!(machl.contains("# SF ="), "{machl}");
    assert!(machl.contains("call fn"), "{machl}");
    let asml = c.asm.listing();
    assert!(asml.contains("main: # frame"), "{asml}");
}

#[test]
fn tunnel_handles_nop_cycles() {
    // A loop that constant-folds to pure Nops must not hang tunneling.
    let src = "int main() { u32 x; x = 1; while (x) { } return 0; }";
    let program = clight::frontend(src, &[]).unwrap();
    let compiled = crate::compile(&program).unwrap();
    // The program diverges; the machine must too (not crash).
    let b = mach::run_main(&compiled.mach, 50_000);
    assert!(matches!(b, Behavior::Diverges(_)), "{b}");
}

#[test]
fn deeply_nested_expressions_compile() {
    // Stress expression translation and register allocation.
    let mut e = String::from("1");
    for i in 2..40 {
        e = format!("({e} + {i})");
    }
    let src = format!("int main() {{ u32 x; x = {e}; return x & 0xff; }}");
    returns(&src, ((1..40).sum::<u32>()) & 0xff);
}

#[test]
fn arguments_beyond_registers_roundtrip() {
    // 10 arguments: all pass through outgoing stack slots.
    returns(
        "u32 f(u32 a,u32 b,u32 c,u32 d,u32 e,u32 g,u32 h,u32 i,u32 j,u32 k) {
           return a+b+c+d+e+g+h+i+j+k;
         }
         int main() { u32 r; r = f(1,2,3,4,5,6,7,8,9,10); return r; }",
        55,
    );
}

#[test]
fn switch_statements_compile_through_the_pipeline() {
    returns(
        "u32 opcode(u32 op, u32 a, u32 b) {
           switch (op) {
             case 0: return a + b;
             case 1: return a - b;
             case 2:
             case 3: return a * b;
             default: return 0;
           }
         }
         int main() { u32 r; u32 s; u32 t; u32 u;
           r = opcode(0, 40, 2);
           s = opcode(1, 44, 2);
           t = opcode(3, 21, 2);
           u = opcode(9, 1, 1);
           return (r + s + t + u) / 3; }",
        42,
    );
}
